//! End-to-end CLI coverage of the run ledger: `mossim --save`,
//! `history`, `diff`, `dashboard`, and the schema of `rvdiff --json`.
//!
//! All ledger state lives in a per-test temp directory passed via
//! `--ledger-dir`, so these tests never touch `results/ledger/`.

use std::path::PathBuf;
use std::process::Command;

use mopsched::ledger::json;

fn mossim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mossim"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mos_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> (String, String) {
    let out = cmd.output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "command failed:\n{stdout}\n{stderr}");
    (stdout, stderr)
}

fn save_once(ledger: &std::path::Path) -> String {
    let (_, err) = run_ok(mossim().args([
        "--bench",
        "gzip",
        "--sched",
        "mop-wor",
        "--insts",
        "5000",
        "--save",
        "--ledger-dir",
        ledger.to_str().unwrap(),
    ]));
    assert!(err.contains("ledger: saved"), "no save confirmation: {err}");
    err
}

#[test]
fn save_history_diff_dashboard_pipeline() {
    let dir = temp_dir("pipeline");
    let ledger = dir.join("ledger");

    // Two saves of the same (program, config, code): the acceptance
    // criterion is that their diff reports zero sim-side deltas.
    save_once(&ledger);
    save_once(&ledger);

    let (history, _) = run_ok(mossim().args([
        "history",
        "--ledger-dir",
        ledger.to_str().unwrap(),
    ]));
    assert!(history.contains("| gzip | mop-wor | 5000 |"), "{history}");
    assert_eq!(
        history.matches("| run |").count(),
        2,
        "both saves indexed: {history}"
    );

    // history filters: a non-matching bench hides both rows.
    let (filtered, _) = run_ok(mossim().args([
        "history",
        "--bench",
        "gap",
        "--ledger-dir",
        ledger.to_str().unwrap(),
    ]));
    assert!(filtered.contains("no matching archived runs"), "{filtered}");

    let (diff_md, _) = run_ok(mossim().args([
        "diff",
        "latest-1",
        "latest",
        "--ledger-dir",
        ledger.to_str().unwrap(),
    ]));
    assert!(
        diff_md.contains("Verdict: sim-identical"),
        "same config twice must be sim-identical:\n{diff_md}"
    );
    assert!(diff_md.contains("## Differential CPI stack"), "{diff_md}");
    assert!(diff_md.contains("Host throughput (advisory"), "{diff_md}");

    let dash_path = dir.join("dash.html");
    run_ok(mossim().args([
        "dashboard",
        "--ledger-dir",
        ledger.to_str().unwrap(),
        "--history",
        dir.join("no_such_history.jsonl").to_str().unwrap(),
        "--html",
        "--out",
        dash_path.to_str().unwrap(),
    ]));
    let dash = std::fs::read_to_string(&dash_path).unwrap();
    assert!(dash.starts_with("<!DOCTYPE html>"), "{dash}");
    assert!(dash.contains("mopsched regression dashboard"));
    assert!(dash.contains("2 archived save(s)"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_rejects_bad_specs() {
    let dir = temp_dir("badspec");
    let ledger = dir.join("ledger");
    save_once(&ledger);
    let out = mossim()
        .args(["diff", "latest-5", "latest", "--ledger-dir", ledger.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "latest-5 must fail with one save");
    let out = mossim()
        .args(["diff", "zz", "latest", "--ledger-dir", ledger.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "non-hex prefix must fail");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rvdiff_json_report_matches_the_schema() {
    let dir = temp_dir("rvdiff");
    let json_path = dir.join("rvdiff.json");
    run_ok(mossim().args([
        "rvdiff",
        "--rv",
        "gcd",
        "--json",
        json_path.to_str().unwrap(),
    ]));
    let doc = json::parse(&std::fs::read_to_string(&json_path).unwrap()).expect("valid JSON");

    assert_eq!(doc.get("schema").and_then(json::Value::as_u64), Some(1));
    assert_eq!(doc.get("programs").and_then(json::Value::as_u64), Some(1));
    assert_eq!(doc.get("schedulers").and_then(json::Value::as_u64), Some(7));
    assert_eq!(doc.get("failures").and_then(json::Value::as_u64), Some(0));

    let results = doc.get("results").and_then(json::Value::as_arr).unwrap();
    assert_eq!(results.len(), 7, "one row per scheduler");
    for r in results {
        assert_eq!(r.get("program").and_then(json::Value::as_str), Some("gcd"));
        assert!(r.get("sched").and_then(json::Value::as_str).is_some());
        assert_eq!(r.get("pass"), Some(&json::Value::Bool(true)));
        // A passing row carries the full metric set.
        for field in [
            "rv_retired",
            "uops_committed",
            "cycles",
            "ipc",
            "fusion_rate",
            "sched_loop_share",
        ] {
            assert!(
                r.get(field).and_then(json::Value::as_num).is_some(),
                "missing {field}"
            );
        }
        let share = r.get("sched_loop_share").and_then(json::Value::as_num).unwrap();
        assert!((0.0..=1.0).contains(&share), "share out of range: {share}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Golden-program regression pins for the RV32 suite: committed-uop
//! counts, the functional oracle's final-state digest, and the mop-wor
//! fusion-rate snapshot per program. Any drift in the assembler, the
//! lowering, the interpreter, or macro-op formation on real programs
//! shows up here as an exact-value diff.
//!
//! If a change legitimately moves one of these numbers (e.g. a lowering
//! improvement), re-pin it and say why in the commit message.

use mopsched::rv::{self, suite};

const MAX_STEPS: usize = 10_000_000;

/// `(program, committed uops, final-state digest, mop-wor fusion rate)`.
const GOLDEN: &[(&str, u64, u64, f64)] = &[
    ("sum_loop", 302, 0xb2f5_8091_fcf8_9540, 0.668_874),
    ("fib_rec", 4413, 0x6439_54ed_2447_3e31, 0.222_524),
    ("memcpy", 3847, 0x5e5c_571d_ed57_ac8a, 0.525_084),
    ("strlen", 100, 0xb58a_8a81_f592_0edd, 0.280_000),
    ("gcd", 1827, 0x708f_66e7_6528_5d67, 0.446_634),
    ("collatz", 5796, 0xf7ed_3911_0000_62dd, 0.612_146),
    ("bubble_sort", 9196, 0x4740_0848_33f4_09ae, 0.238_256),
];

#[test]
fn golden_table_covers_the_whole_suite() {
    assert_eq!(GOLDEN.len(), suite::PROGRAMS.len());
    for p in &suite::PROGRAMS {
        assert!(
            GOLDEN.iter().any(|&(name, ..)| name == p.name),
            "suite program `{}` has no golden row",
            p.name
        );
    }
}

#[test]
fn oracle_final_state_digests_are_pinned() {
    for &(name, _, digest, _) in GOLDEN {
        let prog = suite::by_name(name).expect("suite program").assemble();
        let mut interp = rv::RvInterp::new(&prog);
        interp.run_collect(MAX_STEPS);
        assert!(interp.stopped_cleanly(), "{name}: oracle did not halt");
        assert_eq!(
            interp.state().digest(),
            digest,
            "{name}: final-state digest drifted (got 0x{:016x})",
            interp.state().digest()
        );
    }
}

#[test]
fn committed_uop_counts_and_fusion_rates_are_pinned() {
    for &(name, uops, _, fusion) in GOLDEN {
        let prog = suite::by_name(name).expect("suite program").assemble();
        let cfg = rv::config_for("mop-wor").expect("known scheduler");
        let report = rv::run_differential(&prog, "mop-wor", cfg, MAX_STEPS)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            report.uops_committed, uops,
            "{name}: committed-uop count drifted"
        );
        assert!(
            (report.fusion_rate - fusion).abs() < 5e-4,
            "{name}: mop-wor fusion rate drifted: got {:.6}, pinned {fusion:.6}",
            report.fusion_rate
        );
    }
}

/// The committed count is scheduler-invariant: timing must never change
/// *what* commits, only *when*.
#[test]
fn committed_counts_are_identical_across_schedulers() {
    for &(name, uops, ..) in GOLDEN {
        let prog = suite::by_name(name).expect("suite program").assemble();
        for sched in rv::SCHED_KINDS {
            let cfg = rv::config_for(sched).expect("known scheduler");
            let report = rv::run_differential(&prog, sched, cfg, MAX_STEPS)
                .unwrap_or_else(|e| panic!("{name}/{sched}: {e}"));
            assert_eq!(report.uops_committed, uops, "{name}/{sched}");
        }
    }
}

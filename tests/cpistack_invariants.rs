//! Top-down cycle-accounting invariants, end to end:
//!
//! * **Conservation** — on randomly generated programs, under every
//!   scheduler configuration, the per-cause slot counts must sum exactly
//!   to `cycles × issue_width`. Nothing is double-charged, nothing is
//!   dropped.
//! * **Golden differential** — the paper's headline story in one test:
//!   the `base` scheduler has no scheduling-loop penalty, pipelining the
//!   loop (`2cycle`) creates one, and macro-op scheduling recovers part
//!   of it.
//! * **Schema** — the hand-rolled cpistack JSON (single and differential)
//!   parses and carries the promised structure.

use proptest::prelude::*;

use mopsched::asm::{Image, Interpreter};
use mopsched::core::{SlotCause, WakeupStyle};
use mopsched::isa::{Opcode, Program, Reg, StaticInst};
use mopsched::sim::cpistack::{self, CpiStack};
use mopsched::sim::{MachineConfig, Simulator};
use mopsched::workload::kernels;
use mos_testutil::json;

/// Every scheduler configuration of Section 6.2, by CLI spelling.
fn all_schedulers() -> [(&'static str, MachineConfig); 7] {
    [
        ("base", MachineConfig::base_32()),
        ("2cycle", MachineConfig::two_cycle_32()),
        (
            "mop-2src",
            MachineConfig::macro_op(WakeupStyle::CamTwoSource, Some(32), 1),
        ),
        (
            "mop-wor",
            MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
        ),
        ("sf-squash", MachineConfig::select_free_squash_dep_32()),
        ("sf-scoreboard", MachineConfig::select_free_scoreboard_32()),
        ("spec-wakeup", MachineConfig::speculative_wakeup_32()),
    ]
}

/// Run `image` under `cfg` with slot accounting on and return the stack.
fn accounted_stack(name: &str, cfg: MachineConfig, image: &Image) -> CpiStack {
    let width = cfg.sched.issue_width as u64;
    let mut sim = Simulator::new(cfg, Interpreter::new(image));
    sim.enable_slot_accounting();
    let stats = sim.run(u64::MAX);
    CpiStack::from_stats("random", name, width, &stats)
}

/// One random instruction inside a loop body (a trimmed version of the
/// `random_programs` generator: enough variety to exercise loads, mul
/// latencies, forward branches and dependence chains).
#[derive(Debug, Clone)]
enum BodyOp {
    Alu { op: u8, dst: u8, a: u8, b: u8 },
    Load { dst: u8, off: i64 },
    Store { val: u8, off: i64 },
    Mul { dst: u8, a: u8, b: u8 },
    Skip { cond: u8, dist: u8 },
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    let r = 1u8..9;
    prop_oneof![
        (0u8..5, r.clone(), r.clone(), r.clone())
            .prop_map(|(op, dst, a, b)| BodyOp::Alu { op, dst, a, b }),
        (r.clone(), 0i64..16).prop_map(|(dst, off)| BodyOp::Load { dst, off: off * 8 }),
        (r.clone(), 0i64..16).prop_map(|(val, off)| BodyOp::Store { val, off: off * 8 }),
        (r.clone(), r.clone(), r.clone()).prop_map(|(dst, a, b)| BodyOp::Mul { dst, a, b }),
        (r, 1u8..4).prop_map(|(cond, dist)| BodyOp::Skip { cond, dist }),
    ]
}

/// A random, always-terminating program: a counted loop around a random
/// body (skip branches only jump forward inside the body).
fn program_strategy() -> impl Strategy<Value = Image> {
    (2u32..16, prop::collection::vec(body_op(), 1..20)).prop_map(|(trips, body)| {
        let mut p = Program::new("random");
        let alu3 = [Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or, Opcode::Xor];
        p.push(StaticInst::li(Reg::int(9), i64::from(trips))); // counter
        p.push(StaticInst::li(Reg::int(20), 0x8000)); // memory base
        for k in 1..9u8 {
            p.push(StaticInst::li(Reg::int(k), i64::from(k)));
        }
        let top = p.len() as u32;
        let body_len = body.len() as u32;
        for (i, op) in body.iter().enumerate() {
            match *op {
                BodyOp::Alu { op, dst, a, b } => {
                    p.push(StaticInst::alu(
                        alu3[op as usize % alu3.len()],
                        Reg::int(dst),
                        Reg::int(a),
                        Reg::int(b),
                    ));
                }
                BodyOp::Load { dst, off } => {
                    p.push(StaticInst::load(Reg::int(dst), off, Reg::int(20)));
                }
                BodyOp::Store { val, off } => {
                    p.push(StaticInst::store(Reg::int(val), off, Reg::int(20)));
                }
                BodyOp::Mul { dst, a, b } => {
                    p.push(StaticInst::alu(
                        Opcode::Mul,
                        Reg::int(dst),
                        Reg::int(a),
                        Reg::int(b),
                    ));
                }
                BodyOp::Skip { cond, dist } => {
                    let here = top + i as u32;
                    let target = (here + 1 + u32::from(dist)).min(top + body_len);
                    p.push(StaticInst::branch(Opcode::Bnez, Reg::int(cond), target));
                }
            }
        }
        p.push(StaticInst::addi(Reg::int(9), Reg::int(9), -1));
        p.push(StaticInst::branch(Opcode::Bnez, Reg::int(9), top));
        p.push(StaticInst::halt());
        p.validate().expect("generated program is structurally valid");
        Image {
            program: p,
            data: Vec::new(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, ..ProptestConfig::default()
    })]

    /// Slot conservation holds on arbitrary programs under every
    /// scheduler: every issue slot of every cycle is charged to exactly
    /// one cause.
    #[test]
    fn slot_accounting_conserves_under_every_scheduler(image in program_strategy()) {
        for (name, cfg) in all_schedulers() {
            let st = accounted_stack(name, cfg, &image);
            st.check_conservation()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            prop_assert_eq!(st.slots.total(), st.cycles * st.issue_width);
            let share_sum: f64 = SlotCause::ALL.iter().map(|&c| st.share(c)).sum();
            prop_assert!((share_sum - 1.0).abs() < 1e-9, "{}: shares sum to {}", name, share_sum);
        }
    }
}

/// Golden differential on `sum_loop` — a 1-cycle dependence chain, the
/// worst case for a pipelined scheduling loop. The loop-penalty ordering
/// the paper predicts must hold: base has none, 2cycle pays, macro-op
/// scheduling recovers part of the loss.
#[test]
fn sum_loop_differential_pins_the_loop_penalty_sign() {
    let k = kernels::by_name("sum_loop").expect("sum_loop kernel");
    let run = |name: &str, cfg: MachineConfig| {
        let width = cfg.sched.issue_width as u64;
        let mut sim = Simulator::new(cfg, k.interpreter());
        sim.enable_slot_accounting();
        let stats = sim.run(u64::MAX);
        CpiStack::from_stats("sum_loop", name, width, &stats)
    };
    let base = run("base", MachineConfig::base_32());
    let two = run("2cycle", MachineConfig::two_cycle_32());
    let mop = run(
        "mop-wor",
        MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
    );
    for st in [&base, &two, &mop] {
        st.check_conservation().expect("conservation");
    }

    let loop_share = |st: &CpiStack| st.share(SlotCause::SchedLoop);
    assert_eq!(
        base.slots.get(SlotCause::SchedLoop),
        0,
        "base never stalls on the scheduling loop"
    );
    assert!(
        loop_share(&two) > 0.0,
        "pipelining the loop must create a loop penalty (got {})",
        loop_share(&two)
    );
    assert!(
        loop_share(&mop) < loop_share(&two),
        "macro-op scheduling must recover part of the loop penalty \
         (mop {} vs 2cycle {})",
        loop_share(&mop),
        loop_share(&two)
    );
    // And the penalty shows up in end-to-end time, not just attribution.
    assert!(
        two.cycles > base.cycles,
        "the 2-cycle loop must cost cycles on a 1-cycle chain"
    );
}

/// The single-stack JSON document parses and carries the full schema.
#[test]
fn cpistack_json_schema_roundtrips() {
    let k = kernels::by_name("sum_loop").expect("sum_loop kernel");
    let mut sim = Simulator::new(MachineConfig::two_cycle_32(), k.interpreter());
    sim.enable_slot_accounting();
    let stats = sim.run(u64::MAX);
    let st = CpiStack::from_stats("sum_loop", "2cycle", 4, &stats);

    let v = json::parse(&st.to_json()).expect("cpistack json parses");
    assert_eq!(v.get("bench").and_then(json::Value::as_str), Some("sum_loop"));
    assert_eq!(v.get("sched").and_then(json::Value::as_str), Some("2cycle"));
    assert_eq!(
        v.get("cycles").and_then(json::Value::as_u64),
        Some(stats.cycles)
    );
    assert_eq!(
        v.get("committed").and_then(json::Value::as_u64),
        Some(stats.committed)
    );
    assert_eq!(v.get("issue_width").and_then(json::Value::as_u64), Some(4));
    assert_eq!(v.get("conservation_ok"), Some(&json::Value::Bool(true)));
    assert!(v.get("ipc").and_then(json::Value::as_num).is_some());
    assert!(v.get("cpi").and_then(json::Value::as_num).is_some());

    let causes = v
        .get("causes")
        .and_then(json::Value::as_arr)
        .expect("causes array");
    assert_eq!(causes.len(), SlotCause::ALL.len());
    let mut slot_sum = 0;
    for (c, &cause) in causes.iter().zip(SlotCause::ALL.iter()) {
        assert_eq!(c.get("cause").and_then(json::Value::as_str), Some(cause.name()));
        slot_sum += c.get("slots").and_then(json::Value::as_u64).expect("slots");
        assert!(c.get("share").and_then(json::Value::as_num).is_some());
        assert!(c.get("cpi").and_then(json::Value::as_num).is_some());
    }
    assert_eq!(slot_sum, stats.cycles * 4, "parsed slots conserve");
}

/// The differential JSON document parses: every stack appears, and each
/// non-baseline stack has a per-cause delta block against the baseline.
#[test]
fn differential_json_schema_roundtrips() {
    let k = kernels::by_name("sum_loop").expect("sum_loop kernel");
    let run = |name: &str, cfg: MachineConfig| {
        let mut sim = Simulator::new(cfg, k.interpreter());
        sim.enable_slot_accounting();
        let stats = sim.run(u64::MAX);
        CpiStack::from_stats("sum_loop", name, 4, &stats)
    };
    let stacks = [
        run("base", MachineConfig::base_32()),
        run("2cycle", MachineConfig::two_cycle_32()),
        run(
            "mop-wor",
            MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
        ),
    ];
    let v = json::parse(&cpistack::compare_json(&stacks)).expect("differential json parses");
    let parsed = v.get("stacks").and_then(json::Value::as_arr).expect("stacks");
    assert_eq!(parsed.len(), 3);
    let deltas = v.get("deltas").and_then(json::Value::as_arr).expect("deltas");
    assert_eq!(deltas.len(), 2);
    for (d, expect_sched) in deltas.iter().zip(["2cycle", "mop-wor"]) {
        assert_eq!(d.get("sched").and_then(json::Value::as_str), Some(expect_sched));
        assert_eq!(d.get("vs").and_then(json::Value::as_str), Some("base"));
        let causes = d.get("causes").and_then(json::Value::as_arr).expect("causes");
        assert_eq!(causes.len(), SlotCause::ALL.len());
    }
    // The parsed deltas tell the paper's story too: 2cycle's sched_loop
    // delta vs base is positive, and mop-wor's is smaller.
    let loop_delta = |d: &json::Value| {
        d.get("causes")
            .and_then(json::Value::as_arr)
            .unwrap()
            .iter()
            .find(|c| c.get("cause").and_then(json::Value::as_str) == Some("sched_loop"))
            .and_then(|c| c.get("delta_share"))
            .and_then(json::Value::as_num)
            .expect("sched_loop delta")
    };
    let two_delta = loop_delta(&deltas[0]);
    let mop_delta = loop_delta(&deltas[1]);
    assert!(two_delta > 0.0, "2cycle loop-penalty delta: {two_delta}");
    assert!(mop_delta < two_delta, "mop {mop_delta} vs 2cycle {two_delta}");
}

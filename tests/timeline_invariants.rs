//! Pipeline-ordering invariants, checked through the timeline recorder:
//! for every committed micro-operation, stages advance monotonically
//! (fetch -> insert -> issue -> exec -> commit), the front-end delay is
//! exact, commits are in order, and fused MOP members issue together in
//! one entry with payload-RAM sequencing.

use mopsched::core::WakeupStyle;
use mopsched::sim::{MachineConfig, Simulator};
use mopsched::workload::spec2000;

fn record(bench: &str, cfg: MachineConfig, uops: usize, run: u64) -> Vec<mopsched::sim::timeline::UopTimeline> {
    let spec = spec2000::by_name(bench).expect("known benchmark");
    let mut sim = Simulator::new(cfg, spec.trace(42));
    sim.enable_timeline(uops);
    sim.run(run);
    sim.timeline().expect("enabled").entries().to_vec()
}

#[test]
fn stages_advance_monotonically() {
    for cfg in [
        MachineConfig::base_32(),
        MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
        MachineConfig::select_free_scoreboard_32(),
    ] {
        let front = cfg.front_delay();
        let exec_offset = u64::from(cfg.exec_offset);
        for e in record("parser", cfg, 2_000, 4_000) {
            assert!(
                e.inserted_at >= e.fetched_at + front,
                "uop {}: insert {} vs fetch {} (+{front})",
                e.id,
                e.inserted_at,
                e.fetched_at
            );
            if let Some(issue) = e.last_issue() {
                assert!(issue >= e.inserted_at, "uop {}: issued before insert", e.id);
                if let Some(exec) = e.exec_at {
                    // Head executes at issue + offset; a MOP tail one later.
                    assert!(
                        exec >= issue + exec_offset,
                        "uop {}: exec {} before issue {} + {exec_offset}",
                        e.id,
                        exec,
                        issue
                    );
                }
            }
            if let Some(commit) = e.commit_at {
                assert!(!e.wrong_path, "wrong-path uop {} committed", e.id);
                let exec = e.exec_at.expect("committed uops executed");
                assert!(commit >= exec, "uop {}: commit {} before exec {}", e.id, commit, exec);
            }
        }
    }
}

#[test]
fn commits_are_in_program_order() {
    let entries = record("gzip", MachineConfig::base_32(), 2_000, 4_000);
    let mut last: Option<(u64, u64)> = None;
    for e in entries.iter().filter(|e| e.commit_at.is_some()) {
        let c = e.commit_at.expect("filtered");
        if let Some((pid, pc)) = last {
            assert!(pid < e.id);
            assert!(pc <= c, "uop {} committed at {} after uop {} at {}", e.id, c, pid, pc);
        }
        last = Some((e.id, c));
    }
}

#[test]
fn fused_members_issue_together_and_sequence() {
    let entries = record(
        "gzip",
        MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
        3_000,
        6_000,
    );
    let mut fused_pairs = 0;
    for e in &entries {
        let Some(head_id) = e.mop_head else { continue };
        if head_id == e.id {
            continue;
        }
        let Some(head) = entries.iter().find(|h| h.id == head_id) else {
            continue; // head outside the recorded window
        };
        // Same entry => identical (final) issue cycle.
        if let (Some(hi), Some(ti)) = (head.last_issue(), e.last_issue()) {
            assert_eq!(hi, ti, "head {} and tail {} issued apart", head.id, e.id);
        }
        // Payload-RAM sequencing: tail executes after the head.
        if let (Some(hx), Some(tx)) = (head.exec_at, e.exec_at) {
            assert!(
                tx > hx,
                "tail {} exec {} not after head {} exec {}",
                e.id,
                tx,
                head.id,
                hx
            );
        }
        fused_pairs += 1;
    }
    assert!(fused_pairs > 50, "expected plenty of fused pairs: {fused_pairs}");
}

#[test]
fn replays_show_up_as_multiple_issues() {
    let entries = record("mcf", MachineConfig::base_32(), 4_000, 8_000);
    let replayed = entries.iter().filter(|e| e.issues.len() > 1).count();
    assert!(replayed > 0, "mcf must replay load dependents");
}

//! Pipeline-ordering invariants, checked through the timeline recorder:
//! for every committed micro-operation, stages advance monotonically
//! (fetch -> insert -> issue -> exec -> commit), the front-end delay is
//! exact, commits are in order, and fused MOP members issue together in
//! one entry with payload-RAM sequencing.
//!
//! Failures print the trailing event-trace window (via `mos-testutil`),
//! not just the offending timeline numbers.

use mopsched::core::WakeupStyle;
use mopsched::sim::MachineConfig;
use mopsched::workload::spec2000;
use mos_testutil::{run_traced_with_timeline, TracedRun};

fn record(bench: &str, cfg: MachineConfig, uops: usize, run: u64) -> TracedRun {
    let spec = spec2000::by_name(bench).expect("known benchmark");
    run_traced_with_timeline(cfg, spec.trace(42), run, 512, uops)
}

#[test]
fn stages_advance_monotonically() {
    for cfg in [
        MachineConfig::base_32(),
        MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
        MachineConfig::select_free_scoreboard_32(),
    ] {
        let front = cfg.front_delay();
        let exec_offset = u64::from(cfg.exec_offset);
        let run = record("parser", cfg, 2_000, 4_000);
        for e in &run.timelines {
            run.expect(e.inserted_at >= e.fetched_at + front, || {
                format!(
                    "uop {}: insert {} vs fetch {} (+{front})",
                    e.id, e.inserted_at, e.fetched_at
                )
            });
            if let Some(issue) = e.last_issue() {
                run.expect(issue >= e.inserted_at, || {
                    format!("uop {}: issued before insert", e.id)
                });
                if let Some(exec) = e.exec_at {
                    // Head executes at issue + offset; a MOP tail one later.
                    run.expect(exec >= issue + exec_offset, || {
                        format!(
                            "uop {}: exec {} before issue {} + {exec_offset}",
                            e.id, exec, issue
                        )
                    });
                }
            }
            if let Some(commit) = e.commit_at {
                run.expect(!e.wrong_path, || {
                    format!("wrong-path uop {} committed", e.id)
                });
                let exec = e.exec_at.expect("committed uops executed");
                run.expect(commit >= exec, || {
                    format!("uop {}: commit {} before exec {}", e.id, commit, exec)
                });
            }
        }
    }
}

#[test]
fn commits_are_in_program_order() {
    let run = record("gzip", MachineConfig::base_32(), 2_000, 4_000);
    let mut last: Option<(u64, u64)> = None;
    for e in run.timelines.iter().filter(|e| e.commit_at.is_some()) {
        let c = e.commit_at.expect("filtered");
        if let Some((pid, pc)) = last {
            run.expect(pid < e.id, || {
                format!("uop {} recorded after younger uop {}", e.id, pid)
            });
            run.expect(pc <= c, || {
                format!("uop {} committed at {} after uop {} at {}", e.id, c, pid, pc)
            });
        }
        last = Some((e.id, c));
    }
}

#[test]
fn fused_members_issue_together_and_sequence() {
    let run = record(
        "gzip",
        MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
        3_000,
        6_000,
    );
    let entries = &run.timelines;
    let mut fused_pairs = 0;
    for e in entries {
        let Some(head_id) = e.mop_head else { continue };
        if head_id == e.id {
            continue;
        }
        let Some(head) = entries.iter().find(|h| h.id == head_id) else {
            continue; // head outside the recorded window
        };
        // Same entry => identical (final) issue cycle.
        if let (Some(hi), Some(ti)) = (head.last_issue(), e.last_issue()) {
            run.expect(hi == ti, || {
                format!("head {} and tail {} issued apart ({hi} vs {ti})", head.id, e.id)
            });
        }
        // Payload-RAM sequencing: tail executes after the head.
        if let (Some(hx), Some(tx)) = (head.exec_at, e.exec_at) {
            run.expect(tx > hx, || {
                format!(
                    "tail {} exec {} not after head {} exec {}",
                    e.id, tx, head.id, hx
                )
            });
        }
        fused_pairs += 1;
    }
    assert!(fused_pairs > 50, "expected plenty of fused pairs: {fused_pairs}");
}

#[test]
fn replays_show_up_as_multiple_issues() {
    let run = record("mcf", MachineConfig::base_32(), 4_000, 8_000);
    let replayed = run.timelines.iter().filter(|e| e.issues.len() > 1).count();
    assert!(replayed > 0, "mcf must replay load dependents");
}

//! Guard rails on the paper's headline results, exercised through the
//! public facade at a reduced instruction budget. These encode the
//! *shape* claims the reproduction must preserve (EXPERIMENTS.md records
//! the full-scale numbers):
//!
//! 1. 2-cycle scheduling loses IPC, worst on gap (Figure 14);
//! 2. macro-op scheduling recovers most of the loss without queue
//!    contention, and matches/beats base under contention (Figures 14/15);
//! 3. select-free scheduling never beats base and scoreboard recovery is
//!    the weaker variant (Figure 16);
//! 4. grouping coverage sits in the paper's band and eon is lowest
//!    (Figure 13).

use mopsched::core::WakeupStyle;
use mopsched::sim::{MachineConfig, Simulator};
use mopsched::workload::spec2000;

const INSTS: u64 = 25_000;

fn ipc(bench: &str, cfg: MachineConfig) -> f64 {
    let spec = spec2000::by_name(bench).expect("known benchmark");
    Simulator::new(cfg, spec.trace(42)).run(INSTS).ipc()
}

#[test]
fn two_cycle_loses_and_gap_is_the_worst_case() {
    let gap_base = ipc("gap", MachineConfig::base_unrestricted());
    let gap_two = ipc("gap", MachineConfig::two_cycle_unrestricted());
    let gap_rel = gap_two / gap_base;
    assert!(gap_rel < 0.90, "gap must lose >10 % under 2-cycle: {gap_rel:.3}");

    let vortex_base = ipc("vortex", MachineConfig::base_unrestricted());
    let vortex_two = ipc("vortex", MachineConfig::two_cycle_unrestricted());
    let vortex_rel = vortex_two / vortex_base;
    assert!(
        vortex_rel > 0.96,
        "vortex barely suffers (paper: -1.3 %): {vortex_rel:.3}"
    );
    assert!(gap_rel < vortex_rel);
}

#[test]
fn macro_op_recovers_most_of_the_two_cycle_loss() {
    for bench in ["gap", "gzip", "parser"] {
        let base = ipc(bench, MachineConfig::base_unrestricted());
        let two = ipc(bench, MachineConfig::two_cycle_unrestricted());
        let mop = ipc(bench, MachineConfig::macro_op(WakeupStyle::WiredOr, None, 0));
        let recovered = (mop - two) / (base - two).max(1e-9);
        assert!(
            recovered > 0.5,
            "{bench}: MOP should recover >50 % of the loss (got {recovered:.2}; \
             base {base:.3}, 2c {two:.3}, mop {mop:.3})"
        );
    }
}

#[test]
fn contention_makes_macro_op_competitive_with_base() {
    // 32-entry queue: entry sharing closes the remaining gap (Figure 15).
    let mut wins = 0;
    let mut total_rel = 0.0;
    for bench in ["gap", "gzip", "mcf", "twolf"] {
        let base = ipc(bench, MachineConfig::base_32());
        let mop = ipc(bench, MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1));
        let rel = mop / base;
        total_rel += rel;
        if rel >= 1.0 {
            wins += 1;
        }
    }
    assert!(wins >= 2, "several benchmarks outperform base under contention");
    assert!(total_rel / 4.0 > 0.97, "mean {:.3}", total_rel / 4.0);
}

#[test]
fn select_free_ordering_matches_figure16() {
    for bench in ["gap", "twolf"] {
        let base = ipc(bench, MachineConfig::base_32());
        let sd = ipc(bench, MachineConfig::select_free_squash_dep_32());
        let sb = ipc(bench, MachineConfig::select_free_scoreboard_32());
        assert!(sd <= base * 1.02, "{bench}: squash-dep {sd:.3} vs base {base:.3}");
        assert!(sb <= sd * 1.02, "{bench}: scoreboard {sb:.3} vs squash-dep {sd:.3}");
    }
}

/// Calibration regression net: for every benchmark model, macro-op
/// scheduling must recover at least what 2-cycle scheduling loses (it is
/// built on the same pipelined logic plus fusion), and no scheduler may
/// produce absurd IPC.
#[test]
fn full_suite_ordering_guard() {
    for name in spec2000::names() {
        let base = ipc(name, MachineConfig::base_unrestricted());
        let two = ipc(name, MachineConfig::two_cycle_unrestricted());
        let mop = ipc(
            name,
            MachineConfig::macro_op(WakeupStyle::WiredOr, None, 0),
        );
        assert!(base > 0.05 && base < 4.0, "{name}: base {base:.3}");
        assert!(
            two <= base * 1.02,
            "{name}: 2-cycle {two:.3} cannot beat base {base:.3}"
        );
        assert!(
            mop >= two * 0.97,
            "{name}: macro-op {mop:.3} must not trail 2-cycle {two:.3}"
        );
    }
}

#[test]
fn grouping_band_and_eon_minimum() {
    let spec = |b: &str| {
        let s = spec2000::by_name(b).expect("known");
        Simulator::new(
            MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
            s.trace(42),
        )
        .run(INSTS)
    };
    let eon = spec("eon").grouped_frac();
    for b in ["gzip", "gap", "parser"] {
        let g = spec(b).grouped_frac();
        assert!(g > 0.3 && g < 0.65, "{b}: grouped {g:.2}");
        assert!(eon < g, "eon ({eon:.2}) is the paper's lowest-coverage benchmark");
    }
}

//! Cross-layer invariants of the metrics subsystem: interval snapshots
//! land exactly on cycle boundaries, the interval series and histograms
//! reconcile with the end-of-run [`SimStats`] totals, log₂ histogram
//! buckets split exactly at powers of two, per-worker histogram merges
//! are byte-identical for any `--jobs N`, and the `mossim report` JSON
//! document actually parses and carries the promised schema.

use mopsched::core::WakeupStyle;
use mopsched::experiments::runner::parallel_map;
use mopsched::metrics::{bucket_bounds, bucket_index, Hist};
use mopsched::sim::report::{HostProfile, RunMeta, RunReport};
use mopsched::sim::{MachineConfig, Simulator};
use mopsched::workload::{kernels, spec2000};
use mos_testutil::json;

/// One observed benchmark run with metrics on, wrapped into a report.
fn observed_run(interval: u64, insts: u64) -> RunReport {
    let trace = spec2000::by_name("gzip").unwrap().trace(42);
    let cfg = MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1);
    let mut sim = Simulator::new(cfg, trace);
    sim.enable_metrics(interval);
    sim.run(insts);
    RunReport::collect(
        &mut sim,
        RunMeta {
            bench: "gzip".into(),
            sched: "mop-wor".into(),
            insts,
            seed: 42,
            interval,
        },
        HostProfile::default(),
    )
}

#[test]
fn interval_rows_land_exactly_on_cycle_boundaries() {
    let interval = 512; // deliberately not the default
    let r = observed_run(interval, 5_000);
    let series = r.series.as_ref().expect("metrics enabled");
    assert_eq!(series.interval, interval);
    assert!(series.rows.len() >= 2, "run too short to test boundaries");
    for (i, row) in series.rows.iter().enumerate() {
        if i + 1 < series.rows.len() {
            assert_eq!(
                row.end_cycle,
                (i as u64 + 1) * interval,
                "interior snapshot {i} must land on an interval multiple"
            );
        } else {
            // The final row is the partial tail up to the last cycle.
            assert_eq!(row.end_cycle, r.stats.cycles);
            assert!(row.end_cycle > (i as u64) * interval);
        }
    }
}

#[test]
fn series_and_histograms_reconcile_with_totals() {
    let r = observed_run(512, 5_000);
    let s = &r.stats;
    let series = r.series.as_ref().expect("metrics enabled");
    assert_eq!(series.column_total("cycles"), Some(s.cycles));
    assert_eq!(series.column_total("committed"), Some(s.committed));
    assert_eq!(
        series.column_total("replayed_uops"),
        Some(s.queue.load_replay_uops)
    );
    assert_eq!(series.column_total("pointer_hits"), Some(s.pointer_hits));
    assert_eq!(
        series.column_total("pointer_evicts"),
        Some(s.pointers.1 + s.pointers.2)
    );
    assert_eq!(
        series.column_total("occupancy_integral"),
        Some(s.queue.occupancy_integral)
    );

    let occ = r.occupancy.as_ref().expect("queue metrics enabled");
    assert_eq!(occ.count(), s.queue.cycles);
    assert_eq!(occ.sum(), s.queue.occupancy_integral);
    let delay = r.wakeup_select_delay.as_ref().unwrap();
    assert_eq!(delay.count(), s.queue.issued_entries);
    assert_eq!(delay.sum(), series.column_total("delay_sum").unwrap());
}

#[test]
fn histogram_buckets_split_exactly_at_powers_of_two() {
    assert_eq!(bucket_index(0), 0);
    for i in 1..64usize {
        let lo = 1u64 << (i - 1);
        let hi = (1u64 << i) - 1;
        assert_eq!(bucket_index(lo), i, "2^{} is the low edge of bucket {i}", i - 1);
        assert_eq!(bucket_index(hi), i, "2^{i}-1 is the high edge of bucket {i}");
        assert_eq!(bucket_bounds(i), (lo, hi));
        if hi < u64::MAX {
            assert_eq!(bucket_index(hi + 1), i + 1, "2^{i} starts the next bucket");
        }
    }
    assert_eq!(bucket_index(u64::MAX), 64);
}

#[test]
fn per_worker_histogram_merge_is_byte_identical_for_any_job_count() {
    // One cheap simulation per kernel, each yielding an occupancy
    // histogram; merging the positional results must not depend on how
    // many workers computed them.
    let kernels = kernels::all();
    let merged_with = |jobs: usize| -> String {
        let hists: Vec<Hist> = parallel_map(&kernels, jobs, |k| {
            let mut sim = Simulator::new(MachineConfig::base_32(), k.interpreter());
            sim.enable_metrics(64);
            sim.run(u64::MAX);
            sim.queue_metrics().expect("metrics enabled").occupancy.clone()
        });
        let mut total = Hist::default();
        for h in &hists {
            total.merge(h);
        }
        total.to_json()
    };
    let serial = merged_with(1);
    for jobs in [2, 3, 8] {
        assert_eq!(
            merged_with(jobs),
            serial,
            "histogram fold must be byte-identical with {jobs} workers"
        );
    }
}

#[test]
fn report_json_parses_and_has_the_promised_schema() {
    let r = observed_run(512, 2_000);
    let doc = json::parse(&r.to_json()).expect("report JSON must parse");

    let meta = doc.get("meta").expect("meta");
    assert_eq!(meta.get("bench").unwrap().as_str(), Some("gzip"));
    assert_eq!(meta.get("sched").unwrap().as_str(), Some("mop-wor"));
    assert_eq!(meta.get("interval").unwrap().as_u64(), Some(512));

    let totals = doc.get("totals").expect("totals");
    assert_eq!(totals.get("cycles").unwrap().as_u64(), Some(r.stats.cycles));
    assert_eq!(
        totals.get("committed").unwrap().as_u64(),
        Some(r.stats.committed)
    );
    assert!(totals.get("ipc").unwrap().as_num().is_some());
    assert!(totals.get("events_dropped").unwrap().as_u64().is_some());
    let occ = totals.get("occupancy").expect("occupancy histogram");
    assert!(occ.get("buckets").unwrap().as_arr().is_some());

    let series = doc.get("series").expect("series");
    assert_eq!(series.get("interval").unwrap().as_u64(), Some(512));
    let cols = series.get("cols").unwrap().as_arr().unwrap();
    let rows = series.get("rows").unwrap().as_arr().unwrap();
    assert_eq!(rows.len(), r.series.as_ref().unwrap().rows.len());
    for row in rows {
        let vals = row.get("vals").unwrap().as_arr().unwrap();
        assert_eq!(vals.len(), cols.len(), "each row covers every column");
    }

    let profile = doc.get("profile").expect("profile");
    assert!(profile.get("cycles_per_second").unwrap().as_num().is_some());
}

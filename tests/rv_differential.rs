//! End-to-end differential validation of the RV32 frontend: every suite
//! program, run through every scheduler kind, must commit exactly the uop
//! stream the RV32 functional oracle predicts and reproduce the oracle's
//! final architectural state — plus the CPI-stack shape claim the paper's
//! story rests on (the 2-cycle loop pays a sched_loop tax that macro-op
//! scheduling removes).

use mopsched::core::SlotCause;
use mopsched::rv::{self, suite};
use mopsched::sim::{CpiStack, Simulator};

const MAX_STEPS: usize = 10_000_000;

#[test]
fn every_suite_program_matches_the_oracle_under_every_scheduler() {
    for p in &suite::PROGRAMS {
        let prog = p.assemble();
        for sched in rv::SCHED_KINDS {
            let cfg = rv::config_for(sched).expect("known scheduler");
            let report = rv::run_differential(&prog, sched, cfg, MAX_STEPS)
                .unwrap_or_else(|e| panic!("{}/{sched}: {e}", p.name));
            assert!(
                report.rv_retired > 0 && report.uops_committed >= report.rv_retired,
                "{}/{sched}: retired {} rv insts but committed {} uops",
                p.name,
                report.rv_retired,
                report.uops_committed
            );
        }
    }
}

#[test]
fn suite_expectations_hold_when_replayed_through_the_pipeline() {
    // run_differential already replays commits through a fresh RvState and
    // compares against the oracle; here we additionally pin the documented
    // per-program results so a semantics bug in *both* paths cannot hide.
    for p in &suite::PROGRAMS {
        let prog = p.assemble();
        let mut interp = rv::RvInterp::new(&prog);
        interp.run_collect(MAX_STEPS);
        assert!(interp.stopped_cleanly(), "{}: oracle did not halt", p.name);
        for &(reg, want) in p.expect {
            assert_eq!(interp.state().reg(reg), want, "{}: x{reg}", p.name);
        }
    }
}

fn sched_loop_share(prog: &rv::RvProgram, sched: &str) -> f64 {
    let cfg = rv::config_for(sched).expect("known scheduler");
    let width = cfg.sched.issue_width as u64;
    let trace = rv::RvTraceSource::new(prog).expect("lowers");
    let mut sim = Simulator::new(cfg, trace);
    sim.enable_slot_accounting();
    let stats = sim.run(MAX_STEPS as u64);
    let stack = CpiStack::from_stats(&prog.name, sched, width, &stats);
    stack.check_conservation().expect("slots conserve");
    stack.share(SlotCause::SchedLoop)
}

/// The acceptance-criterion ordering: on the dependent-chain program the
/// 2-cycle scheduler's sched_loop share sits strictly above both the
/// atomic baseline and macro-op scheduling (which restores back-to-back
/// issue for grouped pairs).
#[test]
fn two_cycle_sched_loop_share_exceeds_base_and_mop_on_sum_loop() {
    let prog = suite::by_name("sum_loop").expect("suite program").assemble();
    let base = sched_loop_share(&prog, "base");
    let two = sched_loop_share(&prog, "2cycle");
    let mop = sched_loop_share(&prog, "mop-wor");
    assert!(
        two > base,
        "2cycle sched_loop share must exceed base: {two:.4} vs {base:.4}"
    );
    assert!(
        two > mop,
        "2cycle sched_loop share must exceed mop-wor: {two:.4} vs {mop:.4}"
    );
}

/// Differential runs are deterministic: same program, same scheduler, same
/// timing, twice in a row.
#[test]
fn rv_runs_are_deterministic() {
    let prog = suite::by_name("collatz").expect("suite program").assemble();
    let cfg = rv::config_for("mop-wor").expect("known scheduler");
    let a = rv::run_differential(&prog, "mop-wor", cfg.clone(), MAX_STEPS).expect("run a");
    let b = rv::run_differential(&prog, "mop-wor", cfg, MAX_STEPS).expect("run b");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.uops_committed, b.uops_committed);
    assert!((a.fusion_rate - b.fusion_rate).abs() < 1e-12);
}

/// A flat binary round-trips: encode a suite program, decode it back, and
/// the decoded form passes the same differential check.
#[test]
fn encoded_binaries_pass_the_differential_check() {
    let prog = suite::by_name("gcd").expect("suite program").assemble();
    let bytes = rv::encode_program(&prog);
    let decoded = rv::decode_flat("gcd-bin", &bytes).expect("decodes");
    let cfg = rv::config_for("mop-2src").expect("known scheduler");
    let report =
        rv::run_differential(&decoded, "mop-2src", cfg, MAX_STEPS).expect("differential");
    assert!(report.rv_retired > 0);
}

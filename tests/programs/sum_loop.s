# sum_loop: sum the integers 1..=100 into a0 (expected 5050).
#
# The loop body is a tight dependent ALU chain — the MOP-friendliest shape
# there is, and the program whose CPI stack tells the paper's sched_loop
# story (base < 2cycle, mop-wor recovers most of the gap).
_start:
    li   t0, 100        # n
    li   a0, 0          # sum
loop:
    add  a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    ebreak

# gcd: sum of gcd(i, 1071) for i = 1..=64 via Euclid's remainder loop,
# into a0 (expected 354).
#
# Exercises the RV32M divider (rem) inside data-dependent control flow.
_start:
    li   s0, 64         # i
    li   s1, 0          # accumulator
outer:
    mv   a0, s0
    li   a1, 1071
euclid:
    beqz a1, got
    rem  t0, a0, a1
    mv   a0, a1
    mv   a1, t0
    j    euclid
got:
    add  s1, s1, a0
    addi s0, s0, -1
    bnez s0, outer
    mv   a0, s1
    ebreak

# bubble_sort: sort 32 descending words at 0x4000 ascending, then
# checksum sum(a[i] * i) into a0 (expected 26784).
#
# Nested loops over word-sized memory with compare-and-swap traffic, plus
# a multiply in the checksum.
_start:
    li   t0, 0x4000     # array base
    li   t1, 0          # i
    li   t2, 32         # n
    li   t3, 64
init:                   # a[i] = 64 - i  (descending 64..33)
    slli t4, t1, 2
    add  t4, t0, t4
    sub  t5, t3, t1
    sw   t5, 0(t4)
    addi t1, t1, 1
    bne  t1, t2, init

    li   s1, 0          # pass
pass:
    li   t1, 0          # j
inner:
    slli t4, t1, 2
    add  t4, t0, t4
    lw   t5, 0(t4)
    lw   t6, 4(t4)
    bge  t6, t5, noswap
    sw   t6, 0(t4)
    sw   t5, 4(t4)
noswap:
    addi t1, t1, 1
    li   t3, 31
    bne  t1, t3, inner
    addi s1, s1, 1
    bne  s1, t3, pass

    li   a0, 0          # checksum: sum a[i] * i
    li   t1, 0
chk:
    slli t4, t1, 2
    add  t4, t0, t4
    lw   t5, 0(t4)
    mul  t5, t5, t1
    add  a0, a0, t5
    addi t1, t1, 1
    bne  t1, t2, chk
    ebreak

# memcpy: build src[i] = i & 0xff for 256 bytes at 0x2000, byte-copy it
# to 0x3000, then checksum the destination into a0 (expected 32640).
#
# Streaming byte loads/stores with address arithmetic — the memory-kernel
# shape of the suite.
_start:
    li   t0, 0x2000     # src base
    li   t1, 0          # i
    li   t2, 256        # len
init:
    add  t4, t0, t1
    sb   t1, 0(t4)
    addi t1, t1, 1
    bne  t1, t2, init

    li   t3, 0x3000     # dst base
    li   t1, 0
copy:
    add  t4, t0, t1
    lbu  t5, 0(t4)
    add  t4, t3, t1
    sb   t5, 0(t4)
    addi t1, t1, 1
    bne  t1, t2, copy

    li   a0, 0          # checksum dst
    li   t1, 0
sum:
    add  t4, t3, t1
    lbu  t5, 0(t4)
    add  a0, a0, t5
    addi t1, t1, 1
    bne  t1, t2, sum
    ebreak

# collatz: total Collatz steps over seeds 1..=40, into a0 (expected 709).
#
# Hard-to-predict data-dependent branching — the branchy stress of the
# suite.
_start:
    li   s0, 40         # seed
    li   s1, 0          # total steps
seed:
    mv   t0, s0
run:
    li   t1, 1
    beq  t0, t1, next
    andi t2, t0, 1
    beqz t2, even
    slli t3, t0, 1      # odd: n = 3n + 1
    add  t0, t3, t0
    addi t0, t0, 1
    j    step
even:
    srli t0, t0, 1      # even: n = n / 2
step:
    addi s1, s1, 1
    j    run
next:
    addi s0, s0, -1
    bnez s0, seed
    mv   a0, s1
    ebreak

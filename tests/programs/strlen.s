# strlen: length of a NUL-terminated string preloaded at 0x1000
# (expected a0 = 19).
#
# A pointer-chase of byte loads feeding a conditional exit — the
# load-to-branch dependence pattern.
.asciz 0x1000, "macro-op scheduling"

_start:
    li   t0, 0x1000
    li   a0, 0
loop:
    add  t1, t0, a0
    lbu  t2, 0(t1)
    beqz t2, done
    addi a0, a0, 1
    j    loop
done:
    ebreak

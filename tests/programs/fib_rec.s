# fib_rec: naive recursive Fibonacci, fib(12) = 144 in a0.
#
# Exercises call/ret (RAS prediction through the lowered Call/Ret uops),
# a real downward-growing stack, and load/store round-trips of saved
# registers across ~465 dynamic calls.
_start:
    li   a0, 12
    call fib
    ebreak

fib:                    # a0 = n -> a0 = fib(n)
    li   t0, 2
    blt  a0, t0, base   # n < 2: fib(n) = n
    addi sp, sp, -8
    sw   ra, 4(sp)
    sw   a0, 0(sp)
    addi a0, a0, -1
    call fib            # fib(n-1)
    lw   t1, 0(sp)      # reload n
    sw   a0, 0(sp)      # save fib(n-1)
    addi a0, t1, -2
    call fib            # fib(n-2)
    lw   t1, 0(sp)      # fib(n-1)
    add  a0, a0, t1
    lw   ra, 4(sp)
    addi sp, sp, 8
    ret
base:
    ret

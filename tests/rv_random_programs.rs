//! Property-based differential fuzzing of the RV32 frontend: randomly
//! generated, guaranteed-terminating RV32I(+M) programs must survive the
//! full differential check — identical committed uop traces and identical
//! final architectural state between the pipeline and the functional
//! oracle — under every scheduler kind.
//!
//! The generator mirrors `tests/random_programs.rs` for the native ISA:
//! a counted loop wraps a random body of ALU/immediate/memory/multiply
//! work plus bounded forward skip-branches, so every program halts.

use proptest::prelude::*;

use mopsched::rv::{self, RvInst, RvOp, RvProgram};

/// One random instruction inside the loop body.
#[derive(Debug, Clone)]
enum BodyOp {
    Alu { op: u8, rd: u8, rs1: u8, rs2: u8 },
    AluImm { op: u8, rd: u8, rs1: u8, imm: i32 },
    Load { op: u8, rd: u8, off: i32 },
    Store { op: u8, rs2: u8, off: i32 },
    Mul { op: u8, rd: u8, rs1: u8, rs2: u8 },
    Skip { op: u8, rs1: u8, dist: u8 },
    Lui { rd: u8, imm: i32 },
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    // x5..x12 (t0..t2, s0/fp, s1, a0..a2) participate; x28 holds the
    // memory base and x29 the trip counter, neither ever written by the
    // body.
    let r = 5u8..13;
    prop_oneof![
        (0u8..8, r.clone(), r.clone(), r.clone())
            .prop_map(|(op, rd, rs1, rs2)| BodyOp::Alu { op, rd, rs1, rs2 }),
        (0u8..6, r.clone(), r.clone(), 0i32..64)
            .prop_map(|(op, rd, rs1, imm)| BodyOp::AluImm { op, rd, rs1, imm }),
        (0u8..3, r.clone(), 0i32..16).prop_map(|(op, rd, off)| BodyOp::Load {
            op,
            rd,
            off: off * 4
        }),
        (0u8..3, r.clone(), 0i32..16).prop_map(|(op, rs2, off)| BodyOp::Store {
            op,
            rs2,
            off: off * 4
        }),
        (0u8..4, r.clone(), r.clone(), r.clone())
            .prop_map(|(op, rd, rs1, rs2)| BodyOp::Mul { op, rd, rs1, rs2 }),
        (0u8..4, r.clone(), 1u8..4).prop_map(|(op, rs1, dist)| BodyOp::Skip { op, rs1, dist }),
        (r, 0i32..256).prop_map(|(rd, imm)| BodyOp::Lui { rd, imm }),
    ]
}

/// A random, always-terminating RV32 program: seed registers, a counted
/// loop around the body (skip branches only jump forward inside it), and
/// an `ebreak`.
fn program_strategy() -> impl Strategy<Value = RvProgram> {
    (2u32..16, prop::collection::vec(body_op(), 1..20)).prop_map(|(trips, body)| {
        let alu3 = [
            RvOp::Add,
            RvOp::Sub,
            RvOp::And,
            RvOp::Or,
            RvOp::Xor,
            RvOp::Slt,
            RvOp::Sltu,
            RvOp::Sll,
        ];
        let alui = [
            RvOp::Addi,
            RvOp::Andi,
            RvOp::Ori,
            RvOp::Xori,
            RvOp::Slti,
            RvOp::Srli,
        ];
        let loads = [RvOp::Lw, RvOp::Lh, RvOp::Lbu];
        let stores = [RvOp::Sw, RvOp::Sh, RvOp::Sb];
        let muls = [RvOp::Mul, RvOp::Mulhu, RvOp::Div, RvOp::Rem];
        let skips = [RvOp::Beq, RvOp::Bne, RvOp::Blt, RvOp::Bgeu];

        let mut p = RvProgram::new("rv-random");
        p.insts.push(RvInst::i(RvOp::Addi, 29, 0, trips as i32)); // counter
        p.insts.push(RvInst::u(RvOp::Lui, 28, 2)); // mem base 0x2000
        for k in 5..13u8 {
            p.insts.push(RvInst::i(RvOp::Addi, k, 0, i32::from(k)));
        }
        let top = p.insts.len() as u32;
        let body_start = top;
        let body_len = body.len() as u32;
        for (i, op) in body.iter().enumerate() {
            let inst = match *op {
                BodyOp::Alu { op, rd, rs1, rs2 } => {
                    RvInst::r(alu3[op as usize % alu3.len()], rd, rs1, rs2)
                }
                BodyOp::AluImm { op, rd, rs1, imm } => {
                    RvInst::i(alui[op as usize % alui.len()], rd, rs1, imm)
                }
                BodyOp::Load { op, rd, off } => {
                    RvInst::load(loads[op as usize % loads.len()], rd, off, 28)
                }
                BodyOp::Store { op, rs2, off } => {
                    RvInst::store(stores[op as usize % stores.len()], rs2, off, 28)
                }
                BodyOp::Mul { op, rd, rs1, rs2 } => {
                    RvInst::r(muls[op as usize % muls.len()], rd, rs1, rs2)
                }
                BodyOp::Skip { op, rs1, dist } => {
                    let here = body_start + i as u32;
                    let target = (here + 1 + u32::from(dist)).min(body_start + body_len);
                    RvInst::branch(
                        skips[op as usize % skips.len()],
                        rs1,
                        0,
                        (target as i32 - here as i32) * 4,
                    )
                }
                BodyOp::Lui { rd, imm } => RvInst::u(RvOp::Lui, rd, imm),
            };
            p.insts.push(inst);
        }
        // Decrement and loop.
        let here = p.insts.len() as u32 + 1;
        p.insts.push(RvInst::i(RvOp::Addi, 29, 29, -1));
        p.insts
            .push(RvInst::branch(RvOp::Bne, 29, 0, (top as i32 - here as i32) * 4));
        p.insts.push(RvInst::sys(RvOp::Ebreak));
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    /// The full differential check (trace equality + state replay) passes
    /// on random programs under every scheduler kind.
    #[test]
    fn random_programs_pass_the_differential_check(prog in program_strategy()) {
        for sched in rv::SCHED_KINDS {
            let cfg = rv::config_for(sched).expect("known scheduler");
            rv::run_differential(&prog, sched, cfg, 2_000_000)
                .unwrap_or_else(|e| panic!("{sched}: {e}"));
        }
    }

    /// Random programs survive an encode→decode round-trip and the decoded
    /// form still passes the differential check.
    #[test]
    fn random_programs_roundtrip_through_the_encoder(prog in program_strategy()) {
        let bytes = rv::encode_program(&prog);
        let decoded = rv::decode_flat("rv-random-bin", &bytes).expect("decodes");
        prop_assert_eq!(decoded.insts.len(), prog.insts.len());
        let cfg = rv::config_for("mop-wor").expect("known scheduler");
        rv::run_differential(&decoded, "mop-wor", cfg, 2_000_000)
            .unwrap_or_else(|e| panic!("decoded: {e}"));
    }
}

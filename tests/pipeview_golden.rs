//! Golden-file test for the Kanata pipeline-view export.
//!
//! The fixture was produced by the CLI itself:
//!
//! ```text
//! mossim pipeview --kernel sum_loop --sched mop-wor --uops 24 \
//!     --out tests/golden/sum_loop_mop_wor.kanata
//! ```
//!
//! so this test pins the whole chain — event stream → timeline observer
//! → Kanata renderer — to a known-good trace. A diff here means either
//! the simulated schedule of `sum_loop` changed (a timing regression) or
//! the export format drifted; regenerate the fixture with the command
//! above only after deciding the new behaviour is intended.

use mopsched::core::WakeupStyle;
use mopsched::sim::{MachineConfig, Simulator};
use mopsched::workload::kernels;

const GOLDEN: &str = include_str!("golden/sum_loop_mop_wor.kanata");

#[test]
fn kanata_export_matches_the_golden_trace() {
    let k = kernels::by_name("sum_loop").expect("fixture kernel");
    let cfg = MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1);
    let mut sim = Simulator::new(cfg, k.interpreter());
    sim.enable_timeline(24);
    sim.run(u64::MAX);
    let got = sim
        .timeline()
        .expect("timeline enabled")
        .to_kanata(&k.image().program);
    assert_eq!(
        got, GOLDEN,
        "Kanata export diverged from tests/golden/sum_loop_mop_wor.kanata; \
         see the module docs for how to regenerate it"
    );
}

#[test]
fn golden_trace_is_well_formed_kanata() {
    let mut lines = GOLDEN.lines();
    assert_eq!(lines.next(), Some("Kanata\t0004"));
    assert!(lines.next().is_some_and(|l| l.starts_with("C=\t")));
    let mut open = std::collections::HashSet::new();
    let mut retired = 0u32;
    for line in lines {
        let mut f = line.split('\t');
        match f.next() {
            Some("I") => {
                let id = f.next().unwrap();
                assert!(open.insert(id.to_owned()), "uop {id} declared twice");
            }
            Some("R") => {
                let id = f.next().unwrap();
                assert!(open.contains(id), "retired uop {id} never declared");
                retired += 1;
            }
            Some("S") | Some("E") => {
                let id = f.next().unwrap();
                assert!(open.contains(id), "stage for undeclared uop {id}");
                let (_cycle, stage) = (f.next().unwrap(), f.next().unwrap());
                assert!(
                    matches!(stage, "F" | "Q" | "X" | "R" | "C"),
                    "unknown stage {stage}"
                );
            }
            Some("L") | Some("C") => {} // labels and cycle advances
            other => panic!("unknown Kanata record {other:?} in {line:?}"),
        }
    }
    assert_eq!(retired, 24, "every recorded uop must retire");
}

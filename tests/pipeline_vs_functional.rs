//! Cross-crate integration: the timing pipeline must commit exactly the
//! instruction stream the functional machine executes — for every kernel
//! and every scheduler — and must be deterministic. The same contract
//! holds on the RV32 frontend, where the functional machine is the RV32
//! interpreter behind `RvTraceSource`.

use mopsched::asm::{assemble, Interpreter};
use mopsched::core::WakeupStyle;
use mopsched::isa::InstClass;
use mopsched::rv;
use mopsched::sim::{MachineConfig, Simulator};
use mopsched::workload::kernels;

fn all_schedulers() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("base", MachineConfig::base_32()),
        ("two-cycle", MachineConfig::two_cycle_32()),
        ("mop-2src", MachineConfig::macro_op(WakeupStyle::CamTwoSource, Some(32), 0)),
        ("mop-wor+1", MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1)),
        ("mop-wor+2", MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 2)),
        ("sf-squash", MachineConfig::select_free_squash_dep_32()),
        ("sf-scoreboard", MachineConfig::select_free_scoreboard_32()),
    ]
}

fn functional_commits(image: &mopsched::asm::Image) -> u64 {
    let (trace, _) = Interpreter::new(image).run_collect(usize::MAX);
    trace
        .iter()
        .filter(|d| image.program.inst(d.sidx).expect("valid").class() != InstClass::Nop)
        .count() as u64
}

#[test]
fn every_kernel_commits_identically_under_every_scheduler() {
    for kernel in kernels::all() {
        let image = kernel.image();
        let expected = functional_commits(&image);
        for (label, cfg) in all_schedulers() {
            let stats = Simulator::new(cfg, Interpreter::new(&image)).run(u64::MAX);
            assert_eq!(
                stats.committed, expected,
                "{}/{label}: committed {} != functional {}",
                kernel.name, stats.committed, expected
            );
        }
    }
}

/// The same commit-exactness contract on the RV32 path: the pipeline must
/// commit exactly the uop stream the RV32 oracle's lowering expands to,
/// for every suite program and every scheduler (this file's scheduler
/// list, which includes off-preset variants like `mop-wor+2`).
#[test]
fn every_rv_program_commits_identically_under_every_scheduler() {
    for p in &rv::suite::PROGRAMS {
        let prog = p.assemble();
        let lowered = rv::lower(&prog).expect("suite program lowers");
        let mut interp = rv::RvInterp::new(&prog);
        let steps = interp.run_collect(10_000_000);
        assert!(interp.stopped_cleanly(), "{}: oracle must halt", p.name);
        let expected: u64 = steps
            .iter()
            .map(|s| {
                lowered
                    .bundle(s.idx)
                    .filter(|&u| {
                        let class = lowered.program.inst(u).expect("valid uop").class();
                        class != InstClass::Nop
                    })
                    .count() as u64
            })
            .sum();
        for (label, cfg) in all_schedulers() {
            let trace = rv::RvTraceSource::new(&prog).expect("lowers");
            let stats = Simulator::new(cfg, trace).run(u64::MAX);
            assert_eq!(
                stats.committed, expected,
                "{}/{label}: committed {} != functional {}",
                p.name, stats.committed, expected
            );
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let image = kernels::DOT_PRODUCT.image();
    let cfg = MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1);
    let a = Simulator::new(cfg.clone(), Interpreter::new(&image)).run(u64::MAX);
    let b = Simulator::new(cfg, Interpreter::new(&image)).run(u64::MAX);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.roles, b.roles);
    assert_eq!(a.mop_entries_issued, b.mop_entries_issued);
}

#[test]
fn fused_pairs_do_not_change_architectural_behaviour() {
    // A dense chain of groupable single-cycle ops around memory and
    // branches: macro-op mode must commit the same count and the kernel's
    // functional result must hold regardless.
    let src = r"
        li   r1, 200
        li   r2, 0
        li   r3, 0x9000
    loop:
        addi r4, r1, 3
        sub  r5, r4, r1
        st   r5, 0(r3)
        ld   r6, 0(r3)
        add  r2, r2, r6
        addi r3, r3, 8
        addi r1, r1, -1
        bnez r1, loop
        mov  r10, r2
        halt";
    let image = assemble(src).expect("valid kernel");
    let (_, state) = Interpreter::new(&image).run_collect(1_000_000);
    assert_eq!(state.int_reg(mopsched::isa::Reg::int(10)), 600, "3 * 200");

    let expected = functional_commits(&image);
    let mop = Simulator::new(
        MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 0),
        Interpreter::new(&image),
    )
    .run(u64::MAX);
    assert_eq!(mop.committed, expected);
    assert!(
        mop.grouped_frac() > 0.3,
        "chain kernel should group heavily: {:.2}",
        mop.grouped_frac()
    );
}

#[test]
fn tiny_and_degenerate_programs_drain_cleanly() {
    for src in [
        "halt",
        "nop\nhalt",
        "li r1, 1\nhalt",
        "j end\nnop\nend: halt",
        // Loop executed zero times.
        "li r1, 0\nbeqz r1, end\nnop\nend: halt",
    ] {
        let image = assemble(src).expect("valid");
        for (label, cfg) in all_schedulers() {
            let expected = functional_commits(&image);
            let stats = Simulator::new(cfg, Interpreter::new(&image)).run(u64::MAX);
            assert_eq!(stats.committed, expected, "{label} on {src:?}");
        }
    }
}

//! Ledger invariants: key stability, save→load→diff round trips, and a
//! golden pin of the diff renderer's output.

use std::path::PathBuf;

use mopsched::core::{SlotCause, SlotCounts};
use mopsched::ledger::{
    self, diff, CpiSection, Ledger, Preimage, RunIdent, RunRecord, SCHEMA_VERSION,
};
use mopsched::sim::{MachineConfig, SimStats};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mos_roundtrip_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fully deterministic record (fixed provenance) for golden pinning.
fn pinned_record(key_fill: &str, cycles: u64, host: f64) -> RunRecord {
    let stats = SimStats {
        cycles,
        committed: 9 * cycles / 10,
        fetched: cycles + 200,
        branches: 100,
        mispredicts: 7,
        loads: 220,
        stores: 110,
        ..SimStats::default()
    };
    let mut slots = SlotCounts::default();
    slots.add(SlotCause::Useful, stats.committed);
    slots.add(SlotCause::SchedLoop, cycles / 10);
    slots.add(SlotCause::Drained, 4 * cycles - stats.committed - cycles / 10);
    RunRecord {
        schema: SCHEMA_VERSION,
        key: key_fill.repeat(32),
        kind: "run".into(),
        bench: "gzip".into(),
        source: "bench".into(),
        sched: "mop-wor".into(),
        insts: 1000,
        seed: 42,
        git_rev: "abc1234".into(),
        unix_time: 1_786_000_000,
        host_cycles_per_sec: host,
        cached: false,
        sched_kinds: Vec::new(),
        totals: RunRecord::totals_from_stats(&stats),
        cpi: Some(CpiSection {
            issue_width: 4,
            slots: SlotCause::ALL
                .iter()
                .map(|&c| (c.name().to_string(), slots.get(c)))
                .collect(),
        }),
        report: None,
    }
}

#[test]
fn run_keys_are_stable_under_field_reordering() {
    // Same fields pushed in two different orders hash identically.
    let mut forward = Preimage::new();
    forward.push("bench", "gzip");
    forward.push("sched", "mop-wor");
    forward.push("insts", 100_000u64);
    forward.push("seed", 42u64);
    let mut shuffled = Preimage::new();
    shuffled.push("seed", 42u64);
    shuffled.push("insts", 100_000u64);
    shuffled.push("sched", "mop-wor");
    shuffled.push("bench", "gzip");
    assert_eq!(forward.key(), shuffled.key());

    // And the full run_key is a pure function of its inputs.
    let ident = RunIdent {
        kind: "run",
        bench: "gzip",
        source: "bench",
        sched: "mop-wor",
        insts: 100_000,
        seed: 42,
        program_sha: "-",
        git_rev: "abc1234",
    };
    let cfg = MachineConfig::base_32();
    assert_eq!(
        ledger::run_key(&ident, Some(&cfg)),
        ledger::run_key(&ident, Some(&cfg))
    );
}

#[test]
fn save_load_diff_round_trip_is_sim_identical() {
    let store = Ledger::open(temp_root("sld"));
    let rec = pinned_record("ab", 1000, 650_000.0);
    store.save(&rec).unwrap();
    store.save(&rec).unwrap();

    let a = store.load(&store.resolve("latest-1").unwrap()).unwrap();
    let b = store.load(&store.resolve("latest").unwrap()).unwrap();
    assert_eq!(a, rec, "loaded record equals the saved one");
    assert_eq!(a.to_json(), rec.to_json(), "byte-stable serialization");

    let outcome = diff(&a, &b, ledger::HOST_NOISE_BAND_PCT);
    assert_eq!(outcome.sim_deltas, 0, "same key ⇒ zero sim-side deltas");
    assert!(outcome.host_within_noise);
    assert!(outcome.markdown.contains("Verdict: sim-identical"));
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn diffing_distinct_runs_reports_real_deltas() {
    let a = pinned_record("ab", 1000, 650_000.0);
    let b = pinned_record("cd", 1200, 660_000.0);
    let outcome = diff(&a, &b, ledger::HOST_NOISE_BAND_PCT);
    assert!(outcome.sim_deltas > 0);
    assert!(outcome.markdown.contains("real sim-side delta"));
}

#[test]
fn diff_output_matches_the_golden_pin() {
    // Two hand-built records with fixed provenance: the rendered diff is
    // fully deterministic, so any change to the renderer shows up as a
    // golden mismatch here (regenerate with UPDATE_GOLDEN=1).
    let a = pinned_record("ab", 1000, 650_000.0);
    let b = pinned_record("cd", 1200, 660_000.0);
    let got = diff(&a, &b, ledger::HOST_NOISE_BAND_PCT).markdown;

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/ledger_diff.md");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        got, want,
        "ledger diff output changed; rerun with UPDATE_GOLDEN=1 to re-pin"
    );
}

//! Property-based integration tests: randomly generated (but guaranteed-
//! terminating) programs must run identically through the functional
//! machine and every timing-scheduler configuration — no deadlocks, no
//! lost or duplicated commits, regardless of how macro-ops were fused,
//! replayed or squashed along the way.

use proptest::prelude::*;

use mopsched::asm::{Image, Interpreter};
use mopsched::core::WakeupStyle;
use mopsched::isa::{InstClass, Opcode, Program, Reg, StaticInst};
use mopsched::sim::MachineConfig;
use mos_testutil::run_traced;

/// One random instruction inside a loop body.
#[derive(Debug, Clone)]
enum BodyOp {
    Alu { op: u8, dst: u8, a: u8, b: u8 },
    AluImm { op: u8, dst: u8, a: u8, imm: i64 },
    Load { dst: u8, base: u8, off: i64 },
    Store { val: u8, base: u8, off: i64 },
    Mul { dst: u8, a: u8, b: u8 },
    Skip { cond: u8, dist: u8 },
    Nop,
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    // Registers r1..r8 participate; r20 is the memory base.
    let r = 1u8..9;
    prop_oneof![
        (0u8..5, r.clone(), r.clone(), r.clone())
            .prop_map(|(op, dst, a, b)| BodyOp::Alu { op, dst, a, b }),
        (0u8..4, r.clone(), r.clone(), 1i64..32)
            .prop_map(|(op, dst, a, imm)| BodyOp::AluImm { op, dst, a, imm }),
        (r.clone(), 0i64..16).prop_map(|(dst, off)| BodyOp::Load {
            dst,
            base: 20,
            off: off * 8
        }),
        (r.clone(), 0i64..16).prop_map(|(val, off)| BodyOp::Store {
            val,
            base: 20,
            off: off * 8
        }),
        (r.clone(), r.clone(), r.clone()).prop_map(|(dst, a, b)| BodyOp::Mul { dst, a, b }),
        (r, 1u8..4).prop_map(|(cond, dist)| BodyOp::Skip { cond, dist }),
        Just(BodyOp::Nop),
    ]
}

/// A random, always-terminating program: a counted loop around a random
/// body (skip branches only jump forward inside the body).
fn program_strategy() -> impl Strategy<Value = Image> {
    (2u32..20, prop::collection::vec(body_op(), 1..24)).prop_map(|(trips, body)| {
        let mut p = Program::new("random");
        let alu3 = [Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or, Opcode::Xor];
        let alui = [Opcode::Addi, Opcode::Subi, Opcode::Andi, Opcode::Slli];
        p.push(StaticInst::li(Reg::int(9), i64::from(trips))); // counter
        p.push(StaticInst::li(Reg::int(20), 0x8000)); // memory base
        for k in 1..9u8 {
            p.push(StaticInst::li(Reg::int(k), i64::from(k)));
        }
        let top = p.len() as u32;
        let body_start = top;
        let body_len = body.len() as u32;
        for (i, op) in body.iter().enumerate() {
            match *op {
                BodyOp::Alu { op, dst, a, b } => {
                    p.push(StaticInst::alu(
                        alu3[op as usize % alu3.len()],
                        Reg::int(dst),
                        Reg::int(a),
                        Reg::int(b),
                    ));
                }
                BodyOp::AluImm { op, dst, a, imm } => {
                    p.push(StaticInst::alui(
                        alui[op as usize % alui.len()],
                        Reg::int(dst),
                        Reg::int(a),
                        imm,
                    ));
                }
                BodyOp::Load { dst, base, off } => {
                    p.push(StaticInst::load(Reg::int(dst), off, Reg::int(base)));
                }
                BodyOp::Store { val, base, off } => {
                    p.push(StaticInst::store(Reg::int(val), off, Reg::int(base)));
                }
                BodyOp::Mul { dst, a, b } => {
                    p.push(StaticInst::alu(
                        Opcode::Mul,
                        Reg::int(dst),
                        Reg::int(a),
                        Reg::int(b),
                    ));
                }
                BodyOp::Skip { cond, dist } => {
                    let here = body_start + i as u32;
                    let target = (here + 1 + u32::from(dist)).min(body_start + body_len);
                    p.push(StaticInst::branch(Opcode::Bnez, Reg::int(cond), target));
                }
                BodyOp::Nop => {
                    p.push(StaticInst::nop());
                }
            }
        }
        // Decrement and loop.
        p.push(StaticInst::addi(Reg::int(9), Reg::int(9), -1));
        p.push(StaticInst::branch(Opcode::Bnez, Reg::int(9), top));
        p.push(StaticInst::halt());
        p.validate().expect("generated program is structurally valid");
        Image {
            program: p,
            data: Vec::new(),
        }
    })
}

fn functional_commits(image: &Image) -> (u64, i64) {
    let mut interp = Interpreter::new(image);
    let n = interp
        .by_ref()
        .filter(|d| image.program.inst(d.sidx).expect("valid").class() != InstClass::Nop)
        .count() as u64;
    assert!(interp.stopped_cleanly(), "random program must halt");
    (n, interp.state().int_reg(Reg::int(1)))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    /// The timing pipeline never deadlocks, loses or duplicates commits on
    /// random programs, under every scheduler.
    #[test]
    fn schedulers_commit_the_functional_stream(image in program_strategy()) {
        let (expected, _) = functional_commits(&image);
        for (name, cfg) in [
            ("base", MachineConfig::base_32()),
            ("2cycle", MachineConfig::two_cycle_32()),
            ("mop-2src", MachineConfig::macro_op(WakeupStyle::CamTwoSource, Some(32), 1)),
            ("mop-wor-16", MachineConfig::macro_op(WakeupStyle::WiredOr, Some(16), 0)),
            ("sf-scoreboard", MachineConfig::select_free_scoreboard_32()),
        ] {
            // A mismatch fails with the trailing event window, not a bare
            // stats diff: the excerpt shows where the machine wedged.
            run_traced(cfg, Interpreter::new(&image), u64::MAX, 256)
                .assert_committed(expected, name);
        }
    }

    /// Macro-op chains (future-work sizes) are deadlock-free too: the
    /// chain-safety rule in formation must hold for arbitrary dataflow.
    #[test]
    fn mop_chains_never_deadlock(image in program_strategy()) {
        let (expected, _) = functional_commits(&image);
        for size in [3usize, 4] {
            let mut cfg = MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1);
            cfg.sched.mop.max_mop_size = size;
            run_traced(cfg, Interpreter::new(&image), u64::MAX, 256)
                .assert_committed(expected, &format!("mop chain size {size}"));
        }
    }

    /// The cycle-detection ablation arm (precise in-window detection) is
    /// also deadlock-free and commit-exact.
    #[test]
    fn precise_cycle_detection_is_safe(image in program_strategy()) {
        let (expected, _) = functional_commits(&image);
        let mut cfg = MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 0);
        cfg.sched.mop.cycle_detection = mopsched::core::CycleDetection::Precise;
        run_traced(cfg, Interpreter::new(&image), u64::MAX, 256)
            .assert_committed(expected, "precise cycle detection");
    }
}

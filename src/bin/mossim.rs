//! `mossim` — run one benchmark or kernel under one scheduler and print
//! the full statistics report.
//!
//! ```text
//! mossim [trace|report|pipeview|cpistack|rvdiff|history|diff|dashboard] [options]
//!   --bench NAME        benchmark model (default gzip) or kernel with --kernel
//!   --kernel NAME       run an assembly kernel instead of a benchmark model
//!   --rv PROG           run a real RV32 program instead: a suite name
//!                       (sum_loop, fib_rec, memcpy, strlen, gcd, collatz,
//!                       bubble_sort), a .s assembly file, or a flat
//!                       little-endian RV32 binary
//!   --sched KIND        base | 2cycle | mop-2src | mop-wor | sf-squash |
//!                       sf-scoreboard | spec-wakeup  (default mop-wor)
//!   --queue N           issue-queue entries; 0 = unrestricted (default 32)
//!   --stages N          extra MOP formation stages, 0..2 (default 1)
//!   --insts N           committed instructions (default 100000)
//!   --seed N            workload seed (default 42)
//!   --ideal-branch      perfect branch prediction
//!   --ideal-memory      perfect data cache
//!   --timeline N        print the first N uop timelines
//!
//! trace mode (per-cycle event tracing):
//!   --out FILE          write the last --last events as JSONL
//!                       (default trace.jsonl)
//!   --last N            ring-buffer capacity (default 4096)
//!   --check             run the scheduling-invariant oracle over the
//!                       stream; print violations and exit nonzero
//!
//! report mode (interval metrics + run report):
//!   --interval N        metric snapshot interval in cycles (default 10000)
//!   --json FILE         also write the report as one JSON document
//!                       (Markdown always goes to stdout)
//!
//! pipeview mode (per-instruction pipeline trace):
//!   --uops N            record the first N uops (default 256)
//!   --out FILE          write Kanata log to FILE instead of stdout
//!                       (open it in Konata or any Kanata viewer)
//!
//! cpistack mode (top-down cycle accounting):
//!   --compare A,B,..    run the same program under several schedulers
//!                       and print per-cause share deltas vs the first
//!                       (aliases: twocycle = 2cycle, mop = mop-wor)
//!   --json FILE         also write the stack(s) as one JSON document
//!
//! rvdiff mode (differential functional oracle over RV32 programs):
//!   --rv PROG           check one program (default: the whole suite)
//!   --sched KIND        check one scheduler (default: all seven)
//!   --json FILE         also write a schema-checked JSON report (per
//!                       program/scheduler: pass/fail, uop counts,
//!                       fusion rate, sched_loop share)
//!
//! run ledger (content-addressed archive under results/ledger/, root
//! overridable with --ledger-dir PATH or MOS_LEDGER_DIR):
//!   --save              archive the run (default, report and cpistack
//!                       modes): key = hash(program, config, scheduler,
//!                       schema, git rev); record = totals + CPI stack
//!                       (+ full report JSON in report mode)
//!
//! history mode (list archived runs, newest first):
//!   --bench NAME        only this workload
//!   --sched KIND        only this scheduler
//!   --limit N           show at most N rows (default 20)
//!
//! diff mode (side-by-side metric deltas between two archived runs):
//!   mossim diff [A] [B] A/B are `latest`, `latest-N`, or a key prefix
//!                       (default: latest vs latest-1); sim-side deltas
//!                       are always real, host throughput is advisory
//!   --noise PCT         host-throughput noise band (default 20)
//!
//! dashboard mode (regression dashboard over history + ledger):
//!   --history FILE      bench history (default results/bench_history.jsonl)
//!   --html              emit a self-contained HTML page instead of Markdown
//!   --out FILE          write to FILE instead of stdout
//! ```

use std::process::ExitCode;
use std::time::Instant;

use mopsched::core::WakeupStyle;
use mopsched::isa::{Program, TraceSource};
use mopsched::ledger::{self, CpiSection, Ledger, RunIdent, RunRecord};
use mopsched::sim::cpistack::{self, CpiStack};
use mopsched::sim::metrics::DEFAULT_INTERVAL;
use mopsched::sim::report::{HostProfile, RunMeta, RunReport};
use mopsched::sim::{MachineConfig, OracleMode, SharedRing, SimStats, Simulator};
use mopsched::{asm, rv, workload};

fn parse() -> Result<Args, String> {
    let mut a = Args::default();
    let mut it = std::env::args().skip(1).peekable();
    match it.peek().map(String::as_str) {
        Some("trace") => {
            it.next();
            a.trace = true;
        }
        Some("report") => {
            it.next();
            a.report = true;
        }
        Some("pipeview") => {
            it.next();
            a.pipeview = true;
        }
        Some("cpistack") => {
            it.next();
            a.cpistack = true;
        }
        Some("rvdiff") => {
            it.next();
            a.rvdiff = true;
        }
        Some("history") => {
            it.next();
            a.history = true;
        }
        Some("diff") => {
            it.next();
            a.diff = true;
        }
        Some("dashboard") => {
            it.next();
            a.dashboard = true;
        }
        _ => {}
    }
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--bench" => {
                a.bench = val("--bench")?;
                a.bench_explicit = true;
            }
            "--kernel" => a.kernel = Some(val("--kernel")?),
            "--rv" => a.rv = Some(val("--rv")?),
            "--sched" => {
                a.sched = val("--sched")?;
                a.sched_explicit = true;
            }
            "--queue" => {
                a.queue = val("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--stages" => {
                a.stages = val("--stages")?
                    .parse()
                    .map_err(|e| format!("--stages: {e}"))?
            }
            "--insts" => {
                a.insts = val("--insts")?
                    .parse()
                    .map_err(|e| format!("--insts: {e}"))?
            }
            "--seed" => {
                a.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--ideal-branch" => a.ideal_branch = true,
            "--ideal-memory" => a.ideal_memory = true,
            "--out" if a.trace || a.pipeview || a.dashboard => a.out = Some(val("--out")?),
            "--save" if !(a.trace || a.pipeview || a.rvdiff || a.history || a.diff || a.dashboard) => {
                a.save = true
            }
            "--ledger-dir" => a.ledger_dir = Some(val("--ledger-dir")?),
            "--limit" if a.history => {
                a.limit = val("--limit")?
                    .parse()
                    .map_err(|e| format!("--limit: {e}"))?
            }
            "--noise" if a.diff => {
                a.noise = val("--noise")?
                    .parse()
                    .map_err(|e| format!("--noise: {e}"))?
            }
            "--history" if a.dashboard => a.history_path = val("--history")?,
            "--html" if a.dashboard => a.html = true,
            "--last" if a.trace => {
                a.last = val("--last")?
                    .parse()
                    .map_err(|e| format!("--last: {e}"))?
            }
            "--check" if a.trace => a.check = true,
            "--interval" if a.report => {
                a.interval = val("--interval")?
                    .parse()
                    .map_err(|e| format!("--interval: {e}"))?
            }
            "--json" if a.report || a.cpistack || a.rvdiff => a.json = Some(val("--json")?),
            "--compare" if a.cpistack => a.compare = Some(val("--compare")?),
            "--uops" if a.pipeview => {
                a.uops = val("--uops")?
                    .parse()
                    .map_err(|e| format!("--uops: {e}"))?
            }
            "--timeline" => {
                a.timeline = val("--timeline")?
                    .parse()
                    .map_err(|e| format!("--timeline: {e}"))?
            }
            "--help" | "-h" => return Err(String::new()),
            spec if a.diff && !spec.starts_with('-') && a.specs.len() < 2 => {
                a.specs.push(spec.to_string())
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(a)
}

struct Args {
    bench: String,
    bench_explicit: bool,
    kernel: Option<String>,
    rv: Option<String>,
    sched: String,
    sched_explicit: bool,
    queue: usize,
    stages: u32,
    insts: u64,
    seed: u64,
    ideal_branch: bool,
    ideal_memory: bool,
    timeline: usize,
    trace: bool,
    report: bool,
    pipeview: bool,
    cpistack: bool,
    rvdiff: bool,
    compare: Option<String>,
    out: Option<String>,
    last: usize,
    check: bool,
    interval: u64,
    json: Option<String>,
    uops: usize,
    save: bool,
    ledger_dir: Option<String>,
    history: bool,
    diff: bool,
    dashboard: bool,
    limit: usize,
    noise: f64,
    history_path: String,
    html: bool,
    specs: Vec<String>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            bench: "gzip".into(),
            bench_explicit: false,
            kernel: None,
            rv: None,
            sched: "mop-wor".into(),
            sched_explicit: false,
            queue: 32,
            stages: 1,
            insts: 100_000,
            seed: 42,
            ideal_branch: false,
            ideal_memory: false,
            timeline: 0,
            trace: false,
            report: false,
            pipeview: false,
            cpistack: false,
            rvdiff: false,
            compare: None,
            out: None,
            last: 4096,
            check: false,
            interval: DEFAULT_INTERVAL,
            json: None,
            uops: 256,
            save: false,
            ledger_dir: None,
            history: false,
            diff: false,
            dashboard: false,
            limit: 20,
            noise: mopsched::ledger::HOST_NOISE_BAND_PCT,
            history_path: "results/bench_history.jsonl".into(),
            html: false,
            specs: Vec::new(),
        }
    }
}

fn config(a: &Args) -> Result<MachineConfig, String> {
    config_named(a, &a.sched)
}

/// Build a machine configuration for `sched` with `a`'s knobs (queue
/// size, formation stages, ideal-branch/memory). `cpistack --compare`
/// needs configurations for schedulers other than `a.sched`.
fn config_named(a: &Args, sched: &str) -> Result<MachineConfig, String> {
    let q = if a.queue == 0 { None } else { Some(a.queue) };
    let mut cfg = match sched {
        "base" => {
            let mut c = MachineConfig::base_32();
            c.sched.queue_entries = q;
            c
        }
        "2cycle" => {
            let mut c = MachineConfig::two_cycle_32();
            c.sched.queue_entries = q;
            c
        }
        "mop-2src" => MachineConfig::macro_op(WakeupStyle::CamTwoSource, q, a.stages),
        "mop-wor" => MachineConfig::macro_op(WakeupStyle::WiredOr, q, a.stages),
        "sf-squash" => {
            let mut c = MachineConfig::select_free_squash_dep_32();
            c.sched.queue_entries = q;
            c
        }
        "sf-scoreboard" => {
            let mut c = MachineConfig::select_free_scoreboard_32();
            c.sched.queue_entries = q;
            c
        }
        "spec-wakeup" => {
            let mut c = MachineConfig::speculative_wakeup_32();
            c.sched.queue_entries = q;
            c
        }
        other => {
            return Err(format!(
                "unknown scheduler `{other}`; available: base, 2cycle, mop-2src, \
                 mop-wor, sf-squash, sf-scoreboard, spec-wakeup"
            ))
        }
    };
    if a.ideal_branch {
        cfg = cfg.with_ideal_branch();
    }
    if a.ideal_memory {
        cfg = cfg.with_ideal_memory();
    }
    Ok(cfg)
}

/// Load an RV32 program: a suite name, a `.s` assembly file, or a flat
/// little-endian binary image.
fn load_rv(spec: &str) -> Result<rv::RvProgram, String> {
    if let Some(p) = rv::suite::by_name(spec) {
        return Ok(p.assemble());
    }
    let name = std::path::Path::new(spec)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(spec)
        .to_owned();
    // A bare name that is neither a suite program nor a file is almost
    // certainly a typo: name the suite instead of a bare read error.
    if !std::path::Path::new(spec).exists() && !spec.contains(['/', '.']) {
        let known: Vec<&str> = rv::suite::PROGRAMS.iter().map(|p| p.name).collect();
        return Err(format!(
            "unknown rv program `{spec}`; suite programs: {known:?} (or pass a .s / flat-binary path)"
        ));
    }
    if spec.ends_with(".s") || spec.ends_with(".S") {
        let src =
            std::fs::read_to_string(spec).map_err(|e| format!("reading {spec}: {e}"))?;
        rv::assemble(&name, &src).map_err(|e| format!("{spec}: {e}"))
    } else {
        let bytes = std::fs::read(spec).map_err(|e| format!("reading {spec}: {e}"))?;
        rv::decode_flat(&name, &bytes).map_err(|e| format!("{spec}: {e}"))
    }
}

/// Open the ledger this invocation addresses: `--ledger-dir`, else
/// `$MOS_LEDGER_DIR`, else `results/ledger`.
fn open_ledger(a: &Args) -> Ledger {
    match &a.ledger_dir {
        Some(dir) => Ledger::open(dir),
        None => Ledger::open(Ledger::default_root()),
    }
}

fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// The workload name and source kind this invocation runs
/// (`--kernel` and `--rv` override `--bench`).
fn workload_ident(a: &Args) -> (String, &'static str) {
    if let Some(k) = &a.kernel {
        (k.clone(), "kernel")
    } else if let Some(r) = &a.rv {
        (r.clone(), "rv")
    } else {
        (a.bench.clone(), "bench")
    }
}

/// Archive one finished run in the ledger (the `--save` flag). The key
/// covers program, config, scheduler, budget/seed, schema and git rev;
/// the record carries the sim-side totals, the CPI stack when slot
/// accounting was on, host throughput, and (from report mode) the full
/// report JSON.
#[allow(clippy::too_many_arguments)]
fn save_record(
    a: &Args,
    sched: &str,
    cfg: &MachineConfig,
    program_sha: &str,
    stats: &SimStats,
    cpi: Option<&CpiStack>,
    sim_seconds: f64,
    report_json: Option<&str>,
) -> Result<(), String> {
    let (bench, source) = workload_ident(a);
    let git_rev = ledger::git_short_rev();
    let ident = RunIdent {
        kind: "run",
        bench: &bench,
        source,
        sched,
        insts: a.insts,
        seed: a.seed,
        program_sha,
        git_rev: &git_rev,
    };
    let key = ledger::run_key(&ident, Some(cfg));
    let record = RunRecord {
        schema: ledger::SCHEMA_VERSION,
        key: key.clone(),
        kind: "run".into(),
        bench,
        source: source.into(),
        sched: sched.into(),
        insts: a.insts,
        seed: a.seed,
        git_rev,
        unix_time: now_unix(),
        host_cycles_per_sec: if sim_seconds > 0.0 {
            stats.cycles as f64 / sim_seconds
        } else {
            0.0
        },
        cached: false,
        sched_kinds: Vec::new(),
        totals: RunRecord::totals_from_stats(stats),
        cpi: cpi.map(CpiSection::from_stack),
        report: report_json
            .map(|t| ledger::json::parse(t).map_err(|e| format!("report JSON: {e}")))
            .transpose()?,
    };
    let store = open_ledger(a);
    let path = store.save(&record)?;
    eprintln!("ledger: saved {} -> {}", ledger::short(&key), path.display());
    Ok(())
}

/// Run `history` mode: list archived runs, newest first.
fn run_history(a: &Args) -> Result<(), String> {
    let store = open_ledger(a);
    let bench = a.bench_explicit.then_some(a.bench.as_str());
    let sched = a.sched_explicit.then_some(canonical_sched(&a.sched));
    print!("{}", store.history_markdown(bench, sched, a.limit));
    Ok(())
}

/// Run `diff` mode: side-by-side metric deltas between two archived
/// runs, with the noise-band verdict.
fn run_diff(a: &Args) -> Result<(), String> {
    let store = open_ledger(a);
    let spec_a = a.specs.first().map_or("latest-1", String::as_str);
    let spec_b = a.specs.get(1).map_or("latest", String::as_str);
    // `mossim diff X` means "X against latest", oldest first.
    let (spec_a, spec_b) = if a.specs.len() == 1 {
        (a.specs[0].as_str(), "latest")
    } else {
        (spec_a, spec_b)
    };
    let rec_a = store.load(&store.resolve(spec_a)?)?;
    let rec_b = store.load(&store.resolve(spec_b)?)?;
    let outcome = ledger::diff(&rec_a, &rec_b, a.noise);
    print!("{}", outcome.markdown);
    Ok(())
}

/// Run `dashboard` mode: render the regression dashboard over the bench
/// history and the ledger.
fn run_dashboard(a: &Args) -> Result<(), String> {
    let store = open_ledger(a);
    let history = std::fs::read_to_string(&a.history_path).unwrap_or_default();
    let markdown = ledger::dashboard::render(&history, &store);
    let doc = if a.html {
        ledger::dashboard::to_html(&markdown)
    } else {
        markdown
    };
    match &a.out {
        Some(path) => {
            std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("dashboard: wrote {path}");
        }
        None => print!("{doc}"),
    }
    Ok(())
}

/// Run `rvdiff` mode: the differential functional oracle over RV32
/// programs × scheduler kinds. Any divergence is an error.
fn run_rvdiff(a: &Args) -> Result<(), String> {
    let programs: Vec<rv::RvProgram> = match &a.rv {
        Some(spec) => vec![load_rv(spec)?],
        None => rv::suite::PROGRAMS.iter().map(|p| p.assemble()).collect(),
    };
    let scheds: Vec<&str> = if a.sched_explicit && a.sched != "all" {
        vec![canonical_sched(&a.sched)]
    } else {
        rv::SCHED_KINDS.to_vec()
    };
    // Validate every scheduler up front so a typo errors before output.
    for sched in &scheds {
        config_named(a, sched)?;
    }
    println!(
        "{:<12} {:<14} {:>9} {:>9} {:>8} {:>6} {:>7} {:>9}",
        "program", "sched", "rv insts", "uops", "cycles", "ipc", "fusion", "schedloop"
    );
    let mut failures = 0;
    let mut results: Vec<ledger::json::Value> = Vec::new();
    for prog in &programs {
        for sched in &scheds {
            use ledger::json::Value;
            let cfg = config_named(a, sched)?;
            let mut fields = vec![
                ("program".to_string(), Value::Str(prog.name.clone())),
                ("sched".to_string(), Value::Str(sched.to_string())),
            ];
            match rv::run_differential(prog, sched, cfg, 10_000_000) {
                Ok(rep) => {
                    println!(
                        "{:<12} {:<14} {:>9} {:>9} {:>8} {:>6.3} {:>6.1}% {:>8.1}%",
                        prog.name,
                        sched,
                        rep.rv_retired,
                        rep.uops_committed,
                        rep.cycles,
                        rep.ipc,
                        rep.fusion_rate * 100.0,
                        rep.sched_loop_share * 100.0
                    );
                    fields.extend([
                        ("pass".to_string(), Value::Bool(true)),
                        ("rv_retired".to_string(), Value::Num(rep.rv_retired as f64)),
                        ("uops_committed".to_string(), Value::Num(rep.uops_committed as f64)),
                        ("cycles".to_string(), Value::Num(rep.cycles as f64)),
                        ("ipc".to_string(), Value::Num(rep.ipc)),
                        ("fusion_rate".to_string(), Value::Num(rep.fusion_rate)),
                        ("sched_loop_share".to_string(), Value::Num(rep.sched_loop_share)),
                    ]);
                }
                Err(e) => {
                    eprintln!("FAIL {:<12} {:<14} {e}", prog.name, sched);
                    failures += 1;
                    fields.extend([
                        ("pass".to_string(), Value::Bool(false)),
                        ("error".to_string(), Value::Str(e.to_string())),
                    ]);
                }
            }
            results.push(Value::Obj(fields));
        }
    }
    if let Some(path) = &a.json {
        use ledger::json::Value;
        let doc = Value::Obj(vec![
            ("schema".to_string(), Value::Num(ledger::SCHEMA_VERSION as f64)),
            ("programs".to_string(), Value::Num(programs.len() as f64)),
            ("schedulers".to_string(), Value::Num(scheds.len() as f64)),
            ("failures".to_string(), Value::Num(failures as f64)),
            ("results".to_string(), Value::Arr(results)),
        ]);
        std::fs::write(path, ledger::json::render(&doc))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("rvdiff: wrote JSON to {path}");
    }
    if failures > 0 {
        return Err(format!("{failures} differential check(s) failed"));
    }
    println!(
        "rvdiff: {} program(s) x {} scheduler(s), all committed traces and \
         final states match the functional oracle",
        programs.len(),
        scheds.len()
    );
    Ok(())
}

/// Run `report` mode: simulate with interval metrics on, print the
/// Markdown report, optionally also write the JSON document.
fn run_report<T: TraceSource>(
    a: &Args,
    cfg: MachineConfig,
    trace: T,
    program_sha: &str,
    build_seconds: f64,
) -> bool {
    let saved_cfg = a.save.then(|| cfg.clone());
    let mut sim = Simulator::new(cfg, trace);
    sim.enable_metrics(a.interval);
    sim.enable_slot_accounting();
    let t = Instant::now();
    sim.run(a.insts);
    let sim_seconds = t.elapsed().as_secs_f64();
    let meta = RunMeta {
        bench: a
            .kernel
            .clone()
            .or_else(|| a.rv.clone())
            .unwrap_or_else(|| a.bench.clone()),
        sched: a.sched.clone(),
        insts: a.insts,
        seed: a.seed,
        interval: a.interval,
    };
    let profile = HostProfile {
        build_seconds,
        sim_seconds,
        render_seconds: 0.0,
    };
    let t = Instant::now();
    let mut report = RunReport::collect(&mut sim, meta, profile);
    let _ = report.to_markdown(); // timed dry run; re-render below with the cost filled in
    report.profile.render_seconds = t.elapsed().as_secs_f64();
    print!("{}", report.to_markdown());
    if let Some(path) = &a.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: writing {path}: {e}");
            return false;
        }
        eprintln!("report: wrote JSON to {path}");
    }
    if let Some(cfg) = &saved_cfg {
        let json = report.to_json();
        if let Err(e) = save_record(
            a,
            canonical_sched(&a.sched),
            cfg,
            program_sha,
            &report.stats,
            report.cpi.as_ref(),
            sim_seconds,
            Some(&json),
        ) {
            eprintln!("error: {e}");
            return false;
        }
    }
    true
}

/// Run `pipeview` mode: record the first `--uops` timelines and emit
/// them as a Kanata log for Konata.
fn run_pipeview<T: TraceSource>(a: &Args, cfg: MachineConfig, trace: T, program: &Program) -> bool {
    let mut sim = Simulator::new(cfg, trace);
    sim.enable_timeline(a.uops);
    sim.run(a.insts);
    let kanata = sim.timeline().expect("timeline enabled").to_kanata(program);
    match &a.out {
        Some(path) => match std::fs::write(path, &kanata) {
            Ok(()) => {
                eprintln!(
                    "pipeview: wrote {} uop timelines to {path} (open in Konata)",
                    sim.timeline().expect("timeline enabled").entries().len()
                );
                true
            }
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                false
            }
        },
        None => {
            print!("{kanata}");
            true
        }
    }
}

/// Canonical CLI spelling for a scheduler name, accepting the paper-ish
/// aliases used in `--compare base,twocycle,mop`.
fn canonical_sched(name: &str) -> &str {
    match name {
        "twocycle" | "two-cycle" => "2cycle",
        "mop" | "macroop" | "macro-op" => "mop-wor",
        other => other,
    }
}

/// Run `cpistack` mode: simulate the workload with slot accounting on —
/// once, or once per `--compare` scheduler — check the conservation
/// invariant, and print the (differential) CPI stack.
fn run_cpistack(a: &Args) -> Result<(), String> {
    let scheds: Vec<String> = match &a.compare {
        Some(list) => list
            .split(',')
            .map(|s| canonical_sched(s.trim()).to_string())
            .filter(|s| !s.is_empty())
            .collect(),
        None => vec![canonical_sched(&a.sched).to_string()],
    };
    if scheds.is_empty() {
        return Err("--compare needs at least one scheduler".into());
    }
    let bench_name = a
        .kernel
        .clone()
        .or_else(|| a.rv.clone())
        .unwrap_or_else(|| a.bench.clone());
    let mut stacks = Vec::new();
    for sched in &scheds {
        let cfg = config_named(a, sched)?;
        let width = cfg.sched.issue_width as u64;
        let saved_cfg = a.save.then(|| cfg.clone());
        let t = Instant::now();
        let (stats, program_sha) = if let Some(kname) = &a.kernel {
            let kernel = workload::kernels::by_name(kname)
                .ok_or_else(|| format!("unknown kernel `{kname}`"))?;
            let image = kernel.image();
            let sha = a.save.then(|| ledger::program_digest(&image.program));
            let mut sim = Simulator::new(cfg, asm::Interpreter::new(&image));
            sim.enable_slot_accounting();
            (sim.run(a.insts), sha)
        } else if let Some(rvspec) = &a.rv {
            let prog = load_rv(rvspec)?;
            let trace = rv::RvTraceSource::new(&prog).map_err(|e| e.to_string())?;
            let sha = a.save.then(|| ledger::program_digest(trace.program()));
            let mut sim = Simulator::new(cfg, trace);
            sim.enable_slot_accounting();
            (sim.run(a.insts), sha)
        } else {
            let spec = workload::spec2000::by_name(&a.bench)
                .ok_or_else(|| format!("unknown benchmark `{}`", a.bench))?;
            let trace = spec.trace(a.seed);
            let sha = a.save.then(|| ledger::program_digest(trace.program()));
            let mut sim = Simulator::new(cfg, trace);
            sim.enable_slot_accounting();
            (sim.run(a.insts), sha)
        };
        let sim_seconds = t.elapsed().as_secs_f64();
        let stack = CpiStack::from_stats(&bench_name, sched, width, &stats);
        stack.check_conservation().map_err(|e| format!("{sched}: {e}"))?;
        if let Some(cfg) = &saved_cfg {
            save_record(
                a,
                sched,
                cfg,
                program_sha.as_deref().unwrap_or("-"),
                &stats,
                Some(&stack),
                sim_seconds,
                None,
            )?;
        }
        stacks.push(stack);
    }
    if stacks.len() == 1 {
        print!("{}", stacks[0].to_markdown());
    } else {
        print!("{}", cpistack::compare_markdown(&stacks));
        println!(
            "conservation: ok for all {} stacks ({} cycles x width each)",
            stacks.len(),
            stacks
                .iter()
                .map(|s| s.cycles.to_string())
                .collect::<Vec<_>>()
                .join("/")
        );
    }
    if let Some(path) = &a.json {
        let doc = if stacks.len() == 1 {
            stacks[0].to_json()
        } else {
            cpistack::compare_json(&stacks)
        };
        std::fs::write(path, doc).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("cpistack: wrote JSON to {path}");
    }
    Ok(())
}

fn run<T: TraceSource>(
    a: &Args,
    cfg: MachineConfig,
    trace: T,
    program: Program,
    build_seconds: f64,
) -> bool {
    let program_sha = a.save.then(|| ledger::program_digest(&program));
    let program_sha = program_sha.as_deref().unwrap_or("-");
    if a.report {
        return run_report(a, cfg, trace, program_sha, build_seconds);
    }
    if a.pipeview {
        return run_pipeview(a, cfg, trace, &program);
    }
    let saved_cfg = a.save.then(|| cfg.clone());
    let mut sim = Simulator::new(cfg, trace);
    if a.save {
        // Observation-only; gives the archived record a CPI stack.
        sim.enable_slot_accounting();
    }
    if a.timeline > 0 {
        sim.enable_timeline(a.timeline);
    }
    let ring = a.trace.then(|| {
        let ring = SharedRing::new(a.last);
        sim.set_event_sink(Box::new(ring.clone()));
        ring
    });
    if a.check {
        sim.attach_oracle(OracleMode::Collect);
    }
    let t = Instant::now();
    let stats = sim.run(a.insts);
    let sim_seconds = t.elapsed().as_secs_f64();
    print!("{}", stats.report());
    if let Some(cfg) = &saved_cfg {
        let sched = canonical_sched(&a.sched);
        let stack = CpiStack::from_stats(
            &workload_ident(a).0,
            sched,
            cfg.sched.issue_width as u64,
            &stats,
        );
        if let Err(e) = save_record(
            a,
            sched,
            cfg,
            program_sha,
            &stats,
            Some(&stack),
            sim_seconds,
            None,
        ) {
            eprintln!("error: {e}");
            return false;
        }
    }
    if let Some(t) = sim.timeline() {
        println!("\nfirst {} uops:", t.entries().len());
        print!("{}", t.render(&program));
    }
    if let Some(ring) = ring {
        let out = a.out.as_deref().unwrap_or("trace.jsonl");
        match std::fs::write(out, ring.to_jsonl()) {
            Ok(()) => println!(
                "trace: kept the last {} of {} events in {}",
                ring.with(|r| r.len()),
                ring.total_seen(),
                out
            ),
            Err(e) => {
                eprintln!("error: writing {out}: {e}");
                return false;
            }
        }
        if ring.dropped() > 0 {
            eprintln!(
                "warning: {} events were dropped by the bounded ring; \
                 raise --last to keep them",
                ring.dropped()
            );
        }
    }
    if a.check {
        let oracle = sim.oracle().expect("attached above");
        if oracle.is_clean() {
            println!(
                "oracle: checked {} events, no scheduling-invariant violations",
                oracle.events_seen()
            );
        } else {
            eprintln!(
                "oracle: {} scheduling-invariant violation(s) in {} events",
                oracle.violations().len(),
                oracle.events_seen()
            );
            for v in oracle.violations() {
                eprintln!("{v}");
            }
            return false;
        }
    }
    true
}

fn main() -> ExitCode {
    let a = match parse() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("see the module docs at the top of mossim.rs for usage");
            return ExitCode::FAILURE;
        }
    };
    if a.cpistack || a.rvdiff || a.history || a.diff || a.dashboard {
        let res = if a.cpistack {
            run_cpistack(&a)
        } else if a.rvdiff {
            run_rvdiff(&a)
        } else if a.history {
            run_history(&a)
        } else if a.diff {
            run_diff(&a)
        } else {
            run_dashboard(&a)
        };
        return match res {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let cfg = match config(&a) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // report prints Markdown and pipeview prints Kanata to stdout, so
    // the human banner is suppressed for both.
    let banner = !a.report && !a.pipeview;
    if let Some(rvspec) = &a.rv {
        let build = Instant::now();
        let prog = match load_rv(rvspec) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if banner {
            println!(
                "rv32 program `{}` ({} insts), scheduler {}, queue {:?}\n",
                prog.name,
                prog.len(),
                a.sched,
                cfg.sched.queue_entries
            );
        }
        let trace = match rv::RvTraceSource::new(&prog) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: lowering `{}`: {e}", prog.name);
                return ExitCode::FAILURE;
            }
        };
        let program = trace.program().clone();
        if !run(&a, cfg, trace, program, build.elapsed().as_secs_f64()) {
            return ExitCode::FAILURE;
        }
    } else if let Some(kname) = &a.kernel {
        let Some(kernel) = workload::kernels::by_name(kname) else {
            eprintln!(
                "unknown kernel `{kname}`; available: {:?}",
                workload::kernels::all().iter().map(|k| k.name).collect::<Vec<_>>()
            );
            return ExitCode::FAILURE;
        };
        if banner {
            println!("kernel `{kname}`, scheduler {}, queue {:?}\n", a.sched, cfg.sched.queue_entries);
        }
        let build = Instant::now();
        let image = kernel.image();
        let program = image.program.clone();
        let interp = asm::Interpreter::new(&image);
        if !run(&a, cfg, interp, program, build.elapsed().as_secs_f64()) {
            return ExitCode::FAILURE;
        }
    } else {
        let Some(spec) = workload::spec2000::by_name(&a.bench) else {
            eprintln!(
                "unknown benchmark `{}`; available: {:?}",
                a.bench,
                workload::spec2000::names()
            );
            return ExitCode::FAILURE;
        };
        if banner {
            println!(
                "benchmark `{}` (seed {}), scheduler {}, queue {:?}, {} insts\n",
                a.bench, a.seed, a.sched, cfg.sched.queue_entries, a.insts
            );
        }
        let build = Instant::now();
        let trace = spec.trace(a.seed);
        let program = trace.program().clone();
        if !run(&a, cfg, trace, program, build.elapsed().as_secs_f64()) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

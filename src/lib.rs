//! # mopsched — Macro-op Scheduling
//!
//! A production-quality Rust reproduction of *Macro-op Scheduling: Relaxing
//! Scheduling Loop Constraints* (Ilhyun Kim and Mikko H. Lipasti, MICRO-36,
//! 2003), including the full cycle-level out-of-order substrate the paper's
//! evaluation requires.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`isa`] — the RISC-style instruction set, static programs and traces,
//! * [`asm`] — an assembler and functional interpreter,
//! * [`rv`] — the RV32I(+M) frontend: assembler, loader, lowering and the
//!   differential functional oracle for running real RISC-V programs,
//! * [`analysis`] — dataflow-graph analysis and analytical schedule bounds,
//! * [`workload`] — synthetic SPEC CINT2000 benchmark models and kernels,
//! * [`uarch`] — branch predictors and the cache hierarchy,
//! * [`core`] — macro-op detection/formation and all scheduler models,
//! * [`metrics`] — histograms, interval time series and run reports,
//! * [`ledger`] — the content-addressed run archive: persistent records
//!   with provenance, cross-run diffing and the regression dashboard,
//! * [`sim`] — the 13-stage out-of-order pipeline simulator,
//! * [`experiments`] — the per-table/figure reproduction harness.
//!
//! ## Quickstart
//!
//! ```
//! use mopsched::sim::{MachineConfig, Simulator};
//! use mopsched::workload::spec2000;
//!
//! let trace = spec2000::by_name("gzip").unwrap().trace(42);
//! let mut sim = Simulator::new(MachineConfig::base_unrestricted(), trace);
//! let stats = sim.run(20_000);
//! assert!(stats.ipc() > 0.1);
//! ```

pub use mos_analysis as analysis;
pub use mos_asm as asm;
pub use mos_core as core;
pub use mos_experiments as experiments;
pub use mos_isa as isa;
pub use mos_ledger as ledger;
pub use mos_metrics as metrics;
pub use mos_rv as rv;
pub use mos_sim as sim;
pub use mos_uarch as uarch;
pub use mos_workload as workload;

//! Analytical bounds vs measured IPC: the `mos-analysis` crate's
//! dataflow-graph model explains *why* each benchmark reacts to the
//! pipelined scheduling loop the way Figure 14 shows — before running a
//! single pipeline cycle.
//!
//! ```text
//! cargo run --release --example analysis_bounds [insts]
//! ```

use mopsched::analysis::{Ddg, ScheduleModel};
use mopsched::sim::{MachineConfig, Simulator};
use mopsched::workload::spec2000;

fn main() {
    let insts: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);

    println!(
        "{:8} {:>7} {:>7} {:>8} {:>8} {:>8} {:>9}",
        "bench", "bound", "est1c", "est2c", "sim-base", "sim-2c", "1c-edge%"
    );
    for spec in spec2000::all() {
        let ddg = Ddg::from_trace(spec.trace(42), insts);
        let atomic = ScheduleModel::table1_atomic();
        let two = ScheduleModel::table1_two_cycle();
        let sim_base = Simulator::new(MachineConfig::base_unrestricted(), spec.trace(42))
            .run(insts as u64)
            .ipc();
        let sim_two = Simulator::new(MachineConfig::two_cycle_unrestricted(), spec.trace(42))
            .run(insts as u64)
            .ipc();
        println!(
            "{:8} {:7.2} {:7.2} {:8.2} {:8.2} {:8.2} {:9.1}",
            spec.name,
            atomic.ipc_upper_bound(&ddg),
            atomic.estimate_ipc(&ddg),
            two.estimate_ipc(&ddg),
            sim_base,
            sim_two,
            100.0 * ddg.single_cycle_edge_frac(),
        );
    }
    println!(
        "\n`bound` is the provable IPC ceiling (width and critical path);\n\
         `est1c`/`est2c` are greedy window-limited estimates under atomic vs\n\
         2-cycle scheduling; the simulator columns must stay below the bound.\n\
         Benchmarks whose est2c collapses relative to est1c are exactly the\n\
         ones Figure 14 shows losing >=10 % under the pipelined loop."
    );
}

//! The paper's worked example (Figures 4 and 5): the four-instruction
//! gzip fragment
//!
//! ```text
//! 1: add r1 <- ...
//! 2: lw  r4 <- 0(r1)
//! 3: sub r5 <- r1, 1
//! 4: bez r5, 0xff
//! ```
//!
//! scheduled three ways — atomic (1-cycle), pipelined 2-cycle, and
//! 2-cycle macro-op scheduling with MOP(1,3) — printing the issue cycle
//! of every instruction, exactly the comparison of Figure 5.
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```

use mopsched::core::queue::IssueQueue;
use mopsched::core::{SchedConfig, SchedUop, SchedulerKind, Tag, UopId};
use mopsched::isa::InstClass;

fn alu(id: u64, dst: Option<u64>, srcs: &[u64]) -> SchedUop {
    let mut u = SchedUop::leaf(UopId(id), InstClass::IntAlu, dst.map(Tag));
    u.srcs = srcs.iter().copied().map(Tag).collect();
    u
}

fn load(id: u64, dst: u64, srcs: &[u64]) -> SchedUop {
    let mut u = SchedUop::leaf(UopId(id), InstClass::Load, Some(Tag(dst)));
    u.srcs = srcs.iter().copied().map(Tag).collect();
    u
}

fn branch(id: u64, srcs: &[u64]) -> SchedUop {
    let mut u = SchedUop::leaf(UopId(id), InstClass::CondBranch, None);
    u.srcs = srcs.iter().copied().map(Tag).collect();
    u
}

/// Run the fragment and return issue cycles of instructions 1..=4.
fn schedule(kind: SchedulerKind, fuse_1_and_3: bool) -> [Option<u64>; 4] {
    let cfg = SchedConfig {
        kind,
        ..SchedConfig::default()
    };
    let mut q = IssueQueue::new(cfg);
    // Tags: instruction 1 -> 10 (the MOP tag when fused), 2 -> 11.
    if fuse_1_and_3 {
        let head = q.insert_mop_head(alu(1, Some(10), &[])).expect("space");
        q.insert(load(2, 11, &[10])).expect("space");
        q.fuse_tail(head, alu(3, Some(10), &[10])).expect("fusible");
    } else {
        q.insert(alu(1, Some(10), &[])).expect("space");
        q.insert(load(2, 11, &[10])).expect("space");
        q.insert(alu(3, Some(12), &[10])).expect("space");
    }
    let br_src = if fuse_1_and_3 { 10 } else { 12 };
    q.insert(branch(4, &[br_src])).expect("space");

    let mut cycles = [None; 4];
    for now in 0..30 {
        for iss in q.cycle(now) {
            for u in &iss.uops {
                cycles[(u.id.0 - 1) as usize] = Some(iss.issue_cycle);
            }
        }
    }
    cycles
}

fn main() {
    println!("Figure 5: wakeup and select timings for the gzip fragment\n");
    println!("  1: add r1 <- ...      2: lw r4 <- 0(r1)");
    println!("  3: sub r5 <- r1, 1    4: bez r5, 0xff\n");

    let rows = [
        ("atomic (1-cycle) scheduling", SchedulerKind::Base, false),
        ("2-cycle scheduling", SchedulerKind::TwoCycle, false),
        ("2-cycle macro-op MOP(1,3)", SchedulerKind::MacroOp, true),
    ];
    println!(
        "{:30} {:>6} {:>6} {:>6} {:>6}",
        "scheduler", "i1", "i2", "i3", "i4"
    );
    for (label, kind, fuse) in rows {
        let c = schedule(kind, fuse);
        print!("{label:30}");
        for v in c {
            match v {
                Some(x) => print!(" {x:6}"),
                None => print!("  never"),
            }
        }
        println!();
    }

    println!(
        "\nReading the rows like the paper's Figure 5 (select cycles, cycle n = 0):\n\
         * atomic: 3 issues at n+1, the branch at n+2 — back-to-back.\n\
         * 2-cycle: every single-cycle edge stretches to two cycles; the\n\
           branch waits until n+4.\n\
         * macro-op: MOP(1,3) issues as one unit at n; its dependents (2\n\
           and 4) wake at n+2. Since the tail (3) executes at n+1, the\n\
           branch executes consecutively after it — the 2-cycle scheduler\n\
           behaves like an atomic one across the fused edge."
    );
}

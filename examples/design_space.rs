//! Scheduler design-space sweep: issue-queue size x scheduling model,
//! showing where macro-op scheduling's two benefits come from — the
//! relaxed scheduling loop (visible with unrestricted queues) and the
//! effective-window increase from entry sharing (visible under
//! contention).
//!
//! ```text
//! cargo run --release --example design_space [bench] [insts]
//! ```

use mopsched::core::WakeupStyle;
use mopsched::sim::{MachineConfig, Simulator};
use mopsched::workload::spec2000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.first().map(String::as_str).unwrap_or("parser");
    let insts: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(60_000);

    let Some(spec) = spec2000::by_name(bench) else {
        eprintln!("unknown benchmark `{bench}`");
        std::process::exit(1);
    };
    let queue_sizes: [(&str, Option<usize>); 4] =
        [("16", Some(16)), ("32", Some(32)), ("64", Some(64)), ("unrestricted", None)];

    println!("design space for `{bench}` ({insts} insts): IPC by queue size and scheduler\n");
    println!(
        "{:14} {:>8} {:>8} {:>10} {:>10}",
        "queue", "base", "2-cycle", "MOP-2src", "MOP-wOR"
    );
    for (label, q) in queue_sizes {
        let run = |cfg: MachineConfig| Simulator::new(cfg, spec.trace(42)).run(insts).ipc();
        let base = {
            let mut c = MachineConfig::base_32();
            c.sched.queue_entries = q;
            run(c)
        };
        let two = {
            let mut c = MachineConfig::two_cycle_32();
            c.sched.queue_entries = q;
            run(c)
        };
        let m2 = run(MachineConfig::macro_op(WakeupStyle::CamTwoSource, q, 1));
        let mw = run(MachineConfig::macro_op(WakeupStyle::WiredOr, q, 1));
        println!("{label:14} {base:8.3} {two:8.3} {m2:10.3} {mw:10.3}");
    }
    println!(
        "\nSmall queues: macro-op scheduling wins by packing two instructions\n\
         per entry (effective window ~1.5x). Large queues: the win comes from\n\
         issuing dependent pairs back-to-back despite the pipelined 2-cycle\n\
         scheduling loop (the paper's Figures 14 and 15)."
    );
}

//! Build a custom synthetic workload from scratch — the public
//! `WorkloadSpec` API lets you dial the properties the paper's mechanisms
//! respond to — and watch how scheduler sensitivity tracks the
//! dependence-distance model.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use mopsched::core::WakeupStyle;
use mopsched::sim::{MachineConfig, Simulator};
use mopsched::workload::spec2000::{DistanceModel, Mix, WorkloadSpec};

fn custom(name: &'static str, distance: DistanceModel, purity: f64) -> WorkloadSpec {
    WorkloadSpec {
        name,
        body_len: 160,
        mix: Mix {
            load: 0.22,
            store: 0.08,
            branch: 0.10,
            mul: 0.01,
            div: 0.0,
            fp: 0.0,
            call: 0.03,
        },
        distance,
        random_branch_frac: 0.05,
        random_taken_prob: 0.3,
        working_set: 128 * 1024,
        stride_frac: 0.8,
        hot_frac: 0.95,
        chain_purity: purity,
        inner_trip: 24,
    }
}

fn main() {
    let insts = 60_000;
    let specs = [
        custom(
            "tight-chains",
            DistanceModel {
                short_frac: 0.95,
                geo_p: 0.7,
                long_max: 16,
            },
            0.95,
        ),
        custom(
            "medium",
            DistanceModel {
                short_frac: 0.75,
                geo_p: 0.4,
                long_max: 32,
            },
            0.8,
        ),
        custom(
            "wide-ilp",
            DistanceModel {
                short_frac: 0.45,
                geo_p: 0.3,
                long_max: 48,
            },
            0.65,
        ),
    ];

    println!("custom workloads: 2-cycle loss and macro-op recovery vs dependence distance\n");
    println!(
        "{:14} {:>8} {:>9} {:>9} {:>9}",
        "workload", "base", "2-cycle%", "MOP-wOR%", "grouped%"
    );
    for spec in specs {
        let run = |cfg: MachineConfig| Simulator::new(cfg, spec.trace(1)).run(insts);
        let base = run(MachineConfig::base_unrestricted());
        let two = run(MachineConfig::two_cycle_unrestricted());
        let mop = run(MachineConfig::macro_op(WakeupStyle::WiredOr, None, 0));
        println!(
            "{:14} {:8.3} {:9.1} {:9.1} {:9.1}",
            spec.name,
            base.ipc(),
            100.0 * two.ipc() / base.ipc(),
            100.0 * mop.ipc() / base.ipc(),
            100.0 * mop.grouped_frac()
        );
    }
    println!(
        "\nShort dependence distances (tight chains) make the pipelined 2-cycle\n\
         scheduler bleed throughput and give macro-op detection plenty of\n\
         adjacent pairs to fuse; long distances leave plenty of independent\n\
         work and neither matters much — the spread the paper's Figure 6\n\
         characterization predicts."
    );
}

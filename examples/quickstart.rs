//! Quickstart: simulate one benchmark under the three headline schedulers
//! and print what macro-op scheduling does.
//!
//! ```text
//! cargo run --release --example quickstart [bench] [insts]
//! ```

use mopsched::core::WakeupStyle;
use mopsched::sim::{MachineConfig, Simulator};
use mopsched::workload::spec2000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.first().map(String::as_str).unwrap_or("gzip");
    let insts: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);

    let Some(spec) = spec2000::by_name(bench) else {
        eprintln!(
            "unknown benchmark `{bench}`; try one of {:?}",
            spec2000::names()
        );
        std::process::exit(1);
    };

    println!("benchmark `{bench}`, {insts} committed instructions, 32-entry issue queue\n");

    let mut base_ipc = 0.0;
    for (label, cfg) in [
        ("base (atomic scheduling)", MachineConfig::base_32()),
        ("2-cycle (pipelined sched)", MachineConfig::two_cycle_32()),
        (
            "macro-op (wired-OR, +1 stage)",
            MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
        ),
    ] {
        let stats = Simulator::new(cfg, spec.trace(42)).run(insts);
        if base_ipc == 0.0 {
            base_ipc = stats.ipc();
        }
        println!(
            "{label:30} IPC {:.3}  ({:5.1} % of base)",
            stats.ipc(),
            100.0 * stats.ipc() / base_ipc
        );
        if stats.grouped_frac() > 0.0 {
            println!(
                "{:30} -> {:.1} % of instructions grouped into MOPs,",
                "", 100.0 * stats.grouped_frac()
            );
            println!(
                "{:30}    {} MOP entries issued, {:.1} % fewer queue insertions,",
                "",
                stats.mop_entries_issued,
                100.0 * stats.insert_reduction()
            );
            println!(
                "{:30}    {} pointers installed, {} dropped with I-cache lines",
                "", stats.pointers.0, stats.pointers.1
            );
        }
    }
    println!(
        "\nThe pipelined 2-cycle scheduler loses throughput on dependent chains;\n\
         macro-op scheduling recovers it by fusing dependent pairs into one\n\
         2-cycle scheduling unit (see DESIGN.md and the paper's Figure 14)."
    );
}

//! Per-instruction pipeline timelines: watch macro-op fusion happen.
//! Prints a chart of fetch/insert/issue/exec/commit cycles for the first
//! instructions of a workload — fused pairs share one issue cycle and
//! are marked with their MOP head's id.
//!
//! ```text
//! cargo run --release --example timeline [bench] [rows]
//! ```

use mopsched::core::WakeupStyle;
use mopsched::sim::{MachineConfig, Simulator};
use mopsched::workload::spec2000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.first().map(String::as_str).unwrap_or("gzip");
    let rows: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(48);

    let Some(spec) = spec2000::by_name(bench) else {
        eprintln!("unknown benchmark `{bench}`");
        std::process::exit(1);
    };

    let trace = spec.trace(42);
    let program = {
        use mopsched::isa::TraceSource;
        trace.program().clone()
    };
    let mut sim = Simulator::new(
        MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
        trace,
    );
    sim.enable_timeline(rows);
    // Run long enough that pointers are detected and the loop body is
    // re-fetched with fusion active, then re-run with a fresh recorder
    // window by simply showing the captured first uops (these include the
    // un-fused warmup — informative in itself).
    sim.run(5_000);

    let timeline = sim.timeline().expect("enabled above");
    println!(
        "pipeline timeline for `{bench}` (macro-op scheduling, first {} uops):\n",
        timeline.entries().len()
    );
    print!("{}", timeline.render(&program));

    // Also drop a Kanata log for the Konata pipeline viewer.
    let kanata_path = format!("/tmp/mopsched_{bench}.kanata");
    if std::fs::write(&kanata_path, timeline.to_kanata(&program)).is_ok() {
        println!("\nKanata log written to {kanata_path} (open with the Konata viewer)");
    }
    println!(
        "\nColumns are cycles. `HEAD` marks a macro-op head; `^N` marks a tail\n\
         fused under head N — note the shared issue cycle and consecutive\n\
         exec cycles (payload-RAM sequencing). `[k x issued]` rows were\n\
         selectively replayed after a load miss."
    );
}

//! Run a hand-written assembly kernel through the functional machine and
//! the timing pipeline: the functional interpreter is the golden
//! reference (architectural result), the timing simulator reports how the
//! schedulers fare on real code with loads, stores, branches and calls.
//!
//! ```text
//! cargo run --release --example kernel_pipeline [kernel]
//! ```

use mopsched::asm::Interpreter;
use mopsched::core::WakeupStyle;
use mopsched::isa::Reg;
use mopsched::sim::{MachineConfig, Simulator};
use mopsched::workload::kernels;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("dot_product");
    let Some(kernel) = kernels::by_name(name) else {
        eprintln!(
            "unknown kernel `{name}`; available: {:?}",
            kernels::all().iter().map(|k| k.name).collect::<Vec<_>>()
        );
        std::process::exit(1);
    };

    // Golden functional run.
    let image = kernel.image();
    let (trace, state) = Interpreter::new(&image).run_collect(10_000_000);
    let (reg, expect) = kernel.expect;
    let got = state.int_reg(Reg::int(reg));
    println!(
        "kernel `{name}`: {} static insts, {} dynamic insts",
        image.program.len(),
        trace.len()
    );
    if expect >= 0 {
        assert_eq!(got, expect, "functional result mismatch");
        println!("functional result r{reg} = {got} (expected {expect}) ✓\n");
    } else {
        println!("functional result r{reg} = {got}\n");
    }

    // Timing runs: every scheduler must commit exactly the same stream.
    println!(
        "{:32} {:>8} {:>8} {:>9} {:>8}",
        "scheduler", "cycles", "IPC", "grouped%", "replays"
    );
    for (label, cfg) in [
        ("base", MachineConfig::base_32()),
        ("2-cycle", MachineConfig::two_cycle_32()),
        (
            "macro-op (wired-OR)",
            MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
        ),
        ("select-free (scoreboard)", MachineConfig::select_free_scoreboard_32()),
    ] {
        let stats = Simulator::new(cfg, Interpreter::new(&image)).run(u64::MAX);
        assert_eq!(
            stats.committed as usize,
            trace
                .iter()
                .filter(|d| {
                    image.program.inst(d.sidx).expect("valid").class() != mopsched::isa::InstClass::Nop
                })
                .count(),
            "timing pipeline must commit the functional stream"
        );
        println!(
            "{label:32} {:8} {:8.3} {:9.1} {:8}",
            stats.cycles,
            stats.ipc(),
            100.0 * stats.grouped_frac(),
            stats.queue.load_replay_uops
        );
    }
}

#!/usr/bin/env bash
# Perf-history regression gate.
#
# Compares the newest entry of results/bench_history.jsonl (appended by
# `experiments perf`) against the MEDIAN of the last WINDOW baseline
# entries before it, on simulated cycles per wall-clock second. A median
# baseline absorbs one-off slow machines in the history that a
# last-two comparison would gate against. When every compared entry
# carries the jobs-count-independent "probe_cycles_per_sec_jobs1" field
# it is preferred over the aggregate (which moves with --jobs);
# otherwise the gate falls back to "total_cycles_per_sec".
#
# Fails when the newest entry is more than THRESHOLD_PCT slower than the
# baseline median; `--warn-only` downgrades the failure to a warning
# (used by scripts/verify.sh, where machine load makes wall time noisy).
#
# Usage: scripts/perf_gate.sh [--warn-only] [--threshold PCT] [--window N] [--history PATH]
set -euo pipefail
cd "$(dirname "$0")/.."

WARN_ONLY=0
THRESHOLD_PCT=20
WINDOW=3
HISTORY=results/bench_history.jsonl

while [ $# -gt 0 ]; do
  case "$1" in
    --warn-only) WARN_ONLY=1; shift ;;
    --threshold) THRESHOLD_PCT="$2"; shift 2 ;;
    --window) WINDOW="$2"; shift 2 ;;
    --history) HISTORY="$2"; shift 2 ;;
    *) echo "usage: $0 [--warn-only] [--threshold PCT] [--window N] [--history PATH]" >&2; exit 2 ;;
  esac
done

if [ ! -f "$HISTORY" ]; then
  echo "perf_gate: no history at $HISTORY (run \`experiments perf\` first) — nothing to gate"
  exit 0
fi

lines=$(wc -l < "$HISTORY")
if [ "$lines" -lt 2 ]; then
  echo "perf_gate: only $lines history entr$( [ "$lines" = 1 ] && echo y || echo ies ) — need 2 to compare"
  exit 0
fi

# How many baselines are actually available (at most WINDOW).
baselines=$(( lines - 1 < WINDOW ? lines - 1 : WINDOW ))

# Extract a numeric field from a one-line JSON history entry.
field_of() { # $1=line $2=field
  printf '%s\n' "$1" | sed -n "s/.*\"$2\": \([0-9.]*\).*/\1/p"
}
rev_of() {
  printf '%s\n' "$1" | sed -n 's/.*"git_rev": "\([^"]*\)".*/\1/p'
}

last_line=$(tail -n 1 "$HISTORY")
compared=$(tail -n $(( baselines + 1 )) "$HISTORY")

# Prefer the jobs=1 normalized figure when every compared entry has it.
METRIC=probe_cycles_per_sec_jobs1
while IFS= read -r line; do
  if [ -z "$(field_of "$line" "$METRIC")" ]; then
    METRIC=total_cycles_per_sec
    break
  fi
done <<< "$compared"

last_cps=$(field_of "$last_line" "$METRIC")
if [ -z "$last_cps" ]; then
  echo "perf_gate: malformed history entries (no $METRIC) — skipping"
  exit 0
fi

# Median of the baseline entries (everything in the window but the last).
baseline_cps=$(printf '%s\n' "$compared" | head -n "$baselines" | while IFS= read -r line; do
    field_of "$line" "$METRIC"
  done | sort -n | awk '
    { v[NR] = $1 }
    END {
      if (NR == 0) exit
      if (NR % 2) print v[(NR + 1) / 2]
      else printf "%.1f", (v[NR / 2] + v[NR / 2 + 1]) / 2
    }')

if [ -z "$baseline_cps" ]; then
  echo "perf_gate: malformed history entries (no $METRIC in baselines) — skipping"
  exit 0
fi

echo "perf_gate: median of last $baselines baseline(s) ${baseline_cps} cycles/s -> $(rev_of "$last_line") ${last_cps} cycles/s ($METRIC, threshold -${THRESHOLD_PCT}%)"

regressed=$(awk -v prev="$baseline_cps" -v last="$last_cps" -v pct="$THRESHOLD_PCT" \
  'BEGIN { print (prev > 0 && last < prev * (1 - pct / 100)) ? 1 : 0 }')

if [ "$regressed" = 1 ]; then
  drop=$(awk -v prev="$baseline_cps" -v last="$last_cps" \
    'BEGIN { printf "%.1f", 100 * (1 - last / prev) }')
  if [ "$WARN_ONLY" = 1 ]; then
    echo "perf_gate: WARNING — simulator throughput dropped ${drop}% vs the baseline median (warn-only mode)"
    exit 0
  fi
  echo "perf_gate: FAIL — simulator throughput dropped ${drop}% vs the baseline median (limit ${THRESHOLD_PCT}%)" >&2
  exit 1
fi

echo "perf_gate: ok"

#!/usr/bin/env bash
# Perf-history regression gate.
#
# Compares the last two entries of results/bench_history.jsonl (appended
# by `experiments perf`) on total simulated cycles per wall-clock second.
# Fails when the newest entry is more than THRESHOLD_PCT slower than the
# previous one; `--warn-only` downgrades the failure to a warning (used
# by scripts/verify.sh, where machine load makes wall time noisy).
#
# Usage: scripts/perf_gate.sh [--warn-only] [--threshold PCT] [--history PATH]
set -euo pipefail
cd "$(dirname "$0")/.."

WARN_ONLY=0
THRESHOLD_PCT=20
HISTORY=results/bench_history.jsonl

while [ $# -gt 0 ]; do
  case "$1" in
    --warn-only) WARN_ONLY=1; shift ;;
    --threshold) THRESHOLD_PCT="$2"; shift 2 ;;
    --history) HISTORY="$2"; shift 2 ;;
    *) echo "usage: $0 [--warn-only] [--threshold PCT] [--history PATH]" >&2; exit 2 ;;
  esac
done

if [ ! -f "$HISTORY" ]; then
  echo "perf_gate: no history at $HISTORY (run \`experiments perf\` first) — nothing to gate"
  exit 0
fi

lines=$(wc -l < "$HISTORY")
if [ "$lines" -lt 2 ]; then
  echo "perf_gate: only $lines history entr$( [ "$lines" = 1 ] && echo y || echo ies ) — need 2 to compare"
  exit 0
fi

# Extract "total_cycles_per_sec": N from a one-line JSON history entry.
cps_of() {
  printf '%s\n' "$1" | sed -n 's/.*"total_cycles_per_sec": \([0-9.]*\).*/\1/p'
}
rev_of() {
  printf '%s\n' "$1" | sed -n 's/.*"git_rev": "\([^"]*\)".*/\1/p'
}

prev_line=$(tail -n 2 "$HISTORY" | head -n 1)
last_line=$(tail -n 1 "$HISTORY")
prev_cps=$(cps_of "$prev_line")
last_cps=$(cps_of "$last_line")

if [ -z "$prev_cps" ] || [ -z "$last_cps" ]; then
  echo "perf_gate: malformed history entries (no total_cycles_per_sec) — skipping"
  exit 0
fi

echo "perf_gate: $(rev_of "$prev_line") ${prev_cps} cycles/s -> $(rev_of "$last_line") ${last_cps} cycles/s (threshold -${THRESHOLD_PCT}%)"

regressed=$(awk -v prev="$prev_cps" -v last="$last_cps" -v pct="$THRESHOLD_PCT" \
  'BEGIN { print (prev > 0 && last < prev * (1 - pct / 100)) ? 1 : 0 }')

if [ "$regressed" = 1 ]; then
  drop=$(awk -v prev="$prev_cps" -v last="$last_cps" \
    'BEGIN { printf "%.1f", 100 * (1 - last / prev) }')
  if [ "$WARN_ONLY" = 1 ]; then
    echo "perf_gate: WARNING — simulator throughput dropped ${drop}% (warn-only mode)"
    exit 0
  fi
  echo "perf_gate: FAIL — simulator throughput dropped ${drop}% (limit ${THRESHOLD_PCT}%)" >&2
  exit 1
fi

echo "perf_gate: ok"

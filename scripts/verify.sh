#!/usr/bin/env bash
# Tier-1 verification: everything CI and reviewers rely on.
#   1. release build of the whole workspace
#   2. full test suite (debug builds auto-attach the panicking
#      scheduling-invariant oracle, so this is also the timing suite)
#   3. clippy, warnings denied
#   4. `mossim trace --check` smoke per scheduler model
#   5. `mossim report --json` + `mossim pipeview` smoke per scheduler model
#   6. `mossim cpistack` smoke per scheduler model (conservation + JSON)
#      plus the base/2cycle/mop differential, and the perf-history gate
#      in warn-only mode
#   7. RV32 frontend smoke per scheduler model (assemble a real program,
#      run it, trace --check, cpistack), the `mossim rvdiff` differential
#      oracle over the whole suite (with its JSON report), and its
#      base/2cycle/mop CPI stacks
#   8. run-ledger smoke against a throwaway root: save -> history ->
#      diff (must be sim-identical) -> dashboard, then an incremental
#      `experiments perf --ledger` re-sweep asserting at least one
#      cache hit
# Optional extras with --full: jobs-determinism check + perf snapshot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, workspace) =="
cargo build --release --workspace

echo "== tests (oracle-enabled debug builds) =="
cargo test -q --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== trace --check smoke (atomic / pipelined / macro-op) =="
for sched in base 2cycle mop-wor; do
    ./target/release/mossim trace --bench gzip --sched "$sched" \
        --insts 10000 --check --out "/tmp/verify_trace_${sched}.jsonl" \
        > "/tmp/verify_trace_${sched}.txt"
    grep -q "no scheduling-invariant violations" "/tmp/verify_trace_${sched}.txt"
    echo "  $sched: oracle clean"
done

echo "== report/pipeview smoke (atomic / pipelined / macro-op) =="
for sched in base 2cycle mop-wor; do
    ./target/release/mossim report --bench gzip --sched "$sched" \
        --insts 10000 --json "/tmp/verify_report_${sched}.json" \
        > "/tmp/verify_report_${sched}.md"
    grep -q "# mossim run report" "/tmp/verify_report_${sched}.md"
    grep -q '"series":{"interval":10000' "/tmp/verify_report_${sched}.json"
    ./target/release/mossim pipeview --bench gzip --sched "$sched" \
        --insts 10000 --uops 64 --out "/tmp/verify_pipeview_${sched}.kanata"
    head -1 "/tmp/verify_pipeview_${sched}.kanata" | grep -q "Kanata"
    echo "  $sched: report + pipeview ok"
done

echo "== cpistack smoke (every scheduler model) =="
for sched in base 2cycle mop-2src mop-wor sf-squash sf-scoreboard spec-wakeup; do
    ./target/release/mossim cpistack --bench gzip --sched "$sched" \
        --insts 10000 --json "/tmp/verify_cpistack_${sched}.json" \
        > "/tmp/verify_cpistack_${sched}.md"
    grep -q "conservation: ok" "/tmp/verify_cpistack_${sched}.md"
    grep -q '"conservation_ok":true' "/tmp/verify_cpistack_${sched}.json"
    grep -q '"cause":"sched_loop"' "/tmp/verify_cpistack_${sched}.json"
    echo "  $sched: slots conserve"
done

echo "== cpistack differential (base vs 2cycle vs mop) =="
./target/release/mossim cpistack --compare base,twocycle,mop --bench gzip \
    --insts 10000 --json /tmp/verify_cpistack_diff.json \
    > /tmp/verify_cpistack_diff.md
grep -q "| sched_loop |" /tmp/verify_cpistack_diff.md
grep -q "conservation: ok for all 3 stacks" /tmp/verify_cpistack_diff.md
grep -q '"deltas":\[{"sched":"2cycle","vs":"base"' /tmp/verify_cpistack_diff.json
echo "  differential stacks ok"

echo "== rv32 frontend smoke (assemble -> run -> trace --check -> cpistack) =="
for sched in base 2cycle mop-2src mop-wor sf-squash sf-scoreboard spec-wakeup; do
    ./target/release/mossim trace --rv tests/programs/sum_loop.s --sched "$sched" \
        --check --out "/tmp/verify_rv_trace_${sched}.jsonl" \
        > "/tmp/verify_rv_trace_${sched}.txt"
    grep -q "no scheduling-invariant violations" "/tmp/verify_rv_trace_${sched}.txt"
    ./target/release/mossim cpistack --rv tests/programs/sum_loop.s --sched "$sched" \
        > "/tmp/verify_rv_cpistack_${sched}.md"
    grep -q "conservation: ok" "/tmp/verify_rv_cpistack_${sched}.md"
    echo "  $sched: rv trace oracle clean + slots conserve"
done

echo "== rv32 differential oracle (full suite x all schedulers) =="
./target/release/mossim rvdiff --json /tmp/verify_rvdiff.json > /tmp/verify_rvdiff.txt
grep -q "all committed traces and final states match the functional oracle" \
    /tmp/verify_rvdiff.txt
grep -q '"failures":0' /tmp/verify_rvdiff.json
grep -q '"sched_loop_share":' /tmp/verify_rvdiff.json
echo "  rvdiff: ok (JSON report clean)"

echo "== rv32 differential cpistack (base vs 2cycle vs mop) =="
./target/release/mossim cpistack --rv sum_loop --compare base,twocycle,mop \
    > /tmp/verify_rv_cpistack_diff.md
grep -q "| sched_loop |" /tmp/verify_rv_cpistack_diff.md
grep -q "conservation: ok for all 3 stacks" /tmp/verify_rv_cpistack_diff.md
echo "  rv differential stacks ok"

echo "== perf-history gate (warn-only) =="
./scripts/perf_gate.sh --warn-only

echo "== run ledger smoke (save -> history -> diff -> dashboard) =="
LEDGER_DIR=$(mktemp -d /tmp/verify_ledger.XXXXXX)
trap 'rm -rf "$LEDGER_DIR"' EXIT
./target/release/mossim --bench gzip --sched mop-wor --insts 10000 \
    --save --ledger-dir "$LEDGER_DIR" > /dev/null
./target/release/mossim --bench gzip --sched mop-wor --insts 10000 \
    --save --ledger-dir "$LEDGER_DIR" > /dev/null
./target/release/mossim history --ledger-dir "$LEDGER_DIR" > /tmp/verify_ledger_history.md
grep -q "| gzip | mop-wor |" /tmp/verify_ledger_history.md
./target/release/mossim diff latest-1 latest --ledger-dir "$LEDGER_DIR" \
    > /tmp/verify_ledger_diff.md
grep -q "Verdict: sim-identical" /tmp/verify_ledger_diff.md
./target/release/mossim dashboard --ledger-dir "$LEDGER_DIR" \
    --html --out /tmp/verify_ledger_dash.html
grep -q "mopsched regression dashboard" /tmp/verify_ledger_dash.html
echo "  save/history/diff/dashboard ok (two saves of one config are sim-identical)"

echo "== incremental perf re-sweep (ledger cache) =="
MOS_LEDGER_DIR="$LEDGER_DIR" ./target/release/experiments perf --insts 2000 --jobs 2 \
    --ledger --out /tmp/verify_ledger_b1.json --history /tmp/verify_ledger_h.jsonl \
    2> /tmp/verify_ledger_p1.err > /dev/null
MOS_LEDGER_DIR="$LEDGER_DIR" ./target/release/experiments perf --insts 2000 --jobs 2 \
    --ledger --out /tmp/verify_ledger_b2.json --history /tmp/verify_ledger_h.jsonl \
    2> /tmp/verify_ledger_p2.err > /dev/null
grep -q '"cached": true' /tmp/verify_ledger_b2.json
grep -q "skipping history append" /tmp/verify_ledger_p2.err
echo "  re-sweep served from the ledger (cached: true)"

if [[ "${1:-}" == "--full" ]]; then
    bin=./target/release/experiments
    echo "== determinism: fig14 --jobs 1 vs --jobs 8 =="
    "$bin" fig14 --insts 20000 --jobs 1 > /tmp/verify_j1.txt
    "$bin" fig14 --insts 20000 --jobs 8 > /tmp/verify_j8.txt
    cmp /tmp/verify_j1.txt /tmp/verify_j8.txt
    echo "byte-identical"

    echo "== perf snapshot -> BENCH_sim.json =="
    "$bin" perf --insts 20000
fi

echo "verify: OK"

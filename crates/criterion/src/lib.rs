//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the subset of criterion's API its benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Bencher::iter`], `sample_size`, and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark runs a short warmup, then
//! `sample_size` timed samples; each sample times a batch of iterations
//! sized so one sample takes roughly [`TARGET_SAMPLE`]. Mean / min / max
//! per-iteration times are printed. There is no statistical analysis,
//! HTML report, or saved baseline — this is a smoke-grade harness that
//! keeps `cargo bench` working offline with real timings.

use std::time::{Duration, Instant};

/// Target wall-clock time for one timed sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(50);

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark: calibrate a batch size, take samples, report.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            batch: 1,
            last_batch_time: Duration::ZERO,
        };
        // Warmup + batch calibration: grow the batch until one batch
        // takes at least TARGET_SAMPLE (or a cap is reached).
        loop {
            f(&mut b);
            if b.last_batch_time >= TARGET_SAMPLE || b.batch >= 1 << 20 {
                break;
            }
            b.batch *= 2;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut b);
            samples.push(b.last_batch_time.as_secs_f64() / b.batch as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{name:40} mean {:>12} min {:>12} max {:>12} ({} samples x {} iters)",
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max),
            self.sample_size,
            b.batch
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Per-benchmark iteration driver (subset of `criterion::Bencher`).
pub struct Bencher {
    batch: u64,
    last_batch_time: Duration,
}

impl Bencher {
    /// Time `routine` over the current batch size.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.batch {
            std::hint::black_box(routine());
        }
        self.last_batch_time = start.elapsed();
    }
}

/// Prevent the optimizer from discarding a value (re-export convenience;
/// benches here import `std::hint::black_box` directly as well).
pub use std::hint::black_box;

/// Define a benchmark group: a function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; a full bench
            // sweep is minutes of work, so only run when invoked as a real
            // bench (`cargo bench` passes `--bench`).
            let bench_mode = std::env::args().any(|a| a == "--bench");
            let test_mode = std::env::args().any(|a| a == "--test");
            if test_mode || !bench_mode {
                println!("(criterion stand-in: skipping benches outside `cargo bench`)");
                return;
            }
            $($group();)+
        }
    };
}

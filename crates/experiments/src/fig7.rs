//! Figure 7: characterization of instructions groupable into different
//! MOP sizes.
//!
//! Idealized greedy grouping over the committed stream within an
//! 8-instruction scope — no pipeline, no pointers, no cycle heuristic —
//! for two configurations: **2x MOP** (pairs only) and **8x MOP** (chains
//! extended as far as the scope allows). Reported per benchmark as
//! fractions of committed instructions: grouped value-generating
//! candidates, grouped non-value-generating candidates, candidates left
//! ungrouped, and non-candidates; plus the average number of instructions
//! per formed 8x MOP (the paper measures 2.2–3.0).

use std::collections::VecDeque;
use std::fmt;

use mos_isa::{Reg, TraceSource};
use mos_workload::spec2000;

/// Grouping outcome for one benchmark and MOP-size configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupingShare {
    /// Grouped value-generating candidates (fraction of committed).
    pub valuegen: f64,
    /// Grouped non-value-generating candidates.
    pub nonvaluegen: f64,
    /// Candidates that found no group.
    pub candidate_ungrouped: f64,
    /// Multi-cycle instructions (never candidates).
    pub not_candidate: f64,
    /// Mean instructions per formed MOP.
    pub avg_mop_size: f64,
}

/// One benchmark's row: 2x and 8x configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Benchmark name.
    pub bench: String,
    /// Pairs only.
    pub x2: GroupingShare,
    /// Chains up to 8.
    pub x8: GroupingShare,
}

/// The full Figure 7 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// Rows in the paper's benchmark order.
    pub rows: Vec<Fig7Row>,
}

#[derive(Debug, Clone)]
struct WinInst {
    pos: u64,
    is_candidate: bool,
    is_valuegen: bool,
    dst: Option<Reg>,
    /// Window positions of direct producers.
    producers: Vec<u64>,
    /// Group this instruction joined, if any (position of group head).
    group: Option<u64>,
}

fn grouping(name: &str, insts: usize, max_size: usize) -> GroupingShare {
    const SCOPE: u64 = 8;
    let spec = spec2000::by_name(name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    let mut trace = spec.trace(crate::runner::SEED);
    let program = trace.program().clone();

    let mut last_writer: [Option<u64>; Reg::NUM] = [None; Reg::NUM];
    let mut window: VecDeque<WinInst> = VecDeque::new();
    let mut counts = (0u64, 0u64, 0u64, 0u64); // vg, nvg, cand_ungrouped, notcand
    let mut mop_sizes: Vec<(u64, u64)> = Vec::new(); // (head pos, members)
    let mut total = 0u64;

    let retire = |w: &WinInst,
                      counts: &mut (u64, u64, u64, u64)| {
        if !w.is_candidate {
            counts.3 += 1;
        } else if w.group.is_some() {
            if w.is_valuegen {
                counts.0 += 1;
            } else {
                counts.1 += 1;
            }
        } else {
            counts.2 += 1;
        }
    };

    for (k, d) in trace.by_ref().take(insts).enumerate() {
        let k = k as u64;
        let inst = program.inst(d.sidx).expect("trace sidx valid");
        total += 1;
        // Slide the window.
        while window.front().is_some_and(|w| w.pos + SCOPE <= k) {
            let w = window.pop_front().expect("nonempty");
            retire(&w, &mut counts);
        }
        let producers: Vec<u64> = inst
            .src_regs()
            .filter_map(|s| last_writer[s.index()])
            .filter(|&p| p + SCOPE > k)
            .collect();
        let mut wi = WinInst {
            pos: k,
            is_candidate: inst.is_mop_candidate(),
            is_valuegen: inst.is_value_generating_candidate(),
            dst: inst.dst(),
            producers,
            group: None,
        };
        // Greedy grouping: join the group of the nearest in-window
        // producer that can accept us.
        if wi.is_candidate {
            for &p in &wi.producers {
                let Some(prod) = window.iter().find(|w| w.pos == p) else {
                    continue;
                };
                // The producer itself must be a value-generating candidate
                // (head or chain member).
                if !prod.is_valuegen {
                    continue;
                }
                let head = prod.group.unwrap_or(prod.pos);
                // Scope is anchored at the group head.
                if head + SCOPE <= k {
                    continue;
                }
                let members = mop_sizes
                    .iter()
                    .find(|(h, _)| *h == head)
                    .map(|(_, m)| *m)
                    .unwrap_or(1);
                if members as usize >= max_size {
                    continue;
                }
                // The producer must be free (its own group = itself) or
                // the chain tail; greedy: any member may chain us as long
                // as size allows (idealized characterization).
                wi.group = Some(head);
                match mop_sizes.iter_mut().find(|(h, _)| *h == head) {
                    Some((_, m)) => *m += 1,
                    None => {
                        mop_sizes.push((head, 2));
                        // Mark the head itself as grouped.
                        if let Some(h) = window.iter_mut().find(|w| w.pos == head) {
                            h.group = Some(head);
                        }
                    }
                }
                break;
            }
        }
        if let Some(dst) = wi.dst {
            last_writer[dst.index()] = Some(k);
        }
        window.push_back(wi);
    }
    for w in window {
        retire(&w, &mut counts);
    }

    let t = total.max(1) as f64;
    let avg = if mop_sizes.is_empty() {
        0.0
    } else {
        mop_sizes.iter().map(|(_, m)| *m).sum::<u64>() as f64 / mop_sizes.len() as f64
    };
    GroupingShare {
        valuegen: counts.0 as f64 / t,
        nonvaluegen: counts.1 as f64 / t,
        candidate_ungrouped: counts.2 as f64 / t,
        not_candidate: counts.3 as f64 / t,
        avg_mop_size: avg,
    }
}

/// Analyze one benchmark.
pub fn analyze_one(name: &str, insts: usize) -> Fig7Row {
    Fig7Row {
        bench: name.to_owned(),
        x2: grouping(name, insts, 2),
        x8: grouping(name, insts, 8),
    }
}

/// Run the characterization over every benchmark.
pub fn run(insts: usize) -> Fig7Result {
    Fig7Result {
        rows: spec2000::names()
            .into_iter()
            .map(|n| analyze_one(n, insts))
            .collect(),
    }
}

impl GroupingShare {
    /// Total grouped fraction.
    pub fn grouped(&self) -> f64 {
        self.valuegen + self.nonvaluegen
    }
}

impl fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 7: instructions groupable into different MOP sizes")?;
        writeln!(
            f,
            "{:8} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} {:>8}  (% of committed)",
            "bench", "2x-vg", "2x-nvg", "2x-tot", "8x-vg", "8x-nvg", "8x-tot", "avg8x"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:8} | {:6.1} {:6.1} {:6.1} | {:6.1} {:6.1} {:6.1} {:8.2}",
                r.bench,
                100.0 * r.x2.valuegen,
                100.0 * r.x2.nonvaluegen,
                100.0 * r.x2.grouped(),
                100.0 * r.x8.valuegen,
                100.0 * r.x8.nonvaluegen,
                100.0 * r.x8.grouped(),
                r.x8.avg_mop_size
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let r = analyze_one("parser", 15_000);
        for s in [r.x2, r.x8] {
            let sum = s.valuegen + s.nonvaluegen + s.candidate_ungrouped + s.not_candidate;
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        }
    }

    #[test]
    fn x8_groups_at_least_as_much_as_x2() {
        let r = analyze_one("gzip", 15_000);
        assert!(r.x8.grouped() >= r.x2.grouped() - 1e-9);
        assert!(r.x8.avg_mop_size >= 2.0);
        assert!(r.x2.avg_mop_size <= 2.0 + 1e-9);
    }

    #[test]
    fn grouped_share_is_substantial() {
        // Paper: 32.9 % (2x) / 35.4 % (8x) on average, 18.7 %..47.3 %.
        let r = analyze_one("gzip", 20_000);
        assert!(r.x2.grouped() > 0.25, "2x grouped {:.3}", r.x2.grouped());
        let eon = analyze_one("eon", 20_000);
        assert!(eon.x2.grouped() < r.x2.grouped(), "eon lowest in the paper");
    }

    #[test]
    fn avg_8x_size_in_paper_band() {
        // Paper: 2.2 .. 3.0 instructions per 8x MOP.
        let r = analyze_one("gap", 20_000);
        assert!(
            r.x8.avg_mop_size > 2.0 && r.x8.avg_mop_size < 4.0,
            "avg {:.2}",
            r.x8.avg_mop_size
        );
    }
}

//! Figure 13: grouped instructions in macro-op scheduling — the real
//! pipeline's grouping coverage (as opposed to Figure 7's idealized
//! characterization), for CAM-style 2-source and wired-OR wakeup.

use std::fmt;

use mos_core::{GroupRole, WakeupStyle};
use mos_sim::MachineConfig;
use mos_workload::spec2000;

use crate::runner::{self, Job};

/// Grouping breakdown of committed instructions for one wakeup style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoleShare {
    /// Dependent MOP members that generate values.
    pub valuegen: f64,
    /// Dependent MOP members that do not (branches, store agen).
    pub nonvaluegen: f64,
    /// Independent MOP members (Section 5.4.1).
    pub independent: f64,
    /// Candidates never grouped.
    pub candidate_ungrouped: f64,
    /// Non-candidates.
    pub not_candidate: f64,
}

impl RoleShare {
    /// Total grouped fraction.
    pub fn grouped(&self) -> f64 {
        self.valuegen + self.nonvaluegen + self.independent
    }

    fn from_stats(s: &mos_sim::SimStats) -> RoleShare {
        RoleShare {
            valuegen: s.role_frac(GroupRole::MopValueGen),
            nonvaluegen: s.role_frac(GroupRole::MopNonValueGen),
            independent: s.role_frac(GroupRole::MopIndependent),
            candidate_ungrouped: s.role_frac(GroupRole::NotGrouped),
            not_candidate: s.role_frac(GroupRole::NotCandidate),
        }
    }
}

/// One benchmark's Figure 13 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// Benchmark name.
    pub bench: String,
    /// CAM-style wakeup with two source comparators.
    pub two_src: RoleShare,
    /// Wired-OR wakeup (no source limit).
    pub wired_or: RoleShare,
}

/// The full Figure 13 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Result {
    /// Rows in the paper's benchmark order.
    pub rows: Vec<Fig13Row>,
    /// Mean reduction in scheduler insertions across benchmarks
    /// (paper: 16.2 %).
    pub mean_insert_reduction: f64,
}

/// Run Figure 13 across `jobs` worker threads (32-entry queue, 1 extra
/// formation stage, as in the paper's main configuration).
pub fn run_with(insts: u64, jobs: usize) -> Fig13Result {
    let benches = spec2000::names();
    let grid: Vec<Job> = benches
        .iter()
        .flat_map(|&name| {
            [
                Job::new(
                    name,
                    MachineConfig::macro_op(WakeupStyle::CamTwoSource, Some(32), 1),
                    insts,
                ),
                Job::new(
                    name,
                    MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
                    insts,
                ),
            ]
        })
        .collect();
    let stats = runner::run_jobs(&grid, jobs);
    let mut rows = Vec::new();
    let mut reductions = Vec::new();
    for (&name, pair) in benches.iter().zip(stats.chunks_exact(2)) {
        let (cam, wor) = (&pair[0], &pair[1]);
        reductions.push(wor.insert_reduction());
        rows.push(Fig13Row {
            bench: name.to_owned(),
            two_src: RoleShare::from_stats(cam),
            wired_or: RoleShare::from_stats(wor),
        });
    }
    let mean_insert_reduction = reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
    Fig13Result {
        rows,
        mean_insert_reduction,
    }
}

/// Run Figure 13 (one worker per core).
pub fn run(insts: u64) -> Fig13Result {
    run_with(insts, runner::default_jobs())
}

impl fmt::Display for Fig13Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 13: grouped instructions in macro-op scheduling")?;
        writeln!(
            f,
            "{:8} | {:>5} {:>5} {:>5} {:>6} | {:>5} {:>5} {:>5} {:>6}  (% of committed)",
            "bench", "2s-vg", "2s-nv", "2s-in", "2s-tot", "wo-vg", "wo-nv", "wo-in", "wo-tot"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:8} | {:5.1} {:5.1} {:5.1} {:6.1} | {:5.1} {:5.1} {:5.1} {:6.1}",
                r.bench,
                100.0 * r.two_src.valuegen,
                100.0 * r.two_src.nonvaluegen,
                100.0 * r.two_src.independent,
                100.0 * r.two_src.grouped(),
                100.0 * r.wired_or.valuegen,
                100.0 * r.wired_or.nonvaluegen,
                100.0 * r.wired_or.independent,
                100.0 * r.wired_or.grouped(),
            )?;
        }
        writeln!(
            f,
            "mean reduction in scheduler insertions: {:.1} % (paper: 16.2 %)",
            100.0 * self.mean_insert_reduction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_within_paper_band() {
        // Paper: 28..46 % of instructions grouped per benchmark.
        let r = run(runner::QUICK_INSTS);
        for row in &r.rows {
            assert!(
                row.wired_or.grouped() > 0.15 && row.wired_or.grouped() < 0.65,
                "{}: {:.2}",
                row.bench,
                row.wired_or.grouped()
            );
        }
        assert!(r.mean_insert_reduction > 0.08 && r.mean_insert_reduction < 0.30);
    }
}

//! # mos-experiments
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation, each returning a typed result that renders the same rows
//! the paper reports and is consumed by the Criterion benches in
//! `mos-bench` and by the `experiments` CLI:
//!
//! ```text
//! experiments table1|table2|fig6|fig7|fig13|fig14|fig15|fig16|ablations|all
//! ```
//!
//! * [`fig6`] / [`fig7`] — the machine-independent characterizations of
//!   Section 4 (dependence-edge distance; groupable instructions).
//! * [`tables`] — Table 1 (machine configuration) and Table 2 (base IPCs).
//! * [`fig13`] — grouped-instruction breakdown in the real pipeline.
//! * [`fig14`] — vanilla macro-op scheduling (unrestricted queue).
//! * [`fig15`] — macro-op scheduling under issue-queue contention with
//!   0/1/2 extra formation stages.
//! * [`fig16`] — comparison against select-free scheduling.
//! * [`ablations`] — the design-choice studies the paper calls out:
//!   detection delay (3 vs 100 cycles), cycle-detection heuristic vs
//!   precise, the last-arriving-operand filter, independent MOPs, and
//!   MOP sizes beyond 2 (future work).
//! * [`extensions`] — studies beyond the paper: the full pipelined-
//!   scheduler design space including Stark et al.'s speculative wakeup,
//!   a detection-scope sweep, and the effective-window quantification.
//! * [`rvsuite`] — the RV32 real-program suite under every scheduler,
//!   with the pairability / sched_loop-share probe on real code.
//!
//! Absolute numbers come from the documented synthetic-workload
//! substitution (see DESIGN.md); the *shape* of each result — who wins,
//! by roughly what factor, where the crossovers fall — is the
//! reproduction target, recorded against the paper in EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod ablations;
pub mod extensions;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig6;
pub mod fig7;
pub mod ledgered;
pub mod runner;
pub mod rvsuite;
pub mod tables;

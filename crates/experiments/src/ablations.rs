//! Ablation studies for the design choices the paper calls out:
//!
//! * **Detection delay** — 3 vs 100 cycles (Section 5.1.2: the paper
//!   measures an average 0.22 % loss, worst 0.76 % in parser, because
//!   pointers stored in the I-cache are reused repeatedly).
//! * **Cycle-detection policy** — the conservative heuristic vs precise
//!   in-window detection (Section 5.1.1: the heuristic keeps over 90 % of
//!   grouping opportunities).
//! * **Last-arriving-operand filter** — on/off (Section 5.4.2: gap loses
//!   opportunities without it).
//! * **Independent MOPs** — on/off (Section 5.4.1: they serialize
//!   independent work but reduce queue contention; eon shows the cost).
//! * **MOP size** — 2/3/4-instruction MOPs with wired-OR wakeup (the
//!   paper's future-work configurations, enabled by chained pointers).

use std::fmt;

use mos_core::{CycleDetection, WakeupStyle};
use mos_sim::MachineConfig;

use crate::runner::{self, Job};

/// Benchmarks used for the ablations (a representative spread: the most
/// scheduler-sensitive, the long-distance case, the queue-pressure case
/// and the independent-MOP-sensitive case).
pub const ABLATION_BENCHES: [&str; 5] = ["gap", "gzip", "parser", "vortex", "eon"];

/// One named configuration's IPC per benchmark, normalized to a named
/// reference configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablation {
    /// Study name.
    pub name: String,
    /// `(benchmark, reference IPC, variant IPCs by arm)` rows.
    pub rows: Vec<(String, f64, Vec<f64>)>,
    /// Arm labels (excluding the reference).
    pub arms: Vec<String>,
    /// Optional extra per-benchmark annotation (e.g. grouping fraction).
    pub notes: Vec<String>,
}

impl fmt::Display for Ablation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: {}", self.name)?;
        write!(f, "{:8} {:>9}", "bench", "reference")?;
        for a in &self.arms {
            write!(f, " {a:>12}")?;
        }
        writeln!(f)?;
        for (i, (bench, base, arms)) in self.rows.iter().enumerate() {
            write!(f, "{bench:8} {base:9.3}")?;
            for v in arms {
                write!(f, " {:12.3}", v / base)?;
            }
            if let Some(n) = self.notes.get(i) {
                if !n.is_empty() {
                    write!(f, "   {n}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn mop_cfg(stages: u32) -> MachineConfig {
    MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), stages)
}

/// Run one `(reference, variants...)` config set per ablation benchmark
/// and return, per benchmark, the stats in config order.
fn run_arms(cfgs: &[MachineConfig], insts: u64, jobs: usize) -> Vec<Vec<mos_sim::SimStats>> {
    let grid: Vec<Job> = ABLATION_BENCHES
        .iter()
        .flat_map(|&b| cfgs.iter().map(move |c| Job::new(b, c.clone(), insts)))
        .collect();
    runner::run_jobs(&grid, jobs)
        .chunks_exact(cfgs.len())
        .map(<[mos_sim::SimStats]>::to_vec)
        .collect()
}

/// Detection delay: 3 (reference) vs 100 cycles.
pub fn detection_delay_with(insts: u64, jobs: usize) -> Ablation {
    let mut slow_cfg = mop_cfg(1);
    slow_cfg.sched.mop.detection_delay = 100;
    let rows = ABLATION_BENCHES
        .iter()
        .zip(run_arms(&[mop_cfg(1), slow_cfg], insts, jobs))
        .map(|(&b, s)| (b.to_owned(), s[0].ipc(), vec![s[1].ipc()]))
        .collect();
    Ablation {
        name: "MOP detection delay (3 cycles -> 100 cycles); paper: avg -0.22 %, worst -0.76 %"
            .into(),
        rows,
        arms: vec!["delay=100".into()],
        notes: Vec::new(),
    }
}

/// Cycle detection: conservative heuristic (reference) vs precise.
pub fn cycle_heuristic_with(insts: u64, jobs: usize) -> Ablation {
    let mut precise_cfg = mop_cfg(1);
    precise_cfg.sched.mop.cycle_detection = CycleDetection::Precise;
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for (&b, s) in ABLATION_BENCHES
        .iter()
        .zip(run_arms(&[mop_cfg(1), precise_cfg], insts, jobs))
    {
        let (h, p) = (&s[0], &s[1]);
        let ratio = if p.grouped_frac() > 0.0 {
            h.grouped_frac() / p.grouped_frac()
        } else {
            1.0
        };
        notes.push(format!(
            "grouped {:.1}% vs {:.1}% precise ({:.0}% of opportunities kept)",
            100.0 * h.grouped_frac(),
            100.0 * p.grouped_frac(),
            100.0 * ratio,
        ));
        rows.push((b.to_owned(), h.ipc(), vec![p.ipc()]));
    }
    Ablation {
        name: "cycle detection: heuristic (reference) vs precise; paper: heuristic keeps >90 %"
            .into(),
        rows,
        arms: vec!["precise".into()],
        notes,
    }
}

/// Last-arriving-operand filter: on (reference) vs off.
pub fn last_arrival_filter_with(insts: u64, jobs: usize) -> Ablation {
    let mut off_cfg = mop_cfg(1);
    off_cfg.sched.mop.last_arrival_filter = false;
    let rows = ABLATION_BENCHES
        .iter()
        .zip(run_arms(&[mop_cfg(1), off_cfg], insts, jobs))
        .map(|(&b, s)| (b.to_owned(), s[0].ipc(), vec![s[1].ipc()]))
        .collect();
    Ablation {
        name: "last-arriving-operand filter: on (reference) vs off (Section 5.4.2)".into(),
        rows,
        arms: vec!["filter off".into()],
        notes: Vec::new(),
    }
}

/// Independent MOPs: on (reference) vs off.
pub fn independent_mops_with(insts: u64, jobs: usize) -> Ablation {
    let mut off_cfg = mop_cfg(1);
    off_cfg.sched.mop.group_independent = false;
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for (&b, s) in ABLATION_BENCHES
        .iter()
        .zip(run_arms(&[mop_cfg(1), off_cfg], insts, jobs))
    {
        let (on, off) = (&s[0], &s[1]);
        notes.push(format!(
            "grouped {:.1}% -> {:.1}% without",
            100.0 * on.grouped_frac(),
            100.0 * off.grouped_frac()
        ));
        rows.push((b.to_owned(), on.ipc(), vec![off.ipc()]));
    }
    Ablation {
        name: "independent MOPs: on (reference) vs off (Section 5.4.1)".into(),
        rows,
        arms: vec!["indep off".into()],
        notes,
    }
}

/// MOP sizes 2 (reference), 3 and 4 — the paper's future work.
pub fn mop_size_with(insts: u64, jobs: usize) -> Ablation {
    let cfgs: Vec<MachineConfig> = std::iter::once(mop_cfg(1))
        .chain([3usize, 4].into_iter().map(|size| {
            let mut cfg = mop_cfg(1);
            cfg.sched.mop.max_mop_size = size;
            cfg
        }))
        .collect();
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for (&b, s) in ABLATION_BENCHES.iter().zip(run_arms(&cfgs, insts, jobs)) {
        let two = &s[0];
        let mut sizes_note = format!("grouped {:.1}%", 100.0 * two.grouped_frac());
        for bigger in &s[1..] {
            sizes_note.push_str(&format!(" / {:.1}%", 100.0 * bigger.grouped_frac()));
        }
        notes.push(sizes_note);
        rows.push((
            b.to_owned(),
            two.ipc(),
            s[1..].iter().map(mos_sim::SimStats::ipc).collect(),
        ));
    }
    Ablation {
        name: "MOP size: 2 (reference) vs 3 vs 4 instructions (future work, wired-OR)".into(),
        rows,
        arms: vec!["size=3".into(), "size=4".into()],
        notes,
    }
}

/// Detection delay study, one worker per core.
pub fn detection_delay(insts: u64) -> Ablation {
    detection_delay_with(insts, runner::default_jobs())
}

/// Cycle-detection study, one worker per core.
pub fn cycle_heuristic(insts: u64) -> Ablation {
    cycle_heuristic_with(insts, runner::default_jobs())
}

/// Last-arrival-filter study, one worker per core.
pub fn last_arrival_filter(insts: u64) -> Ablation {
    last_arrival_filter_with(insts, runner::default_jobs())
}

/// Independent-MOP study, one worker per core.
pub fn independent_mops(insts: u64) -> Ablation {
    independent_mops_with(insts, runner::default_jobs())
}

/// MOP-size study, one worker per core.
pub fn mop_size(insts: u64) -> Ablation {
    mop_size_with(insts, runner::default_jobs())
}

/// Run every ablation across `jobs` worker threads and render them.
pub fn run_all_with(insts: u64, jobs: usize) -> String {
    [
        detection_delay_with(insts, jobs),
        cycle_heuristic_with(insts, jobs),
        last_arrival_filter_with(insts, jobs),
        independent_mops_with(insts, jobs),
        mop_size_with(insts, jobs),
    ]
    .iter()
    .map(|a| a.to_string())
    .collect::<Vec<_>>()
    .join("\n")
}

/// Run every ablation (one worker per core) and render them.
pub fn run_all(insts: u64) -> String {
    run_all_with(insts, runner::default_jobs())
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 15_000;

    #[test]
    fn detection_delay_costs_little() {
        let a = detection_delay(N);
        for (bench, base, arms) in &a.rows {
            let rel = arms[0] / base;
            assert!(rel > 0.95, "{bench}: delay=100 at {rel:.3} of fast detection");
        }
    }

    #[test]
    fn heuristic_keeps_most_opportunities() {
        let a = cycle_heuristic(N);
        for (bench, base, arms) in &a.rows {
            let rel = arms[0] / base;
            assert!(
                rel < 1.05 && rel > 0.95,
                "{bench}: precise vs heuristic {rel:.3}"
            );
        }
    }

    #[test]
    fn larger_mops_group_no_less() {
        let a = mop_size(N);
        assert_eq!(a.arms.len(), 2);
        for (bench, base, arms) in &a.rows {
            // Bigger MOPs should not catastrophically hurt.
            assert!(arms[1] / base > 0.85, "{bench}: size=4 {:.3}", arms[1] / base);
        }
    }
}

//! Ledger-backed figure sweeps: the incremental path behind
//! `experiments perf --ledger`.
//!
//! Every figure sweep gets a content-addressed key over (figure name,
//! instruction budget, git revision, ledger schema). The synthetic
//! programs and machine configurations a figure runs are generated from
//! in-repo constants, so the git revision covers them: same revision +
//! same budget ⇒ byte-identical sim-side results (that is the repo's
//! jobs-determinism contract). [`run_figure`] therefore serves a key
//! already in the ledger straight from the archive — marked
//! `cached: true` in the index, the record file untouched — and only
//! simulates unseen keys, making re-sweeps incremental.

use std::time::Instant;

use mos_ledger::{run_key, Ledger, RunIdent, RunRecord, SCHEMA_VERSION};

use crate::runner;
use crate::rvsuite::RvProbe;

/// Outcome of one (possibly cached) figure sweep.
pub struct FigureOutcome {
    /// Figure name (`table2`, `fig13`, …, `rv`).
    pub name: &'static str,
    /// Wall time of this invocation (near zero on a cache hit).
    pub wall_seconds: f64,
    /// Simulated cycles across the sweep's runs.
    pub sim_cycles: u64,
    /// Committed uops across the sweep's runs.
    pub sim_commits: u64,
    /// Scheduler kinds the sweep exercised.
    pub sched_kinds: Vec<String>,
    /// Whether the result came from the ledger instead of simulation.
    pub cached: bool,
    /// The sweep's run key, when a ledger was in use.
    pub key: Option<String>,
}

impl FigureOutcome {
    /// Committed uops per simulated cycle.
    pub fn ipc(&self) -> f64 {
        self.sim_commits as f64 / (self.sim_cycles.max(1)) as f64
    }
}

fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn figure_key(name: &str, insts: u64, git_rev: &str) -> String {
    run_key(
        &RunIdent {
            kind: "figure",
            bench: name,
            source: "sweep",
            sched: "all",
            insts,
            seed: 0,
            program_sha: "-",
            git_rev,
        },
        None,
    )
}

/// Run one figure sweep through the ledger.
///
/// With no ledger this times `run` and drains the global sim counters —
/// exactly the old `perf` protocol. With a ledger, a key already
/// archived is served from the record (`cached: true`); a fresh run is
/// archived under its key. The caller must have drained the counters
/// before the first call; this function leaves them drained.
pub fn run_figure(
    name: &'static str,
    insts: u64,
    ledger: Option<&Ledger>,
    git_rev: &str,
    run: impl FnOnce(),
) -> FigureOutcome {
    let key = ledger.map(|_| figure_key(name, insts, git_rev));
    if let (Some(store), Some(key)) = (ledger, &key) {
        if store.contains(key) {
            let start = Instant::now();
            match store.load(key) {
                Ok(mut record) => {
                    record.cached = true;
                    record.unix_time = now_unix();
                    if let Err(e) = store.append_index(&record) {
                        eprintln!("perf: ledger index append failed: {e}");
                    }
                    return FigureOutcome {
                        name,
                        wall_seconds: start.elapsed().as_secs_f64(),
                        sim_cycles: record.total("cycles").unwrap_or(0.0) as u64,
                        sim_commits: record.total("committed").unwrap_or(0.0) as u64,
                        sched_kinds: record.sched_kinds,
                        cached: true,
                        key: Some(key.clone()),
                    };
                }
                // A corrupt record falls through to a fresh simulation,
                // which re-archives it.
                Err(e) => eprintln!("perf: ignoring unreadable record for {name}: {e}"),
            }
        }
    }

    let start = Instant::now();
    run();
    let wall_seconds = start.elapsed().as_secs_f64();
    let sim_cycles = runner::take_simulated_cycles();
    let sim_commits = runner::take_simulated_commits();
    let sched_kinds: Vec<String> = runner::take_sched_kinds()
        .into_iter()
        .map(str::to_string)
        .collect();

    if let (Some(store), Some(key)) = (ledger, &key) {
        let record = RunRecord {
            schema: SCHEMA_VERSION,
            key: key.clone(),
            kind: "figure".into(),
            bench: name.into(),
            source: "sweep".into(),
            sched: "all".into(),
            insts,
            seed: 0,
            git_rev: git_rev.into(),
            unix_time: now_unix(),
            host_cycles_per_sec: sim_cycles as f64 / wall_seconds.max(1e-9),
            cached: false,
            sched_kinds: sched_kinds.clone(),
            totals: vec![
                ("cycles".into(), sim_cycles as f64),
                ("committed".into(), sim_commits as f64),
                (
                    "ipc".into(),
                    sim_commits as f64 / (sim_cycles.max(1)) as f64,
                ),
            ],
            cpi: None,
            report: None,
        };
        if let Err(e) = store.save(&record) {
            eprintln!("perf: ledger save failed for {name}: {e}");
        }
    }

    FigureOutcome {
        name,
        wall_seconds,
        sim_cycles,
        sim_commits,
        sched_kinds,
        cached: false,
        key,
    }
}

/// Archive the RV32 probe summary: per-program pairability and
/// sched_loop shares, as flat totals (`pairability.<prog>`,
/// `sched_loop_2cycle.<prog>`, `sched_loop_mop.<prog>`). The dashboard's
/// trend section reads these back across revisions.
pub fn save_rv_probe(store: &Ledger, git_rev: &str, probes: &[RvProbe]) {
    let key = run_key(
        &RunIdent {
            kind: "rv_probe",
            bench: "rv-suite",
            source: "rv",
            sched: "all",
            insts: 0,
            seed: 0,
            program_sha: "-",
            git_rev,
        },
        None,
    );
    let mut totals = Vec::new();
    for p in probes {
        totals.push((format!("pairability.{}", p.program), p.pairability));
        totals.push((format!("sched_loop_2cycle.{}", p.program), p.sched_loop_2cycle));
        totals.push((format!("sched_loop_mop.{}", p.program), p.sched_loop_mop));
    }
    let record = RunRecord {
        schema: SCHEMA_VERSION,
        key,
        kind: "rv_probe".into(),
        bench: "rv-suite".into(),
        source: "rv".into(),
        sched: "all".into(),
        insts: 0,
        seed: 0,
        git_rev: git_rev.into(),
        unix_time: now_unix(),
        host_cycles_per_sec: 0.0,
        cached: false,
        sched_kinds: Vec::new(),
        totals,
        cpi: None,
        report: None,
    };
    if let Err(e) = store.save(&record) {
        eprintln!("perf: ledger save failed for rv probe: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mos_ledgered_test_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_sweep_is_served_from_the_ledger() {
        let store = Ledger::open(temp_root("figure"));
        // Drain whatever other tests in this process left behind.
        runner::take_simulated_cycles();
        runner::take_simulated_commits();
        runner::take_sched_kinds();

        let mut runs = 0;
        let fresh = run_figure("table2", 500, Some(&store), "abc1234", || {
            runs += 1;
            let cfg = mos_sim::MachineConfig::base_32();
            let job = runner::Job::new("gzip", cfg, 500);
            let stats = job.run();
            runner::tally(&stats, &job.cfg);
        });
        assert_eq!(runs, 1);
        assert!(!fresh.cached);
        assert!(fresh.sim_cycles > 0);

        let hit = run_figure("table2", 500, Some(&store), "abc1234", || {
            runs += 1;
        });
        assert_eq!(runs, 1, "cache hit must not re-run the sweep");
        assert!(hit.cached);
        assert_eq!(hit.sim_cycles, fresh.sim_cycles);
        assert_eq!(hit.sim_commits, fresh.sim_commits);
        assert_eq!(hit.sched_kinds, fresh.sched_kinds);
        assert_eq!(hit.key, fresh.key);

        // A different budget or revision misses.
        assert_ne!(
            figure_key("table2", 500, "abc1234"),
            figure_key("table2", 501, "abc1234")
        );
        assert_ne!(
            figure_key("table2", 500, "abc1234"),
            figure_key("table2", 500, "def5678")
        );
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn rv_probe_records_flatten_per_program() {
        let store = Ledger::open(temp_root("rvprobe"));
        let probes = vec![RvProbe {
            program: "rv_gcd",
            pairability: 0.4,
            sched_loop_2cycle: 0.3,
            sched_loop_mop: 0.1,
        }];
        save_rv_probe(&store, "abc1234", &probes);
        let key = store.resolve("latest").unwrap();
        let rec = store.load(&key).unwrap();
        assert_eq!(rec.kind, "rv_probe");
        assert_eq!(rec.total("sched_loop_mop.rv_gcd"), Some(0.1));
        assert_eq!(rec.total("pairability.rv_gcd"), Some(0.4));
        let _ = std::fs::remove_dir_all(store.root());
    }
}

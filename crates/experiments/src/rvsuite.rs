//! The RV32 suite as an experiment workload: run every real program in
//! `mos_rv::suite` under every scheduler kind, and probe the two numbers
//! the paper's story turns on for real code — MOP pairability (what
//! fraction of issued entries were grouped) and the sched_loop CPI share
//! (the loose-loop tax the 2-cycle scheduler pays and macro-op
//! scheduling removes).
//!
//! Unlike the synthetic benchmark figures, these runs execute to the
//! program's own halt (the suite programs are small), so the sweep is
//! budget-independent. `experiments rv` prints the table;
//! `experiments perf` times the sweep and records the probe in
//! `BENCH_sim.json`.

use std::fmt;

use mos_core::SlotCause;
use mos_rv::suite::{self, RvTestProgram};
use mos_rv::{config_for, RvTraceSource, SCHED_KINDS};
use mos_sim::{CpiStack, Simulator, SimStats};

use crate::runner;

/// One (program, scheduler) simulation of the sweep.
#[derive(Debug, Clone)]
pub struct RvRun {
    /// Suite program name.
    pub program: &'static str,
    /// Scheduler label (one of [`mos_rv::SCHED_KINDS`]).
    pub sched: &'static str,
    /// Run statistics (the program ran to its halt).
    pub stats: SimStats,
}

fn run_to_halt(p: &RvTestProgram, sched: &str, accounted: bool) -> SimStats {
    let prog = p.assemble();
    let cfg = config_for(sched).unwrap_or_else(|| panic!("unknown scheduler `{sched}`"));
    let trace = RvTraceSource::new(&prog)
        .unwrap_or_else(|e| panic!("suite program `{}` does not lower: {e}", p.name));
    let mut sim = Simulator::new(cfg.clone(), trace);
    if accounted {
        sim.enable_slot_accounting();
    }
    let stats = sim.run(u64::MAX);
    runner::tally(&stats, &cfg);
    stats
}

/// Run the whole suite under every scheduler kind (fanned across `jobs`
/// worker threads), results in (program, scheduler) order.
pub fn sweep(jobs: usize) -> Vec<RvRun> {
    let mut cells = Vec::new();
    for p in &suite::PROGRAMS {
        for sched in SCHED_KINDS {
            cells.push((p, sched));
        }
    }
    runner::parallel_map(&cells, jobs, |&(p, sched)| RvRun {
        program: p.name,
        sched,
        stats: run_to_halt(p, sched, false),
    })
}

/// The sweep as a printable table (IPC per program per scheduler).
pub struct RvReport(Vec<RvRun>);

/// Run the sweep and wrap it for display.
pub fn run_with(jobs: usize) -> RvReport {
    RvReport(sweep(jobs))
}

impl fmt::Display for RvReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RV32 suite IPC by scheduler (programs run to halt)")?;
        write!(f, "{:12}", "program")?;
        for sched in SCHED_KINDS {
            write!(f, " {sched:>13}")?;
        }
        writeln!(f)?;
        for p in &suite::PROGRAMS {
            write!(f, "{:12}", p.name)?;
            for sched in SCHED_KINDS {
                let run = self
                    .0
                    .iter()
                    .find(|r| r.program == p.name && r.sched == sched)
                    .expect("sweep covers the full grid");
                write!(f, " {:>13.3}", run.stats.ipc())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Per-program probe of the paper's two real-code questions: how much of
/// the committed stream macro-op formation pairs up, and how much of the
/// issue bandwidth each loop discipline loses to the scheduling loop.
#[derive(Debug, Clone)]
pub struct RvProbe {
    /// Suite program name.
    pub program: &'static str,
    /// Fraction of issued entries that were grouped under mop-wor
    /// (`SimStats::grouped_frac`): the MOP pairability of real code.
    pub pairability: f64,
    /// sched_loop share of issue slots under the 2-cycle scheduler.
    pub sched_loop_2cycle: f64,
    /// sched_loop share of issue slots under mop-wor.
    pub sched_loop_mop: f64,
}

/// Run the probe over the whole suite. Each run's CPI stack must satisfy
/// the slot-conservation law.
pub fn probe() -> Vec<RvProbe> {
    suite::PROGRAMS
        .iter()
        .map(|p| {
            let share = |sched: &str, stats: &SimStats| {
                let width = config_for(sched).expect("known scheduler").sched.issue_width as u64;
                let stack = CpiStack::from_stats(p.name, sched, width, stats);
                stack
                    .check_conservation()
                    .unwrap_or_else(|e| panic!("{}/{sched}: {e}", p.name));
                stack.share(SlotCause::SchedLoop)
            };
            let two = run_to_halt(p, "2cycle", true);
            let mop = run_to_halt(p, "mop-wor", true);
            RvProbe {
                program: p.name,
                pairability: mop.grouped_frac(),
                sched_loop_2cycle: share("2cycle", &two),
                sched_loop_mop: share("mop-wor", &mop),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_full_grid_and_is_job_count_invariant() {
        let serial = sweep(1);
        let threaded = sweep(4);
        assert_eq!(serial.len(), suite::PROGRAMS.len() * SCHED_KINDS.len());
        for (a, b) in serial.iter().zip(threaded.iter()) {
            assert_eq!(a.program, b.program);
            assert_eq!(a.sched, b.sched);
            assert_eq!(a.stats.cycles, b.stats.cycles);
            assert_eq!(a.stats.committed, b.stats.committed);
        }
    }

    #[test]
    fn probe_reproduces_the_sched_loop_ordering() {
        let rows = probe();
        assert_eq!(rows.len(), suite::PROGRAMS.len());
        let sum = rows
            .iter()
            .find(|r| r.program == "sum_loop")
            .expect("sum_loop probed");
        assert!(sum.pairability > 0.3, "sum_loop pairs heavily: {sum:?}");
        assert!(
            sum.sched_loop_2cycle > sum.sched_loop_mop,
            "macro-op scheduling must shrink the sched_loop share: {sum:?}"
        );
    }
}

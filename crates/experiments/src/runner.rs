//! Shared experiment plumbing: standard seeds, instruction budgets, and
//! the run-one-configuration helper every figure uses.

use mos_sim::{MachineConfig, Simulator, SimStats};
use mos_workload::spec2000;
use mos_workload::WorkloadSpec;

/// Workload seed used by every experiment (deterministic across
/// schedulers and runs).
pub const SEED: u64 = 42;

/// Default committed-instruction budget per simulation when regenerating
/// figures from the CLI.
pub const DEFAULT_INSTS: u64 = 150_000;

/// A quicker budget for Criterion benches and smoke tests.
pub const QUICK_INSTS: u64 = 40_000;

/// Simulate `spec` under `cfg` for `insts` committed instructions.
pub fn run_config(spec: &WorkloadSpec, cfg: MachineConfig, insts: u64) -> SimStats {
    let trace = spec.trace(SEED);
    Simulator::new(cfg, trace).run(insts)
}

/// Simulate a benchmark by name.
///
/// # Panics
///
/// Panics if `name` is not one of the twelve benchmark models.
pub fn run_benchmark(name: &str, cfg: MachineConfig, insts: u64) -> SimStats {
    let spec = spec2000::by_name(name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    run_config(&spec, cfg, insts)
}

/// Render one row of percentages after a left-aligned label.
pub fn pct_row(label: &str, values: &[f64]) -> String {
    let mut s = format!("{label:10}");
    for v in values {
        s.push_str(&format!(" {:6.1}", v * 100.0));
    }
    s
}

/// Geometric mean (used for cross-benchmark IPC summaries).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn run_benchmark_smokes() {
        let s = run_benchmark("gzip", MachineConfig::base_32(), 2_000);
        assert!(s.committed >= 2_000);
        assert!(s.ipc() > 0.1);
    }

    #[test]
    #[should_panic]
    fn unknown_benchmark_panics() {
        run_benchmark("nope", MachineConfig::base_32(), 100);
    }
}

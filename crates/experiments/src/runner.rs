//! Shared experiment plumbing: standard seeds, instruction budgets, the
//! run-one-configuration helper every figure uses, and the parallel job
//! harness that fans independent simulations across cores.
//!
//! Parallelism model: each `(benchmark, config)` simulation is one [`Job`];
//! jobs are independent and each `Simulator` stays single-threaded and
//! deterministic. [`run_jobs`] executes a job list across worker threads
//! and assembles results **by job index**, so figure output is
//! byte-identical for any `--jobs N` (including the serial `--jobs 1`
//! path, which runs inline without spawning threads).
//!
//! Workload caching: the static synthetic program for a `(benchmark,
//! seed)` pair is generated once and shared via `Arc` (see
//! [`cached_program`]); every run still gets its own private trace
//! walker, so sharing cannot leak state between simulations.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use mos_core::{SchedulerKind, WakeupStyle};
use mos_sim::{EventSink, MachineConfig, Simulator, SimStats};
use mos_workload::spec2000;
use mos_workload::{SyntheticProgram, WorkloadSpec};

/// Workload seed used by every experiment (deterministic across
/// schedulers and runs).
pub const SEED: u64 = 42;

/// Default committed-instruction budget per simulation when regenerating
/// figures from the CLI.
pub const DEFAULT_INSTS: u64 = 150_000;

/// A quicker budget for Criterion benches and smoke tests.
pub const QUICK_INSTS: u64 = 40_000;

/// Number of worker threads to use when the caller does not specify:
/// one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One independent simulation: a benchmark under one machine
/// configuration for a committed-instruction budget.
#[derive(Debug, Clone)]
pub struct Job {
    /// Benchmark name (one of [`spec2000::names`]).
    pub bench: &'static str,
    /// Machine configuration to simulate.
    pub cfg: MachineConfig,
    /// Committed-instruction budget.
    pub insts: u64,
    /// Workload seed (almost always [`SEED`]; seed-sensitivity studies
    /// override it).
    pub seed: u64,
}

impl Job {
    /// A job with the standard experiment seed.
    pub fn new(bench: &'static str, cfg: MachineConfig, insts: u64) -> Job {
        Job {
            bench,
            cfg,
            insts,
            seed: SEED,
        }
    }

    /// Same, with an explicit workload seed.
    pub fn with_seed(bench: &'static str, cfg: MachineConfig, insts: u64, seed: u64) -> Job {
        Job {
            bench,
            cfg,
            insts,
            seed,
        }
    }

    /// Run this job to completion (using the shared program cache).
    pub fn run(&self) -> SimStats {
        let spec = spec2000::by_name(self.bench)
            .unwrap_or_else(|| panic!("unknown benchmark `{}`", self.bench));
        let program = cached_program(&spec, self.seed);
        let trace = program.walk(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let stats = Simulator::new(self.cfg.clone(), trace).run(self.insts);
        SIM_CYCLES.fetch_add(stats.cycles, Ordering::Relaxed);
        SIM_COMMITS.fetch_add(stats.committed, Ordering::Relaxed);
        SCHED_KINDS.fetch_or(1 << sched_label_index(&self.cfg), Ordering::Relaxed);
        stats
    }

    /// [`Job::run`] with issue-slot accounting enabled, for CPI-stack
    /// probes in `experiments perf`. Does not touch the global
    /// cycle/commit counters; the returned stats carry `slots` satisfying
    /// the conservation law and otherwise match [`Job::run`] exactly
    /// (accounting is observation-only).
    pub fn run_accounted(&self) -> SimStats {
        let spec = spec2000::by_name(self.bench)
            .unwrap_or_else(|| panic!("unknown benchmark `{}`", self.bench));
        let program = cached_program(&spec, self.seed);
        let trace = program.walk(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut sim = Simulator::new(self.cfg.clone(), trace);
        sim.enable_slot_accounting();
        sim.run(self.insts)
    }

    /// [`Job::run`] with observability layers switched on: interval
    /// metrics (10k-cycle snapshots) and/or full event tracing into a
    /// throwaway ring. Used by the `experiments perf` on-vs-off overhead
    /// probe; does not touch the global cycle/commit counters.
    pub fn run_observed(&self, metrics: bool, tracing: bool) -> SimStats {
        let spec = spec2000::by_name(self.bench)
            .unwrap_or_else(|| panic!("unknown benchmark `{}`", self.bench));
        let program = cached_program(&spec, self.seed);
        let trace = program.walk(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut sim = Simulator::new(self.cfg.clone(), trace);
        if metrics {
            sim.enable_metrics(mos_sim::metrics::DEFAULT_INTERVAL);
        }
        if tracing {
            sim.set_event_sink(Box::new(mos_sim::RingSink::new(4_096)));
        }
        sim.run(self.insts)
    }

    /// [`Job::run`] with event tracing enabled and the stream delivered
    /// to `sink`. Trace-driven experiments and tests use this to observe
    /// per-cycle behavior without changing how the job is specified;
    /// sinks are not `Send`, so traced jobs run inline rather than
    /// through [`run_jobs`].
    pub fn run_with_sink(&self, sink: Box<dyn EventSink>) -> SimStats {
        let spec = spec2000::by_name(self.bench)
            .unwrap_or_else(|| panic!("unknown benchmark `{}`", self.bench));
        let program = cached_program(&spec, self.seed);
        let trace = program.walk(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut sim = Simulator::new(self.cfg.clone(), trace);
        sim.set_event_sink(sink);
        let stats = sim.run(self.insts);
        SIM_CYCLES.fetch_add(stats.cycles, Ordering::Relaxed);
        SIM_COMMITS.fetch_add(stats.committed, Ordering::Relaxed);
        stats
    }
}

/// Simulated cycles accumulated across all runs since the last
/// [`take_simulated_cycles`] call (drives the `experiments perf`
/// cycles-per-second metric; purely observational).
static SIM_CYCLES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Committed instructions accumulated alongside [`SIM_CYCLES`] (the
/// per-figure committed counts in `experiments perf` output).
static SIM_COMMITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Credit an out-of-band simulation (e.g. the RV32 suite sweep, whose
/// traces do not come from [`Job`]) to the global perf counters, exactly
/// as [`Job::run`] does for benchmark jobs.
pub fn tally(stats: &SimStats, cfg: &MachineConfig) {
    SIM_CYCLES.fetch_add(stats.cycles, Ordering::Relaxed);
    SIM_COMMITS.fetch_add(stats.committed, Ordering::Relaxed);
    SCHED_KINDS.fetch_or(1 << sched_label_index(cfg), Ordering::Relaxed);
}

/// Read and reset the global simulated-cycle counter.
pub fn take_simulated_cycles() -> u64 {
    SIM_CYCLES.swap(0, Ordering::Relaxed)
}

/// Read and reset the global committed-instruction counter.
pub fn take_simulated_commits() -> u64 {
    SIM_COMMITS.swap(0, Ordering::Relaxed)
}

/// CLI spellings of every scheduler configuration, in bitmask order for
/// [`take_sched_kinds`] (the same vocabulary `mossim --sched` accepts).
pub const SCHED_LABELS: [&str; 7] = [
    "base",
    "2cycle",
    "mop-2src",
    "mop-wor",
    "sf-squash",
    "sf-scoreboard",
    "spec-wakeup",
];

/// Bitmask over [`SCHED_LABELS`] of scheduler kinds seen by [`Job::run`]
/// since the last [`take_sched_kinds`] call.
static SCHED_KINDS: AtomicU32 = AtomicU32::new(0);

/// [`SCHED_LABELS`] index for a machine configuration's scheduler.
fn sched_label_index(cfg: &MachineConfig) -> u32 {
    match (cfg.sched.kind, cfg.sched.wakeup) {
        (SchedulerKind::Base, _) => 0,
        (SchedulerKind::TwoCycle, _) => 1,
        (SchedulerKind::MacroOp, WakeupStyle::CamTwoSource) => 2,
        (SchedulerKind::MacroOp, WakeupStyle::WiredOr) => 3,
        (SchedulerKind::SelectFreeSquashDep, _) => 4,
        (SchedulerKind::SelectFreeScoreboard, _) => 5,
        (SchedulerKind::SpeculativeWakeup, _) => 6,
    }
}

/// Read and reset the scheduler-kind bitmask: the CLI labels of every
/// scheduler exercised by jobs since the last call, in [`SCHED_LABELS`]
/// order. Feeds the per-figure `sched_kinds` field of the
/// `experiments perf` output.
pub fn take_sched_kinds() -> Vec<&'static str> {
    let mask = SCHED_KINDS.swap(0, Ordering::Relaxed);
    SCHED_LABELS
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask & (1 << i) != 0)
        .map(|(_, &l)| l)
        .collect()
}

/// Process-wide cache of generated synthetic programs, keyed by
/// `(benchmark name, seed)`. The stored spec guards against stale hits:
/// if a caller mutated the spec (tests do), the program is rebuilt
/// instead of served from the cache.
fn cached_program(spec: &WorkloadSpec, seed: u64) -> SyntheticProgram {
    type ProgramCache = HashMap<(&'static str, u64), (WorkloadSpec, SyntheticProgram)>;
    static CACHE: OnceLock<Mutex<ProgramCache>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    {
        let guard = cache.lock().expect("program cache poisoned");
        if let Some((cached_spec, program)) = guard.get(&(spec.name, seed)) {
            if cached_spec == spec {
                return program.clone(); // clones two Arcs, not the program
            }
        }
    }
    // Generate outside the lock so other benchmarks' jobs are not
    // serialized behind this (potentially large) build.
    let program = spec.build(seed);
    let mut guard = cache.lock().expect("program cache poisoned");
    guard
        .entry((spec.name, seed))
        .or_insert_with(|| (spec.clone(), program.clone()));
    program
}

/// Run every job and return its stats **in job order**, fanning the work
/// across `jobs` worker threads. `jobs <= 1` runs inline (no threads);
/// results are identical either way because assembly is by index and each
/// simulation is self-contained.
pub fn run_jobs(list: &[Job], jobs: usize) -> Vec<SimStats> {
    parallel_map(list, jobs, Job::run)
}

/// Order-preserving parallel map over a slice: applies `f` to every item
/// using up to `jobs` scoped threads (work-stealing by atomic index) and
/// returns outputs positionally. `jobs <= 1` degenerates to a plain
/// serial map with no thread machinery at all.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = jobs.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| panic!("job {i} produced no result"))
        })
        .collect()
}

/// Simulate `spec` under `cfg` for `insts` committed instructions.
pub fn run_config(spec: &WorkloadSpec, cfg: MachineConfig, insts: u64) -> SimStats {
    let program = cached_program(spec, SEED);
    let trace = program.walk(SEED ^ 0x9e37_79b9_7f4a_7c15);
    SCHED_KINDS.fetch_or(1 << sched_label_index(&cfg), Ordering::Relaxed);
    let stats = Simulator::new(cfg, trace).run(insts);
    SIM_CYCLES.fetch_add(stats.cycles, Ordering::Relaxed);
    SIM_COMMITS.fetch_add(stats.committed, Ordering::Relaxed);
    stats
}

/// Simulate a benchmark by name.
///
/// # Panics
///
/// Panics if `name` is not one of the twelve benchmark models.
pub fn run_benchmark(name: &str, cfg: MachineConfig, insts: u64) -> SimStats {
    let spec = spec2000::by_name(name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    run_config(&spec, cfg, insts)
}

/// Render one row of percentages after a left-aligned label.
pub fn pct_row(label: &str, values: &[f64]) -> String {
    let mut s = format!("{label:10}");
    for v in values {
        s.push_str(&format!(" {:6.1}", v * 100.0));
    }
    s
}

/// Geometric mean (used for cross-benchmark IPC summaries).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn run_benchmark_smokes() {
        let s = run_benchmark("gzip", MachineConfig::base_32(), 2_000);
        assert!(s.committed >= 2_000);
        assert!(s.ipc() > 0.1);
    }

    #[test]
    #[should_panic]
    fn unknown_benchmark_panics() {
        run_benchmark("nope", MachineConfig::base_32(), 100);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(&items, 1, |&x| x * x);
        let threaded = parallel_map(&items, 8, |&x| x * x);
        assert_eq!(serial, threaded);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn cached_program_respects_spec_mutation() {
        let mut spec = spec2000::by_name("gzip").expect("gzip exists");
        let a = cached_program(&spec, SEED);
        let b = cached_program(&spec, SEED);
        // Cache hit: both share the same underlying program allocation.
        assert!(std::sync::Arc::ptr_eq(&a.program_arc(), &b.program_arc()));
        spec.body_len += 17;
        let c = cached_program(&spec, SEED);
        assert!(!std::sync::Arc::ptr_eq(&a.program_arc(), &c.program_arc()));
    }

    /// Serving the static program from the cache must yield exactly the
    /// statistics of a from-scratch generation, for every benchmark.
    #[test]
    fn cached_run_matches_fresh_run() {
        for name in spec2000::names() {
            let spec = spec2000::by_name(name).expect("known benchmark");
            let fresh_trace = spec.trace(SEED);
            let fresh = Simulator::new(MachineConfig::base_32(), fresh_trace).run(2_000);
            let cached = run_config(&spec, MachineConfig::base_32(), 2_000);
            assert_eq!(fresh, cached, "{name}: cached program changed the run");
        }
    }

    /// A sink-equipped run sees every traced event exactly once and
    /// commits the same stream as the untraced run.
    #[test]
    fn run_with_sink_traces_without_changing_the_run() {
        let job = Job::new("gzip", MachineConfig::base_32(), 2_000);
        let plain = job.run();
        let ring = mos_sim::SharedRing::new(4_096);
        let traced = job.run_with_sink(Box::new(ring.clone()));
        assert_eq!(traced.committed, plain.committed);
        assert_eq!(traced.cycles, plain.cycles);
        assert!(traced.events.total() > 0, "tracing must be enabled");
        assert_eq!(ring.total_seen(), traced.events.total());
    }

    /// An accounted run must match the plain run cycle-for-cycle (slot
    /// accounting is observation-only) while its slot counts satisfy the
    /// conservation law.
    #[test]
    fn accounted_run_matches_plain_run() {
        let job = Job::new("gzip", MachineConfig::two_cycle_32(), 2_000);
        let plain = job.run();
        let accounted = job.run_accounted();
        assert_eq!(accounted.cycles, plain.cycles);
        assert_eq!(accounted.committed, plain.committed);
        let width = job.cfg.sched.issue_width as u64;
        accounted
            .slots
            .check_conservation(accounted.cycles, width)
            .expect("accounted run must conserve issue slots");
    }

    /// The mask is process-global and other tests run jobs concurrently,
    /// so assert only that our own kinds are present (never that the mask
    /// is otherwise empty).
    #[test]
    fn sched_kind_tracking_reports_cli_labels() {
        Job::new("gzip", MachineConfig::base_32(), 500).run();
        Job::new(
            "gzip",
            MachineConfig::macro_op(mos_core::WakeupStyle::WiredOr, Some(32), 1),
            500,
        )
        .run();
        let kinds = take_sched_kinds();
        assert!(kinds.contains(&"base"));
        assert!(kinds.contains(&"mop-wor"));
    }

    #[test]
    fn jobs_match_direct_run() {
        let list = vec![
            Job::new("gzip", MachineConfig::base_32(), 2_000),
            Job::new("gap", MachineConfig::two_cycle_32(), 2_000),
        ];
        let out = run_jobs(&list, 2);
        let direct = run_benchmark("gzip", MachineConfig::base_32(), 2_000);
        assert_eq!(out[0].committed, direct.committed);
        assert_eq!(out[0].cycles, direct.cycles);
    }
}

//! Figure 6: characterization of the dependence-edge distance between two
//! MOP candidate instructions.
//!
//! For every *value-generating candidate* (potential MOP head) in the
//! committed stream, find the nearest dependent **single-cycle candidate**
//! (potential MOP tail) and bucket the dynamic distance into 1–3, 4–7 or
//! 8+ instructions; heads whose dependents are all multi-cycle are
//! `not MOP candidate`, and heads whose value is overwritten unread are
//! `dynamically dead`. The measurement is machine-independent — a pure
//! trace analysis, as the paper notes.

use std::fmt;

use mos_isa::{Reg, TraceSource};
use mos_workload::spec2000;

/// Forward-scan horizon: consumers beyond this distance count toward the
/// terminal categories (the stacked bars' `8+` tail flattens out long
/// before this).
const HORIZON: usize = 64;

/// One benchmark's distance distribution (fractions of value-generating
/// candidates; the five categories sum to 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Benchmark name.
    pub bench: String,
    /// Value-generating candidates as a percentage of committed
    /// instructions (the figure's `% total insts` header).
    pub valuegen_pct: f64,
    /// Nearest candidate tail within 1–3 instructions.
    pub d1_3: f64,
    /// Within 4–7 instructions.
    pub d4_7: f64,
    /// 8 or more instructions away.
    pub d8_plus: f64,
    /// Dependents exist but none is a single-cycle candidate.
    pub not_candidate: f64,
    /// No dependent before the value is overwritten (dynamically dead).
    pub dead: f64,
}

/// The full Figure 6 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Result {
    /// Rows in the paper's benchmark order.
    pub rows: Vec<Fig6Row>,
}

#[derive(Debug, Clone, Copy)]
struct Head {
    pos: u64,
    nearest_tail: Option<u64>,
    any_consumer: bool,
    done: bool,
}

/// Analyze one benchmark over `insts` committed instructions.
pub fn analyze_one(name: &str, insts: usize) -> Fig6Row {
    let spec = spec2000::by_name(name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    let mut trace = spec.trace(crate::runner::SEED);
    let program = trace.program().clone();

    let mut last_writer: [Option<usize>; Reg::NUM] = [None; Reg::NUM];
    let mut heads: Vec<Head> = Vec::new();
    let mut total = 0u64;
    let mut valuegen = 0u64;
    let mut buckets = [0u64; 5]; // d1_3, d4_7, d8+, not_candidate, dead
    let retire_head = |h: &Head, buckets: &mut [u64; 5]| match h.nearest_tail {
        Some(d) if d <= 3 => buckets[0] += 1,
        Some(d) if d <= 7 => buckets[1] += 1,
        Some(_) => buckets[2] += 1,
        None if h.any_consumer => buckets[3] += 1,
        None => buckets[4] += 1,
    };

    for (k, d) in trace.by_ref().take(insts).enumerate() {
        let inst = program.inst(d.sidx).expect("trace sidx valid");
        total += 1;
        // Resolve this instruction's reads against open heads.
        for src in inst.src_regs() {
            if let Some(hidx) = last_writer[src.index()] {
                let h = &mut heads[hidx];
                if !h.done {
                    h.any_consumer = true;
                    if inst.is_mop_candidate() {
                        h.nearest_tail = Some(k as u64 - h.pos);
                        h.done = true;
                        let done_head = *h;
                        retire_head(&done_head, &mut buckets);
                    }
                }
            }
        }
        // Overwrites close open heads.
        if let Some(dst) = inst.dst() {
            if let Some(hidx) = last_writer[dst.index()].take() {
                let h = heads[hidx];
                if !h.done {
                    retire_head(&h, &mut buckets);
                    heads[hidx].done = true;
                }
            }
            if inst.is_value_generating_candidate() {
                valuegen += 1;
                last_writer[dst.index()] = Some(heads.len());
                heads.push(Head {
                    pos: k as u64,
                    nearest_tail: None,
                    any_consumer: false,
                    done: false,
                });
            }
        }
        // Horizon: anything this old without a candidate tail is terminal.
        if k >= HORIZON {
            let cutoff = (k - HORIZON) as u64;
            for h in heads.iter_mut() {
                if !h.done && h.pos <= cutoff {
                    match h.nearest_tail {
                        Some(d) if d <= 3 => buckets[0] += 1,
                        Some(d) if d <= 7 => buckets[1] += 1,
                        Some(_) => buckets[2] += 1,
                        None if h.any_consumer => buckets[3] += 1,
                        None => buckets[4] += 1,
                    }
                    h.done = true;
                }
            }
            // Compact occasionally to bound memory. References into the
            // drained (done) prefix are dropped — their heads are already
            // classified.
            if heads.len() > 4 * HORIZON {
                let done_prefix = heads.iter().take_while(|h| h.done).count();
                if done_prefix > 0 {
                    heads.drain(..done_prefix);
                    for w in last_writer.iter_mut() {
                        *w = match *w {
                            Some(idx) if idx >= done_prefix => Some(idx - done_prefix),
                            _ => None,
                        };
                    }
                }
            }
        }
    }
    for h in &heads {
        if !h.done {
            retire_head(h, &mut buckets);
        }
    }

    let denom = buckets.iter().sum::<u64>().max(1) as f64;
    Fig6Row {
        bench: name.to_owned(),
        valuegen_pct: 100.0 * valuegen as f64 / total.max(1) as f64,
        d1_3: buckets[0] as f64 / denom,
        d4_7: buckets[1] as f64 / denom,
        d8_plus: buckets[2] as f64 / denom,
        not_candidate: buckets[3] as f64 / denom,
        dead: buckets[4] as f64 / denom,
    }
}

/// Run the full characterization over every benchmark.
pub fn run(insts: usize) -> Fig6Result {
    Fig6Result {
        rows: spec2000::names()
            .into_iter()
            .map(|n| analyze_one(n, insts))
            .collect(),
    }
}

impl fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6: dependence edge distance between two candidate instructions"
        )?;
        writeln!(
            f,
            "{:8} {:>7} | {:>6} {:>6} {:>6} {:>7} {:>6}  (% of value-generating candidates)",
            "bench", "%insts", "1-3", "4-7", "8+", "noncand", "dead"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:8} {:7.1} | {:6.1} {:6.1} {:6.1} {:7.1} {:6.1}",
                r.bench,
                r.valuegen_pct,
                100.0 * r.d1_3,
                100.0 * r.d4_7,
                100.0 * r.d8_plus,
                100.0 * r.not_candidate,
                100.0 * r.dead
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_sum_to_one() {
        let r = analyze_one("gzip", 20_000);
        let sum = r.d1_3 + r.d4_7 + r.d8_plus + r.not_candidate + r.dead;
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn valuegen_pct_tracks_paper_header() {
        // gzip 56.3 %, eon 27.8 % in the paper.
        let gzip = analyze_one("gzip", 30_000);
        assert!((gzip.valuegen_pct - 56.3).abs() < 6.0, "{}", gzip.valuegen_pct);
        let eon = analyze_one("eon", 30_000);
        assert!((eon.valuegen_pct - 27.8).abs() < 6.0, "{}", eon.valuegen_pct);
    }

    #[test]
    fn gap_is_short_vortex_is_long() {
        let gap = analyze_one("gap", 30_000);
        let vortex = analyze_one("vortex", 30_000);
        let gap_within8 = gap.d1_3 + gap.d4_7;
        let vortex_within8 = vortex.d1_3 + vortex.d4_7;
        assert!(
            gap_within8 > vortex_within8 + 0.15,
            "gap {gap_within8:.2} vs vortex {vortex_within8:.2}"
        );
    }
}

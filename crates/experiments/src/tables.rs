//! Table 1 (machine configuration) and Table 2 (benchmarks and base
//! IPCs with 32-entry and unrestricted issue queues).

use std::fmt;

use mos_sim::MachineConfig;
use mos_workload::spec2000;

use crate::runner::{self, Job};

/// Render Table 1: the machine configuration in the paper's format.
pub fn table1() -> String {
    let c = MachineConfig::base_32();
    let mut s = String::new();
    s.push_str("Table 1: machine configuration\n");
    s.push_str(&format!(
        "  Out-of-order:  {}-wide fetch/issue/commit, {}-entry ROB, {} issue queue,\n",
        c.fetch_width,
        c.rob_entries,
        match c.sched.queue_entries {
            Some(n) => format!("{n}-entry unified"),
            None => "unrestricted".into(),
        }
    ));
    s.push_str(&format!(
        "                 speculative scheduling with selective replay ({}-cycle penalty),\n",
        c.sched.replay_penalty
    ));
    s.push_str("                 fetch stops at first taken branch in a cycle\n");
    s.push_str(&format!(
        "  FUs (latency): {} int ALU (1), {} int MUL/DIV (3/20), {} FP ALU (2), {} FP MUL/DIV (4/24), {} mem ports\n",
        c.sched.fu_counts[0], c.sched.fu_counts[1], c.sched.fu_counts[2], c.sched.fu_counts[3], c.sched.fu_counts[4]
    ));
    s.push_str(&format!(
        "  Branch pred:   combined bimodal ({}k) / gshare ({}k) with selector ({}k),\n",
        c.branch.bimodal_entries / 1024,
        c.branch.gshare_entries / 1024,
        c.branch.selector_entries / 1024
    ));
    s.push_str(&format!(
        "                 {} RAS, {}-entry {}-way BTB, >=14 cycles misprediction recovery\n",
        c.branch.ras_depth,
        c.branch.btb_entries,
        c.branch.btb_ways
    ));
    s.push_str(&format!(
        "  Memory:        {}KB {}-way {}B IL1 ({}), {}KB {}-way {}B DL1 ({}), {}KB {}-way {}B L2 ({}), memory ({})\n",
        c.il1.size_bytes / 1024, c.il1.ways, c.il1.line_bytes, c.il1.hit_latency,
        c.dl1.size_bytes / 1024, c.dl1.ways, c.dl1.line_bytes, c.dl1.hit_latency,
        c.l2.size_bytes / 1024, c.l2.ways, c.l2.line_bytes, c.l2.hit_latency,
        c.memory_latency
    ));
    s.push_str(&format!(
        "  Pipeline:      13 stages (fetch 1 + front {} + sched 1 + disp/RF/exe {} + WB 1 + commit 1)\n",
        c.front_depth, c.exec_offset
    ));
    s
}

/// One Table 2 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Benchmark name.
    pub bench: String,
    /// Base IPC with the 32-entry issue queue.
    pub ipc_32: f64,
    /// Base IPC with the unrestricted issue queue.
    pub ipc_unrestricted: f64,
}

/// Table 2 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Result {
    /// Rows in the paper's benchmark order.
    pub rows: Vec<Table2Row>,
    /// Committed instructions simulated per configuration.
    pub insts: u64,
}

/// Run Table 2 across `jobs` worker threads: base scheduling IPCs,
/// 32-entry vs unrestricted queue.
pub fn table2_with(insts: u64, jobs: usize) -> Table2Result {
    let benches = spec2000::names();
    let grid: Vec<Job> = benches
        .iter()
        .flat_map(|&name| {
            [
                Job::new(name, MachineConfig::base_32(), insts),
                Job::new(name, MachineConfig::base_unrestricted(), insts),
            ]
        })
        .collect();
    let stats = runner::run_jobs(&grid, jobs);
    let rows = benches
        .iter()
        .zip(stats.chunks_exact(2))
        .map(|(&name, s)| Table2Row {
            bench: name.to_owned(),
            ipc_32: s[0].ipc(),
            ipc_unrestricted: s[1].ipc(),
        })
        .collect();
    Table2Result { rows, insts }
}

/// Run Table 2 (one worker per core).
pub fn table2(insts: u64) -> Table2Result {
    table2_with(insts, runner::default_jobs())
}

impl fmt::Display for Table2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2: base IPC (32-entry / unrestricted issue queue), {} insts",
            self.insts
        )?;
        writeln!(f, "{:8} {:>8} {:>14}", "bench", "32-entry", "unrestricted")?;
        for r in &self.rows {
            writeln!(f, "{:8} {:8.2} {:14.2}", r.bench, r.ipc_32, r.ipc_unrestricted)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_key_parameters() {
        let t = table1();
        assert!(t.contains("128-entry ROB"));
        assert!(t.contains("4 int ALU"));
        assert!(t.contains("16KB"));
        assert!(t.contains("13 stages"));
    }

    #[test]
    fn table2_unrestricted_no_worse() {
        let t = table2(8_000);
        assert_eq!(t.rows.len(), 12);
        for r in &t.rows {
            assert!(
                r.ipc_unrestricted >= r.ipc_32 * 0.97,
                "{}: {:.2} vs {:.2}",
                r.bench,
                r.ipc_unrestricted,
                r.ipc_32
            );
        }
    }
}

//! Figure 15: macro-op scheduling under issue-queue contention —
//! 32-entry queue, 128 ROB. Solid bars use 1 extra MOP formation stage;
//! the paper's error bars (0 and 2 extra stages) are reported alongside.
//! Here macro-op scheduling additionally benefits from two instructions
//! sharing one queue entry, and outperforms the baseline on several
//! benchmarks.

use std::fmt;

use mos_core::WakeupStyle;
use mos_sim::MachineConfig;
use mos_workload::spec2000;

use crate::runner::{self, geomean, Job};

/// One benchmark's normalized IPCs under contention.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Row {
    /// Benchmark name.
    pub bench: String,
    /// Base-scheduling IPC with the 32-entry queue.
    pub base_ipc: f64,
    /// 2-cycle scheduling, normalized.
    pub two_cycle: f64,
    /// Macro-op, 2-source wakeup, with 0/1/2 extra formation stages.
    pub mop_2src: [f64; 3],
    /// Macro-op, wired-OR wakeup, with 0/1/2 extra formation stages.
    pub mop_wired_or: [f64; 3],
}

/// The full Figure 15 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Result {
    /// Rows in the paper's benchmark order.
    pub rows: Vec<Fig15Row>,
}

impl Fig15Result {
    /// Geomean normalized IPC for wired-OR with 1 extra stage (the paper
    /// measures a 0.1 % average slowdown).
    pub fn mean_wired_or_1stage(&self) -> f64 {
        geomean(&self.rows.iter().map(|r| r.mop_wired_or[1]).collect::<Vec<_>>())
    }
}

/// The eight configurations of one Figure 15 row, in column order:
/// base, 2-cycle, then 0/1/2 extra stages for each wakeup style.
fn configs() -> [MachineConfig; 8] {
    let mop =
        |style: WakeupStyle, stages: u32| MachineConfig::macro_op(style, Some(32), stages);
    [
        MachineConfig::base_32(),
        MachineConfig::two_cycle_32(),
        mop(WakeupStyle::CamTwoSource, 0),
        mop(WakeupStyle::CamTwoSource, 1),
        mop(WakeupStyle::CamTwoSource, 2),
        mop(WakeupStyle::WiredOr, 0),
        mop(WakeupStyle::WiredOr, 1),
        mop(WakeupStyle::WiredOr, 2),
    ]
}

/// Run Figure 15 across `jobs` worker threads.
pub fn run_with(insts: u64, jobs: usize) -> Fig15Result {
    let benches = spec2000::names();
    let grid: Vec<Job> = benches
        .iter()
        .flat_map(|&name| configs().map(|cfg| Job::new(name, cfg, insts)))
        .collect();
    let stats = runner::run_jobs(&grid, jobs);
    let rows = benches
        .iter()
        .zip(stats.chunks_exact(configs().len()))
        .map(|(&name, s)| {
            let base = s[0].ipc();
            let norm = |i: usize| s[i].ipc() / base;
            Fig15Row {
                bench: name.to_owned(),
                base_ipc: base,
                two_cycle: norm(1),
                mop_2src: [norm(2), norm(3), norm(4)],
                mop_wired_or: [norm(5), norm(6), norm(7)],
            }
        })
        .collect();
    Fig15Result { rows }
}

/// Run Figure 15 (one worker per core).
pub fn run(insts: u64) -> Fig15Result {
    run_with(insts, runner::default_jobs())
}

impl fmt::Display for Fig15Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 15: macro-op scheduling under issue queue contention (32-entry queue)"
        )?;
        writeln!(
            f,
            "{:8} {:>7} {:>7} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}  (normalized; extra stages 0/1/2)",
            "bench", "base", "2cyc", "2src+0", "2src+1", "2src+2", "wOR+0", "wOR+1", "wOR+2"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:8} {:7.3} {:7.3} | {:6.3} {:6.3} {:6.3} | {:6.3} {:6.3} {:6.3}",
                r.bench,
                r.base_ipc,
                r.two_cycle,
                r.mop_2src[0],
                r.mop_2src[1],
                r.mop_2src[2],
                r.mop_wired_or[0],
                r.mop_wired_or[1],
                r.mop_wired_or[2],
            )?;
        }
        writeln!(
            f,
            "geomean MOP-wiredOR (1 extra stage): {:.3} of base (paper: 0.999)",
            self.mean_wired_or_1stage()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_narrows_the_gap_to_base() {
        // With a 32-entry queue, entry sharing pulls MOP scheduling to
        // (or past) base — closer than in the unrestricted Figure 14 run.
        let r15 = run(runner::QUICK_INSTS);
        let mean = r15.mean_wired_or_1stage();
        assert!(mean > 0.94, "mean {mean:.3}");
        // Some benchmarks outperform the baseline (paper: eon, gap, gcc,
        // mcf, perl, vortex).
        let above = r15.rows.iter().filter(|r| r.mop_wired_or[1] > 1.0).count();
        assert!(above >= 1, "at least one benchmark should beat base");
    }

    #[test]
    fn extra_stages_only_cost_performance() {
        let r = run(runner::QUICK_INSTS);
        for row in &r.rows {
            assert!(
                row.mop_wired_or[2] <= row.mop_wired_or[0] + 0.03,
                "{}: +2 stages {:.3} vs +0 {:.3}",
                row.bench,
                row.mop_wired_or[2],
                row.mop_wired_or[0]
            );
        }
    }
}

//! Figure 16: pipelined scheduling logic compared — select-free
//! scheduling (Brown et al.), both recovery schemes, against macro-op
//! scheduling with wired-OR wakeup (1 extra formation stage), all with
//! the 32-entry queue.

use std::fmt;

use mos_core::WakeupStyle;
use mos_sim::MachineConfig;
use mos_workload::spec2000;

use crate::runner::{self, geomean, Job};

/// One benchmark's normalized IPCs.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig16Row {
    /// Benchmark name.
    pub bench: String,
    /// Base-scheduling IPC with the 32-entry queue.
    pub base_ipc: f64,
    /// Select-free, Squash Dep recovery, normalized.
    pub select_free_squash_dep: f64,
    /// Select-free, Scoreboard recovery, normalized.
    pub select_free_scoreboard: f64,
    /// Macro-op scheduling (wired-OR, 1 extra stage), normalized.
    pub mop_wired_or: f64,
}

/// The full Figure 16 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig16Result {
    /// Rows in the paper's benchmark order.
    pub rows: Vec<Fig16Row>,
}

impl Fig16Result {
    /// Geomeans of (squash-dep, scoreboard, macro-op).
    pub fn means(&self) -> (f64, f64, f64) {
        (
            geomean(&self.rows.iter().map(|r| r.select_free_squash_dep).collect::<Vec<_>>()),
            geomean(&self.rows.iter().map(|r| r.select_free_scoreboard).collect::<Vec<_>>()),
            geomean(&self.rows.iter().map(|r| r.mop_wired_or).collect::<Vec<_>>()),
        )
    }
}

/// The four configurations of one Figure 16 row, in column order.
fn configs() -> [MachineConfig; 4] {
    [
        MachineConfig::base_32(),
        MachineConfig::select_free_squash_dep_32(),
        MachineConfig::select_free_scoreboard_32(),
        MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
    ]
}

/// Run Figure 16 across `jobs` worker threads.
pub fn run_with(insts: u64, jobs: usize) -> Fig16Result {
    let benches = spec2000::names();
    let grid: Vec<Job> = benches
        .iter()
        .flat_map(|&name| configs().map(|cfg| Job::new(name, cfg, insts)))
        .collect();
    let stats = runner::run_jobs(&grid, jobs);
    let rows = benches
        .iter()
        .zip(stats.chunks_exact(configs().len()))
        .map(|(&name, s)| {
            let base = s[0].ipc();
            Fig16Row {
                bench: name.to_owned(),
                base_ipc: base,
                select_free_squash_dep: s[1].ipc() / base,
                select_free_scoreboard: s[2].ipc() / base,
                mop_wired_or: s[3].ipc() / base,
            }
        })
        .collect();
    Fig16Result { rows }
}

/// Run Figure 16 (one worker per core).
pub fn run(insts: u64) -> Fig16Result {
    run_with(insts, runner::default_jobs())
}

impl fmt::Display for Fig16Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 16: pipelined scheduling logic (32-entry queue, normalized to base)"
        )?;
        writeln!(
            f,
            "{:8} {:>7} | {:>9} {:>10} {:>8}",
            "bench", "base", "sf-squash", "sf-scoreb", "MOP-wOR"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:8} {:7.3} | {:9.3} {:10.3} {:8.3}",
                r.bench,
                r.base_ipc,
                r.select_free_squash_dep,
                r.select_free_scoreboard,
                r.mop_wired_or
            )?;
        }
        let (sd, sb, m) = self.means();
        writeln!(
            f,
            "geomean: squash-dep {sd:.3}, scoreboard {sb:.3}, MOP {m:.3} \
             (paper: squash-dep slightly below MOP, scoreboard noticeably below)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_free_cannot_beat_base_and_mop_can() {
        let r = run(runner::QUICK_INSTS);
        let (sd, sb, m) = r.means();
        // Select-free is speculative: it does not outperform the baseline.
        assert!(sd <= 1.005, "squash-dep {sd:.3}");
        assert!(sb <= 1.005, "scoreboard {sb:.3}");
        // Scoreboard recovery loses more than squash-dep (pileup victims
        // consume issue bandwidth).
        assert!(sb <= sd + 0.01, "scoreboard {sb:.3} vs squash-dep {sd:.3}");
        // Macro-op scheduling is non-speculative and competitive.
        assert!(m >= sb - 0.01, "MOP {m:.3} vs scoreboard {sb:.3}");
    }
}

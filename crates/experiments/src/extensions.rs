//! Extension studies beyond the paper's figures:
//!
//! * [`pipelined_schedulers`] — the full pipelined-scheduling design
//!   space: 2-cycle, speculative wakeup (Stark et al., speculation in
//!   the *wakeup* phase), select-free (Brown et al., speculation in
//!   the *select* phase, both recovery schemes) and macro-op scheduling
//!   (non-speculative) side by side.
//! * [`detection_scope`] — MOP detection scope 4/8/16 instructions
//!   (Section 4.2 fixes 8 after characterizing dependence distances).
//! * [`effective_window`] — IPC and grouping versus issue-queue size,
//!   quantifying the paper's claim that entry sharing "increases the
//!   effective size of the window".

use std::fmt;

use mos_core::WakeupStyle;
use mos_sim::MachineConfig;
use mos_workload::spec2000;

use crate::runner::{self, geomean, Job};

/// Run every `(bench, cfg)` pair of a study grid across `jobs` workers,
/// returning each benchmark's stats in config order.
fn run_grid(
    benches: &[&'static str],
    cfgs: &[MachineConfig],
    insts: u64,
    jobs: usize,
) -> Vec<Vec<mos_sim::SimStats>> {
    let grid: Vec<Job> = benches
        .iter()
        .flat_map(|&b| cfgs.iter().map(move |c| Job::new(b, c.clone(), insts)))
        .collect();
    runner::run_jobs(&grid, jobs)
        .chunks_exact(cfgs.len())
        .map(<[mos_sim::SimStats]>::to_vec)
        .collect()
}

/// A labeled matrix of normalized IPCs: rows are benchmarks, columns arms.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Study name.
    pub name: String,
    /// Column labels.
    pub arms: Vec<String>,
    /// `(bench, base ipc, normalized arm values)`.
    pub rows: Vec<(String, f64, Vec<f64>)>,
}

impl Matrix {
    /// Geometric mean per arm.
    pub fn means(&self) -> Vec<f64> {
        (0..self.arms.len())
            .map(|k| geomean(&self.rows.iter().map(|r| r.2[k]).collect::<Vec<_>>()))
            .collect()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Extension: {}", self.name)?;
        write!(f, "{:8} {:>7}", "bench", "base")?;
        for a in &self.arms {
            write!(f, " {a:>10}")?;
        }
        writeln!(f)?;
        for (bench, base, vals) in &self.rows {
            write!(f, "{bench:8} {base:7.3}")?;
            for v in vals {
                write!(f, " {v:10.3}")?;
            }
            writeln!(f)?;
        }
        write!(f, "{:8} {:>7}", "geomean", "")?;
        for m in self.means() {
            write!(f, " {m:10.3}")?;
        }
        writeln!(f)
    }
}

/// All pipelined schedulers, normalized to base (32-entry queue).
pub fn pipelined_schedulers_with(insts: u64, jobs: usize) -> Matrix {
    let arms = vec![
        "2-cycle".to_owned(),
        "spec-wake".to_owned(),
        "sf-squash".to_owned(),
        "sf-scoreb".to_owned(),
        "MOP-wOR".to_owned(),
    ];
    let cfgs = [
        MachineConfig::base_32(),
        MachineConfig::two_cycle_32(),
        MachineConfig::speculative_wakeup_32(),
        MachineConfig::select_free_squash_dep_32(),
        MachineConfig::select_free_scoreboard_32(),
        MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
    ];
    let benches = spec2000::names();
    let rows = benches
        .iter()
        .zip(run_grid(&benches, &cfgs, insts, jobs))
        .map(|(&name, s)| {
            let base = s[0].ipc();
            let vals = s[1..].iter().map(|v| v.ipc() / base).collect();
            (name.to_owned(), base, vals)
        })
        .collect();
    Matrix {
        name: "pipelined scheduling design space (normalized to base, 32-entry queue)".into(),
        arms,
        rows,
    }
}

/// Detection scope 4 / 8 (paper) / 16 instructions; reports normalized
/// IPC with grouping fractions in the labels.
pub fn detection_scope_with(insts: u64, jobs: usize) -> Matrix {
    let scopes = [4usize, 8, 16];
    let arms = scopes.iter().map(|s| format!("scope={s}")).collect();
    let cfgs: Vec<MachineConfig> = std::iter::once(MachineConfig::base_32())
        .chain(scopes.iter().map(|&scope| {
            let mut cfg = MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1);
            cfg.sched.mop.scope = scope;
            cfg
        }))
        .collect();
    let benches = spec2000::names();
    let rows = benches
        .iter()
        .zip(run_grid(&benches, &cfgs, insts, jobs))
        .map(|(&name, s)| {
            let base = s[0].ipc();
            let vals = s[1..].iter().map(|v| v.ipc() / base).collect();
            (name.to_owned(), base, vals)
        })
        .collect();
    Matrix {
        name: "MOP detection scope (Section 4.2 fixes 8 instructions)".into(),
        arms,
        rows,
    }
}

/// Effective window: base vs macro-op IPC across queue sizes, showing the
/// contention benefit of two instructions per entry.
pub fn effective_window_with(insts: u64, jobs: usize) -> Matrix {
    let sizes: [Option<usize>; 4] = [Some(12), Some(16), Some(24), Some(32)];
    let arms = sizes
        .iter()
        .map(|s| format!("mop/q{}", s.expect("sized")))
        .collect();
    // Config order per benchmark: base-32 first, then a (base@q, mop@q)
    // pair for each queue size. Normalizing against base at the same
    // queue size isolates the macro-op benefit at that size.
    let cfgs: Vec<MachineConfig> = std::iter::once(MachineConfig::base_32())
        .chain(sizes.iter().flat_map(|&q| {
            let mut b = MachineConfig::base_32();
            b.sched.queue_entries = q;
            [b, MachineConfig::macro_op(WakeupStyle::WiredOr, q, 1)]
        }))
        .collect();
    let benches = ["gap", "gzip", "parser", "twolf", "mcf", "gcc"];
    let rows = benches
        .iter()
        .zip(run_grid(&benches, &cfgs, insts, jobs))
        .map(|(&name, s)| {
            let base32 = s[0].ipc();
            let vals = s[1..]
                .chunks_exact(2)
                .map(|pair| pair[1].ipc() / pair[0].ipc())
                .collect();
            (name.to_owned(), base32, vals)
        })
        .collect();
    Matrix {
        name: "effective window: MOP/base IPC ratio by queue size (entry sharing pays most when small)"
            .into(),
        arms,
        rows,
    }
}

/// CPI attribution via idealization: how much of each benchmark's time
/// goes to branches, data memory, and the scheduling loop. Columns are
/// CPI shares removed by idealizing each subsystem (and by swapping the
/// 2-cycle scheduler back to atomic under full idealization).
pub fn cpi_breakdown_with(insts: u64, jobs: usize) -> Matrix {
    let arms = vec![
        "cpi".to_owned(),
        "branch".to_owned(),
        "memory".to_owned(),
        "schedloop".to_owned(),
    ];
    let cfgs = [
        MachineConfig::base_32(),
        MachineConfig::base_32().with_ideal_branch(),
        MachineConfig::base_32().with_ideal_memory(),
        // Scheduling-loop share: ideal machine, atomic vs 2-cycle loop.
        MachineConfig::base_32().with_ideal_branch().with_ideal_memory(),
        MachineConfig::two_cycle_32()
            .with_ideal_branch()
            .with_ideal_memory(),
    ];
    let benches = spec2000::names();
    let rows = benches
        .iter()
        .zip(run_grid(&benches, &cfgs, insts, jobs))
        .map(|(&name, s)| {
            let cpi = |i: usize| 1.0 / s[i].ipc().max(1e-9);
            let (base, no_branch, no_mem) = (cpi(0), cpi(1), cpi(2));
            let (ideal_base, ideal_two) = (cpi(3), cpi(4));
            let vals = vec![
                base,
                (base - no_branch).max(0.0),
                (base - no_mem).max(0.0),
                (ideal_two - ideal_base).max(0.0),
            ];
            (name.to_owned(), 1.0 / base, vals)
        })
        .collect();
    Matrix {
        name: "CPI attribution by idealization (branch / data memory / 2-cycle scheduling loop)"
            .into(),
        arms,
        rows,
    }
}

/// Seed sensitivity of the headline result: the Figure 14 comparison
/// re-run over several workload seeds (different program instances of
/// each benchmark model). Columns report the 2-cycle and macro-op
/// normalized IPC as mean over seeds; the honest error bars for our
/// synthetic-workload substitution.
pub fn seed_sensitivity_with(insts: u64, seeds: &[u64], jobs: usize) -> Matrix {
    let arms = vec![
        "2cyc-mean".to_owned(),
        "2cyc-min".to_owned(),
        "mop-mean".to_owned(),
        "mop-min".to_owned(),
    ];
    let benches = ["gap", "gzip", "parser", "vortex", "eon"];
    // Per benchmark: (base, 2-cycle, MOP) for each seed, flattened.
    let grid: Vec<Job> = benches
        .iter()
        .flat_map(|&name| {
            seeds.iter().flat_map(move |&seed| {
                [
                    Job::with_seed(name, MachineConfig::base_unrestricted(), insts, seed),
                    Job::with_seed(name, MachineConfig::two_cycle_unrestricted(), insts, seed),
                    Job::with_seed(
                        name,
                        MachineConfig::macro_op(WakeupStyle::WiredOr, None, 0),
                        insts,
                        seed,
                    ),
                ]
            })
        })
        .collect();
    let stats = runner::run_jobs(&grid, jobs);
    let rows = benches
        .iter()
        .zip(stats.chunks_exact(3 * seeds.len()))
        .map(|(&name, s)| {
            let mut two = Vec::new();
            let mut mop = Vec::new();
            let mut base0 = 0.0;
            for triple in s.chunks_exact(3) {
                let base = triple[0].ipc();
                if base0 == 0.0 {
                    base0 = base;
                }
                two.push(triple[1].ipc() / base);
                mop.push(triple[2].ipc() / base);
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
            (
                name.to_owned(),
                base0,
                vec![mean(&two), min(&two), mean(&mop), min(&mop)],
            )
        })
        .collect();
    Matrix {
        name: format!(
            "seed sensitivity of Figure 14 over {} program instances (unrestricted queue)",
            seeds.len()
        ),
        arms,
        rows,
    }
}

/// Pipelined-scheduler design space, one worker per core.
pub fn pipelined_schedulers(insts: u64) -> Matrix {
    pipelined_schedulers_with(insts, runner::default_jobs())
}

/// Detection-scope study, one worker per core.
pub fn detection_scope(insts: u64) -> Matrix {
    detection_scope_with(insts, runner::default_jobs())
}

/// Effective-window study, one worker per core.
pub fn effective_window(insts: u64) -> Matrix {
    effective_window_with(insts, runner::default_jobs())
}

/// CPI attribution study, one worker per core.
pub fn cpi_breakdown(insts: u64) -> Matrix {
    cpi_breakdown_with(insts, runner::default_jobs())
}

/// Seed-sensitivity study, one worker per core.
pub fn seed_sensitivity(insts: u64, seeds: &[u64]) -> Matrix {
    seed_sensitivity_with(insts, seeds, runner::default_jobs())
}

/// Run and render all extension studies across `jobs` worker threads.
pub fn run_all_with(insts: u64, jobs: usize) -> String {
    [
        pipelined_schedulers_with(insts, jobs),
        detection_scope_with(insts, jobs),
        effective_window_with(insts, jobs),
        cpi_breakdown_with(insts, jobs),
        seed_sensitivity_with(insts / 2, &[42, 7, 1234], jobs),
    ]
    .iter()
    .map(|m| m.to_string())
    .collect::<Vec<_>>()
    .join("\n")
}

/// Run and render all extension studies (one worker per core).
pub fn run_all(insts: u64) -> String {
    run_all_with(insts, runner::default_jobs())
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 12_000;

    #[test]
    fn speculative_wakeup_between_two_cycle_and_base() {
        let m = pipelined_schedulers(N);
        let means = m.means();
        let (two, spec) = (means[0], means[1]);
        assert!(
            spec > two - 0.01,
            "speculative wakeup ({spec:.3}) should beat 2-cycle ({two:.3})"
        );
        assert!(spec <= 1.02, "speculation cannot beat the atomic baseline");
    }

    #[test]
    fn wider_scope_groups_no_worse() {
        let m = detection_scope(N);
        for (bench, _, vals) in &m.rows {
            assert!(
                vals[2] >= vals[0] - 0.05,
                "{bench}: scope 16 ({:.3}) should not collapse vs 4 ({:.3})",
                vals[2],
                vals[0]
            );
        }
    }

    #[test]
    fn idealization_only_helps() {
        for bench in ["mcf", "crafty"] {
            let real = runner::run_benchmark(bench, MachineConfig::base_32(), N).ipc();
            let ib = runner::run_benchmark(bench, MachineConfig::base_32().with_ideal_branch(), N);
            let im = runner::run_benchmark(bench, MachineConfig::base_32().with_ideal_memory(), N);
            assert!(ib.ipc() >= real * 0.99, "{bench}: ideal branch can't hurt");
            assert!(im.ipc() >= real * 0.99, "{bench}: ideal memory can't hurt");
            assert_eq!(ib.mispredicts, 0, "{bench}: no mispredicts when ideal");
            assert_eq!(im.dl1.1, 0, "{bench}: no DL1 misses when ideal");
        }
        // mcf is memory-bound: idealizing memory must be transformative.
        let real = runner::run_benchmark("mcf", MachineConfig::base_32(), N).ipc();
        let im = runner::run_benchmark("mcf", MachineConfig::base_32().with_ideal_memory(), N).ipc();
        assert!(im > real * 1.5, "mcf: {real:.3} -> {im:.3}");
    }

    #[test]
    fn entry_sharing_pays_more_when_the_queue_is_smaller() {
        let m = effective_window(N);
        let means = m.means();
        assert!(
            means[0] >= means[3] - 0.02,
            "q12 benefit {:.3} vs q32 benefit {:.3}",
            means[0],
            means[3]
        );
    }
}

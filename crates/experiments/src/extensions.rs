//! Extension studies beyond the paper's figures:
//!
//! * [`pipelined_schedulers`] — the full pipelined-scheduling design
//!   space: 2-cycle, speculative wakeup (Stark et al., speculation in
//!   the *wakeup* phase), select-free (Brown et al., speculation in
//!   the *select* phase, both recovery schemes) and macro-op scheduling
//!   (non-speculative) side by side.
//! * [`detection_scope`] — MOP detection scope 4/8/16 instructions
//!   (Section 4.2 fixes 8 after characterizing dependence distances).
//! * [`effective_window`] — IPC and grouping versus issue-queue size,
//!   quantifying the paper's claim that entry sharing "increases the
//!   effective size of the window".

use std::fmt;

use mos_core::WakeupStyle;
use mos_sim::MachineConfig;
use mos_workload::spec2000;

use crate::runner::{self, geomean};

/// A labeled matrix of normalized IPCs: rows are benchmarks, columns arms.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Study name.
    pub name: String,
    /// Column labels.
    pub arms: Vec<String>,
    /// `(bench, base ipc, normalized arm values)`.
    pub rows: Vec<(String, f64, Vec<f64>)>,
}

impl Matrix {
    /// Geometric mean per arm.
    pub fn means(&self) -> Vec<f64> {
        (0..self.arms.len())
            .map(|k| geomean(&self.rows.iter().map(|r| r.2[k]).collect::<Vec<_>>()))
            .collect()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Extension: {}", self.name)?;
        write!(f, "{:8} {:>7}", "bench", "base")?;
        for a in &self.arms {
            write!(f, " {a:>10}")?;
        }
        writeln!(f)?;
        for (bench, base, vals) in &self.rows {
            write!(f, "{bench:8} {base:7.3}")?;
            for v in vals {
                write!(f, " {v:10.3}")?;
            }
            writeln!(f)?;
        }
        write!(f, "{:8} {:>7}", "geomean", "")?;
        for m in self.means() {
            write!(f, " {m:10.3}")?;
        }
        writeln!(f)
    }
}

/// All pipelined schedulers, normalized to base (32-entry queue).
pub fn pipelined_schedulers(insts: u64) -> Matrix {
    let arms = vec![
        "2-cycle".to_owned(),
        "spec-wake".to_owned(),
        "sf-squash".to_owned(),
        "sf-scoreb".to_owned(),
        "MOP-wOR".to_owned(),
    ];
    let rows = spec2000::names()
        .into_iter()
        .map(|name| {
            let base = runner::run_benchmark(name, MachineConfig::base_32(), insts).ipc();
            let vals = vec![
                runner::run_benchmark(name, MachineConfig::two_cycle_32(), insts).ipc() / base,
                runner::run_benchmark(name, MachineConfig::speculative_wakeup_32(), insts).ipc()
                    / base,
                runner::run_benchmark(name, MachineConfig::select_free_squash_dep_32(), insts)
                    .ipc()
                    / base,
                runner::run_benchmark(name, MachineConfig::select_free_scoreboard_32(), insts)
                    .ipc()
                    / base,
                runner::run_benchmark(
                    name,
                    MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
                    insts,
                )
                .ipc()
                    / base,
            ];
            (name.to_owned(), base, vals)
        })
        .collect();
    Matrix {
        name: "pipelined scheduling design space (normalized to base, 32-entry queue)".into(),
        arms,
        rows,
    }
}

/// Detection scope 4 / 8 (paper) / 16 instructions; reports normalized
/// IPC with grouping fractions in the labels.
pub fn detection_scope(insts: u64) -> Matrix {
    let scopes = [4usize, 8, 16];
    let arms = scopes.iter().map(|s| format!("scope={s}")).collect();
    let rows = spec2000::names()
        .into_iter()
        .map(|name| {
            let base = runner::run_benchmark(name, MachineConfig::base_32(), insts).ipc();
            let vals = scopes
                .iter()
                .map(|&scope| {
                    let mut cfg = MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1);
                    cfg.sched.mop.scope = scope;
                    runner::run_benchmark(name, cfg, insts).ipc() / base
                })
                .collect();
            (name.to_owned(), base, vals)
        })
        .collect();
    Matrix {
        name: "MOP detection scope (Section 4.2 fixes 8 instructions)".into(),
        arms,
        rows,
    }
}

/// Effective window: base vs macro-op IPC across queue sizes, showing the
/// contention benefit of two instructions per entry.
pub fn effective_window(insts: u64) -> Matrix {
    let sizes: [Option<usize>; 4] = [Some(12), Some(16), Some(24), Some(32)];
    let arms = sizes
        .iter()
        .map(|s| format!("mop/q{}", s.expect("sized")))
        .collect();
    let rows = ["gap", "gzip", "parser", "twolf", "mcf", "gcc"]
        .into_iter()
        .map(|name| {
            // Normalize against base at the same queue size, so each
            // column isolates the macro-op benefit at that size.
            let base32 = runner::run_benchmark(name, MachineConfig::base_32(), insts).ipc();
            let vals = sizes
                .iter()
                .map(|&q| {
                    let mut b = MachineConfig::base_32();
                    b.sched.queue_entries = q;
                    let base = runner::run_benchmark(name, b, insts).ipc();
                    let mop = runner::run_benchmark(
                        name,
                        MachineConfig::macro_op(WakeupStyle::WiredOr, q, 1),
                        insts,
                    )
                    .ipc();
                    mop / base
                })
                .collect();
            (name.to_owned(), base32, vals)
        })
        .collect();
    Matrix {
        name: "effective window: MOP/base IPC ratio by queue size (entry sharing pays most when small)"
            .into(),
        arms,
        rows,
    }
}

/// CPI attribution via idealization: how much of each benchmark's time
/// goes to branches, data memory, and the scheduling loop. Columns are
/// CPI shares removed by idealizing each subsystem (and by swapping the
/// 2-cycle scheduler back to atomic under full idealization).
pub fn cpi_breakdown(insts: u64) -> Matrix {
    let arms = vec![
        "cpi".to_owned(),
        "branch".to_owned(),
        "memory".to_owned(),
        "schedloop".to_owned(),
    ];
    let rows = spec2000::names()
        .into_iter()
        .map(|name| {
            let cpi = |cfg: MachineConfig| {
                1.0 / runner::run_benchmark(name, cfg, insts).ipc().max(1e-9)
            };
            let base = cpi(MachineConfig::base_32());
            let no_branch = cpi(MachineConfig::base_32().with_ideal_branch());
            let no_mem = cpi(MachineConfig::base_32().with_ideal_memory());
            // Scheduling-loop share: ideal machine, atomic vs 2-cycle loop.
            let ideal_base = cpi(MachineConfig::base_32().with_ideal_branch().with_ideal_memory());
            let ideal_two = cpi(
                MachineConfig::two_cycle_32()
                    .with_ideal_branch()
                    .with_ideal_memory(),
            );
            let vals = vec![
                base,
                (base - no_branch).max(0.0),
                (base - no_mem).max(0.0),
                (ideal_two - ideal_base).max(0.0),
            ];
            (name.to_owned(), 1.0 / base, vals)
        })
        .collect();
    Matrix {
        name: "CPI attribution by idealization (branch / data memory / 2-cycle scheduling loop)"
            .into(),
        arms,
        rows,
    }
}

/// Seed sensitivity of the headline result: the Figure 14 comparison
/// re-run over several workload seeds (different program instances of
/// each benchmark model). Columns report the 2-cycle and macro-op
/// normalized IPC as mean over seeds; the honest error bars for our
/// synthetic-workload substitution.
pub fn seed_sensitivity(insts: u64, seeds: &[u64]) -> Matrix {
    let arms = vec![
        "2cyc-mean".to_owned(),
        "2cyc-min".to_owned(),
        "mop-mean".to_owned(),
        "mop-min".to_owned(),
    ];
    let rows = ["gap", "gzip", "parser", "vortex", "eon"]
        .into_iter()
        .map(|name| {
            let spec = spec2000::by_name(name).expect("known benchmark");
            let mut two = Vec::new();
            let mut mop = Vec::new();
            let mut base0 = 0.0;
            for &seed in seeds {
                let run = |cfg: MachineConfig| {
                    mos_sim::Simulator::new(cfg, spec.trace(seed)).run(insts).ipc()
                };
                let base = run(MachineConfig::base_unrestricted());
                if base0 == 0.0 {
                    base0 = base;
                }
                two.push(run(MachineConfig::two_cycle_unrestricted()) / base);
                mop.push(run(MachineConfig::macro_op(WakeupStyle::WiredOr, None, 0)) / base);
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
            (
                name.to_owned(),
                base0,
                vec![mean(&two), min(&two), mean(&mop), min(&mop)],
            )
        })
        .collect();
    Matrix {
        name: format!(
            "seed sensitivity of Figure 14 over {} program instances (unrestricted queue)",
            seeds.len()
        ),
        arms,
        rows,
    }
}

/// Run and render all extension studies.
pub fn run_all(insts: u64) -> String {
    [
        pipelined_schedulers(insts),
        detection_scope(insts),
        effective_window(insts),
        cpi_breakdown(insts),
        seed_sensitivity(insts / 2, &[42, 7, 1234]),
    ]
    .iter()
    .map(|m| m.to_string())
    .collect::<Vec<_>>()
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 12_000;

    #[test]
    fn speculative_wakeup_between_two_cycle_and_base() {
        let m = pipelined_schedulers(N);
        let means = m.means();
        let (two, spec) = (means[0], means[1]);
        assert!(
            spec > two - 0.01,
            "speculative wakeup ({spec:.3}) should beat 2-cycle ({two:.3})"
        );
        assert!(spec <= 1.02, "speculation cannot beat the atomic baseline");
    }

    #[test]
    fn wider_scope_groups_no_worse() {
        let m = detection_scope(N);
        for (bench, _, vals) in &m.rows {
            assert!(
                vals[2] >= vals[0] - 0.05,
                "{bench}: scope 16 ({:.3}) should not collapse vs 4 ({:.3})",
                vals[2],
                vals[0]
            );
        }
    }

    #[test]
    fn idealization_only_helps() {
        for bench in ["mcf", "crafty"] {
            let real = runner::run_benchmark(bench, MachineConfig::base_32(), N).ipc();
            let ib = runner::run_benchmark(bench, MachineConfig::base_32().with_ideal_branch(), N);
            let im = runner::run_benchmark(bench, MachineConfig::base_32().with_ideal_memory(), N);
            assert!(ib.ipc() >= real * 0.99, "{bench}: ideal branch can't hurt");
            assert!(im.ipc() >= real * 0.99, "{bench}: ideal memory can't hurt");
            assert_eq!(ib.mispredicts, 0, "{bench}: no mispredicts when ideal");
            assert_eq!(im.dl1.1, 0, "{bench}: no DL1 misses when ideal");
        }
        // mcf is memory-bound: idealizing memory must be transformative.
        let real = runner::run_benchmark("mcf", MachineConfig::base_32(), N).ipc();
        let im = runner::run_benchmark("mcf", MachineConfig::base_32().with_ideal_memory(), N).ipc();
        assert!(im > real * 1.5, "mcf: {real:.3} -> {im:.3}");
    }

    #[test]
    fn entry_sharing_pays_more_when_the_queue_is_smaller() {
        let m = effective_window(N);
        let means = m.means();
        assert!(
            means[0] >= means[3] - 0.02,
            "q12 benefit {:.3} vs q32 benefit {:.3}",
            means[0],
            means[3]
        );
    }
}

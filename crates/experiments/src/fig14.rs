//! Figure 14: vanilla macro-op scheduling performance — unrestricted
//! issue queue, 128 ROB, no extra formation stage, so macro-op scheduling
//! gets no benefit from queue-contention reduction and the comparison
//! isolates the relaxed scheduling atomicity.

use std::fmt;

use mos_core::WakeupStyle;
use mos_sim::MachineConfig;
use mos_workload::spec2000;

use crate::runner::{self, geomean, Job};

/// IPC relative to base scheduling for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Benchmark name.
    pub bench: String,
    /// Base-scheduling IPC (the normalization denominator).
    pub base_ipc: f64,
    /// 2-cycle scheduling, normalized.
    pub two_cycle: f64,
    /// Macro-op scheduling with 2-source CAM wakeup, normalized.
    pub mop_2src: f64,
    /// Macro-op scheduling with wired-OR wakeup, normalized.
    pub mop_wired_or: f64,
}

/// The full Figure 14 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Result {
    /// Rows in the paper's benchmark order.
    pub rows: Vec<Fig14Row>,
}

impl Fig14Result {
    /// Geometric-mean normalized IPC of macro-op scheduling with wired-OR
    /// wakeup (the paper reports 97.2 % of base on average).
    pub fn mean_mop_wired_or(&self) -> f64 {
        geomean(&self.rows.iter().map(|r| r.mop_wired_or).collect::<Vec<_>>())
    }

    /// Geometric-mean normalized IPC of 2-cycle scheduling.
    pub fn mean_two_cycle(&self) -> f64 {
        geomean(&self.rows.iter().map(|r| r.two_cycle).collect::<Vec<_>>())
    }
}

/// The four configurations of one Figure 14 row, in column order.
fn configs() -> [MachineConfig; 4] {
    [
        MachineConfig::base_unrestricted(),
        MachineConfig::two_cycle_unrestricted(),
        MachineConfig::macro_op(WakeupStyle::CamTwoSource, None, 0),
        MachineConfig::macro_op(WakeupStyle::WiredOr, None, 0),
    ]
}

/// Run Figure 14 across `jobs` worker threads.
pub fn run_with(insts: u64, jobs: usize) -> Fig14Result {
    let benches = spec2000::names();
    let grid: Vec<Job> = benches
        .iter()
        .flat_map(|&name| configs().map(|cfg| Job::new(name, cfg, insts)))
        .collect();
    let stats = runner::run_jobs(&grid, jobs);
    let rows = benches
        .iter()
        .zip(stats.chunks_exact(configs().len()))
        .map(|(&name, s)| {
            let base = s[0].ipc();
            Fig14Row {
                bench: name.to_owned(),
                base_ipc: base,
                two_cycle: s[1].ipc() / base,
                mop_2src: s[2].ipc() / base,
                mop_wired_or: s[3].ipc() / base,
            }
        })
        .collect();
    Fig14Result { rows }
}

/// Run Figure 14 (one worker per core).
pub fn run(insts: u64) -> Fig14Result {
    run_with(insts, runner::default_jobs())
}

impl fmt::Display for Fig14Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 14: vanilla macro-op scheduling (unrestricted queue, no extra stage)"
        )?;
        writeln!(
            f,
            "{:8} {:>8} | {:>7} {:>8} {:>8}  (IPC normalized to base)",
            "bench", "base", "2-cycle", "MOP-2src", "MOP-wOR"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:8} {:8.3} | {:7.3} {:8.3} {:8.3}",
                r.bench, r.base_ipc, r.two_cycle, r.mop_2src, r.mop_wired_or
            )?;
        }
        writeln!(
            f,
            "geomean: 2-cycle {:.3}, MOP-wiredOR {:.3} (paper: ~0.92 and 0.972)",
            self.mean_two_cycle(),
            self.mean_mop_wired_or()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_op_recovers_two_cycle_loss() {
        let r = run(runner::QUICK_INSTS);
        for row in &r.rows {
            assert!(
                row.mop_wired_or >= row.two_cycle - 0.02,
                "{}: MOP {:.3} vs 2-cycle {:.3}",
                row.bench,
                row.mop_wired_or,
                row.two_cycle
            );
        }
        assert!(r.mean_mop_wired_or() > r.mean_two_cycle());
        // MOP scheduling lands near base on average (paper: 97.2 %).
        assert!(r.mean_mop_wired_or() > 0.93, "{:.3}", r.mean_mop_wired_or());
    }

    /// The tentpole guarantee: fanning the grid across worker threads
    /// must not change a single result relative to the serial path.
    #[test]
    fn parallel_jobs_are_deterministic() {
        let serial = run_with(6_000, 1);
        let threaded = run_with(6_000, 8);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn gap_suffers_most_under_two_cycle() {
        let r = run(runner::QUICK_INSTS);
        let gap = r.rows.iter().find(|r| r.bench == "gap").expect("gap row");
        for row in &r.rows {
            assert!(
                gap.two_cycle <= row.two_cycle + 0.03,
                "gap {:.3} should be the worst, {} is {:.3}",
                gap.two_cycle,
                row.bench,
                row.two_cycle
            );
        }
        assert!(gap.two_cycle < 0.90, "paper: -19.1 %, got {:.3}", gap.two_cycle);
    }
}

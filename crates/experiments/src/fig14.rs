//! Figure 14: vanilla macro-op scheduling performance — unrestricted
//! issue queue, 128 ROB, no extra formation stage, so macro-op scheduling
//! gets no benefit from queue-contention reduction and the comparison
//! isolates the relaxed scheduling atomicity.

use std::fmt;

use mos_core::WakeupStyle;
use mos_sim::MachineConfig;
use mos_workload::spec2000;

use crate::runner::{self, geomean};

/// IPC relative to base scheduling for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Benchmark name.
    pub bench: String,
    /// Base-scheduling IPC (the normalization denominator).
    pub base_ipc: f64,
    /// 2-cycle scheduling, normalized.
    pub two_cycle: f64,
    /// Macro-op scheduling with 2-source CAM wakeup, normalized.
    pub mop_2src: f64,
    /// Macro-op scheduling with wired-OR wakeup, normalized.
    pub mop_wired_or: f64,
}

/// The full Figure 14 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Result {
    /// Rows in the paper's benchmark order.
    pub rows: Vec<Fig14Row>,
}

impl Fig14Result {
    /// Geometric-mean normalized IPC of macro-op scheduling with wired-OR
    /// wakeup (the paper reports 97.2 % of base on average).
    pub fn mean_mop_wired_or(&self) -> f64 {
        geomean(&self.rows.iter().map(|r| r.mop_wired_or).collect::<Vec<_>>())
    }

    /// Geometric-mean normalized IPC of 2-cycle scheduling.
    pub fn mean_two_cycle(&self) -> f64 {
        geomean(&self.rows.iter().map(|r| r.two_cycle).collect::<Vec<_>>())
    }
}

/// Run Figure 14.
pub fn run(insts: u64) -> Fig14Result {
    let rows = spec2000::names()
        .into_iter()
        .map(|name| {
            let base =
                runner::run_benchmark(name, MachineConfig::base_unrestricted(), insts).ipc();
            let two =
                runner::run_benchmark(name, MachineConfig::two_cycle_unrestricted(), insts).ipc();
            let m2 = runner::run_benchmark(
                name,
                MachineConfig::macro_op(WakeupStyle::CamTwoSource, None, 0),
                insts,
            )
            .ipc();
            let mw = runner::run_benchmark(
                name,
                MachineConfig::macro_op(WakeupStyle::WiredOr, None, 0),
                insts,
            )
            .ipc();
            Fig14Row {
                bench: name.to_owned(),
                base_ipc: base,
                two_cycle: two / base,
                mop_2src: m2 / base,
                mop_wired_or: mw / base,
            }
        })
        .collect();
    Fig14Result { rows }
}

impl fmt::Display for Fig14Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 14: vanilla macro-op scheduling (unrestricted queue, no extra stage)"
        )?;
        writeln!(
            f,
            "{:8} {:>8} | {:>7} {:>8} {:>8}  (IPC normalized to base)",
            "bench", "base", "2-cycle", "MOP-2src", "MOP-wOR"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:8} {:8.3} | {:7.3} {:8.3} {:8.3}",
                r.bench, r.base_ipc, r.two_cycle, r.mop_2src, r.mop_wired_or
            )?;
        }
        writeln!(
            f,
            "geomean: 2-cycle {:.3}, MOP-wiredOR {:.3} (paper: ~0.92 and 0.972)",
            self.mean_two_cycle(),
            self.mean_mop_wired_or()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_op_recovers_two_cycle_loss() {
        let r = run(runner::QUICK_INSTS);
        for row in &r.rows {
            assert!(
                row.mop_wired_or >= row.two_cycle - 0.02,
                "{}: MOP {:.3} vs 2-cycle {:.3}",
                row.bench,
                row.mop_wired_or,
                row.two_cycle
            );
        }
        assert!(r.mean_mop_wired_or() > r.mean_two_cycle());
        // MOP scheduling lands near base on average (paper: 97.2 %).
        assert!(r.mean_mop_wired_or() > 0.93, "{:.3}", r.mean_mop_wired_or());
    }

    #[test]
    fn gap_suffers_most_under_two_cycle() {
        let r = run(runner::QUICK_INSTS);
        let gap = r.rows.iter().find(|r| r.bench == "gap").expect("gap row");
        for row in &r.rows {
            assert!(
                gap.two_cycle <= row.two_cycle + 0.03,
                "gap {:.3} should be the worst, {} is {:.3}",
                gap.two_cycle,
                row.bench,
                row.two_cycle
            );
        }
        assert!(gap.two_cycle < 0.90, "paper: -19.1 %, got {:.3}", gap.two_cycle);
    }
}

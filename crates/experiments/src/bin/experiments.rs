//! CLI for regenerating every table and figure of the paper:
//!
//! ```text
//! experiments <table1|table2|fig6|fig7|fig13|fig14|fig15|fig16|ablations|extensions|all>
//!             [--insts N] [--jobs N]
//! experiments perf [--insts N] [--jobs N] [--out PATH] [--ledger]
//!                  [--history PATH]
//! ```
//!
//! `--jobs N` fans the figure's (benchmark, config) simulations across N
//! worker threads; `--jobs 1` is the serial path. Output is byte-identical
//! for any N. `perf` times the full sweep, writes `BENCH_sim.json`
//! (per-figure wall time, IPC and scheduler kinds plus an observability
//! overhead probe with its CPI stack) and appends one line to
//! `results/bench_history.jsonl` (override with `--history PATH`) for
//! `scripts/perf_gate.sh`.
//!
//! `--ledger` archives every figure sweep in the content-addressed run
//! ledger (`results/ledger/`, or `$MOS_LEDGER_DIR`) and makes re-sweeps
//! incremental: a figure whose key (name, budget, git revision) is
//! already archived is served from the ledger, marked `"cached": true`
//! in `BENCH_sim.json`, with byte-identical sim-side fields. A sweep
//! with any cached figure skips the history append — it is not a real
//! throughput measurement.

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use mos_experiments::{
    ablations, extensions, fig13, fig14, fig15, fig16, fig6, fig7, ledgered, runner, rvsuite,
    tables,
};
use mos_ledger::Ledger;

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments <table1|table2|fig6|fig7|fig13|fig14|fig15|fig16|ablations|extensions|rv|all|perf> \
         [--insts N] [--jobs N] [--out PATH] [--ledger] [--history PATH]"
    );
    ExitCode::FAILURE
}

/// Value of `--<name> <value>`, if present; `Err` on a malformed value.
fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, ()> {
    match args.iter().position(|a| a == name) {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<T>().ok()) {
            Some(v) => Ok(Some(v)),
            None => Err(()),
        },
        None => Ok(None),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(what) = args.first().cloned() else {
        return usage();
    };
    let Ok(insts) = flag::<u64>(&args, "--insts") else {
        return usage();
    };
    let insts = insts.unwrap_or(runner::DEFAULT_INSTS);
    let Ok(jobs) = flag::<usize>(&args, "--jobs") else {
        return usage();
    };
    let jobs = jobs.unwrap_or_else(runner::default_jobs).max(1);

    if what == "perf" {
        let Ok(out) = flag::<String>(&args, "--out") else {
            return usage();
        };
        let out = out.unwrap_or_else(|| "BENCH_sim.json".to_owned());
        let Ok(history) = flag::<String>(&args, "--history") else {
            return usage();
        };
        let history = history.unwrap_or_else(|| "results/bench_history.jsonl".to_owned());
        let use_ledger = args.iter().any(|a| a == "--ledger");
        return perf(insts, jobs, &out, use_ledger, &history);
    }

    let run_one = |what: &str| -> Option<String> {
        match what {
            "table1" => Some(tables::table1()),
            "table2" => Some(tables::table2_with(insts, jobs).to_string()),
            "fig6" => Some(fig6::run(insts as usize).to_string()),
            "fig7" => Some(fig7::run(insts as usize).to_string()),
            "fig13" => Some(fig13::run_with(insts, jobs).to_string()),
            "fig14" => Some(fig14::run_with(insts, jobs).to_string()),
            "fig15" => Some(fig15::run_with(insts, jobs).to_string()),
            "fig16" => Some(fig16::run_with(insts, jobs).to_string()),
            "ablations" => Some(ablations::run_all_with(insts, jobs)),
            "extensions" => Some(extensions::run_all_with(insts, jobs)),
            "rv" => Some(rvsuite::run_with(jobs).to_string()),
            _ => None,
        }
    };

    if what == "all" {
        for w in [
            "table1", "table2", "fig6", "fig7", "fig13", "fig14", "fig15", "fig16", "ablations",
            "extensions", "rv",
        ] {
            println!("{}", run_one(w).expect("known experiment"));
        }
        return ExitCode::SUCCESS;
    }
    match run_one(&what) {
        Some(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        None => usage(),
    }
}

/// Time every simulation sweep and write the perf trajectory file.
fn perf(insts: u64, jobs: usize, out_path: &str, use_ledger: bool, history_path: &str) -> ExitCode {
    let ledger = use_ledger.then(|| Ledger::open(Ledger::default_root()));
    let git_rev = mos_ledger::git_short_rev();
    if let Some(store) = &ledger {
        eprintln!(
            "perf: ledger at {} (git rev {git_rev})",
            store.root().display()
        );
    }

    type Sweep = (&'static str, Box<dyn Fn()>);
    let sweeps: [Sweep; 8] = [
        ("table2", Box::new(move || drop(tables::table2_with(insts, jobs)))),
        ("fig13", Box::new(move || drop(fig13::run_with(insts, jobs)))),
        ("fig14", Box::new(move || drop(fig14::run_with(insts, jobs)))),
        ("fig15", Box::new(move || drop(fig15::run_with(insts, jobs)))),
        ("fig16", Box::new(move || drop(fig16::run_with(insts, jobs)))),
        ("ablations", Box::new(move || drop(ablations::run_all_with(insts, jobs)))),
        ("extensions", Box::new(move || drop(extensions::run_all_with(insts, jobs)))),
        // The RV32 real-program suite under all 7 scheduler kinds; the
        // programs run to their own halt, so this sweep ignores --insts.
        ("rv", Box::new(move || drop(rvsuite::sweep(jobs)))),
    ];

    let mut entries: Vec<ledgered::FigureOutcome> = Vec::new();
    runner::take_simulated_cycles(); // reset the counters
    runner::take_simulated_commits();
    runner::take_sched_kinds();
    let total_start = Instant::now();
    for (name, sweep) in &sweeps {
        let e = ledgered::run_figure(name, insts, ledger.as_ref(), &git_rev, sweep);
        eprintln!(
            "perf: {name:10} {:8.3}s  {:>12} cycles  {:>12} committed  {:>12.0} cycles/s{}",
            e.wall_seconds,
            e.sim_cycles,
            e.sim_commits,
            e.sim_cycles as f64 / e.wall_seconds.max(1e-9),
            if e.cached { "  (cached)" } else { "" }
        );
        entries.push(e);
    }
    let total_wall = total_start.elapsed().as_secs_f64();
    let any_cached = entries.iter().any(|e| e.cached);
    let total_cycles: u64 = entries.iter().map(|e| e.sim_cycles).sum();
    let total_commits: u64 = entries.iter().map(|e| e.sim_commits).sum();

    // On-vs-off observability overhead probe: the same job run plain,
    // with interval metrics, and with full event tracing into a
    // throwaway ring. Simulated cycle counts must agree (observation
    // cannot change timing); wall-time deltas quantify the cost.
    let probe = runner::Job::new(
        "gzip",
        mos_sim::MachineConfig::macro_op(mos_core::WakeupStyle::WiredOr, Some(32), 1),
        insts,
    );
    let time_probe = |metrics: bool, tracing: bool| {
        let start = Instant::now();
        let stats = probe.run_observed(metrics, tracing);
        (start.elapsed().as_secs_f64(), stats)
    };
    let (plain_s, plain) = time_probe(false, false);
    let (metrics_s, metrics) = time_probe(true, false);
    let (tracing_s, tracing) = time_probe(false, true);
    let accounted_start = Instant::now();
    let accounted = probe.run_accounted();
    let accounted_s = accounted_start.elapsed().as_secs_f64();
    assert_eq!(
        plain.cycles, metrics.cycles,
        "metrics collection must not change simulated timing"
    );
    assert_eq!(
        plain.cycles, tracing.cycles,
        "event tracing must not change simulated timing"
    );
    assert_eq!(
        plain.cycles, accounted.cycles,
        "slot accounting must not change simulated timing"
    );
    let probe_width = probe.cfg.sched.issue_width as u64;
    let probe_stack =
        mos_sim::CpiStack::from_stats(probe.bench, "mop-wor", probe_width, &accounted);
    if let Err(e) = probe_stack.check_conservation() {
        eprintln!("perf: probe CPI stack violates slot conservation: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "perf: observability probe (gzip mop-wor, {} cycles): plain {plain_s:.3}s, metrics {metrics_s:.3}s, tracing {tracing_s:.3}s, cpistack {accounted_s:.3}s",
        plain.cycles
    );

    // MOP pairability and sched_loop share on the RV32 real-program
    // suite: does real code confirm the synthetic-workload story?
    runner::take_simulated_cycles(); // probe runs stay out of the totals
    runner::take_simulated_commits();
    runner::take_sched_kinds();
    let rv_probe = rvsuite::probe();
    runner::take_simulated_cycles();
    runner::take_simulated_commits();
    runner::take_sched_kinds();
    if let Some(store) = &ledger {
        ledgered::save_rv_probe(store, &git_rev, &rv_probe);
    }
    for r in &rv_probe {
        eprintln!(
            "perf: rv probe {:12} pairability {:5.1}%  sched_loop 2cycle {:5.1}% / mop-wor {:5.1}%",
            r.program,
            r.pairability * 100.0,
            r.sched_loop_2cycle * 100.0,
            r.sched_loop_mop * 100.0
        );
    }

    // Hand-rolled JSON: the workspace deliberately has no serde_json.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"insts_per_sim\": {insts},\n"));
    json.push_str(&format!("  \"jobs\": {jobs},\n"));
    json.push_str("  \"figures\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let kinds = e
            .sched_kinds
            .iter()
            .map(|k| format!("\"{k}\""))
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_seconds\": {:.6}, \"sim_cycles\": {}, \"sim_commits\": {}, \"ipc\": {:.4}, \"cycles_per_sec\": {:.1}, \"cached\": {}, \"sched_kinds\": [{kinds}]}}{}\n",
            e.name,
            e.wall_seconds,
            e.sim_cycles,
            e.sim_commits,
            e.ipc(),
            e.sim_cycles as f64 / e.wall_seconds.max(1e-9),
            e.cached,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    // The observability probe is a single serial simulation, so its
    // plain run doubles as the jobs-count-independent throughput figure
    // the perf gate prefers (aggregate throughput moves with --jobs).
    let jobs1_cps = plain.cycles as f64 / plain_s.max(1e-9);
    json.push_str("  \"observability\": {\n");
    json.push_str(&format!("    \"probe_sim_cycles\": {},\n", plain.cycles));
    json.push_str(&format!(
        "    \"plain_wall_seconds\": {plain_s:.6},\n    \"metrics_wall_seconds\": {metrics_s:.6},\n    \"tracing_wall_seconds\": {tracing_s:.6},\n    \"cpistack_wall_seconds\": {accounted_s:.6},\n"
    ));
    json.push_str(&format!(
        "    \"probe_cycles_per_sec_jobs1\": {jobs1_cps:.1},\n"
    ));
    json.push_str(&format!(
        "    \"probe_cpi_stack\": {}\n",
        probe_stack.to_json()
    ));
    json.push_str("  },\n");
    json.push_str("  \"rv_probe\": [\n");
    for (i, r) in rv_probe.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"program\": \"{}\", \"mop_pairability\": {:.4}, \"sched_loop_share_2cycle\": {:.4}, \"sched_loop_share_mop_wor\": {:.4}}}{}\n",
            r.program,
            r.pairability,
            r.sched_loop_2cycle,
            r.sched_loop_mop,
            if i + 1 < rv_probe.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"total_wall_seconds\": {total_wall:.6},\n"));
    json.push_str(&format!("  \"total_sim_cycles\": {total_cycles},\n"));
    json.push_str(&format!("  \"total_sim_commits\": {total_commits},\n"));
    json.push_str(&format!(
        "  \"total_cycles_per_sec\": {:.1}\n",
        total_cycles as f64 / total_wall.max(1e-9)
    ));
    json.push_str("}\n");

    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("perf: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("perf: wrote {out_path} ({total_wall:.3}s total, {jobs} jobs)");

    if any_cached {
        // A sweep with ledger hits measured only the misses; appending
        // it would poison the throughput trend the perf gate reads.
        eprintln!("perf: skipping history append (some figures were served from the ledger)");
        return ExitCode::SUCCESS;
    }
    let total_cps = total_cycles as f64 / total_wall.max(1e-9);
    match append_history(
        history_path,
        insts,
        jobs,
        total_cycles,
        total_wall,
        total_cps,
        jobs1_cps,
        &probe_stack,
    ) {
        Ok(()) => eprintln!("perf: appended history entry to {history_path}"),
        Err(e) => {
            // History is an append-only convenience log; a read-only
            // checkout must not fail the sweep.
            eprintln!("perf: could not append bench history: {e}");
        }
    }
    ExitCode::SUCCESS
}

/// Append one single-line JSON entry to the bench history: the perf
/// sweep's aggregate throughput, the jobs=1 normalized probe throughput
/// and the top stall causes of the probe's CPI stack, keyed by git
/// revision and wall-clock time. The perf gate (`scripts/perf_gate.sh`)
/// compares the newest entry against the median of the baselines before
/// it.
#[allow(clippy::too_many_arguments)]
fn append_history(
    path: &str,
    insts: u64,
    jobs: usize,
    total_cycles: u64,
    total_wall: f64,
    total_cps: f64,
    jobs1_cps: f64,
    probe: &mos_sim::CpiStack,
) -> Result<(), String> {
    use std::io::Write as _;

    let git_rev = mos_ledger::git_short_rev();
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    // Top three stall causes (everything but useful issue) by share.
    let mut causes: Vec<_> = mos_core::SlotCause::ALL
        .iter()
        .filter(|&&c| c != mos_core::SlotCause::Useful)
        .map(|&c| (c.name(), probe.share(c)))
        .collect();
    causes.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let top = causes
        .iter()
        .take(3)
        .map(|(name, share)| format!("{{\"cause\": \"{name}\", \"share\": {share:.4}}}"))
        .collect::<Vec<_>>()
        .join(", ");

    let line = format!(
        "{{\"git_rev\": \"{git_rev}\", \"unix_time\": {unix_time}, \"insts\": {insts}, \
         \"jobs\": {jobs}, \"total_sim_cycles\": {total_cycles}, \
         \"total_wall_seconds\": {total_wall:.6}, \"total_cycles_per_sec\": {total_cps:.1}, \
         \"probe_cycles_per_sec_jobs1\": {jobs1_cps:.1}, \
         \"probe_bench\": \"{}\", \"probe_ipc\": {:.4}, \"top_causes\": [{top}]}}\n",
        probe.bench,
        probe.ipc(),
    );

    if let Some(dir) = std::path::Path::new(path).parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {path}: {e}"))?;
    file.write_all(line.as_bytes())
        .map_err(|e| format!("write {path}: {e}"))?;
    Ok(())
}

//! CLI for regenerating every table and figure of the paper:
//!
//! ```text
//! experiments <table1|table2|fig6|fig7|fig13|fig14|fig15|fig16|ablations|extensions|all>
//!             [--insts N] [--jobs N]
//! experiments perf [--insts N] [--jobs N] [--out PATH]
//! ```
//!
//! `--jobs N` fans the figure's (benchmark, config) simulations across N
//! worker threads; `--jobs 1` is the serial path. Output is byte-identical
//! for any N. `perf` times the full sweep and writes `BENCH_sim.json`.

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use mos_experiments::{
    ablations, extensions, fig13, fig14, fig15, fig16, fig6, fig7, runner, tables,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments <table1|table2|fig6|fig7|fig13|fig14|fig15|fig16|ablations|extensions|all|perf> \
         [--insts N] [--jobs N] [--out PATH]"
    );
    ExitCode::FAILURE
}

/// Value of `--<name> <value>`, if present; `Err` on a malformed value.
fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, ()> {
    match args.iter().position(|a| a == name) {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<T>().ok()) {
            Some(v) => Ok(Some(v)),
            None => Err(()),
        },
        None => Ok(None),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(what) = args.first().cloned() else {
        return usage();
    };
    let Ok(insts) = flag::<u64>(&args, "--insts") else {
        return usage();
    };
    let insts = insts.unwrap_or(runner::DEFAULT_INSTS);
    let Ok(jobs) = flag::<usize>(&args, "--jobs") else {
        return usage();
    };
    let jobs = jobs.unwrap_or_else(runner::default_jobs).max(1);

    if what == "perf" {
        let Ok(out) = flag::<String>(&args, "--out") else {
            return usage();
        };
        let out = out.unwrap_or_else(|| "BENCH_sim.json".to_owned());
        return perf(insts, jobs, &out);
    }

    let run_one = |what: &str| -> Option<String> {
        match what {
            "table1" => Some(tables::table1()),
            "table2" => Some(tables::table2_with(insts, jobs).to_string()),
            "fig6" => Some(fig6::run(insts as usize).to_string()),
            "fig7" => Some(fig7::run(insts as usize).to_string()),
            "fig13" => Some(fig13::run_with(insts, jobs).to_string()),
            "fig14" => Some(fig14::run_with(insts, jobs).to_string()),
            "fig15" => Some(fig15::run_with(insts, jobs).to_string()),
            "fig16" => Some(fig16::run_with(insts, jobs).to_string()),
            "ablations" => Some(ablations::run_all_with(insts, jobs)),
            "extensions" => Some(extensions::run_all_with(insts, jobs)),
            _ => None,
        }
    };

    if what == "all" {
        for w in [
            "table1", "table2", "fig6", "fig7", "fig13", "fig14", "fig15", "fig16", "ablations",
            "extensions",
        ] {
            println!("{}", run_one(w).expect("known experiment"));
        }
        return ExitCode::SUCCESS;
    }
    match run_one(&what) {
        Some(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        None => usage(),
    }
}

/// Time every simulation sweep and write the perf trajectory file.
fn perf(insts: u64, jobs: usize, out_path: &str) -> ExitCode {
    struct Entry {
        name: &'static str,
        wall_seconds: f64,
        sim_cycles: u64,
        sim_commits: u64,
    }

    type Sweep = (&'static str, Box<dyn Fn()>);
    let sweeps: [Sweep; 7] = [
        ("table2", Box::new(move || drop(tables::table2_with(insts, jobs)))),
        ("fig13", Box::new(move || drop(fig13::run_with(insts, jobs)))),
        ("fig14", Box::new(move || drop(fig14::run_with(insts, jobs)))),
        ("fig15", Box::new(move || drop(fig15::run_with(insts, jobs)))),
        ("fig16", Box::new(move || drop(fig16::run_with(insts, jobs)))),
        ("ablations", Box::new(move || drop(ablations::run_all_with(insts, jobs)))),
        ("extensions", Box::new(move || drop(extensions::run_all_with(insts, jobs)))),
    ];

    let mut entries = Vec::new();
    runner::take_simulated_cycles(); // reset the counters
    runner::take_simulated_commits();
    let total_start = Instant::now();
    for (name, sweep) in &sweeps {
        let start = Instant::now();
        sweep();
        let wall_seconds = start.elapsed().as_secs_f64();
        let sim_cycles = runner::take_simulated_cycles();
        let sim_commits = runner::take_simulated_commits();
        eprintln!(
            "perf: {name:10} {wall_seconds:8.3}s  {sim_cycles:>12} cycles  {sim_commits:>12} committed  {:>12.0} cycles/s",
            sim_cycles as f64 / wall_seconds.max(1e-9)
        );
        entries.push(Entry {
            name,
            wall_seconds,
            sim_cycles,
            sim_commits,
        });
    }
    let total_wall = total_start.elapsed().as_secs_f64();
    let total_cycles: u64 = entries.iter().map(|e| e.sim_cycles).sum();
    let total_commits: u64 = entries.iter().map(|e| e.sim_commits).sum();

    // On-vs-off observability overhead probe: the same job run plain,
    // with interval metrics, and with full event tracing into a
    // throwaway ring. Simulated cycle counts must agree (observation
    // cannot change timing); wall-time deltas quantify the cost.
    let probe = runner::Job::new(
        "gzip",
        mos_sim::MachineConfig::macro_op(mos_core::WakeupStyle::WiredOr, Some(32), 1),
        insts,
    );
    let time_probe = |metrics: bool, tracing: bool| {
        let start = Instant::now();
        let stats = probe.run_observed(metrics, tracing);
        (start.elapsed().as_secs_f64(), stats)
    };
    let (plain_s, plain) = time_probe(false, false);
    let (metrics_s, metrics) = time_probe(true, false);
    let (tracing_s, tracing) = time_probe(false, true);
    assert_eq!(
        plain.cycles, metrics.cycles,
        "metrics collection must not change simulated timing"
    );
    assert_eq!(
        plain.cycles, tracing.cycles,
        "event tracing must not change simulated timing"
    );
    eprintln!(
        "perf: observability probe (gzip mop-wor, {} cycles): plain {plain_s:.3}s, metrics {metrics_s:.3}s, tracing {tracing_s:.3}s",
        plain.cycles
    );

    // Hand-rolled JSON: the workspace deliberately has no serde_json.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"insts_per_sim\": {insts},\n"));
    json.push_str(&format!("  \"jobs\": {jobs},\n"));
    json.push_str("  \"figures\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_seconds\": {:.6}, \"sim_cycles\": {}, \"sim_commits\": {}, \"cycles_per_sec\": {:.1}}}{}\n",
            e.name,
            e.wall_seconds,
            e.sim_cycles,
            e.sim_commits,
            e.sim_cycles as f64 / e.wall_seconds.max(1e-9),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"observability\": {\n");
    json.push_str(&format!("    \"probe_sim_cycles\": {},\n", plain.cycles));
    json.push_str(&format!(
        "    \"plain_wall_seconds\": {plain_s:.6},\n    \"metrics_wall_seconds\": {metrics_s:.6},\n    \"tracing_wall_seconds\": {tracing_s:.6}\n"
    ));
    json.push_str("  },\n");
    json.push_str(&format!("  \"total_wall_seconds\": {total_wall:.6},\n"));
    json.push_str(&format!("  \"total_sim_cycles\": {total_cycles},\n"));
    json.push_str(&format!("  \"total_sim_commits\": {total_commits},\n"));
    json.push_str(&format!(
        "  \"total_cycles_per_sec\": {:.1}\n",
        total_cycles as f64 / total_wall.max(1e-9)
    ));
    json.push_str("}\n");

    match std::fs::write(out_path, &json) {
        Ok(()) => {
            eprintln!("perf: wrote {out_path} ({total_wall:.3}s total, {jobs} jobs)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("perf: cannot write {out_path}: {e}");
            ExitCode::FAILURE
        }
    }
}

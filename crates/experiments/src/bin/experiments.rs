//! CLI for regenerating every table and figure of the paper:
//!
//! ```text
//! experiments <table1|table2|fig6|fig7|fig13|fig14|fig15|fig16|ablations|all> [--insts N]
//! ```

use std::env;
use std::process::ExitCode;

use mos_experiments::{ablations, extensions, fig13, fig14, fig15, fig16, fig6, fig7, runner, tables};

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments <table1|table2|fig6|fig7|fig13|fig14|fig15|fig16|ablations|all> [--insts N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(what) = args.first() else {
        return usage();
    };
    let insts = match args.iter().position(|a| a == "--insts") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) {
            Some(n) => n,
            None => return usage(),
        },
        None => runner::DEFAULT_INSTS,
    };

    let run_one = |what: &str| -> Option<String> {
        match what {
            "table1" => Some(tables::table1()),
            "table2" => Some(tables::table2(insts).to_string()),
            "fig6" => Some(fig6::run(insts as usize).to_string()),
            "fig7" => Some(fig7::run(insts as usize).to_string()),
            "fig13" => Some(fig13::run(insts).to_string()),
            "fig14" => Some(fig14::run(insts).to_string()),
            "fig15" => Some(fig15::run(insts).to_string()),
            "fig16" => Some(fig16::run(insts).to_string()),
            "ablations" => Some(ablations::run_all(insts)),
            "extensions" => Some(extensions::run_all(insts)),
            _ => None,
        }
    };

    if what == "all" {
        for w in [
            "table1", "table2", "fig6", "fig7", "fig13", "fig14", "fig15", "fig16", "ablations",
            "extensions",
        ] {
            println!("{}", run_one(w).expect("known experiment"));
        }
        return ExitCode::SUCCESS;
    }
    match run_one(what) {
        Some(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        None => usage(),
    }
}

//! Rendering checks: every experiment's Display output must contain the
//! rows and labels a reader of the paper would look for. Small budgets —
//! these validate plumbing and formatting, not numbers.

use mos_experiments::{ablations, extensions, fig13, fig14, fig15, fig16, fig6, fig7, tables};

const N: u64 = 4_000;

fn has_all_benchmarks(text: &str) {
    for b in [
        "bzip", "crafty", "eon", "gap", "gcc", "gzip", "mcf", "parser", "perl", "twolf",
        "vortex", "vpr",
    ] {
        assert!(text.contains(b), "missing {b} in:\n{text}");
    }
}

#[test]
fn table1_and_2_render() {
    let t1 = tables::table1();
    assert!(t1.contains("Table 1"));
    let t2 = tables::table2(N).to_string();
    assert!(t2.contains("Table 2"));
    has_all_benchmarks(&t2);
}

#[test]
fn fig6_and_7_render() {
    let f6 = fig6::run(N as usize).to_string();
    assert!(f6.contains("Figure 6"));
    assert!(f6.contains("noncand"));
    has_all_benchmarks(&f6);
    let f7 = fig7::run(N as usize).to_string();
    assert!(f7.contains("Figure 7"));
    assert!(f7.contains("avg8x"));
    has_all_benchmarks(&f7);
}

#[test]
fn pipeline_figures_render() {
    let f13 = fig13::run(N).to_string();
    assert!(f13.contains("Figure 13"));
    assert!(f13.contains("paper: 16.2"));
    has_all_benchmarks(&f13);

    let f14 = fig14::run(N).to_string();
    assert!(f14.contains("Figure 14"));
    assert!(f14.contains("geomean"));
    has_all_benchmarks(&f14);

    let f15 = fig15::run(N).to_string();
    assert!(f15.contains("Figure 15"));
    assert!(f15.contains("wOR+2"));
    has_all_benchmarks(&f15);

    let f16 = fig16::run(N).to_string();
    assert!(f16.contains("Figure 16"));
    assert!(f16.contains("sf-squash"));
    has_all_benchmarks(&f16);
}

#[test]
fn ablations_and_extensions_render() {
    let a = ablations::run_all(N);
    for needle in [
        "detection delay",
        "cycle detection",
        "last-arriving-operand",
        "independent MOPs",
        "MOP size",
    ] {
        assert!(a.contains(needle), "missing `{needle}`");
    }
    let e = extensions::run_all(N);
    for needle in [
        "pipelined scheduling design space",
        "spec-wake",
        "detection scope",
        "effective window",
        "CPI attribution",
        "seed sensitivity",
    ] {
        assert!(e.contains(needle), "missing `{needle}`");
    }
}

//! The incremental-sweep determinism contract: a ledger cache hit is
//! byte-identical to the fresh run it replaces, regardless of the job
//! count the re-sweep would have used.
//!
//! One #[test] on purpose: the fresh/cached comparison reads the global
//! sim counters, and an integration test binary gives it a process of
//! its own (library unit tests tally into the same counters).

use mos_experiments::{fig14, ledgered, runner};
use mos_ledger::Ledger;

#[test]
fn cached_sweep_is_byte_identical_to_the_fresh_run() {
    let root = std::env::temp_dir().join(format!("mos_sweep_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Ledger::open(root);

    // Fresh sweep, serial. Counters start drained in this process, but
    // drain them anyway to mirror the perf driver's protocol.
    runner::take_simulated_cycles();
    runner::take_simulated_commits();
    runner::take_sched_kinds();
    let fresh = ledgered::run_figure("fig14", 2000, Some(&store), "testrev", || {
        fig14::run_with(2000, 1);
    });
    assert!(!fresh.cached);
    assert!(fresh.sim_cycles > 0);
    let key = fresh.key.clone().expect("ledgered run has a key");
    let record_before = std::fs::read(store.record_path(&key)).unwrap();

    // Re-sweep with a parallel job count: must be served from the
    // archive without running the closure at all.
    let mut reran = false;
    let hit = ledgered::run_figure("fig14", 2000, Some(&store), "testrev", || {
        reran = true;
        fig14::run_with(2000, 4);
    });
    assert!(!reran, "cache hit must not simulate");
    assert!(hit.cached);
    assert_eq!(hit.key.as_deref(), Some(key.as_str()));

    // Sim-side fields identical to the fresh run...
    assert_eq!(hit.sim_cycles, fresh.sim_cycles);
    assert_eq!(hit.sim_commits, fresh.sim_commits);
    assert_eq!(hit.sched_kinds, fresh.sched_kinds);

    // ...and the archived record file is untouched, byte for byte.
    let record_after = std::fs::read(store.record_path(&key)).unwrap();
    assert_eq!(record_before, record_after);

    // The hit left its provenance trail: a second index line, cached.
    let index = store.index();
    assert_eq!(index.len(), 2);
    assert!(!index[0].cached);
    assert!(index[1].cached);

    let _ = std::fs::remove_dir_all(store.root());
}

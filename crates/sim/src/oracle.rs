//! Online scheduling-invariant oracle.
//!
//! [`InvariantOracle`] is an [`EventSink`] that consumes the simulator's
//! event stream and asserts scheduling *legality* — properties that must
//! hold for every run regardless of heuristics or performance:
//!
//! * **Wakeup before select:** an entry is selected only at or after the
//!   announced `ready_at` of every source tag it waits on.
//! * **Dependency floor:** a consumer is selected no earlier than its
//!   producer's select cycle plus `max(producer latency, wakeup floor)`.
//!   The floor is restated here *independently* of
//!   `SchedulerKind::wakeup_floor()` (2 for the pipelined 2-cycle and
//!   macro-op schedulers, 1 otherwise), so a bug in either the queue's
//!   broadcast arithmetic or the config tables trips the oracle. Grouped
//!   (MOPped) pairs share one entry and their internal edge is not a
//!   tracked source, which is exactly how the paper lets them issue
//!   back-to-back while non-grouped dependent pairs cannot.
//! * **MOP atomicity:** a selected entry's uop list equals the uops
//!   renamed into it (minus squashed tails), never exceeds the configured
//!   MOP size, and only the macro-op scheduler may select multi-uop
//!   entries.
//! * **Replay holds:** an entry pulled back by a load-miss replay is not
//!   re-selected before the missed tag's re-broadcast time.
//! * **In-order commit:** committed uop ids strictly increase, commit
//!   cycles never regress, and every committed uop was issued.
//! * **Pointer lifecycle:** a MOP pointer is installed only after its
//!   detection delay elapsed, fetch only hits installed pointers, and
//!   evictions name installed pointers.
//!
//! The oracle is deliberately *stale-early* about wakeup revocations
//! (collision squashes and scoreboard un-broadcasts are not evented): its
//! recorded `ready_at` is always less than or equal to the queue's
//! effective one, so it can miss a violation in those corners but never
//! reports a false positive.
//!
//! Debug builds attach a panicking oracle to every `Simulator`
//! automatically, turning the whole test suite into a timing-legality
//! suite; `mossim trace --check` attaches a collecting one and reports.

use std::collections::{HashMap, HashSet, VecDeque};

use mos_core::config::{SchedConfig, SchedulerKind};
use mos_core::events::{EventSink, TraceEvent};
use mos_core::UopId;

/// How the oracle reacts to a violated invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleMode {
    /// Panic immediately, printing the violation and the event window
    /// (used by the debug-build auto-attach: any test run trips it).
    Panic,
    /// Record the violation and keep checking (used by `mossim trace
    /// --check`).
    Collect,
}

/// One recorded invariant violation: what broke, when, and the trailing
/// event window leading up to it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Cycle of the violating event.
    pub cycle: u64,
    /// What went wrong.
    pub message: String,
    /// The last events before (and including) the violation, one JSON
    /// line each.
    pub window: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {}: {}\n{}",
            self.cycle, self.message, self.window
        )
    }
}

/// Per-tag producer record: when its entry was last selected and with
/// what scheduling latency.
#[derive(Debug, Clone, Copy)]
struct Producer {
    select: u64,
    latency: u32,
}

/// The online invariant checker. Feed it the event stream via
/// [`EventSink::emit`]; read back [`InvariantOracle::violations`] in
/// [`OracleMode::Collect`] mode.
#[derive(Debug)]
pub struct InvariantOracle {
    kind: SchedulerKind,
    max_mop_size: usize,
    mode: OracleMode,
    /// Latest announced wakeup time per tag (stale-early on revocations).
    tag_ready: HashMap<u64, u64>,
    /// Latest select of the entry producing each tag.
    producer: HashMap<u64, Producer>,
    /// Uops renamed into each queue slot, generation-checked (bounded by
    /// queue capacity).
    members: HashMap<usize, (u64, Vec<UopId>)>,
    /// Replay holds per slot: `(generation, earliest legal re-select)`.
    hold: HashMap<usize, (u64, u64)>,
    /// Uops that have been selected at least once.
    issued: HashSet<u64>,
    last_commit: Option<(u64, u64)>,
    /// Scheduled pointer installs per head sidx: pending `visible_at`s.
    ptr_pending: HashMap<u32, Vec<u64>>,
    /// Heads with an installed (fetch-visible) pointer.
    ptr_installed: HashSet<u32>,
    /// Trailing event window for violation reports.
    window: VecDeque<TraceEvent>,
    window_cap: usize,
    last_prune: u64,
    events_seen: u64,
    violations: Vec<Violation>,
}

/// Cycle horizon after which always-passing bookkeeping is dropped.
const PRUNE_HORIZON: u64 = 8192;
/// Most violations kept in collect mode (enough to diagnose; bounded).
const MAX_VIOLATIONS: usize = 64;

impl InvariantOracle {
    /// An oracle for runs under `cfg`, reacting to violations per `mode`.
    pub fn new(cfg: &SchedConfig, mode: OracleMode) -> InvariantOracle {
        InvariantOracle {
            kind: cfg.kind,
            max_mop_size: cfg.mop.max_mop_size,
            mode,
            tag_ready: HashMap::new(),
            producer: HashMap::new(),
            members: HashMap::new(),
            hold: HashMap::new(),
            issued: HashSet::new(),
            last_commit: None,
            ptr_pending: HashMap::new(),
            ptr_installed: HashSet::new(),
            window: VecDeque::new(),
            window_cap: 48,
            last_prune: 0,
            events_seen: 0,
            violations: Vec::new(),
        }
    }

    /// Independent restatement of the scheduling-loop length: 2 cycles for
    /// the pipelined and macro-op schedulers, 1 for everything else. Kept
    /// separate from `SchedulerKind::wakeup_floor()` on purpose — the
    /// oracle must not inherit a bug in the config tables.
    fn floor(&self) -> u64 {
        match self.kind {
            SchedulerKind::TwoCycle | SchedulerKind::MacroOp => 2,
            _ => 1,
        }
    }

    /// Total events checked.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Violations recorded so far (always empty in panic mode — the first
    /// one aborts the process).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// `true` when no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn violate(&mut self, cycle: u64, message: String) {
        let mut window = String::new();
        for ev in &self.window {
            window.push_str("  ");
            window.push_str(&ev.to_json());
            window.push('\n');
        }
        let v = Violation {
            cycle,
            message,
            window,
        };
        match self.mode {
            OracleMode::Panic => panic!(
                "scheduling invariant violated at cycle {}: {}\nlast {} events:\n{}",
                v.cycle,
                v.message,
                self.window.len(),
                v.window
            ),
            OracleMode::Collect => {
                if self.violations.len() < MAX_VIOLATIONS {
                    self.violations.push(v);
                }
            }
        }
    }

    /// Drop bookkeeping whose checks can only pass from now on.
    fn prune(&mut self, now: u64) {
        let keep = now.saturating_sub(PRUNE_HORIZON);
        self.tag_ready.retain(|_, &mut r| r >= keep);
        self.producer.retain(|_, p| p.select >= keep);
        self.ptr_pending.retain(|_, v| {
            v.retain(|&at| at >= keep);
            !v.is_empty()
        });
        if let Some((last_id, _)) = self.last_commit {
            self.issued.retain(|&id| id >= last_id);
        }
        self.last_prune = now;
    }

    fn check(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Rename {
                cycle,
                id,
                entry,
                dst,
                fused,
                ..
            } => {
                // A fresh producer instance invalidates anything known
                // about a reused tag.
                if let Some(d) = dst {
                    self.tag_ready.remove(&d.0);
                    self.producer.remove(&d.0);
                }
                let slot = entry.index();
                if *fused {
                    if self.kind != SchedulerKind::MacroOp {
                        self.violate(
                            *cycle,
                            format!("uop {} fused under non-macro-op scheduler", id.0),
                        );
                    }
                    match self.members.get_mut(&slot) {
                        Some((gen, uops)) if *gen == entry.generation() => {
                            uops.push(*id);
                            if uops.len() > self.max_mop_size {
                                let n = uops.len();
                                self.violate(
                                    *cycle,
                                    format!(
                                        "entry [{slot},{}] grew to {n} uops (max MOP size {})",
                                        entry.generation(),
                                        self.max_mop_size
                                    ),
                                );
                            }
                        }
                        _ => self.violate(
                            *cycle,
                            format!(
                                "uop {} fused into unknown entry [{slot},{}]",
                                id.0,
                                entry.generation()
                            ),
                        ),
                    }
                } else {
                    self.members.insert(slot, (entry.generation(), vec![*id]));
                    self.hold.remove(&slot);
                }
            }
            TraceEvent::Wakeup { tag, ready_at, .. } => {
                self.tag_ready.insert(tag.0, *ready_at);
            }
            TraceEvent::Select {
                cycle,
                entry,
                uops,
                srcs,
                dst,
                latency,
                ..
            } => {
                let c = *cycle;
                let slot = entry.index();
                // MOP atomicity: the selected uop list is exactly what was
                // renamed into this entry (minus squashed tails).
                match self.members.get(&slot) {
                    Some((gen, renamed)) if *gen == entry.generation() => {
                        if renamed != uops {
                            self.violate(
                                c,
                                format!(
                                    "entry [{slot},{}] selected {:?} but renamed {:?}",
                                    entry.generation(),
                                    uops.iter().map(|u| u.0).collect::<Vec<_>>(),
                                    renamed.iter().map(|u| u.0).collect::<Vec<_>>()
                                ),
                            );
                        }
                    }
                    _ => self.violate(
                        c,
                        format!(
                            "selected unknown entry [{slot},{}]",
                            entry.generation()
                        ),
                    ),
                }
                if uops.len() > 1 && self.kind != SchedulerKind::MacroOp {
                    self.violate(
                        c,
                        format!(
                            "{}-uop entry selected under non-macro-op scheduler",
                            uops.len()
                        ),
                    );
                }
                if uops.len() > self.max_mop_size {
                    self.violate(
                        c,
                        format!(
                            "selected {} uops, max MOP size is {}",
                            uops.len(),
                            self.max_mop_size
                        ),
                    );
                }
                // Replay hold: no re-select before the miss re-broadcast.
                if let Some(&(gen, reissue_at)) = self.hold.get(&slot) {
                    if gen == entry.generation() {
                        if c < reissue_at {
                            self.violate(
                                c,
                                format!(
                                    "replayed entry [{slot},{gen}] re-selected at {c}, \
                                     legal from {reissue_at}"
                                ),
                            );
                        }
                        self.hold.remove(&slot);
                    }
                }
                let floor = self.floor();
                for t in srcs {
                    if let Some(&r) = self.tag_ready.get(&t.0) {
                        if c < r {
                            self.violate(
                                c,
                                format!(
                                    "selected before source tag {} broadcast (ready_at {r})",
                                    t.0
                                ),
                            );
                        }
                    }
                    if let Some(&p) = self.producer.get(&t.0) {
                        let legal = p.select + u64::from(p.latency).max(floor);
                        if c < legal {
                            self.violate(
                                c,
                                format!(
                                    "dependent on tag {} selected at {c}, {} cycle(s) after \
                                     its producer — scheduling loop floor is {floor}, \
                                     producer latency {}, legal from {legal}",
                                    t.0,
                                    c - p.select,
                                    p.latency
                                ),
                            );
                        }
                    }
                }
                for u in uops {
                    self.issued.insert(u.0);
                }
                if let Some(d) = dst {
                    self.producer.insert(
                        d.0,
                        Producer {
                            select: c,
                            latency: *latency,
                        },
                    );
                }
            }
            TraceEvent::Issue {
                cycle, id, exec_at, ..
            } => {
                if exec_at < cycle {
                    self.violate(
                        *cycle,
                        format!("uop {} reaches execute at {exec_at}, before issue", id.0),
                    );
                }
            }
            TraceEvent::Replay {
                entry, reissue_at, ..
            } => {
                self.hold
                    .insert(entry.index(), (entry.generation(), *reissue_at));
            }
            TraceEvent::Commit { cycle, id, .. } => {
                let c = *cycle;
                if let Some((last_id, last_cycle)) = self.last_commit {
                    if id.0 <= last_id {
                        self.violate(
                            c,
                            format!("commit of uop {} after uop {last_id}: out of program order", id.0),
                        );
                    }
                    if c < last_cycle {
                        self.violate(
                            c,
                            format!("commit cycle regressed from {last_cycle} to {c}"),
                        );
                    }
                }
                if !self.issued.remove(&id.0) {
                    self.violate(c, format!("uop {} committed without issuing", id.0));
                }
                self.last_commit = Some((id.0, c));
            }
            TraceEvent::Squash { from, .. } => {
                self.members.retain(|_, (_, uops)| {
                    uops.retain(|u| *u < *from);
                    !uops.is_empty()
                });
                self.issued.retain(|&id| id < from.0);
            }
            TraceEvent::MopDetect {
                head_sidx,
                visible_at,
                ..
            } => {
                self.ptr_pending
                    .entry(*head_sidx)
                    .or_default()
                    .push(*visible_at);
            }
            TraceEvent::PointerInstall {
                cycle, head_sidx, ..
            } => {
                let ok = match self.ptr_pending.get_mut(head_sidx) {
                    Some(pending) => {
                        // Consume the earliest elapsed schedule.
                        let due = pending
                            .iter()
                            .enumerate()
                            .filter(|(_, &at)| at <= *cycle)
                            .min_by_key(|(_, &at)| at)
                            .map(|(i, _)| i);
                        match due {
                            Some(i) => {
                                pending.swap_remove(i);
                                true
                            }
                            None => false,
                        }
                    }
                    None => false,
                };
                if !ok {
                    self.violate(
                        *cycle,
                        format!(
                            "pointer for head {head_sidx} installed before its \
                             detection delay elapsed"
                        ),
                    );
                }
                self.ptr_installed.insert(*head_sidx);
            }
            TraceEvent::PointerHit {
                cycle, head_sidx, ..
            } => {
                if !self.ptr_installed.contains(head_sidx) {
                    self.violate(
                        *cycle,
                        format!("fetch hit a pointer for head {head_sidx} that is not installed"),
                    );
                }
            }
            TraceEvent::PointerEvict {
                cycle, head_sidx, ..
            } => {
                if !self.ptr_installed.remove(head_sidx) {
                    self.violate(
                        *cycle,
                        format!("evicted a pointer for head {head_sidx} that was not installed"),
                    );
                }
            }
            TraceEvent::Fetch { .. } | TraceEvent::LoadResolve { .. } => {}
        }
    }
}

impl EventSink for InvariantOracle {
    fn emit(&mut self, ev: &TraceEvent) {
        self.events_seen += 1;
        if self.window.len() == self.window_cap {
            self.window.pop_front();
        }
        self.window.push_back(ev.clone());
        if ev.cycle() > self.last_prune + PRUNE_HORIZON {
            self.prune(ev.cycle());
        }
        self.check(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mos_core::config::SchedConfig;
    use mos_core::Tag;

    fn cfg(kind: SchedulerKind) -> SchedConfig {
        SchedConfig {
            kind,
            ..SchedConfig::default()
        }
    }

    /// Synthetic stream: under the 2-cycle scheduler, a dependent
    /// single-cycle pair issued on consecutive cycles violates the floor.
    #[test]
    fn back_to_back_dependent_issue_trips_two_cycle_floor() {
        let mut q = mos_core::queue::IssueQueue::new(cfg(SchedulerKind::TwoCycle));
        q.set_tracing(true);
        let mut evs = Vec::new();
        // Producer uop 0 -> Tag(0); consumer uop 1 reads Tag(0).
        let mut prod = mos_core::SchedUop::leaf(
            UopId(0),
            mos_isa::InstClass::IntAlu,
            Some(Tag(0)),
        );
        prod.sched_latency = 1;
        let mut cons = mos_core::SchedUop::leaf(
            UopId(1),
            mos_isa::InstClass::IntAlu,
            Some(Tag(1)),
        );
        cons.sched_latency = 1;
        cons.srcs = vec![Tag(0)];
        let e0 = q.insert(prod).unwrap();
        let e1 = q.insert(cons).unwrap();
        q.drain_trace_into(0, &mut evs);
        // Producer selected at cycle 5.
        evs.push(TraceEvent::Select {
            cycle: 5,
            entry: e0,
            uops: vec![UopId(0)],
            srcs: vec![],
            dst: Some(Tag(0)),
            latency: 1,
            is_load: false,
        });
        // Queue would broadcast ready_at = 5 + max(1, 2) = 7; a buggy
        // scheduler wakes dependents a cycle early and selects at 6.
        evs.push(TraceEvent::Wakeup {
            cycle: 5,
            tag: Tag(0),
            ready_at: 6,
            speculative: false,
        });
        evs.push(TraceEvent::Select {
            cycle: 6,
            entry: e1,
            uops: vec![UopId(1)],
            srcs: vec![Tag(0)],
            dst: Some(Tag(1)),
            latency: 1,
            is_load: false,
        });

        let mut oracle = InvariantOracle::new(&cfg(SchedulerKind::TwoCycle), OracleMode::Collect);
        for ev in &evs {
            oracle.emit(ev);
        }
        assert!(
            !oracle.is_clean(),
            "consecutive dependent issue must violate the 2-cycle floor"
        );
        let v = &oracle.violations()[0];
        assert!(v.message.contains("scheduling loop floor is 2"), "{v}");
        assert!(!v.window.is_empty(), "violation must carry an event window");

        // The identical gap is legal under the atomic 1-cycle scheduler.
        let mut base = InvariantOracle::new(&cfg(SchedulerKind::Base), OracleMode::Collect);
        for ev in &evs {
            base.emit(ev);
        }
        assert!(base.is_clean(), "{:?}", base.violations());
    }

    #[test]
    fn commit_out_of_order_is_caught() {
        let mut oracle = InvariantOracle::new(&cfg(SchedulerKind::Base), OracleMode::Collect);
        // Pretend both uops issued.
        oracle.issued.insert(3);
        oracle.issued.insert(4);
        oracle.emit(&TraceEvent::Commit {
            cycle: 10,
            id: UopId(4),
            sidx: 0,
            complete_at: 9,
        });
        oracle.emit(&TraceEvent::Commit {
            cycle: 11,
            id: UopId(3),
            sidx: 1,
            complete_at: 9,
        });
        assert_eq!(oracle.violations().len(), 1);
        assert!(oracle.violations()[0].message.contains("out of program order"));
    }

    #[test]
    fn pointer_install_before_delay_is_caught() {
        let mut oracle = InvariantOracle::new(&cfg(SchedulerKind::MacroOp), OracleMode::Collect);
        oracle.emit(&TraceEvent::MopDetect {
            cycle: 10,
            head_sidx: 7,
            tail_sidx: 8,
            offset: 1,
            control: false,
            independent: false,
            visible_at: 13,
        });
        oracle.emit(&TraceEvent::PointerInstall {
            cycle: 11,
            head_sidx: 7,
            line: 0x40,
        });
        assert!(!oracle.is_clean(), "install at 11 is before visible_at 13");

        let mut ok = InvariantOracle::new(&cfg(SchedulerKind::MacroOp), OracleMode::Collect);
        ok.emit(&TraceEvent::MopDetect {
            cycle: 10,
            head_sidx: 7,
            tail_sidx: 8,
            offset: 1,
            control: false,
            independent: false,
            visible_at: 13,
        });
        ok.emit(&TraceEvent::PointerInstall {
            cycle: 13,
            head_sidx: 7,
            line: 0x40,
        });
        ok.emit(&TraceEvent::PointerHit {
            cycle: 14,
            head_sidx: 7,
            tail_sidx: 8,
        });
        ok.emit(&TraceEvent::PointerEvict {
            cycle: 15,
            head_sidx: 7,
            line: 0x40,
            filtered: false,
        });
        assert!(ok.is_clean(), "{:?}", ok.violations());
        // A second hit after the evict is illegal.
        ok.emit(&TraceEvent::PointerHit {
            cycle: 16,
            head_sidx: 7,
            tail_sidx: 8,
        });
        assert!(!ok.is_clean());
    }
}

//! # mos-sim
//!
//! The 13-stage, 4-wide out-of-order pipeline of the paper's machine model
//! (Figure 2 / Table 1):
//!
//! ```text
//! Fetch Decode Rename Rename Queue | Sched | Disp Disp RF RF Exe | WB Commit
//! ```
//!
//! The simulator is timing-directed and oracle-trace driven: committed-path
//! instruction identity, branch outcomes, and effective addresses come from
//! a [`mos_isa::TraceSource`], while **wrong-path fetch walks the real
//! static program** under the branch predictor, so mispredictions fill the
//! window with wrong-path work, MOP tails get invalidated by squashes, and
//! refill latency is modeled rather than assumed.
//!
//! Features of the model:
//!
//! * 4-wide fetch stopping at the first predicted-taken branch and at
//!   I-cache line boundaries; 16KB IL1 / 16KB DL1 / 256KB unified L2 /
//!   100-cycle memory; combined bimodal-gshare predictor, BTB and RAS with
//!   checkpoint-based recovery;
//! * speculative scheduling of loads with selective replay (2-cycle
//!   penalty), driven by `mos-core`'s issue queue;
//! * the full macro-op machinery when configured: detection from the
//!   renamed stream, pointers riding I-cache lines (with a configurable
//!   detection delay), formation with 0–2 extra pipeline stages, pending
//!   bits, half-squashed MOPs, and the last-arriving-operand filter;
//! * every scheduler of Section 6.2 via [`MachineConfig`] presets.
//!
//! ```
//! use mos_sim::{MachineConfig, Simulator};
//! use mos_workload::kernels;
//!
//! let trace = kernels::SUM_LOOP.interpreter();
//! let stats = Simulator::new(MachineConfig::base_unrestricted(), trace).run(1_000);
//! assert!(stats.ipc() > 0.5);
//! ```

#![warn(missing_docs)]

mod config;
pub mod cpistack;
pub mod events;
pub mod metrics;
pub mod oracle;
pub mod report;
mod sim;
mod stats;
pub mod timeline;

pub use config::MachineConfig;
pub use cpistack::CpiStack;
pub use events::{EventCounts, EventSink, RingSink, SharedCommitLog, SharedRing, TeeSink, TraceEvent};
pub use metrics::SimMetrics;
pub use oracle::{InvariantOracle, OracleMode, Violation};
pub use report::RunReport;
pub use sim::Simulator;
pub use stats::SimStats;

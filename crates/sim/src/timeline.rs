//! Per-instruction pipeline timelines: an opt-in recorder that captures
//! when each micro-operation was fetched, inserted, issued (including
//! replays), executed and committed — plus its macro-op membership — and
//! renders a text pipeline chart. Used by the `timeline` example and by
//! integration tests asserting stage-ordering invariants.

use std::fmt::Write as _;

use mos_isa::Program;

use crate::events::TraceEvent;

/// Timeline of one micro-operation through the pipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UopTimeline {
    /// Program-order uop id.
    pub id: u64,
    /// Static instruction index.
    pub sidx: u32,
    /// Cycle the instruction was fetched.
    pub fetched_at: u64,
    /// Cycle it entered the issue queue (after the front-end delay).
    pub inserted_at: u64,
    /// Every (re)issue cycle; more than one entry means load-replay.
    pub issues: Vec<u64>,
    /// Cycle it reached the execute stage (final issue).
    pub exec_at: Option<u64>,
    /// Cycle its result completed / it became committable.
    pub complete_at: Option<u64>,
    /// Commit cycle; `None` for wrong-path uops that were squashed.
    pub commit_at: Option<u64>,
    /// `true` when the uop was fetched on the wrong path.
    pub wrong_path: bool,
    /// Id of the macro-op head this uop was fused under, if any (equal to
    /// `id` for the head itself).
    pub mop_head: Option<u64>,
}

impl UopTimeline {
    /// Final issue cycle, if it issued at all.
    pub fn last_issue(&self) -> Option<u64> {
        self.issues.last().copied()
    }
}

/// Opt-in pipeline recorder with a bounded capacity (the first `cap`
/// uops entering the pipe).
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    entries: Vec<UopTimeline>,
    cap: usize,
}

impl Timeline {
    /// A recorder keeping the first `cap` uops.
    pub fn new(cap: usize) -> Timeline {
        Timeline {
            entries: Vec::with_capacity(cap.min(4096)),
            cap,
        }
    }

    /// Recorded timelines in program order.
    pub fn entries(&self) -> &[UopTimeline] {
        &self.entries
    }

    pub(crate) fn record_insert(
        &mut self,
        id: u64,
        sidx: u32,
        fetched_at: u64,
        inserted_at: u64,
        wrong_path: bool,
    ) {
        if self.entries.len() >= self.cap {
            return;
        }
        self.entries.push(UopTimeline {
            id,
            sidx,
            fetched_at,
            inserted_at,
            issues: Vec::new(),
            exec_at: None,
            complete_at: None,
            commit_at: None,
            wrong_path,
            mop_head: None,
        });
    }

    fn find(&mut self, id: u64) -> Option<&mut UopTimeline> {
        // Entries are pushed in id order.
        let idx = self.entries.binary_search_by_key(&id, |e| e.id).ok()?;
        self.entries.get_mut(idx)
    }

    pub(crate) fn record_issue(&mut self, id: u64, cycle: u64, mop_head: Option<u64>) {
        if let Some(e) = self.find(id) {
            e.issues.push(cycle);
            e.mop_head = mop_head;
        }
    }

    pub(crate) fn record_exec(&mut self, id: u64, cycle: u64) {
        if let Some(e) = self.find(id) {
            e.exec_at = Some(cycle);
        }
    }

    pub(crate) fn record_complete(&mut self, id: u64, cycle: u64) {
        if let Some(e) = self.find(id) {
            e.complete_at = Some(cycle);
        }
    }

    pub(crate) fn record_commit(&mut self, id: u64, cycle: u64) {
        if let Some(e) = self.find(id) {
            e.commit_at = Some(cycle);
        }
    }

    /// Consume one trace event. The timeline is a pure observer of the
    /// event stream: `Rename` seeds an entry (the stream stamps it with
    /// the insert cycle), `Select` records (re)issues and MOP membership,
    /// `Issue` pins the execute cycle (the last issue wins, matching
    /// replay semantics), and `Commit` closes the entry.
    pub(crate) fn observe(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Rename {
                cycle,
                id,
                sidx,
                fetched_at,
                wrong_path,
                ..
            } => self.record_insert(id.0, sidx, fetched_at, cycle, wrong_path),
            TraceEvent::Select { cycle, ref uops, .. } => {
                let head = (uops.len() > 1).then(|| uops[0].0);
                for u in uops {
                    self.record_issue(u.0, cycle, head);
                }
            }
            TraceEvent::Issue { id, exec_at, .. } => self.record_exec(id.0, exec_at),
            TraceEvent::Commit {
                cycle,
                id,
                complete_at,
                ..
            } => {
                self.record_complete(id.0, complete_at);
                self.record_commit(id.0, cycle);
            }
            _ => {}
        }
    }

    /// Export in the Kanata pipeline-visualizer log format (version 4),
    /// loadable by the Konata viewer. Stages: `F` fetch, `Q` front end
    /// and scheduler wait, `X` execute, `R` replay wait (a cancelled
    /// issue awaiting re-selection), `C` awaiting commit. Wrong-path
    /// uops are emitted as retired-flushed records; fused MOP members
    /// carry a `MOP head` label line.
    pub fn to_kanata(&self, program: &Program) -> String {
        let mut out = String::from("Kanata\t0004\n");
        let base = self.entries.first().map(|e| e.fetched_at).unwrap_or(0);
        let _ = writeln!(out, "C=\t{base}");
        let mut last = base;
        for (seq, e) in self.entries.iter().enumerate() {
            if e.fetched_at > last {
                let _ = writeln!(out, "C\t{}", e.fetched_at - last);
                last = e.fetched_at;
            }
            let disasm = program
                .inst(e.sidx)
                .map(|i| i.to_string())
                .unwrap_or_else(|| "<?>".into());
            let _ = writeln!(out, "I\t{seq}\t{}\t0", e.id);
            let _ = writeln!(out, "L\t{seq}\t0\t{}: {disasm}", e.id);
            if let Some(h) = e.mop_head {
                let _ = writeln!(out, "L\t{seq}\t1\tMOP head {h}");
            }
            let rel = |c: u64| c.saturating_sub(e.fetched_at);
            let _ = writeln!(out, "S\t{seq}\t0\tF");
            let _ = writeln!(out, "E\t{seq}\t{}\tF", rel(e.inserted_at));
            let _ = writeln!(out, "S\t{seq}\t{}\tQ", rel(e.inserted_at));
            if let Some(&first) = e.issues.first() {
                let _ = writeln!(out, "E\t{seq}\t{}\tQ", rel(first));
                // Cancelled issues (load replays) render as a one-cycle
                // `X` attempt followed by an `R` wait until re-selection.
                for w in e.issues.windows(2) {
                    let _ = writeln!(out, "S\t{seq}\t{}\tX", rel(w[0]));
                    let _ = writeln!(out, "E\t{seq}\t{}\tX", rel(w[0]) + 1);
                    if rel(w[1]) > rel(w[0]) + 1 {
                        let _ = writeln!(out, "S\t{seq}\t{}\tR", rel(w[0]) + 1);
                        let _ = writeln!(out, "E\t{seq}\t{}\tR", rel(w[1]));
                    }
                }
                let last = e.last_issue().expect("non-empty issues");
                let _ = writeln!(out, "S\t{seq}\t{}\tX", rel(last));
                if let Some(x) = e.exec_at {
                    let _ = writeln!(out, "E\t{seq}\t{}\tX", rel(x) + 1);
                    let _ = writeln!(out, "S\t{seq}\t{}\tC", rel(x) + 1);
                }
            }
            match (e.commit_at, e.exec_at) {
                (Some(c), _) => {
                    let _ = writeln!(out, "R\t{seq}\t{seq}\t0");
                    let _ = writeln!(out, "E\t{seq}\t{}\tC", rel(c) + 1);
                }
                (None, _) => {
                    // Squashed / never committed within the window.
                    let _ = writeln!(out, "R\t{seq}\t{seq}\t1");
                }
            }
        }
        out
    }

    /// Render a text chart: one row per uop with fetch/insert/issue/exec/
    /// commit cycles, replay counts and MOP fusion markers.
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>6} {:>6} {:>6} {:>6} {:>6}  {:4} instruction",
            "id", "fetch", "insert", "issue", "exec", "commit", "mop"
        );
        for e in &self.entries {
            let disasm = program
                .inst(e.sidx)
                .map(|i| i.to_string())
                .unwrap_or_else(|| "<?>".into());
            let mop = match e.mop_head {
                Some(h) if h == e.id => "HEAD".to_owned(),
                Some(h) => format!("^{h}"),
                None => String::new(),
            };
            let fmt_opt = |v: Option<u64>| match v {
                Some(x) => format!("{x:>6}"),
                None => format!("{:>6}", "-"),
            };
            let _ = writeln!(
                out,
                "{:>5} {:>6} {:>6} {} {} {}  {:4} {}{}{}",
                e.id,
                e.fetched_at,
                e.inserted_at,
                fmt_opt(e.last_issue()),
                fmt_opt(e.exec_at),
                fmt_opt(e.commit_at),
                mop,
                disasm,
                if e.issues.len() > 1 {
                    format!("   [{}x issued]", e.issues.len())
                } else {
                    String::new()
                },
                if e.wrong_path { "   [wrong path]" } else { "" },
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_respected() {
        let mut t = Timeline::new(2);
        for id in 0..5 {
            t.record_insert(id, 0, 1, 2, false);
        }
        assert_eq!(t.entries().len(), 2);
    }

    #[test]
    fn records_resolve_by_id() {
        let mut t = Timeline::new(8);
        t.record_insert(0, 0, 1, 5, false);
        t.record_insert(1, 1, 1, 5, false);
        t.record_issue(1, 6, Some(0));
        t.record_exec(1, 11);
        t.record_commit(1, 13);
        let e = &t.entries()[1];
        assert_eq!(e.last_issue(), Some(6));
        assert_eq!(e.exec_at, Some(11));
        assert_eq!(e.commit_at, Some(13));
        assert_eq!(e.mop_head, Some(0));
        assert_eq!(t.entries()[0].last_issue(), None);
    }

    #[test]
    fn kanata_export_has_header_and_records() {
        use mos_isa::{Program, StaticInst};
        let mut p = Program::new("t");
        p.push(StaticInst::nop());
        let mut t = Timeline::new(4);
        t.record_insert(0, 0, 10, 14, false);
        t.record_issue(0, 15, None);
        t.record_exec(0, 20);
        t.record_commit(0, 22);
        t.record_insert(1, 0, 10, 14, true); // wrong path, squashed
        let k = t.to_kanata(&p);
        assert!(k.starts_with("Kanata\t0004\n"));
        assert!(k.contains("C=\t10"));
        assert!(k.contains("I\t0\t0\t0"));
        assert!(k.contains("R\t0\t0\t0"), "committed record: {k}");
        assert!(k.contains("R\t1\t1\t1"), "flushed record: {k}");
        assert!(k.contains("S\t0\t0\tF"));
    }

    #[test]
    fn replayed_issues_get_replay_lanes() {
        use mos_isa::{Program, StaticInst};
        let mut p = Program::new("t");
        p.push(StaticInst::nop());
        let mut t = Timeline::new(2);
        t.record_insert(0, 0, 0, 4, false);
        t.record_issue(0, 5, None);
        t.record_issue(0, 12, None); // replayed: a second selection
        t.record_exec(0, 17);
        t.record_commit(0, 19);
        let k = t.to_kanata(&p);
        assert!(k.contains("S\t0\t5\tX"), "first attempt starts X: {k}");
        assert!(k.contains("S\t0\t6\tR"), "replay wait lane opens: {k}");
        assert!(k.contains("E\t0\t12\tR"), "replay wait ends at re-issue: {k}");
        assert!(k.contains("S\t0\t12\tX"), "final issue re-enters X: {k}");
    }

    #[test]
    fn observe_rebuilds_stage_times_from_events() {
        use mos_core::queue::IssueQueue;
        use mos_core::{SchedConfig, SchedUop, Tag, UopId};
        let mut t = Timeline::new(4);
        // Only the id-bearing fields matter to the observer; a real queue
        // insert is the sanctioned way to mint an EntryId.
        let entry = IssueQueue::new(SchedConfig::default())
            .insert(SchedUop::leaf(
                UopId(0),
                mos_isa::InstClass::IntAlu,
                Some(Tag(0)),
            ))
            .unwrap();
        t.observe(&TraceEvent::Rename {
            cycle: 6,
            id: UopId(0),
            sidx: 0,
            entry,
            dst: Some(Tag(0)),
            srcs: Vec::new(),
            fused: false,
            pending: false,
            is_load: false,
            fetched_at: 1,
            wrong_path: false,
        });
        t.observe(&TraceEvent::Select {
            cycle: 8,
            entry,
            uops: vec![UopId(0)],
            srcs: Vec::new(),
            dst: Some(Tag(0)),
            latency: 1,
            is_load: false,
        });
        t.observe(&TraceEvent::Issue {
            cycle: 8,
            id: UopId(0),
            sidx: 0,
            exec_at: 13,
            mop: false,
        });
        t.observe(&TraceEvent::Commit {
            cycle: 15,
            id: UopId(0),
            sidx: 0,
            complete_at: 14,
        });
        let e = &t.entries()[0];
        assert_eq!(e.fetched_at, 1);
        assert_eq!(e.inserted_at, 6);
        assert_eq!(e.last_issue(), Some(8));
        assert_eq!(e.exec_at, Some(13));
        assert_eq!(e.complete_at, Some(14));
        assert_eq!(e.commit_at, Some(15));
        assert_eq!(e.mop_head, None, "a singleton select carries no head");
    }

    #[test]
    fn unknown_ids_are_ignored() {
        let mut t = Timeline::new(1);
        t.record_insert(7, 0, 1, 2, false);
        t.record_issue(99, 3, None); // beyond capacity / unknown
        assert!(t.entries()[0].issues.is_empty());
    }
}

//! Aggregate simulation statistics, including everything Figures 13–16
//! and Table 2 are built from.

use mos_core::detect::DetectStats;
use mos_core::events::EventCounts;
use mos_core::form::FormStats;
use mos_core::queue::QueueStats;
use mos_core::{GroupRole, SlotCounts};

/// End-of-run statistics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Committed instructions (no-ops excluded, as in the paper).
    pub committed: u64,
    /// Instructions fetched, including wrong-path.
    pub fetched: u64,
    /// Wrong-path instructions fetched.
    pub wrong_path_fetched: u64,
    /// Conditional branches committed.
    pub branches: u64,
    /// Mispredicted committed branches (conditional + indirect + return).
    pub mispredicts: u64,
    /// Pipeline squashes performed.
    pub squashes: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed loads that missed the DL1 (includes forwarded = hits).
    pub load_l1_misses: u64,
    /// Loads served by store forwarding.
    pub load_forwards: u64,
    /// Committed stores.
    pub stores: u64,
    /// (IL1 hits, IL1 misses).
    pub il1: (u64, u64),
    /// (DL1 hits, DL1 misses) — demand loads only.
    pub dl1: (u64, u64),
    /// (L2 hits, L2 misses).
    pub l2: (u64, u64),
    /// Committed-instruction counts by grouping role (Figure 13):
    /// indexed by [`SimStats::role_index`].
    pub roles: [u64; 5],
    /// Issue-queue statistics.
    pub queue: QueueStats,
    /// MOP detection statistics.
    pub detect: DetectStats,
    /// MOP formation statistics.
    pub form: FormStats,
    /// MOP pointer store: (installs, line invalidations, filter deletes).
    pub pointers: (u64, u64, u64),
    /// Fetched instructions delivered with a stored MOP pointer attached
    /// (the pointer-cache hit count feeding the pairing rate).
    pub pointer_hits: u64,
    /// MOP entries (fused pairs/chains) issued.
    pub mop_entries_issued: u64,
    /// Times the last-arriving-operand filter deleted a pointer.
    pub last_arrival_filtered: u64,
    /// Per-kind trace-event counts. All zero unless event tracing was
    /// enabled for the run.
    pub events: EventCounts,
    /// Top-down issue-slot cause counts (the `cpistack` taxonomy). All
    /// zero unless [`Simulator::enable_slot_accounting`] was called
    /// (debug builds enable it automatically); when enabled, sums exactly
    /// to `cycles × issue_width`.
    ///
    /// [`Simulator::enable_slot_accounting`]: crate::sim::Simulator::enable_slot_accounting
    pub slots: SlotCounts,
}

impl SimStats {
    /// Dense index for a [`GroupRole`] in [`SimStats::roles`].
    pub fn role_index(role: GroupRole) -> usize {
        match role {
            GroupRole::NotCandidate => 0,
            GroupRole::NotGrouped => 1,
            GroupRole::MopIndependent => 2,
            GroupRole::MopNonValueGen => 3,
            GroupRole::MopValueGen => 4,
        }
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of committed instructions with the given role.
    pub fn role_frac(&self, role: GroupRole) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.roles[Self::role_index(role)] as f64 / self.committed as f64
        }
    }

    /// Fraction of committed instructions grouped into any MOP
    /// (Figure 13's grouped total: dependent + independent).
    pub fn grouped_frac(&self) -> f64 {
        self.role_frac(GroupRole::MopValueGen)
            + self.role_frac(GroupRole::MopNonValueGen)
            + self.role_frac(GroupRole::MopIndependent)
    }

    /// Reduction in scheduler insertions from sharing entries: grouped
    /// instructions occupy half an entry each (the paper reports an
    /// average 16.2 %).
    pub fn insert_reduction(&self) -> f64 {
        self.grouped_frac() / 2.0
    }

    /// Mispredictions per committed branch.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// DL1 demand-load miss rate.
    pub fn dl1_miss_rate(&self) -> f64 {
        let total = self.dl1.0 + self.dl1.1;
        if total == 0 {
            0.0
        } else {
            self.dl1.1 as f64 / total as f64
        }
    }

    /// Multi-line human-readable report of everything measured.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "cycles {:>12}   committed {:>12}   IPC {:.3}",
            self.cycles,
            self.committed,
            self.ipc()
        );
        let _ = writeln!(
            s,
            "fetched {:>11}   wrong-path {:>11}   ({:.1} % of fetch)",
            self.fetched,
            self.wrong_path_fetched,
            100.0 * self.wrong_path_fetched as f64 / self.fetched.max(1) as f64
        );
        let _ = writeln!(
            s,
            "branches {:>10}   mispredicts {:>10}   ({:.2} %)   squashes {}",
            self.branches,
            self.mispredicts,
            100.0 * self.mispredict_rate(),
            self.squashes
        );
        let _ = writeln!(
            s,
            "loads {:>13}   DL1 miss {:.2} %   forwards {}   L2 {}h/{}m   IL1 {}h/{}m",
            self.loads,
            100.0 * self.dl1_miss_rate(),
            self.load_forwards,
            self.l2.0,
            self.l2.1,
            self.il1.0,
            self.il1.1
        );
        let _ = writeln!(
            s,
            "queue: issued {} entries / {} uops, {} load-replays, {} collisions, {} pileups, mean occupancy {:.1}",
            self.queue.issued_entries,
            self.queue.issued_uops,
            self.queue.load_replay_uops,
            self.queue.collisions,
            self.queue.pileup_replays,
            self.queue.mean_occupancy()
        );
        if self.grouped_frac() > 0.0 || self.pointers.0 > 0 {
            let _ = writeln!(
                s,
                "macro-ops: {:.1} % grouped (vg {:.1} / nvg {:.1} / indep {:.1}), {} MOP entries issued",
                100.0 * self.grouped_frac(),
                100.0 * self.role_frac(GroupRole::MopValueGen),
                100.0 * self.role_frac(GroupRole::MopNonValueGen),
                100.0 * self.role_frac(GroupRole::MopIndependent),
                self.mop_entries_issued
            );
            let _ = writeln!(
                s,
                "pointers: {} installed, {} hits at fetch, {} dropped with I-cache lines, {} filtered (last-arriving), {} pairs fused / {} cancelled",
                self.pointers.0,
                self.pointer_hits,
                self.pointers.1,
                self.pointers.2,
                self.form.fused_pairs,
                self.form.cancelled
            );
            let _ = writeln!(
                s,
                "detection: {} dependent / {} independent pairs; rejects: {} cycle, {} srcs, {} flow",
                self.detect.dependent_pairs,
                self.detect.independent_pairs,
                self.detect.cycle_rejects,
                self.detect.src_limit_rejects,
                self.detect.flow_rejects
            );
        }
        if self.events.total() > 0 {
            let _ = writeln!(
                s,
                "events: {} traced ({} wakeup, {} select, {} issue, {} replay, {} commit, {} squash)",
                self.events.total(),
                self.events.wakeup,
                self.events.select,
                self.events.issue,
                self.events.replay,
                self.events.commit,
                self.events.squash
            );
            if self.events.dropped > 0 {
                let _ = writeln!(
                    s,
                    "events: {} DROPPED by the bounded ring (raise --last to keep them)",
                    self.events.dropped
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_indices_are_dense_and_unique() {
        let all = [
            GroupRole::NotCandidate,
            GroupRole::NotGrouped,
            GroupRole::MopIndependent,
            GroupRole::MopNonValueGen,
            GroupRole::MopValueGen,
        ];
        let mut seen = [false; 5];
        for r in all {
            let i = SimStats::role_index(r);
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn derived_rates() {
        let mut s = SimStats {
            cycles: 100,
            committed: 150,
            branches: 10,
            mispredicts: 2,
            ..SimStats::default()
        };
        s.roles[SimStats::role_index(GroupRole::MopValueGen)] = 30;
        s.roles[SimStats::role_index(GroupRole::MopIndependent)] = 15;
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.2).abs() < 1e-12);
        assert!((s.grouped_frac() - 0.3).abs() < 1e-12);
        assert!((s.insert_reduction() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.dl1_miss_rate(), 0.0);
    }
}

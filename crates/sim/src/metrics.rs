//! Periodic interval snapshots of the simulator's cumulative counters.
//!
//! [`SimMetrics`] samples a fixed set of counters every `interval` cycles
//! (default 10k) and stores the per-interval **deltas** as integer rows, so
//! the series is exactly reproducible and reconciles against the end-of-run
//! [`crate::SimStats`] totals by plain summation. Derived rates (IPC,
//! pairing rate, replay rate, mean occupancy, mean wakeup→select delay)
//! are computed at render time from the integer columns.
//!
//! The collector follows the same zero-cost-when-disabled discipline as
//! event tracing: the simulator holds an `Option<Box<SimMetrics>>` and the
//! hot loop only pays an `is_some()` check per cycle when disabled.

use mos_metrics::Series;

/// Snapshot period used when the caller does not pick one.
pub const DEFAULT_INTERVAL: u64 = 10_000;

/// Column names of the interval series, in row order.
pub const COLS: [&str; 9] = [
    "cycles",
    "committed",
    "grouped",
    "replayed_uops",
    "pointer_hits",
    "pointer_evicts",
    "occupancy_integral",
    "delay_sum",
    "delay_count",
];

/// Cumulative counter values at one instant, gathered by the simulator.
/// Rows are deltas between consecutive `Cum`s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cum {
    /// Cycles simulated so far.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Committed instructions grouped into any MOP.
    pub grouped: u64,
    /// Uops pulled back by selective load replay.
    pub replayed_uops: u64,
    /// Fetches that found a stored MOP pointer.
    pub pointer_hits: u64,
    /// Pointers lost to I-cache evictions or the last-arrival filter.
    pub pointer_evicts: u64,
    /// Sum of per-cycle issue-queue occupancy.
    pub occupancy_integral: u64,
    /// Sum of wakeup→select delays over issued entries.
    pub delay_sum: u64,
    /// Issued entries (delay sample count).
    pub delay_count: u64,
}

impl Cum {
    fn delta(&self, prev: &Cum) -> Vec<u64> {
        vec![
            self.cycles - prev.cycles,
            self.committed - prev.committed,
            self.grouped - prev.grouped,
            self.replayed_uops - prev.replayed_uops,
            self.pointer_hits - prev.pointer_hits,
            self.pointer_evicts - prev.pointer_evicts,
            self.occupancy_integral - prev.occupancy_integral,
            self.delay_sum - prev.delay_sum,
            self.delay_count - prev.delay_count,
        ]
    }
}

/// The interval collector owned by the simulator when metrics are on.
#[derive(Debug, Clone)]
pub struct SimMetrics {
    interval: u64,
    next_at: u64,
    last: Cum,
    series: Series,
}

impl SimMetrics {
    /// A collector snapshotting every `interval` cycles (clamped to ≥ 1).
    pub fn new(interval: u64) -> SimMetrics {
        let interval = interval.max(1);
        SimMetrics {
            interval,
            next_at: interval,
            last: Cum::default(),
            series: Series::new(interval, COLS.to_vec()),
        }
    }

    /// `true` when the cycle `now` closes an interval (the simulator
    /// advances one cycle at a time, so this fires exactly on multiples
    /// of the interval).
    pub fn due(&self, now: u64) -> bool {
        now >= self.next_at
    }

    /// Close the interval ending at `now` with cumulative values `cum`.
    pub fn sample(&mut self, now: u64, cum: Cum) {
        self.series.push(now, cum.delta(&self.last));
        self.last = cum;
        self.next_at = now + self.interval;
    }

    /// Push the final partial row covering `(last boundary, now]`.
    /// Idempotent: a no-op when no cycle has elapsed since the last row.
    pub fn finish(&mut self, now: u64, cum: Cum) {
        if cum.cycles > self.last.cycles {
            self.series.push(now, cum.delta(&self.last));
            self.last = cum;
            self.next_at = now + self.interval;
        }
    }

    /// Snapshot period in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The interval rows collected so far.
    pub fn series(&self) -> &Series {
        &self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cum(cycles: u64, committed: u64) -> Cum {
        Cum {
            cycles,
            committed,
            ..Cum::default()
        }
    }

    #[test]
    fn rows_are_interval_deltas() {
        let mut m = SimMetrics::new(100);
        assert!(!m.due(99));
        assert!(m.due(100));
        m.sample(100, cum(100, 42));
        m.sample(200, cum(200, 100));
        assert_eq!(m.series().rows[0].vals[1], 42);
        assert_eq!(m.series().rows[1].vals[1], 58, "second row is a delta");
        assert_eq!(m.series().column_total("committed"), Some(100));
    }

    #[test]
    fn finish_is_idempotent() {
        let mut m = SimMetrics::new(100);
        m.sample(100, cum(100, 10));
        m.finish(130, cum(130, 13));
        m.finish(130, cum(130, 13));
        assert_eq!(m.series().rows.len(), 2);
        assert_eq!(m.series().rows[1].end_cycle, 130);
        assert_eq!(m.series().column_total("cycles"), Some(130));
    }
}

//! The cycle loop: fetch (with real wrong-path walking), the front-end
//! delay line, rename/MOP formation, queue insertion, scheduling,
//! execution events, branch resolution/squash, and in-order commit.

use std::collections::{BTreeMap, VecDeque};

use mos_core::detect::{DetectInst, MopDetector};
use mos_core::form::{FormedItem, Former, RenamedInst, TableCheckpoint};
use mos_core::pointer::{MopPointer, MopPointerStore};
use mos_core::queue::{EntryId, IssueQueue, Issued};
use mos_core::{GroupRole, SlotCause, SlotCounts, Tag, UopId};
use mos_isa::{DynInst, InstClass, Program, StaticInst, TraceSource};
use mos_uarch::branch::{Btb, CombinedPredictor, ReturnAddressStack};
use mos_uarch::cache::Cache;

use crate::config::MachineConfig;
use crate::events::{EventSink, TraceEvent};
use crate::metrics::{Cum, SimMetrics};
use crate::oracle::{InvariantOracle, OracleMode};
use crate::stats::SimStats;
use crate::timeline::Timeline;

/// One instruction traveling the front end.
#[derive(Debug, Clone)]
struct FrontInst {
    sidx: u32,
    /// Committed-path oracle record; `None` on the wrong path.
    dyn_: Option<DynInst>,
    /// Direction/target the fetch stream actually followed.
    stream_taken: bool,
    /// MOP pointer fetched alongside (MacroOp mode only).
    pointer: Option<MopPointer>,
    /// Fetch detected that prediction diverged from the oracle here.
    mispredicted: bool,
    /// Oracle outcome (valid when `dyn_` is `Some`).
    actual_taken: bool,
    actual_next: u32,
    /// Global-history checkpoint taken at prediction.
    ghr_cp: u64,
    /// RAS snapshot after this instruction's own push/pop.
    ras_snap: Option<(usize, Vec<u64>)>,
}

#[derive(Debug, Clone)]
struct FrontGroup {
    insts: Vec<FrontInst>,
    fetched_at: u64,
    ready_at: u64,
}

#[derive(Debug, Clone)]
struct RobEntry {
    id: UopId,
    sidx: u32,
    class: InstClass,
    dyn_: Option<DynInst>,
    role: GroupRole,
    complete_at: Option<u64>,
    issue_gen: u32,
    branch_resolved: bool,
    mispredicted: bool,
    actual_taken: bool,
    actual_next: u32,
    ghr_cp: u64,
    ras_snap: Option<(usize, Vec<u64>)>,
    table_cp: Option<TableCheckpoint>,
    /// Scheduling tag broadcast by this uop if it is an in-flight load
    /// (set at issue, used to steer replay on a miss).
    load_tag: Option<Tag>,
}

#[derive(Debug, Clone)]
enum Ev {
    /// A uop reaches the execute stage (`gen` guards against replays).
    Exec { id: UopId, gen: u32 },
    /// A load's DL1 outcome is known.
    LoadResolve {
        id: UopId,
        gen: u32,
        tag: Option<Tag>,
        hit: bool,
        data_ready: u64,
    },
}

/// The timing simulator. Construct with a [`MachineConfig`] preset and a
/// [`TraceSource`], then [`Simulator::run`].
pub struct Simulator<T: TraceSource> {
    cfg: MachineConfig,
    trace: T,
    program: Program,
    oracle_done: bool,

    // Front end.
    predictor: CombinedPredictor,
    btb: Btb,
    ras: ReturnAddressStack,
    il1: Cache,
    dl1: Cache,
    l2: Cache,
    fetch_pc: u32,
    wrong_path: bool,
    fetch_stall_until: u64,
    /// End of the post-squash redirect bubble (for slot attribution:
    /// distinguishes recovery stalls from ordinary I-miss fetch stalls).
    redirect_until: u64,
    front: VecDeque<FrontGroup>,
    next_id: u64,

    // Macro-op machinery.
    pointers: MopPointerStore,
    detector: MopDetector,
    former: Former,
    /// Pending MOP heads awaiting their tail, `(pair id, entry)`. Only a
    /// handful are ever live at once (pairs fuse within a fetch group or
    /// two), so a linear-scanned vector beats a hash map here.
    entry_map: Vec<(u64, EntryId)>,

    // Back end.
    queue: IssueQueue,
    rob: VecDeque<RobEntry>,
    events: BTreeMap<u64, Vec<Ev>>,
    /// In-flight store addresses (8-byte aligned) with refcounts, for
    /// store-to-load forwarding. Bounded by ROB stores; linear scan.
    store_inflight: Vec<(u64, u32)>,

    now: u64,
    last_commit_cycle: u64,
    stats: SimStats,
    /// Per-instruction pipeline timelines, fed from the trace-event
    /// stream (enabling it enables tracing).
    timeline: Option<Timeline>,
    /// Interval metric snapshots; `None` (the default) costs one
    /// `is_some()` check per cycle.
    metrics: Option<Box<SimMetrics>>,
    /// Slot causes the queue cannot see (frontend / wrong-path /
    /// drained); `None` (the default) disables all slot accounting.
    slot_counts: Option<Box<SlotCounts>>,
    /// Insert was denied by the IQ/ROB resource check this cycle.
    insert_blocked: bool,

    // Event tracing. `tracing` is the single gate: when false (release
    // default) no event value is ever constructed anywhere in the
    // pipeline or the queue.
    tracing: bool,
    sink: Option<Box<dyn EventSink>>,
    orc: Option<InvariantOracle>,

    // Reusable per-cycle scratch (hoisted out of the hot loop).
    issue_buf: Vec<Issued>,
    replay_buf: Vec<UopId>,
    detect_buf: Vec<DetectInst>,
    trace_buf: Vec<TraceEvent>,
    ptr_install_buf: Vec<(u32, u64)>,
    ptr_evict_buf: Vec<u32>,
}

impl<T: TraceSource> Simulator<T> {
    /// Build a simulator over `trace` with machine `cfg`.
    pub fn new(cfg: MachineConfig, trace: T) -> Simulator<T> {
        let program = trace.program().clone();
        let fetch_pc = program.entry();
        #[allow(unused_mut)]
        let mut sim = Simulator {
            predictor: CombinedPredictor::new(&cfg.branch),
            btb: Btb::new(cfg.branch.btb_entries, cfg.branch.btb_ways),
            ras: ReturnAddressStack::new(cfg.branch.ras_depth),
            il1: Cache::new(cfg.il1.clone()),
            dl1: Cache::new(cfg.dl1.clone()),
            l2: Cache::new(cfg.l2.clone()),
            fetch_pc,
            wrong_path: false,
            fetch_stall_until: 0,
            redirect_until: 0,
            front: VecDeque::new(),
            next_id: 0,
            pointers: MopPointerStore::new(),
            detector: MopDetector::new(
                cfg.sched.mop.clone(),
                cfg.sched.max_entry_sources(),
                cfg.fetch_width,
            ),
            former: Former::new(cfg.mops_enabled(), cfg.sched.mop.max_mop_size),
            entry_map: Vec::new(),
            queue: IssueQueue::new(cfg.sched.clone()),
            rob: VecDeque::new(),
            events: BTreeMap::new(),
            store_inflight: Vec::new(),
            now: 0,
            last_commit_cycle: 0,
            stats: SimStats::default(),
            timeline: None,
            metrics: None,
            slot_counts: None,
            insert_blocked: false,
            tracing: false,
            sink: None,
            orc: None,
            issue_buf: Vec::new(),
            replay_buf: Vec::new(),
            detect_buf: Vec::new(),
            trace_buf: Vec::new(),
            ptr_install_buf: Vec::new(),
            ptr_evict_buf: Vec::new(),
            oracle_done: false,
            program,
            trace,
            cfg,
        };
        // Debug builds watch every run with a panicking invariant oracle:
        // the whole test suite doubles as a scheduling-legality suite.
        // Release builds (benches, experiments, the default CLI) pay
        // nothing.
        #[cfg(debug_assertions)]
        sim.attach_oracle(OracleMode::Panic);
        // Debug builds also account every issue slot, so the whole test
        // suite doubles as a conservation-law suite (the per-cycle
        // `debug_assert` in `step`).
        #[cfg(debug_assertions)]
        sim.enable_slot_accounting();
        sim
    }

    /// Attach an event sink; enables tracing for the rest of the run.
    pub fn set_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = Some(sink);
        self.enable_tracing();
    }

    /// Attach a fresh [`InvariantOracle`] in `mode` (replacing any
    /// previous one); enables tracing for the rest of the run.
    pub fn attach_oracle(&mut self, mode: OracleMode) {
        self.orc = Some(InvariantOracle::new(&self.cfg.sched, mode));
        self.enable_tracing();
    }

    /// The attached invariant oracle, if any.
    pub fn oracle(&self) -> Option<&InvariantOracle> {
        self.orc.as_ref()
    }

    fn enable_tracing(&mut self) {
        self.tracing = true;
        self.queue.set_tracing(true);
    }

    /// Count an event and deliver it to the timeline, the sink and the
    /// oracle. An associated fn so call sites can hold disjoint borrows
    /// of other `self` fields.
    fn emit(
        stats: &mut SimStats,
        timeline: &mut Option<Timeline>,
        sink: &mut Option<Box<dyn EventSink>>,
        orc: &mut Option<InvariantOracle>,
        ev: TraceEvent,
    ) {
        stats.events.record(&ev);
        if let Some(t) = timeline {
            t.observe(&ev);
        }
        if let Some(s) = sink {
            s.emit(&ev);
        }
        if let Some(o) = orc {
            o.emit(&ev);
        }
    }

    /// Forward everything the queue buffered since the last drain,
    /// stamped with the simulator's clock.
    #[inline]
    fn drain_queue_trace(&mut self) {
        if !self.tracing {
            return;
        }
        let mut buf = std::mem::take(&mut self.trace_buf);
        self.queue.drain_trace_into(self.now, &mut buf);
        for ev in buf.drain(..) {
            Self::emit(
                &mut self.stats,
                &mut self.timeline,
                &mut self.sink,
                &mut self.orc,
                ev,
            );
        }
        self.trace_buf = buf;
    }

    /// Run until `max_commits` instructions have committed or the trace
    /// drains. Returns the statistics snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (no commit for a very long time
    /// with work outstanding) — that is a simulator bug, not a caller
    /// error.
    pub fn run(&mut self, max_commits: u64) -> SimStats {
        while self.stats.committed < max_commits {
            self.step();
            if self.oracle_done && self.rob.is_empty() && self.front.is_empty() {
                break;
            }
            assert!(
                self.now - self.last_commit_cycle < 500_000,
                "pipeline deadlock at cycle {} (rob {} front {} queue {})",
                self.now,
                self.rob.len(),
                self.front.len(),
                self.queue.occupancy()
            );
        }
        self.snapshot()
    }

    /// Current statistics (also usable mid-run).
    pub fn snapshot(&self) -> SimStats {
        let mut s = self.stats.clone();
        s.cycles = self.now;
        s.queue = self.queue.stats();
        s.detect = self.detector.stats();
        s.form = self.former.stats();
        s.pointers = self.pointers.stats();
        s.il1 = self.il1.stats();
        s.l2 = self.l2.stats();
        s.events.dropped = self.sink.as_ref().map_or(0, |k| k.dropped());
        if let Some(c) = self.slot_counts.as_deref() {
            s.slots = *c;
            if let Some(q) = self.queue.slot_counts() {
                s.slots.merge(q);
            }
        }
        s
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Record per-instruction pipeline timelines for the first `cap`
    /// uops entering the pipe (see [`crate::timeline::Timeline`]). The
    /// timelines are reconstructed from the trace-event stream, so this
    /// enables event tracing for the rest of the run.
    pub fn enable_timeline(&mut self, cap: usize) {
        self.timeline = Some(Timeline::new(cap));
        self.enable_tracing();
    }

    /// The recorded timelines, if [`Simulator::enable_timeline`] was
    /// called.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Collect interval metric snapshots every `interval` cycles (see
    /// [`crate::metrics::SimMetrics`]) and turn on the issue queue's
    /// histograms. Unlike tracing this does not construct events; the
    /// per-cycle cost is a couple of histogram increments.
    pub fn enable_metrics(&mut self, interval: u64) {
        self.queue.set_metrics(true);
        self.metrics = Some(Box::new(SimMetrics::new(interval)));
    }

    /// Close the final partial interval row (idempotent; call after
    /// [`Simulator::run`] and before reading [`Simulator::metrics`]).
    pub fn finish_metrics(&mut self) {
        if self.metrics.is_none() {
            return;
        }
        let cum = self.cumulative();
        let now = self.now;
        if let Some(m) = self.metrics.as_deref_mut() {
            m.finish(now, cum);
        }
    }

    /// The interval metric collector, if [`Simulator::enable_metrics`]
    /// was called.
    pub fn metrics(&self) -> Option<&SimMetrics> {
        self.metrics.as_deref()
    }

    /// The issue queue's metric histograms, if metrics are enabled.
    pub fn queue_metrics(&self) -> Option<&mos_core::queue::QueueMetrics> {
        self.queue.metrics()
    }

    /// Turn on top-down issue-slot accounting (the `cpistack` taxonomy):
    /// every cycle × issue-slot is charged to exactly one
    /// [`SlotCause`], and the per-cause totals land in
    /// [`SimStats::slots`]. Observation only — simulated timing is
    /// unchanged. Must be enabled before the first cycle so the
    /// conservation law (`total == cycles × issue_width`) holds;
    /// idempotent, and debug builds enable it automatically.
    pub fn enable_slot_accounting(&mut self) {
        assert_eq!(self.now, 0, "enable slot accounting before the first cycle");
        if self.slot_counts.is_none() {
            self.slot_counts = Some(Box::default());
            self.queue.set_slot_accounting(true);
        }
    }

    /// `true` when slot accounting is enabled.
    pub fn slot_accounting(&self) -> bool {
        self.slot_counts.is_some()
    }

    /// Gather the cumulative counter values the interval series rows are
    /// deltas of.
    fn cumulative(&self) -> Cum {
        let q = self.queue.stats();
        let p = self.pointers.stats();
        let (delay_sum, delay_count) = self
            .queue
            .metrics()
            .map_or((0, 0), |m| (m.wakeup_select_delay.sum(), m.wakeup_select_delay.count()));
        Cum {
            cycles: self.now,
            committed: self.stats.committed,
            grouped: self.stats.roles[SimStats::role_index(GroupRole::MopIndependent)]
                + self.stats.roles[SimStats::role_index(GroupRole::MopNonValueGen)]
                + self.stats.roles[SimStats::role_index(GroupRole::MopValueGen)],
            replayed_uops: q.load_replay_uops,
            pointer_hits: self.stats.pointer_hits,
            pointer_evicts: p.1 + p.2,
            occupancy_integral: q.occupancy_integral,
            delay_sum,
            delay_count,
        }
    }

    fn rob_index(&self, id: UopId) -> Option<usize> {
        self.rob.binary_search_by_key(&id, |e| e.id).ok()
    }

    /// Advance one cycle.
    fn step(&mut self) {
        self.now += 1;
        let now = self.now;
        self.insert_blocked = false;

        // 1. Execution/resolution events.
        if let Some(evs) = self.events.remove(&now) {
            for ev in evs {
                self.handle_event(ev);
            }
        }

        // 2. Rename / MOP formation / queue insertion.
        self.insert_stage();
        self.drain_queue_trace();

        // 3. Wakeup/select.
        if self.tracing {
            let mut installs = std::mem::take(&mut self.ptr_install_buf);
            installs.clear();
            self.pointers.tick_into(now, &mut installs);
            for &(head_sidx, line) in &installs {
                Self::emit(
                    &mut self.stats,
                    &mut self.timeline,
                    &mut self.sink,
                    &mut self.orc,
                    TraceEvent::PointerInstall {
                        cycle: now,
                        head_sidx,
                        line,
                    },
                );
            }
            self.ptr_install_buf = installs;
        } else {
            self.pointers.tick(now);
        }
        let mut issued = std::mem::take(&mut self.issue_buf);
        self.queue.cycle_into(now, &mut issued);
        if let Some(c) = self.slot_counts.as_deref_mut() {
            // Idle slots the queue could not blame on a waiting entry:
            // the machine-level context decides — wrong-path fetch or the
            // post-squash redirect bubble, frontend (IQ/ROB-full)
            // back-pressure, or a genuinely drained window.
            let empty = self.queue.unattributed_slots();
            if empty > 0 {
                let cause = if self.wrong_path || now < self.redirect_until {
                    SlotCause::WrongPath
                } else if self.insert_blocked {
                    SlotCause::Frontend
                } else {
                    SlotCause::Drained
                };
                c.add(cause, empty);
            }
        }
        self.drain_queue_trace();
        for iss in &issued {
            self.handle_issue(iss);
        }
        self.issue_buf = issued;

        // 4. In-order commit.
        self.commit_stage();

        // 5. Fetch.
        self.fetch_stage();

        if now.is_multiple_of(4096) {
            self.queue.prune_tags(4096);
        }

        // 6. Interval metric snapshot, landing exactly on multiples of
        // the interval (the clock advances one cycle per step).
        if self.metrics.as_deref().is_some_and(|m| m.due(now)) {
            let cum = self.cumulative();
            if let Some(m) = self.metrics.as_deref_mut() {
                m.sample(now, cum);
            }
        }

        // The conservation law, checked every cycle like the scheduling
        // oracle: charged slots must equal the slots the machine offered.
        #[cfg(debug_assertions)]
        if let Some(c) = self.slot_counts.as_deref() {
            let mut total = *c;
            if let Some(q) = self.queue.slot_counts() {
                total.merge(q);
            }
            if let Err(e) =
                total.check_conservation(now, self.cfg.sched.issue_width as u64)
            {
                panic!("{e} (at cycle {now})");
            }
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch_stage(&mut self) {
        let now = self.now;
        if self.fetch_stall_until > now || self.front.len() >= 8 {
            return;
        }
        // One I-cache line feeds a fetch group.
        let line_mask = !(self.cfg.il1.line_bytes as u64 - 1);
        let first_pc = match self.program.inst(self.fetch_pc) {
            Some(_) => self.program.pc_of(self.fetch_pc),
            None => return, // wrong path ran off the code image
        };
        let access = self.il1.access(first_pc);
        if let Some(evicted) = access.evicted {
            if self.tracing {
                let mut dropped = std::mem::take(&mut self.ptr_evict_buf);
                dropped.clear();
                self.pointers.invalidate_line_into(evicted, &mut dropped);
                for &head_sidx in &dropped {
                    Self::emit(
                        &mut self.stats,
                        &mut self.timeline,
                        &mut self.sink,
                        &mut self.orc,
                        TraceEvent::PointerEvict {
                            cycle: now,
                            head_sidx,
                            line: evicted,
                            filtered: false,
                        },
                    );
                }
                self.ptr_evict_buf = dropped;
            } else {
                self.pointers.invalidate_line(evicted);
            }
        }
        if !access.hit {
            // Miss into the unified L2.
            let l2 = self.l2.access(first_pc);
            let latency = self.cfg.il1.hit_latency
                + self.cfg.l2.hit_latency
                + if l2.hit { 0 } else { self.cfg.memory_latency };
            self.fetch_stall_until = now + u64::from(latency);
            return;
        }

        let mut insts = Vec::with_capacity(self.cfg.fetch_width);
        for _ in 0..self.cfg.fetch_width {
            let sidx = self.fetch_pc;
            let Some(inst) = self.program.inst(sidx).copied() else {
                break;
            };
            if self.program.pc_of(sidx) & line_mask != first_pc & line_mask {
                break; // next line, next cycle
            }
            // Oracle record for correct-path fetch.
            let dyn_ = if self.wrong_path {
                None
            } else {
                match self.trace.next() {
                    Some(d) => Some(d),
                    None => {
                        self.oracle_done = true;
                        break;
                    }
                }
            };
            if let Some(d) = dyn_ {
                debug_assert_eq!(d.sidx, sidx, "oracle and fetch must agree");
            }

            let (mut pred_taken, mut pred_next, ghr_cp, ras_snap) = self.predict(sidx, &inst);
            if self.cfg.ideal_branch {
                if let Some(d) = dyn_ {
                    pred_taken = d.taken;
                    pred_next = d.next_sidx;
                }
            }
            let (mispredicted, actual_taken, actual_next) = match dyn_ {
                Some(d) => {
                    let actual_next = d.next_sidx;
                    let wrong = pred_next != actual_next || pred_taken != d.taken;
                    (wrong, d.taken, actual_next)
                }
                None => (false, pred_taken, pred_next),
            };

            let pointer = if self.cfg.mops_enabled() {
                self.pointers.lookup(sidx)
            } else {
                None
            };
            if pointer.is_some() {
                self.stats.pointer_hits += 1;
            }

            self.stats.fetched += 1;
            if self.wrong_path {
                self.stats.wrong_path_fetched += 1;
            }
            if self.tracing {
                Self::emit(
                    &mut self.stats,
                    &mut self.timeline,
                    &mut self.sink,
                    &mut self.orc,
                    TraceEvent::Fetch {
                        cycle: now,
                        sidx,
                        wrong_path: self.wrong_path,
                        pointer: pointer.is_some(),
                    },
                );
                if let Some(p) = pointer {
                    Self::emit(
                        &mut self.stats,
                        &mut self.timeline,
                        &mut self.sink,
                        &mut self.orc,
                        TraceEvent::PointerHit {
                            cycle: now,
                            head_sidx: sidx,
                            tail_sidx: p.tail_sidx,
                        },
                    );
                }
            }
            insts.push(FrontInst {
                sidx,
                dyn_,
                stream_taken: pred_taken,
                pointer,
                mispredicted,
                actual_taken,
                actual_next,
                ghr_cp,
                ras_snap,
            });

            if mispredicted {
                self.wrong_path = true;
            }
            self.fetch_pc = pred_next;
            if pred_taken {
                break; // fetch stops at the first taken branch
            }
        }
        if !insts.is_empty() {
            self.front.push_back(FrontGroup {
                insts,
                fetched_at: now,
                ready_at: now + self.cfg.front_delay(),
            });
        }
    }

    /// Predict direction and next fetch index for `inst` at `sidx`;
    /// returns `(taken, next, ghr checkpoint, RAS snapshot)`.
    fn predict(
        &mut self,
        sidx: u32,
        inst: &StaticInst,
    ) -> (bool, u32, u64, Option<(usize, Vec<u64>)>) {
        let pc = self.program.pc_of(sidx);
        match inst.class() {
            InstClass::CondBranch => {
                let (taken, cp) = self.predictor.predict(pc);
                let next = if taken {
                    inst.target().expect("validated branch")
                } else {
                    sidx + 1
                };
                (taken, next, cp, Some(self.ras.snapshot()))
            }
            InstClass::Jump => (true, inst.target().expect("validated jump"), 0, None),
            InstClass::Call => {
                self.ras.push(self.program.pc_of(sidx + 1));
                (
                    true,
                    inst.target().expect("validated call"),
                    0,
                    Some(self.ras.snapshot()),
                )
            }
            InstClass::Return => {
                let target = self.ras.pop();
                let next = self.program.index_of_pc(target).unwrap_or(sidx + 1);
                (true, next, 0, Some(self.ras.snapshot()))
            }
            InstClass::IndirectJump => {
                let next = self
                    .btb
                    .lookup(pc)
                    .and_then(|t| self.program.index_of_pc(t))
                    .unwrap_or(sidx + 1);
                (true, next, 0, Some(self.ras.snapshot()))
            }
            _ => (false, sidx + 1, 0, None),
        }
    }

    // ------------------------------------------------------------------
    // Rename / formation / insertion
    // ------------------------------------------------------------------

    fn insert_stage(&mut self) {
        let now = self.now;
        let Some(group) = self.front.front() else {
            return;
        };
        if group.ready_at > now {
            return;
        }
        let n = group.insts.len();
        // Conservative resource check: every instruction may need an entry
        // (fused tails actually will not).
        if self.queue.free_entries() < n || self.rob.len() + n > self.cfg.rob_entries {
            self.insert_blocked = true;
            return;
        }
        let group = self.front.pop_front().expect("checked above");

        let mut detect_group = std::mem::take(&mut self.detect_buf);
        detect_group.clear();
        self.former.begin_group();
        for fi in &group.insts {
            let inst = *self.program.inst(fi.sidx).expect("fetched inst exists");
            if inst.class() == InstClass::Nop || inst.class() == InstClass::Halt {
                continue; // the decoder filters no-ops without executing
            }
            let id = UopId(self.next_id);
            self.next_id += 1;

            let renamed = RenamedInst {
                id,
                sidx: fi.sidx,
                class: inst.class(),
                dst: inst.dst(),
                srcs: inst.src_regs().collect(),
                taken: fi.stream_taken,
                taken_indirect: matches!(
                    inst.class(),
                    InstClass::IndirectJump | InstClass::Return
                ),
                pointer: fi.pointer,
                is_candidate: inst.is_mop_candidate(),
                is_valuegen: inst.is_value_generating_candidate(),
                fetched_at: group.fetched_at,
                wrong_path: fi.dyn_.is_none(),
            };
            let items = self.former.feed(&renamed);
            let role = self.apply_form_items(items);

            // Branches that can squash record recovery state.
            let can_squash = matches!(
                inst.class(),
                InstClass::CondBranch | InstClass::IndirectJump | InstClass::Return
            );
            let table_cp = can_squash.then(|| self.former.checkpoint());

            self.rob.push_back(RobEntry {
                id,
                sidx: fi.sidx,
                class: inst.class(),
                dyn_: fi.dyn_,
                role,
                complete_at: None,
                issue_gen: 0,
                branch_resolved: false,
                mispredicted: fi.mispredicted,
                actual_taken: fi.actual_taken,
                actual_next: fi.actual_next,
                ghr_cp: fi.ghr_cp,
                ras_snap: fi.ras_snap.clone(),
                table_cp,
                load_tag: None,
            });

            // Track in-flight store addresses for forwarding.
            if inst.class() == InstClass::Store {
                if let Some(addr) = fi.dyn_.and_then(|d| d.eff_addr) {
                    let key = addr & !7;
                    match self.store_inflight.iter_mut().find(|(a, _)| *a == key) {
                        Some((_, c)) => *c += 1,
                        None => self.store_inflight.push((key, 1)),
                    }
                }
            }

            // Detection examines the correct-path renamed stream.
            if self.cfg.mops_enabled() {
                if let Some(d) = fi.dyn_ {
                    detect_group.push(DetectInst::from_dyn(&self.program, &d));
                }
            }
        }
        let end_items = self.former.end_group();
        self.apply_form_items(end_items);

        if self.cfg.mops_enabled() && !detect_group.is_empty() {
            let pairs = {
                let pointers = &self.pointers;
                self.detector.step(
                    &detect_group,
                    |s| pointers.has_pointer(s),
                    |h, t| pointers.is_blacklisted(h, t),
                )
            };
            let ready = now + self.cfg.sched.mop.detection_delay;
            for p in pairs {
                if self.tracing {
                    Self::emit(
                        &mut self.stats,
                        &mut self.timeline,
                        &mut self.sink,
                        &mut self.orc,
                        TraceEvent::MopDetect {
                            cycle: now,
                            head_sidx: p.head_sidx,
                            tail_sidx: p.pointer.tail_sidx,
                            offset: p.pointer.offset,
                            control: p.pointer.control,
                            independent: p.pointer.independent,
                            visible_at: ready,
                        },
                    );
                }
                self.pointers
                    .schedule_install(p.head_sidx, p.pointer, p.head_line, ready);
            }
        }
        self.detect_buf = detect_group;
    }

    /// Apply formation steering to the queue; returns the role of the
    /// last inserted/fused uop (the role recorded in the ROB).
    fn apply_form_items(&mut self, items: Vec<FormedItem>) -> GroupRole {
        let mut role = GroupRole::NotCandidate;
        for item in items {
            match item {
                FormedItem::Single(uop) => {
                    role = uop.role;
                    self.queue.insert(uop).expect("space checked before group");
                }
                FormedItem::HeadPending { head, pair_id } => {
                    role = head.role;
                    let eid = self
                        .queue
                        .insert_mop_head(head)
                        .expect("space checked before group");
                    self.entry_map.push((pair_id, eid));
                }
                FormedItem::TailFuse {
                    tail,
                    pair_id,
                    chain_more,
                } => {
                    role = tail.role;
                    let found = self
                        .entry_map
                        .iter()
                        .position(|&(p, _)| p == pair_id)
                        .map(|i| (i, self.entry_map[i].1));
                    if let Some((i, eid)) = found {
                        if self.queue.fuse_tail(eid, tail.clone()).is_err() {
                            // Entry vanished (squash race): insert alone.
                            self.queue.insert(tail).expect("space checked");
                        } else if chain_more {
                            self.queue.mark_pending(eid);
                        } else {
                            self.entry_map.swap_remove(i);
                        }
                    } else {
                        self.queue.insert(tail).expect("space checked");
                    }
                }
                FormedItem::Cancel { pair_id } => {
                    if let Some(i) = self.entry_map.iter().position(|&(p, _)| p == pair_id) {
                        let (_, eid) = self.entry_map.swap_remove(i);
                        self.queue.cancel_pending(eid);
                    }
                }
            }
        }
        role
    }

    // ------------------------------------------------------------------
    // Issue & execution
    // ------------------------------------------------------------------

    fn handle_issue(&mut self, iss: &Issued) {
        let is_mop = iss.uops.len() > 1;
        if is_mop {
            self.stats.mop_entries_issued += 1;
            self.maybe_filter_last_arrival(iss);
        }
        for (k, uop) in iss.uops.iter().enumerate() {
            let Some(idx) = self.rob_index(uop.id) else {
                continue; // squashed between select and bookkeeping
            };
            let entry = &mut self.rob[idx];
            entry.issue_gen += 1;
            let gen = entry.issue_gen;
            // Final grouping classification: a lone uop in an entry was
            // not (or no longer is) part of a MOP.
            entry.role = if is_mop {
                uop.role
            } else {
                match uop.role {
                    GroupRole::MopValueGen
                    | GroupRole::MopNonValueGen
                    | GroupRole::MopIndependent
                    | GroupRole::NotGrouped => GroupRole::NotGrouped,
                    GroupRole::NotCandidate => GroupRole::NotCandidate,
                }
            };
            if uop.is_load {
                if let Some(t) = uop.dst {
                    self.rob[idx].load_tag = Some(t);
                }
            }
            let exec_at = iss.issue_cycle + u64::from(self.cfg.exec_offset) + k as u64;
            if self.tracing {
                Self::emit(
                    &mut self.stats,
                    &mut self.timeline,
                    &mut self.sink,
                    &mut self.orc,
                    TraceEvent::Issue {
                        cycle: iss.issue_cycle,
                        id: uop.id,
                        sidx: uop.sidx,
                        exec_at,
                        mop: is_mop,
                    },
                );
            }
            self.events
                .entry(exec_at)
                .or_default()
                .push(Ev::Exec { id: uop.id, gen });
        }
    }

    /// The last-arriving-operand filter (Section 5.4.2, Figure 12): if the
    /// operand that gated this MOP's issue belongs to the tail while the
    /// head had been ready earlier, delete the pointer and blacklist the
    /// pair so detection finds an alternative.
    fn maybe_filter_last_arrival(&mut self, iss: &Issued) {
        if !self.cfg.sched.mop.last_arrival_filter {
            return;
        }
        let head = &iss.uops[0];
        if head.role == GroupRole::MopIndependent {
            return; // identical sources: nothing to filter
        }
        let mop_tag = head.dst;
        let head_ready = head
            .srcs
            .iter()
            .filter_map(|&t| self.queue.tag_ready_time(t))
            .max()
            .unwrap_or(0);
        let tail_ready = iss.uops[1..]
            .iter()
            .flat_map(|u| u.srcs.iter())
            .filter(|&&t| Some(t) != mop_tag && !head.srcs.contains(&t))
            .filter_map(|&t| self.queue.tag_ready_time(t))
            .max();
        if let Some(tail_ready) = tail_ready {
            if tail_ready > head_ready + 1 && tail_ready + 2 >= iss.issue_cycle {
                let deleted = self.pointers.delete_and_blacklist(head.sidx);
                self.stats.last_arrival_filtered += 1;
                if deleted && self.tracing {
                    Self::emit(
                        &mut self.stats,
                        &mut self.timeline,
                        &mut self.sink,
                        &mut self.orc,
                        TraceEvent::PointerEvict {
                            cycle: iss.issue_cycle,
                            head_sidx: head.sidx,
                            line: 0,
                            filtered: true,
                        },
                    );
                }
            }
        }
    }

    fn handle_event(&mut self, ev: Ev) {
        match ev {
            Ev::Exec { id, gen } => self.exec_uop(id, gen),
            Ev::LoadResolve {
                id,
                gen,
                tag,
                hit,
                data_ready,
            } => {
                // Drop stale resolutions from replaced issues.
                if let Some(idx) = self.rob_index(id) {
                    if self.rob[idx].issue_gen != gen {
                        return;
                    }
                } else {
                    return;
                }
                if let Some(tag) = tag {
                    // Replayed uops must not commit on (or be completed
                    // by) their stale execution: clear the completion and
                    // bump the generation so in-flight Exec/LoadResolve
                    // events from the cancelled issue are dropped.
                    let mut replayed = std::mem::take(&mut self.replay_buf);
                    self.queue.load_resolved_into(tag, hit, data_ready, &mut replayed);
                    self.drain_queue_trace();
                    for &rid in &replayed {
                        if let Some(k) = self.rob_index(rid) {
                            self.rob[k].complete_at = None;
                            self.rob[k].issue_gen += 1;
                        }
                    }
                    self.replay_buf = replayed;
                }
            }
        }
    }

    fn exec_uop(&mut self, id: UopId, gen: u32) {
        let now = self.now;
        let Some(idx) = self.rob_index(id) else {
            return; // squashed
        };
        if self.rob[idx].issue_gen != gen {
            return; // superseded by a replay re-issue
        }
        let class = self.rob[idx].class;
        let dyn_ = self.rob[idx].dyn_;
        match class {
            InstClass::Load => {
                let (latency, hit) = match dyn_.and_then(|d| d.eff_addr) {
                    Some(_) if self.cfg.ideal_memory => (self.cfg.dl1.hit_latency, true),
                    Some(addr) => {
                        let key = addr & !7;
                        if self.store_inflight.iter().any(|&(a, _)| a == key) {
                            // Store-to-load forwarding: hit-equivalent.
                            self.stats.load_forwards += 1;
                            self.stats.dl1.0 += 1;
                            (self.cfg.dl1.hit_latency, true)
                        } else {
                            let a = self.dl1.access(addr);
                            if a.hit {
                                self.stats.dl1.0 += 1;
                                (self.cfg.dl1.hit_latency, true)
                            } else {
                                self.stats.dl1.1 += 1;
                                let l2 = self.l2.access(addr);
                                let lat = self.cfg.dl1.hit_latency
                                    + self.cfg.l2.hit_latency
                                    + if l2.hit { 0 } else { self.cfg.memory_latency };
                                (lat, false)
                            }
                        }
                    }
                    // Wrong-path load: assume a hit, no cache pollution.
                    None => (self.cfg.dl1.hit_latency, true),
                };
                let entry = &mut self.rob[idx];
                entry.complete_at = Some(now + u64::from(latency));
                // The dependent-visible data time on the scheduling scale:
                // issue + agen(1) + memory latency. exec = issue + offset.
                let issue_cycle = now - u64::from(self.cfg.exec_offset);
                let data_ready = issue_cycle + 1 + u64::from(latency);
                let discovery = now + u64::from(self.cfg.dl1.hit_latency);
                // This load's broadcast tag (MOP-translated) was recorded
                // on its ROB entry at issue.
                let tag = self.rob[idx].load_tag;
                self.events.entry(discovery).or_default().push(Ev::LoadResolve {
                    id,
                    gen,
                    tag,
                    hit,
                    data_ready,
                });
            }
            InstClass::Store => {
                self.rob[idx].complete_at = Some(now + 1);
            }
            InstClass::CondBranch | InstClass::IndirectJump | InstClass::Return => {
                self.rob[idx].complete_at = Some(now + 1);
                if dyn_.is_some() && !self.rob[idx].branch_resolved {
                    self.rob[idx].branch_resolved = true;
                    self.resolve_branch(idx);
                }
            }
            _ => {
                let lat = u64::from(class.exec_latency());
                self.rob[idx].complete_at = Some(now + lat);
            }
        }
    }

    fn resolve_branch(&mut self, idx: usize) {
        let now = self.now;
        let e = &self.rob[idx];
        let pc = self.program.pc_of(e.sidx);
        let (id, mispredicted, actual_taken, actual_next) =
            (e.id, e.mispredicted, e.actual_taken, e.actual_next);
        let ghr_cp = e.ghr_cp;
        let ras_snap = e.ras_snap.clone();
        let table_cp = e.table_cp.clone();
        let class = e.class;

        if class == InstClass::CondBranch {
            self.predictor.update(pc, actual_taken, ghr_cp);
        }
        if class == InstClass::IndirectJump {
            self.btb.update(pc, self.program.pc_of(actual_next));
        }
        if !mispredicted {
            return;
        }

        // --- Squash ---
        self.stats.squashes += 1;
        if self.tracing {
            let branch_sidx = self.rob[idx].sidx;
            Self::emit(
                &mut self.stats,
                &mut self.timeline,
                &mut self.sink,
                &mut self.orc,
                TraceEvent::Squash {
                    cycle: now,
                    from: UopId(id.0 + 1),
                    branch_sidx,
                },
            );
        }
        self.queue.squash_from(UopId(id.0 + 1));
        while self.rob.back().is_some_and(|b| b.id > id) {
            let b = self.rob.pop_back().expect("checked above");
            // Wrong-path stores never entered store_inflight (no oracle
            // address), so nothing to unwind there; the load tag dies with
            // the ROB entry.
            debug_assert!(b.dyn_.is_none(), "only wrong-path uops are squashed");
        }
        self.front.clear();
        self.entry_map.clear();
        if let Some(cp) = table_cp {
            self.former.squash(&cp);
        }
        self.predictor.restore_history(ghr_cp, actual_taken);
        if let Some(snap) = ras_snap {
            self.ras.restore(snap);
        }
        self.detector.reset_window();
        self.wrong_path = false;
        self.fetch_pc = actual_next;
        self.fetch_stall_until = now + 2; // redirect bubble
        self.redirect_until = now + 2;
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit_stage(&mut self) {
        let now = self.now;
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else {
                return;
            };
            if head.complete_at.is_none_or(|c| c > now) {
                return;
            }
            let head = self.rob.pop_front().expect("checked above");
            debug_assert!(head.dyn_.is_some(), "wrong-path uop reached commit");
            self.stats.committed += 1;
            self.last_commit_cycle = now;
            if self.tracing {
                Self::emit(
                    &mut self.stats,
                    &mut self.timeline,
                    &mut self.sink,
                    &mut self.orc,
                    TraceEvent::Commit {
                        cycle: now,
                        id: head.id,
                        sidx: head.sidx,
                        complete_at: head.complete_at.unwrap_or(now),
                    },
                );
            }
            self.stats.roles[SimStats::role_index(head.role)] += 1;
            match head.class {
                InstClass::CondBranch => {
                    self.stats.branches += 1;
                    if head.mispredicted {
                        self.stats.mispredicts += 1;
                    }
                }
                InstClass::IndirectJump | InstClass::Return
                    if head.mispredicted => {
                        self.stats.mispredicts += 1;
                    }
                InstClass::Load => {
                    self.stats.loads += 1;
                }
                InstClass::Store => {
                    self.stats.stores += 1;
                    if let Some(addr) = head.dyn_.and_then(|d| d.eff_addr) {
                        // Retire the forwarding entry and write the cache.
                        let key = addr & !7;
                        if let Some(i) =
                            self.store_inflight.iter().position(|&(a, _)| a == key)
                        {
                            self.store_inflight[i].1 -= 1;
                            if self.store_inflight[i].1 == 0 {
                                self.store_inflight.swap_remove(i);
                            }
                        }
                        self.dl1.access(addr);
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mos_core::WakeupStyle;
    use mos_workload::{kernels, spec2000};

    fn run_kernel(name: &str, cfg: MachineConfig) -> SimStats {
        let k = kernels::by_name(name).unwrap();
        Simulator::new(cfg, k.interpreter()).run(u64::MAX)
    }

    fn run_spec(name: &str, cfg: MachineConfig, n: u64) -> SimStats {
        let t = spec2000::by_name(name).unwrap().trace(42);
        Simulator::new(cfg, t).run(n)
    }

    /// Committed instruction count must equal the functional trace length
    /// minus filtered no-ops, for every kernel and scheduler.
    #[test]
    fn commits_match_functional_execution() {
        for k in kernels::all() {
            let (trace, _) = k.interpreter().run_collect(usize::MAX);
            let expected = trace
                .iter()
                .filter(|d| {
                    let p = k.image().program;
                    p.inst(d.sidx).unwrap().class() != InstClass::Nop
                })
                .count() as u64;
            for cfg in [
                MachineConfig::base_32(),
                MachineConfig::two_cycle_32(),
                MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
                MachineConfig::select_free_scoreboard_32(),
            ] {
                let stats = Simulator::new(cfg, k.interpreter()).run(u64::MAX);
                assert_eq!(
                    stats.committed, expected,
                    "{}: committed mismatch",
                    k.name
                );
            }
        }
    }

    #[test]
    fn base_beats_two_cycle_on_dependent_chains() {
        // A long, tight single-cycle dependence chain: base sustains the
        // 1-cycle recurrence, 2-cycle scheduling halves it.
        let src = "li r1, 3000\nli r2, 0\nloop:\nadd r2, r2, r1\naddi r1, r1, -1\nbnez r1, loop\nhalt";
        let img = mos_asm::assemble(src).unwrap();
        let base = Simulator::new(MachineConfig::base_32(), mos_asm::Interpreter::new(&img))
            .run(u64::MAX);
        let two = Simulator::new(MachineConfig::two_cycle_32(), mos_asm::Interpreter::new(&img))
            .run(u64::MAX);
        assert!(
            base.ipc() > two.ipc() * 1.5,
            "base {:.3} vs 2-cycle {:.3}",
            base.ipc(),
            two.ipc()
        );
    }

    #[test]
    fn macro_op_recovers_two_cycle_loss() {
        let base = run_kernel("sum_loop", MachineConfig::base_32());
        let two = run_kernel("sum_loop", MachineConfig::two_cycle_32());
        let mop = run_kernel(
            "sum_loop",
            MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 0),
        );
        assert!(mop.ipc() > two.ipc(), "mop {:.3} vs two {:.3}", mop.ipc(), two.ipc());
        assert!(mop.ipc() <= base.ipc() * 1.05);
        assert!(mop.grouped_frac() > 0.2, "grouping {:.3}", mop.grouped_frac());
    }

    #[test]
    fn grouping_happens_on_spec_workloads() {
        let mop = run_spec(
            "gzip",
            MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
            30_000,
        );
        assert!(mop.grouped_frac() > 0.15, "grouped {:.3}", mop.grouped_frac());
        assert!(mop.mop_entries_issued > 0);
        assert!(mop.pointers.0 > 0, "pointers installed");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_spec("parser", MachineConfig::base_32(), 20_000);
        let b = run_spec("parser", MachineConfig::base_32(), 20_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.mispredicts, b.mispredicts);
    }

    #[test]
    fn branchy_workload_squashes_and_recovers() {
        let s = run_kernel("bubble_sort", MachineConfig::base_32());
        assert!(s.mispredicts > 0, "data-dependent branches must mispredict");
        assert!(s.squashes > 0);
        assert!(s.wrong_path_fetched > 0, "wrong path is really fetched");
    }

    #[test]
    fn mcf_misses_the_caches() {
        let s = run_spec("mcf", MachineConfig::base_32(), 20_000);
        assert!(s.dl1_miss_rate() > 0.2, "mcf dl1 miss rate {:.3}", s.dl1_miss_rate());
        assert!(s.ipc() < 1.0, "mcf must be memory-bound: {:.3}", s.ipc());
    }

    #[test]
    fn unrestricted_queue_is_no_worse() {
        let small = run_spec("gcc", MachineConfig::base_32(), 20_000);
        let big = run_spec("gcc", MachineConfig::base_unrestricted(), 20_000);
        assert!(big.ipc() >= small.ipc() * 0.98);
    }

    #[test]
    fn select_free_sits_between_base_and_two_cycle() {
        let base = run_spec("gap", MachineConfig::base_32(), 20_000);
        let sfsd = run_spec("gap", MachineConfig::select_free_squash_dep_32(), 20_000);
        let two = run_spec("gap", MachineConfig::two_cycle_32(), 20_000);
        assert!(
            sfsd.ipc() <= base.ipc() * 1.02,
            "squash-dep {:.3} vs base {:.3}",
            sfsd.ipc(),
            base.ipc()
        );
        assert!(
            sfsd.ipc() > two.ipc(),
            "squash-dep {:.3} vs two-cycle {:.3}",
            sfsd.ipc(),
            two.ipc()
        );
    }

    #[test]
    fn scoreboard_no_better_than_squash_dep() {
        let sd = run_spec("gap", MachineConfig::select_free_squash_dep_32(), 20_000);
        let sb = run_spec("gap", MachineConfig::select_free_scoreboard_32(), 20_000);
        assert!(
            sb.ipc() <= sd.ipc() * 1.02,
            "scoreboard {:.3} vs squash-dep {:.3}",
            sb.ipc(),
            sd.ipc()
        );
    }

    #[test]
    fn loads_replay_on_misses() {
        let s = run_spec("mcf", MachineConfig::base_32(), 20_000);
        assert!(s.queue.load_replay_uops > 0, "misses must trigger replays");
    }

    #[test]
    fn swapping_kernel_forwards_from_stores() {
        // Bubble sort re-loads just-stored elements on the next inner
        // iteration while the stores are still in flight.
        let s = run_kernel("bubble_sort", MachineConfig::base_32());
        assert!(s.load_forwards > 0, "swap/reload pattern must forward");
    }

    #[test]
    fn cam_and_wired_or_both_group() {
        let cam = run_spec(
            "gzip",
            MachineConfig::macro_op(WakeupStyle::CamTwoSource, Some(32), 1),
            30_000,
        );
        let wor = run_spec(
            "gzip",
            MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
            30_000,
        );
        assert!(cam.grouped_frac() > 0.10);
        // Wired-OR has no source-count restriction: at least as many
        // instructions grouped.
        assert!(wor.grouped_frac() >= cam.grouped_frac() * 0.95);
    }

    #[test]
    fn extra_formation_stages_cost_a_little() {
        let s0 = run_spec("gzip", MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 0), 20_000);
        let s2 = run_spec("gzip", MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 2), 20_000);
        assert!(
            s2.ipc() <= s0.ipc() * 1.01,
            "deeper front end cannot help: {:.3} vs {:.3}",
            s2.ipc(),
            s0.ipc()
        );
    }

    #[test]
    fn pointers_die_with_evicted_icache_lines() {
        // A code footprint far beyond the 16KB IL1 (4096 instructions):
        // lines are continuously evicted and must take their MOP pointers
        // with them.
        let mut spec = spec2000::by_name("gzip").unwrap();
        spec.body_len = 6_000;
        let trace = spec.trace(42);
        let stats = Simulator::new(
            MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
            trace,
        )
        .run(60_000);
        assert!(stats.il1.1 > 100, "IL1 must thrash: {} misses", stats.il1.1);
        assert!(
            stats.pointers.1 > 0,
            "evictions must invalidate pointers: {:?}",
            stats.pointers
        );
        // Grouping still happens while lines are resident.
        assert!(stats.grouped_frac() > 0.05, "{:.3}", stats.grouped_frac());
    }

    #[test]
    fn idealization_flags_eliminate_their_stalls() {
        let real = run_spec("crafty", MachineConfig::base_32(), 15_000);
        let ib = run_spec("crafty", MachineConfig::base_32().with_ideal_branch(), 15_000);
        assert_eq!(ib.mispredicts, 0);
        assert_eq!(ib.squashes, 0);
        assert_eq!(ib.wrong_path_fetched, 0);
        assert!(ib.ipc() >= real.ipc());
        let im = run_spec("mcf", MachineConfig::base_32().with_ideal_memory(), 15_000);
        assert_eq!(im.dl1.1, 0, "no demand-load misses when ideal");
        assert_eq!(im.queue.load_replay_uops, 0, "no replays when ideal");
    }

    #[test]
    fn ipc_is_plausible_for_all_kernels() {
        for k in kernels::all() {
            let s = run_kernel(k.name, MachineConfig::base_32());
            assert!(s.ipc() > 0.05 && s.ipc() < 4.0, "{}: ipc {:.3}", k.name, s.ipc());
        }
    }
}

//! End-of-run reports: one structure combining the [`SimStats`] totals,
//! the interval time series and histograms from [`crate::SimMetrics`],
//! and a host-side self-profile (wall time per phase, simulated cycles
//! per second), rendered as Markdown or JSON by the `mossim report`
//! subcommand and consumed by schema tests.
//!
//! All JSON is hand-rolled (the workspace has no serde) and fully
//! deterministic apart from the wall-clock profile numbers.

use std::fmt::Write as _;

use mos_isa::TraceSource;
use mos_metrics::{Hist, Registry, Series};

use crate::cpistack::CpiStack;
use crate::sim::Simulator;
use crate::stats::SimStats;

/// Identity of the run being reported.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Workload name (benchmark or kernel).
    pub bench: String,
    /// Scheduler configuration name (CLI spelling).
    pub sched: String,
    /// Instruction budget requested.
    pub insts: u64,
    /// Workload seed.
    pub seed: u64,
    /// Metric snapshot interval in cycles (0 when metrics were off).
    pub interval: u64,
}

/// Host-side wall-clock self-profile of one run, by phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostProfile {
    /// Seconds spent building the workload/trace.
    pub build_seconds: f64,
    /// Seconds spent inside the simulation loop.
    pub sim_seconds: f64,
    /// Seconds spent rendering the report (set by the caller last).
    pub render_seconds: f64,
}

impl HostProfile {
    /// Simulated cycles per wall-clock second of simulation.
    pub fn cycles_per_second(&self, cycles: u64) -> f64 {
        if self.sim_seconds > 0.0 {
            cycles as f64 / self.sim_seconds
        } else {
            0.0
        }
    }
}

/// A complete run report: totals, interval series, histograms, profile.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Run identity.
    pub meta: RunMeta,
    /// End-of-run statistics snapshot.
    pub stats: SimStats,
    /// Interval time series, when metrics were enabled.
    pub series: Option<Series>,
    /// Per-cycle issue-queue occupancy distribution.
    pub occupancy: Option<Hist>,
    /// Wakeup→select delay distribution over issued entries.
    pub wakeup_select_delay: Option<Hist>,
    /// Top-down CPI stack, when slot accounting was enabled.
    pub cpi: Option<CpiStack>,
    /// Host-side wall-time profile.
    pub profile: HostProfile,
}

impl RunReport {
    /// Gather a report from a finished simulator: closes the final
    /// partial metric interval, snapshots the stats and clones the
    /// series/histograms.
    pub fn collect<T: TraceSource>(
        sim: &mut Simulator<T>,
        meta: RunMeta,
        profile: HostProfile,
    ) -> RunReport {
        sim.finish_metrics();
        let stats = sim.snapshot();
        let series = sim.metrics().map(|m| m.series().clone());
        let (occupancy, wakeup_select_delay) = match sim.queue_metrics() {
            Some(q) => (
                Some(q.occupancy.clone()),
                Some(q.wakeup_select_delay.clone()),
            ),
            None => (None, None),
        };
        let cpi = sim.slot_accounting().then(|| {
            CpiStack::from_stats(
                &meta.bench,
                &meta.sched,
                sim.config().sched.issue_width as u64,
                &stats,
            )
        });
        RunReport {
            meta,
            stats,
            series,
            occupancy,
            wakeup_select_delay,
            cpi,
            profile,
        }
    }

    /// The totals section as an ordered metric registry (shared between
    /// the Markdown and JSON renderings).
    pub fn registry(&self) -> Registry {
        let s = &self.stats;
        let mut r = Registry::new();
        r.counter("cycles", s.cycles);
        r.counter("committed", s.committed);
        r.gauge("ipc", s.ipc());
        r.counter("fetched", s.fetched);
        r.counter("wrong_path_fetched", s.wrong_path_fetched);
        r.counter("branches", s.branches);
        r.counter("mispredicts", s.mispredicts);
        r.counter("squashes", s.squashes);
        r.counter("loads", s.loads);
        r.gauge("dl1_miss_rate", s.dl1_miss_rate());
        r.counter("stores", s.stores);
        r.gauge("grouped_frac", s.grouped_frac());
        r.counter("mop_entries_issued", s.mop_entries_issued);
        r.counter("pointer_installs", s.pointers.0);
        r.counter("pointer_hits", s.pointer_hits);
        r.counter("pointer_evictions", s.pointers.1 + s.pointers.2);
        r.counter("issued_entries", s.queue.issued_entries);
        r.counter("issued_uops", s.queue.issued_uops);
        r.counter("load_replay_uops", s.queue.load_replay_uops);
        r.gauge("mean_occupancy", s.queue.mean_occupancy());
        r.counter("events_traced", s.events.total());
        r.counter("events_dropped", s.events.dropped);
        if let Some(h) = &self.occupancy {
            r.hist("occupancy", h.clone());
        }
        if let Some(h) = &self.wakeup_select_delay {
            r.hist("wakeup_select_delay", h.clone());
        }
        r
    }

    /// The full report as one JSON object:
    /// `{"meta":..,"totals":..,"series":..|null,"profile":..}`.
    pub fn to_json(&self) -> String {
        let meta = format!(
            "{{\"bench\":\"{}\",\"sched\":\"{}\",\"insts\":{},\"seed\":{},\"interval\":{}}}",
            self.meta.bench, self.meta.sched, self.meta.insts, self.meta.seed, self.meta.interval
        );
        let series = match &self.series {
            Some(s) => s.to_json(),
            None => "null".into(),
        };
        let cpi = match &self.cpi {
            Some(c) => c.to_json(),
            None => "null".into(),
        };
        let profile = format!(
            "{{\"build_seconds\":{:.6},\"sim_seconds\":{:.6},\"render_seconds\":{:.6},\"cycles_per_second\":{:.1}}}",
            self.profile.build_seconds,
            self.profile.sim_seconds,
            self.profile.render_seconds,
            self.profile.cycles_per_second(self.stats.cycles)
        );
        format!(
            "{{\"meta\":{meta},\"totals\":{},\"cpi\":{cpi},\"series\":{series},\"profile\":{profile}}}",
            self.registry().to_json()
        )
    }

    /// The full report as Markdown: run identity, totals table,
    /// per-interval derived rates, histograms and the host profile.
    pub fn to_markdown(&self) -> String {
        let s = &self.stats;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# mossim run report\n\n`{}` under `{}`, {} requested instructions, seed {}\n",
            self.meta.bench, self.meta.sched, self.meta.insts, self.meta.seed
        );
        out.push_str("## Totals\n\n");
        out.push_str(&self.registry().to_markdown());

        if let Some(cpi) = &self.cpi {
            out.push_str("\n## CPI stack\n\n");
            out.push_str(&cpi.to_markdown());
        }

        if let Some(series) = &self.series {
            let _ = writeln!(
                out,
                "\n## Interval series (every {} cycles)\n",
                series.interval
            );
            out.push_str(
                "| end_cycle | IPC | mean occ | grouped % | replays/1k cyc | ptr hits/1k cyc | mean wake→sel |\n",
            );
            out.push_str("|---|---|---|---|---|---|---|\n");
            let col = |name: &str| series.cols.iter().position(|&c| c == name);
            let (Some(ci), Some(cm), Some(gr), Some(rp), Some(ph), Some(oc), Some(ds), Some(dc)) = (
                col("cycles"),
                col("committed"),
                col("grouped"),
                col("replayed_uops"),
                col("pointer_hits"),
                col("occupancy_integral"),
                col("delay_sum"),
                col("delay_count"),
            ) else {
                out.push_str("\n(unknown series columns)\n");
                return out;
            };
            for row in &series.rows {
                let cyc = row.vals[ci].max(1) as f64;
                let committed = row.vals[cm] as f64;
                let _ = writeln!(
                    out,
                    "| {} | {:.3} | {:.1} | {:.1} | {:.2} | {:.2} | {:.2} |",
                    row.end_cycle,
                    committed / cyc,
                    row.vals[oc] as f64 / cyc,
                    100.0 * row.vals[gr] as f64 / committed.max(1.0),
                    1000.0 * row.vals[rp] as f64 / cyc,
                    1000.0 * row.vals[ph] as f64 / cyc,
                    row.vals[ds] as f64 / (row.vals[dc].max(1) as f64),
                );
            }
        }

        out.push_str("\n## Host profile\n\n");
        let _ = writeln!(
            out,
            "| phase | seconds |\n|---|---|\n| workload build | {:.3} |\n| simulate | {:.3} |\n| render | {:.3} |\n\n{:.0} simulated cycles/second ({} cycles, {} committed)",
            self.profile.build_seconds,
            self.profile.sim_seconds,
            self.profile.render_seconds,
            self.profile.cycles_per_second(s.cycles),
            s.cycles,
            s.committed
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;
    use mos_workload::kernels;

    fn tiny_report(metrics: bool) -> RunReport {
        let k = kernels::by_name("sum_loop").unwrap();
        let mut sim = Simulator::new(MachineConfig::base_32(), k.interpreter());
        if metrics {
            sim.enable_metrics(100);
        }
        sim.run(u64::MAX);
        RunReport::collect(
            &mut sim,
            RunMeta {
                bench: "sum_loop".into(),
                sched: "base".into(),
                insts: u64::MAX,
                seed: 0,
                interval: if metrics { 100 } else { 0 },
            },
            HostProfile::default(),
        )
    }

    #[test]
    fn series_reconciles_with_totals() {
        let r = tiny_report(true);
        let series = r.series.as_ref().expect("metrics on");
        assert_eq!(series.column_total("cycles"), Some(r.stats.cycles));
        assert_eq!(series.column_total("committed"), Some(r.stats.committed));
        assert_eq!(
            series.column_total("replayed_uops"),
            Some(r.stats.queue.load_replay_uops)
        );
        assert_eq!(
            series.column_total("occupancy_integral"),
            Some(r.stats.queue.occupancy_integral)
        );
        let occ = r.occupancy.as_ref().expect("queue metrics on");
        assert_eq!(occ.count(), r.stats.queue.cycles);
        assert_eq!(occ.sum(), r.stats.queue.occupancy_integral);
        let d = r.wakeup_select_delay.as_ref().unwrap();
        assert_eq!(d.count(), r.stats.queue.issued_entries);
    }

    #[test]
    fn renders_json_and_markdown() {
        let r = tiny_report(true);
        let j = r.to_json();
        assert!(j.starts_with("{\"meta\":{\"bench\":\"sum_loop\""));
        assert!(j.contains("\"totals\":{\"cycles\":"));
        assert!(j.contains("\"series\":{\"interval\":100"));
        assert!(j.contains("\"cycles_per_second\":"));
        let md = r.to_markdown();
        assert!(md.contains("# mossim run report"));
        assert!(md.contains("## Interval series (every 100 cycles)"));
        assert!(md.contains("**occupancy**"));
    }

    #[test]
    fn metrics_off_report_has_null_series() {
        let r = tiny_report(false);
        assert!(r.series.is_none());
        assert!(r.to_json().contains("\"series\":null"));
        assert!(!r.to_markdown().contains("## Interval series"));
    }
}

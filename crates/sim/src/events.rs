//! Event-trace plumbing for the simulator: re-exports `mos-core`'s typed
//! event stream (the queue emits directly into it) and adds the shareable
//! ring sink used by the `mossim trace` CLI and by test helpers that need
//! to keep a tail of the stream while the simulator owns the sink.

use std::cell::RefCell;
use std::rc::Rc;

pub use mos_core::events::{EventCounts, EventSink, RingSink, TraceEvent};

/// A clonable handle to a shared [`RingSink`]: the simulator drives it as
/// its sink while the caller keeps a handle to read the buffered tail
/// afterwards (for JSONL dumps or failure excerpts).
#[derive(Debug, Clone)]
pub struct SharedRing(Rc<RefCell<RingSink>>);

impl SharedRing {
    /// Shared ring keeping the most recent `cap` events.
    pub fn new(cap: usize) -> SharedRing {
        SharedRing(Rc::new(RefCell::new(RingSink::new(cap))))
    }

    /// Run `f` against the buffered ring.
    pub fn with<R>(&self, f: impl FnOnce(&RingSink) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Human-readable excerpt of the last `n` buffered events.
    pub fn excerpt(&self, n: usize) -> String {
        self.0.borrow().excerpt(n)
    }

    /// Buffered events rendered as JSONL.
    pub fn to_jsonl(&self) -> String {
        self.0.borrow().to_jsonl()
    }

    /// Total events observed, including those that fell off the ring.
    pub fn total_seen(&self) -> u64 {
        self.0.borrow().total_seen()
    }

    /// Events silently discarded because the bounded ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.0.borrow().dropped_count()
    }
}

impl EventSink for SharedRing {
    fn emit(&mut self, ev: &TraceEvent) {
        self.0.borrow_mut().emit(ev);
    }

    fn dropped(&self) -> u64 {
        self.0.borrow().dropped_count()
    }
}

/// A clonable handle to an unbounded committed-uop log.
///
/// Records the static index of every [`TraceEvent::Commit`] in retirement
/// order. Unlike [`SharedRing`] nothing ever falls off, so a differential
/// harness can compare the *entire* committed sequence against a functional
/// interpreter's expansion — the property the RV32 oracle asserts.
#[derive(Debug, Clone, Default)]
pub struct SharedCommitLog(Rc<RefCell<Vec<u32>>>);

impl SharedCommitLog {
    /// Fresh, empty log.
    pub fn new() -> SharedCommitLog {
        SharedCommitLog::default()
    }

    /// Number of commits observed so far.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// `true` when nothing has committed yet.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// Run `f` against the committed static-index sequence.
    pub fn with<R>(&self, f: impl FnOnce(&[u32]) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Drain the log, returning the committed static-index sequence.
    pub fn take(&self) -> Vec<u32> {
        std::mem::take(&mut *self.0.borrow_mut())
    }
}

impl EventSink for SharedCommitLog {
    fn emit(&mut self, ev: &TraceEvent) {
        if let TraceEvent::Commit { sidx, .. } = ev {
            self.0.borrow_mut().push(*sidx);
        }
    }
}

/// Fans one event stream out to two sinks, e.g. a bounded ring for failure
/// excerpts plus an unbounded commit log for differential checking.
pub struct TeeSink(pub Box<dyn EventSink>, pub Box<dyn EventSink>);

impl EventSink for TeeSink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.0.emit(ev);
        self.1.emit(ev);
    }

    fn dropped(&self) -> u64 {
        self.0.dropped() + self.1.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mos_core::UopId;

    fn commit(cycle: u64, sidx: u32) -> TraceEvent {
        TraceEvent::Commit {
            cycle,
            id: UopId(cycle),
            sidx,
            complete_at: cycle,
        }
    }

    #[test]
    fn commit_log_keeps_every_commit_in_order() {
        let log = SharedCommitLog::new();
        let mut sink = log.clone();
        for i in 0..100u32 {
            sink.emit(&commit(u64::from(i), i % 7));
        }
        assert_eq!(log.len(), 100);
        log.with(|s| assert_eq!(s[13], 13 % 7));
        assert_eq!(log.take().len(), 100);
        assert!(log.is_empty());
    }

    #[test]
    fn commit_log_ignores_other_events() {
        let log = SharedCommitLog::new();
        let mut sink = log.clone();
        sink.emit(&TraceEvent::Fetch {
            cycle: 1,
            sidx: 0,
            wrong_path: false,
            pointer: false,
        });
        assert!(log.is_empty());
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let ring = SharedRing::new(4);
        let log = SharedCommitLog::new();
        let mut tee = TeeSink(Box::new(ring.clone()), Box::new(log.clone()));
        tee.emit(&commit(3, 9));
        assert_eq!(ring.total_seen(), 1);
        assert_eq!(log.take(), vec![9]);
    }
}

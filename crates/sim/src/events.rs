//! Event-trace plumbing for the simulator: re-exports `mos-core`'s typed
//! event stream (the queue emits directly into it) and adds the shareable
//! ring sink used by the `mossim trace` CLI and by test helpers that need
//! to keep a tail of the stream while the simulator owns the sink.

use std::cell::RefCell;
use std::rc::Rc;

pub use mos_core::events::{EventCounts, EventSink, RingSink, TraceEvent};

/// A clonable handle to a shared [`RingSink`]: the simulator drives it as
/// its sink while the caller keeps a handle to read the buffered tail
/// afterwards (for JSONL dumps or failure excerpts).
#[derive(Debug, Clone)]
pub struct SharedRing(Rc<RefCell<RingSink>>);

impl SharedRing {
    /// Shared ring keeping the most recent `cap` events.
    pub fn new(cap: usize) -> SharedRing {
        SharedRing(Rc::new(RefCell::new(RingSink::new(cap))))
    }

    /// Run `f` against the buffered ring.
    pub fn with<R>(&self, f: impl FnOnce(&RingSink) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Human-readable excerpt of the last `n` buffered events.
    pub fn excerpt(&self, n: usize) -> String {
        self.0.borrow().excerpt(n)
    }

    /// Buffered events rendered as JSONL.
    pub fn to_jsonl(&self) -> String {
        self.0.borrow().to_jsonl()
    }

    /// Total events observed, including those that fell off the ring.
    pub fn total_seen(&self) -> u64 {
        self.0.borrow().total_seen()
    }

    /// Events silently discarded because the bounded ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.0.borrow().dropped_count()
    }
}

impl EventSink for SharedRing {
    fn emit(&mut self, ev: &TraceEvent) {
        self.0.borrow_mut().emit(ev);
    }

    fn dropped(&self) -> u64 {
        self.0.borrow().dropped_count()
    }
}

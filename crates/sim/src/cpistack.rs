//! Normalized CPI stacks over the top-down slot-cause taxonomy, plus the
//! differential renderer behind `mossim cpistack --compare`.
//!
//! A [`CpiStack`] wraps one run's [`SlotCounts`] with enough metadata to
//! normalize it two ways: per-cause **slot shares** (fractions of
//! `cycles × issue_width`, summing to 1) and per-cause **CPI
//! components** (share × total CPI, summing to the run's CPI — the
//! classic stacked-bar form). The differential mode lines several stacks
//! up per cause and reports share deltas against the first (baseline)
//! stack; on a 2-cycle scheduler vs. MOP scheduling, the `sched_loop`
//! row *is* the paper's headline story in one number.

use std::fmt::Write as _;

use mos_core::{SlotCause, SlotCounts};

use crate::stats::SimStats;

/// One run's issue-slot accounting, normalized for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct CpiStack {
    /// Workload name (benchmark or kernel).
    pub bench: String,
    /// Scheduler spelling the run used (CLI vocabulary).
    pub sched: String,
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Machine issue width (slots per cycle).
    pub issue_width: u64,
    /// Per-cause slot counts.
    pub slots: SlotCounts,
}

impl CpiStack {
    /// Build a stack from a finished run's statistics.
    ///
    /// The run must have had slot accounting enabled
    /// ([`crate::Simulator::enable_slot_accounting`]); otherwise the
    /// counts are all zero and [`CpiStack::check_conservation`] fails.
    pub fn from_stats(bench: &str, sched: &str, issue_width: u64, stats: &SimStats) -> CpiStack {
        CpiStack {
            bench: bench.to_string(),
            sched: sched.to_string(),
            cycles: stats.cycles,
            committed: stats.committed,
            issue_width,
            slots: stats.slots,
        }
    }

    /// Slots the machine offered over the run.
    pub fn total_slots(&self) -> u64 {
        self.cycles * self.issue_width
    }

    /// The conservation law: charged slots must equal offered slots.
    pub fn check_conservation(&self) -> Result<(), String> {
        self.slots.check_conservation(self.cycles, self.issue_width)
    }

    /// Fraction of all slots charged to `cause` (0 when no cycles ran).
    pub fn share(&self, cause: SlotCause) -> f64 {
        let total = self.total_slots();
        if total == 0 {
            0.0
        } else {
            self.slots.get(cause) as f64 / total as f64
        }
    }

    /// Total cycles per committed instruction.
    pub fn cpi(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.cycles as f64 / self.committed as f64
        }
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// `cause`'s CPI component: share × total CPI. Components over
    /// [`SlotCause::ALL`] sum to [`CpiStack::cpi`].
    pub fn cpi_component(&self, cause: SlotCause) -> f64 {
        self.share(cause) * self.cpi()
    }

    /// The stack as one JSON object (hand-rolled; schema-checked in
    /// tests via `mos-testutil`'s parser). Every cause appears exactly
    /// once, in [`SlotCause::ALL`] order.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"bench\":\"{}\",\"sched\":\"{}\",\"cycles\":{},\"committed\":{},\
             \"issue_width\":{},\"ipc\":{:.4},\"cpi\":{:.4},\"conservation_ok\":{},\
             \"causes\":[",
            self.bench,
            self.sched,
            self.cycles,
            self.committed,
            self.issue_width,
            self.ipc(),
            self.cpi(),
            self.check_conservation().is_ok(),
        );
        for (i, &cause) in SlotCause::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"cause\":\"{}\",\"slots\":{},\"share\":{:.6},\"cpi\":{:.6}}}",
                cause.name(),
                self.slots.get(cause),
                self.share(cause),
                self.cpi_component(cause),
            );
        }
        s.push_str("]}");
        s
    }

    /// Markdown table of the stack, one row per cause, with a
    /// conservation footer.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "CPI stack: {} / {} — {} cycles, {} committed, IPC {:.3}, CPI {:.3}",
            self.bench,
            self.sched,
            self.cycles,
            self.committed,
            self.ipc(),
            self.cpi(),
        );
        let _ = writeln!(s);
        let _ = writeln!(s, "| cause | slots | share | CPI |");
        let _ = writeln!(s, "|---|---:|---:|---:|");
        for &cause in &SlotCause::ALL {
            let _ = writeln!(
                s,
                "| {} | {} | {:.1}% | {:.3} |",
                cause.name(),
                self.slots.get(cause),
                100.0 * self.share(cause),
                self.cpi_component(cause),
            );
        }
        let _ = writeln!(s);
        match self.check_conservation() {
            Ok(()) => {
                let _ = writeln!(
                    s,
                    "conservation: ok ({} slots = {} cycles x {} width)",
                    self.total_slots(),
                    self.cycles,
                    self.issue_width
                );
            }
            Err(e) => {
                let _ = writeln!(s, "conservation: VIOLATED — {e}");
            }
        }
        s
    }
}

/// Differential markdown table: per-cause shares for every stack side by
/// side, then share deltas against the first (baseline) stack.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn compare_markdown(stacks: &[CpiStack]) -> String {
    assert!(!stacks.is_empty(), "nothing to compare");
    let base = &stacks[0];
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Differential CPI stack: {} ({} insts committed on {})",
        base.bench, base.committed, base.sched
    );
    let _ = writeln!(s);
    let mut header = String::from("| cause |");
    let mut rule = String::from("|---|");
    for st in stacks {
        let _ = write!(header, " {} |", st.sched);
        rule.push_str("---:|");
    }
    let _ = writeln!(s, "{header}");
    let _ = writeln!(s, "{rule}");
    for &cause in &SlotCause::ALL {
        let _ = write!(s, "| {} |", cause.name());
        for st in stacks {
            let _ = write!(s, " {:.1}% |", 100.0 * st.share(cause));
        }
        let _ = writeln!(s);
    }
    let _ = write!(s, "| **CPI** |");
    for st in stacks {
        let _ = write!(s, " {:.3} |", st.cpi());
    }
    let _ = writeln!(s);
    let _ = writeln!(s);
    for st in &stacks[1..] {
        let _ = writeln!(s, "Δ {} vs {} (share points):", st.sched, base.sched);
        for &cause in &SlotCause::ALL {
            let d = 100.0 * (st.share(cause) - base.share(cause));
            if d.abs() >= 0.05 {
                let _ = writeln!(s, "  {:<11} {:+.1}", cause.name(), d);
            }
        }
    }
    s
}

/// Differential JSON document: the stacks plus per-cause share deltas of
/// every stack against the first.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn compare_json(stacks: &[CpiStack]) -> String {
    assert!(!stacks.is_empty(), "nothing to compare");
    let base = &stacks[0];
    let mut s = String::from("{\"stacks\":[");
    for (i, st) in stacks.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&st.to_json());
    }
    s.push_str("],\"deltas\":[");
    for (i, st) in stacks[1..].iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"sched\":\"{}\",\"vs\":\"{}\",\"causes\":[",
            st.sched, base.sched
        );
        for (j, &cause) in SlotCause::ALL.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"cause\":\"{}\",\"delta_share\":{:.6}}}",
                cause.name(),
                st.share(cause) - base.share(cause),
            );
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack(sched: &str, useful: u64, loop_: u64, drained: u64) -> CpiStack {
        let mut slots = SlotCounts::default();
        slots.add(SlotCause::Useful, useful);
        slots.add(SlotCause::SchedLoop, loop_);
        slots.add(SlotCause::Drained, drained);
        CpiStack {
            bench: "toy".into(),
            sched: sched.into(),
            cycles: (useful + loop_ + drained) / 4,
            committed: useful,
            issue_width: 4,
            slots,
        }
    }

    #[test]
    fn shares_and_cpi_components_reconcile() {
        let st = stack("base", 60, 20, 20);
        assert!(st.check_conservation().is_ok());
        let share_sum: f64 = SlotCause::ALL.iter().map(|&c| st.share(c)).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
        let cpi_sum: f64 = SlotCause::ALL.iter().map(|&c| st.cpi_component(c)).sum();
        assert!((cpi_sum - st.cpi()).abs() < 1e-12);
    }

    #[test]
    fn conservation_violation_is_reported() {
        let mut st = stack("base", 60, 20, 20);
        st.cycles += 1;
        assert!(st.check_conservation().is_err());
        assert!(st.to_json().contains("\"conservation_ok\":false"));
        assert!(st.to_markdown().contains("conservation: VIOLATED"));
    }

    #[test]
    fn compare_renders_all_stacks_and_deltas() {
        let a = stack("base", 80, 0, 20);
        let b = stack("2cycle", 60, 30, 10);
        let md = compare_markdown(&[a.clone(), b.clone()]);
        assert!(md.contains("| sched_loop |"));
        assert!(md.contains("Δ 2cycle vs base"));
        let js = compare_json(&[a, b]);
        assert!(js.contains("\"deltas\":[{\"sched\":\"2cycle\",\"vs\":\"base\""));
    }
}

//! Machine configuration (Table 1) and the scheduler presets of
//! Section 6.2.

use mos_core::{MopConfig, SchedConfig, SchedulerKind, WakeupStyle};
use mos_uarch::branch::BranchConfig;
use mos_uarch::cache::CacheConfig;

/// Full machine configuration. Defaults reproduce Table 1 of the paper:
/// 4-wide fetch/issue/commit, 128-entry ROB, 32-entry (or unrestricted)
/// issue queue, the listed functional units, the combined branch
/// predictor, and the two-level memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Instructions fetched per cycle (stops at the first predicted-taken
    /// branch and at I-cache line boundaries).
    pub fetch_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Re-order buffer capacity in instructions.
    pub rob_entries: usize,
    /// Front-end depth from fetch to queue insertion (Decode + Rename +
    /// Rename + Queue = 4), excluding extra MOP formation stages.
    pub front_depth: u32,
    /// Extra MOP formation stages (the paper evaluates 0, 1 and 2).
    pub extra_mop_stages: u32,
    /// Scheduler-to-execute depth (Disp Disp RF RF Exe = 5).
    pub exec_offset: u32,
    /// Scheduler configuration (kind, wakeup style, queue size, FUs, MOP
    /// parameters).
    pub sched: SchedConfig,
    /// Branch-prediction configuration.
    pub branch: BranchConfig,
    /// First-level instruction cache.
    pub il1: CacheConfig,
    /// First-level data cache.
    pub dl1: CacheConfig,
    /// Unified second-level cache.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles.
    pub memory_latency: u32,
    /// Idealization: branches are always predicted correctly (no wrong
    /// path, no squashes). For limit studies, not part of Table 1.
    pub ideal_branch: bool,
    /// Idealization: every data access hits the DL1 (loads never miss or
    /// replay). For limit studies, not part of Table 1.
    pub ideal_memory: bool,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig::base_32()
    }
}

impl MachineConfig {
    fn table1(kind: SchedulerKind, wakeup: WakeupStyle, queue: Option<usize>) -> MachineConfig {
        let dl1 = CacheConfig::dl1();
        let exec_offset = 5;
        MachineConfig {
            fetch_width: 4,
            commit_width: 4,
            rob_entries: 128,
            front_depth: 4,
            extra_mop_stages: 0,
            exec_offset,
            sched: SchedConfig {
                kind,
                wakeup,
                queue_entries: queue,
                issue_width: 4,
                fu_counts: [4, 2, 2, 2, 2],
                // Covers the load-miss discovery window:
                // exec_offset + DL1 latency + 1.
                confirm_window: exec_offset + dl1.hit_latency + 1,
                replay_penalty: 2,
                load_sched_latency: 1 + dl1.hit_latency,
                mop: MopConfig::default(),
            },
            branch: BranchConfig::default(),
            il1: CacheConfig::il1(),
            dl1,
            l2: CacheConfig::l2(),
            memory_latency: 100,
            ideal_branch: false,
            ideal_memory: false,
        }
    }

    /// Base (ideally pipelined atomic) scheduling, unrestricted issue
    /// queue — the normalization baseline of Figure 14.
    pub fn base_unrestricted() -> MachineConfig {
        Self::table1(SchedulerKind::Base, WakeupStyle::WiredOr, None)
    }

    /// Base scheduling, 32-entry issue queue — the normalization baseline
    /// of Figures 15 and 16 and Table 2's left column.
    pub fn base_32() -> MachineConfig {
        Self::table1(SchedulerKind::Base, WakeupStyle::WiredOr, Some(32))
    }

    /// Pipelined 2-cycle scheduling, unrestricted queue (Figure 14's left
    /// bars).
    pub fn two_cycle_unrestricted() -> MachineConfig {
        Self::table1(SchedulerKind::TwoCycle, WakeupStyle::WiredOr, None)
    }

    /// Pipelined 2-cycle scheduling, 32-entry queue (Figure 15's left
    /// bars).
    pub fn two_cycle_32() -> MachineConfig {
        Self::table1(SchedulerKind::TwoCycle, WakeupStyle::WiredOr, Some(32))
    }

    /// Macro-op scheduling with the given wakeup style, queue size, and
    /// extra formation stages.
    pub fn macro_op(
        wakeup: WakeupStyle,
        queue: Option<usize>,
        extra_stages: u32,
    ) -> MachineConfig {
        let mut c = Self::table1(SchedulerKind::MacroOp, wakeup, queue);
        c.extra_mop_stages = extra_stages;
        c
    }

    /// Select-free scheduling, Squash Dep recovery, 32-entry queue
    /// (Figure 16).
    pub fn select_free_squash_dep_32() -> MachineConfig {
        Self::table1(SchedulerKind::SelectFreeSquashDep, WakeupStyle::WiredOr, Some(32))
    }

    /// Select-free scheduling, Scoreboard recovery, 32-entry queue
    /// (Figure 16).
    pub fn select_free_scoreboard_32() -> MachineConfig {
        Self::table1(SchedulerKind::SelectFreeScoreboard, WakeupStyle::WiredOr, Some(32))
    }

    /// Speculative wakeup (Stark et al.), 32-entry queue — the
    /// wakeup-phase-speculation counterpart to select-free scheduling,
    /// used by the extension study.
    pub fn speculative_wakeup_32() -> MachineConfig {
        Self::table1(SchedulerKind::SpeculativeWakeup, WakeupStyle::WiredOr, Some(32))
    }

    /// Idealize branch prediction (limit studies).
    pub fn with_ideal_branch(mut self) -> MachineConfig {
        self.ideal_branch = true;
        self
    }

    /// Idealize the data memory system (limit studies).
    pub fn with_ideal_memory(mut self) -> MachineConfig {
        self.ideal_memory = true;
        self
    }

    /// Total fetch-to-insert delay in cycles.
    pub fn front_delay(&self) -> u64 {
        u64::from(self.front_depth + self.extra_mop_stages)
    }

    /// Whether the macro-op machinery (detection, pointers, formation) is
    /// active.
    pub fn mops_enabled(&self) -> bool {
        self.sched.kind == SchedulerKind::MacroOp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let c = MachineConfig::base_32();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.sched.queue_entries, Some(32));
        assert_eq!(c.sched.load_sched_latency, 3, "agen + 2-cycle DL1");
        assert_eq!(c.memory_latency, 100);
        assert!(MachineConfig::base_unrestricted().sched.queue_entries.is_none());
    }

    #[test]
    fn macro_op_preset_sets_extra_stages() {
        let c = MachineConfig::macro_op(WakeupStyle::CamTwoSource, Some(32), 2);
        assert!(c.mops_enabled());
        assert_eq!(c.front_delay(), 6);
        assert_eq!(c.sched.max_entry_sources(), Some(2));
    }

    #[test]
    fn thirteen_stage_depth() {
        // Fetch(1) + front(4) + Sched(1) + exec_offset(5) + WB(1) +
        // Commit(1) = 13.
        let c = MachineConfig::base_32();
        assert_eq!(1 + c.front_depth + 1 + c.exec_offset + 1 + 1, 13);
    }
}

//! Regression test for the MOP pointer lifecycle, asserted through the
//! event trace: evicting an I-cache line must drop the pointers riding on
//! it (`pointer_evict`), a fetch may only use a pointer that is currently
//! installed (`pointer_hit`), and a re-fetched head re-arms only after the
//! configured detection delay has elapsed since its (re-)detection.

use std::collections::HashMap;

use mos_sim::{MachineConfig, SharedRing, Simulator, TraceEvent};
use mos_workload::spec2000;
use mos_core::WakeupStyle;

/// Per-head lifecycle state reconstructed from the stream.
#[derive(Default)]
struct Head {
    /// `visible_at` cycles of detections not yet consumed by an install.
    pending: Vec<u64>,
    installed: bool,
    installs: u64,
    evicts: u64,
    rearms_after_evict: u64,
}

#[test]
fn pointer_lifetime_follows_evict_and_redetect_protocol() {
    // A code footprint far beyond the 16KB IL1: lines are continuously
    // evicted, so pointers are dropped and re-armed throughout the run.
    let mut spec = spec2000::by_name("gzip").unwrap();
    spec.body_len = 6_000;
    let trace = spec.trace(42);

    let cfg = MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1);
    let delay = cfg.sched.mop.detection_delay;
    let mut sim = Simulator::new(cfg, trace);
    let ring = SharedRing::new(1_500_000);
    sim.set_event_sink(Box::new(ring.clone()));
    let stats = sim.run(30_000);

    assert!(
        ring.with(|r| r.len() as u64) == ring.total_seen(),
        "ring overflowed ({} events seen): the checks below need the full stream",
        ring.total_seen()
    );

    let mut heads: HashMap<u32, Head> = HashMap::new();
    let mut hits = 0u64;
    let mut filtered = 0u64;
    ring.with(|r| {
        for ev in r.events() {
            match *ev {
                TraceEvent::MopDetect {
                    cycle,
                    head_sidx,
                    visible_at,
                    ..
                } => {
                    assert_eq!(
                        visible_at,
                        cycle + delay,
                        "detection at cycle {cycle} must become visible after \
                         the configured delay of {delay}"
                    );
                    heads.entry(head_sidx).or_default().pending.push(visible_at);
                }
                TraceEvent::PointerInstall { cycle, head_sidx, .. } => {
                    let h = heads.entry(head_sidx).or_default();
                    // Re-arming is only legal once some detection's delay
                    // has elapsed; consume the earliest such detection.
                    let ready = h
                        .pending
                        .iter()
                        .position(|&v| v <= cycle)
                        .unwrap_or_else(|| {
                            panic!(
                                "head {head_sidx} installed at cycle {cycle} with no \
                                 elapsed detection (pending {:?})",
                                h.pending
                            )
                        });
                    h.pending.remove(ready);
                    if h.evicts > h.rearms_after_evict {
                        h.rearms_after_evict += 1;
                    }
                    h.installed = true;
                    h.installs += 1;
                }
                TraceEvent::PointerHit { cycle, head_sidx, .. } => {
                    assert!(
                        heads.get(&head_sidx).is_some_and(|h| h.installed),
                        "fetch used a pointer for head {head_sidx} at cycle {cycle} \
                         that is not currently installed"
                    );
                    hits += 1;
                }
                TraceEvent::PointerEvict { cycle, head_sidx, filtered: f, .. } => {
                    let h = heads.entry(head_sidx).or_default();
                    assert!(
                        h.installed,
                        "evicted a pointer for head {head_sidx} at cycle {cycle} \
                         that was never installed"
                    );
                    h.installed = false;
                    if f {
                        filtered += 1;
                    } else {
                        h.evicts += 1;
                    }
                }
                _ => {}
            }
        }
    });

    // The event stream and the aggregate counters must agree.
    let installs: u64 = heads.values().map(|h| h.installs).sum();
    let evicts: u64 = heads.values().map(|h| h.evicts).sum();
    assert_eq!(installs, stats.pointers.0, "install events vs stats");
    assert_eq!(evicts, stats.pointers.1, "line-evict events vs stats");
    assert_eq!(filtered, stats.pointers.2, "filter-evict events vs stats");

    // The workload must actually exercise the lifecycle end to end.
    assert!(stats.il1.1 > 100, "IL1 must thrash: {} misses", stats.il1.1);
    assert!(installs > 0, "no pointers installed");
    assert!(evicts > 0, "no pointers dropped with their lines");
    assert!(hits > 0, "no fetch ever used an installed pointer");
    let rearms: u64 = heads.values().map(|h| h.rearms_after_evict).sum();
    assert!(
        rearms > 0,
        "no head was ever re-armed after its line was evicted"
    );
}

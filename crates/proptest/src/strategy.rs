//! Core strategy trait and the combinators the workspace's tests use.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`] (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several strategies of one value type
/// (the engine behind `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the already-boxed arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let k = rng.int_in(0, self.arms.len() as i128 - 1) as usize;
        self.arms[k].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.int_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.int_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Strategy for a string literal interpreted as a regex **subset**:
/// a sequence of atoms, each a literal character or a `[a-z0-9_]`-style
/// class, optionally followed by `{n}` or `{m,n}`. This covers the
/// patterns used in this workspace's tests.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {self:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("valid class range"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Parse an optional {n} / {m,n} repeat.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {self:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse::<usize>().expect("repeat lower bound"),
                        n.parse::<usize>().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = body.parse::<usize>().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let n = rng.int_in(lo as i128, hi as i128) as usize;
            for _ in 0..n {
                let k = rng.int_in(0, alphabet.len() as i128 - 1) as usize;
                out.push(alphabet[k]);
            }
        }
        out
    }
}

/// Types with a canonical whole-domain strategy (subset of proptest's
/// `Arbitrary`; only the types the tests request).
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain boolean strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> RangeInclusive<$t> {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform strategy over `T`'s whole domain, as `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

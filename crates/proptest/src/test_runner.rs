//! Test configuration and the deterministic RNG driving case generation.

/// Per-test configuration (subset of proptest's; only `cases` is used).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Shrink-iteration cap, mirroring real proptest's field; this
    /// stand-in does not shrink, so the value is accepted and ignored.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// Deterministic RNG (xoshiro256++) seeded from the test's full path, so
/// every run of a given test explores the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from an arbitrary name (FNV-1a hash, then SplitMix64 expansion).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut st = h;
        TestRng {
            s: [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ],
        }
    }

    /// Next uniform 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[lo, hi]` (inclusive), via Lemire's method.
    #[inline]
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo + 1) as u128;
        if span == 0 || span > u64::MAX as u128 {
            return lo + self.next_u64() as i128;
        }
        let span = span as u64;
        let zone = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= zone {
                return lo + (m >> 64) as i128;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

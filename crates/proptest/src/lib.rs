//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of proptest's API its tests use: the [`proptest!`] macro,
//! [`prelude`], range/tuple/`Just`/`prop_map` strategies, `prop_oneof!`,
//! `prop::collection::{vec, hash_set}`, `prop::option::{of, weighted}`,
//! `prop::sample::select`, `any::<bool>()`, and a tiny regex-subset
//! string strategy (character classes with `{m,n}` repeats).
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases from a
//! per-test deterministic seed. Failures panic with the generated input
//! in the message; there is no shrinking. That is a weaker debugging
//! experience than real proptest but identical pass/fail power for the
//! invariants under test, and it keeps the workspace building offline.

pub mod strategy;
pub mod test_runner;

pub mod collection;
pub mod option;
pub mod sample;

/// Everything tests need, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to the combinator modules (`prop::collection::vec`
    /// etc.), as in real proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs `cases` deterministic random inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property (panics; no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

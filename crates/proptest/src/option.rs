//! Strategies for `Option<T>`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Some` with a given probability.
pub struct OptionStrategy<S> {
    inner: S,
    some_prob: f64,
}

/// `Some` with probability 0.5 (real proptest defaults to a bias toward
/// `Some`; an even split exercises both arms just as well).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy {
        inner,
        some_prob: 0.5,
    }
}

/// `Some` with the given probability.
pub fn weighted<S: Strategy>(some_prob: f64, inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner, some_prob }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.f64() < self.some_prob {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

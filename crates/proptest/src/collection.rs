//! Collection strategies: `vec` and `hash_set`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Vector of values from `element`, length in `size` (half-open).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.int_in(self.size.start as i128, self.size.end as i128 - 1) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` with a target size drawn from `size`.
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Hash set of values from `element`, size in `size` (half-open). Element
/// collisions are retried a bounded number of times, so the set can come
/// out smaller than requested only for tiny value domains.
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = rng.int_in(self.size.start as i128, self.size.end as i128 - 1) as usize;
        let mut out = HashSet::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < 20 * n.max(1) {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

//! Sampling strategies over fixed collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly from a fixed list of values.
pub struct Select<T: Clone>(Vec<T>);

/// Uniform choice from `values`.
///
/// # Panics
///
/// Panics at generation time if `values` is empty.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    Select(values)
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "select over an empty list");
        let k = rng.int_in(0, self.0.len() as i128 - 1) as usize;
        self.0[k].clone()
    }
}

//! Branch prediction: combined bimodal/gshare with a selector, a branch
//! target buffer and a return-address stack.
//!
//! Sizes default to the paper's Table 1 — 4k-entry bimodal, 4k-entry
//! gshare, 4k-entry selector, 1k-entry 4-way BTB, 16-entry RAS. Direction
//! predictions speculatively update the global history register; the
//! simulator checkpoints and restores it across mispredictions via
//! [`CombinedPredictor::history`] / [`CombinedPredictor::restore_history`].


/// A table of 2-bit saturating counters.
#[derive(Debug, Clone)]
struct CounterTable {
    counters: Vec<u8>,
}

impl CounterTable {
    fn new(entries: usize) -> CounterTable {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        // Initialize weakly taken, the usual SimpleScalar default.
        CounterTable {
            counters: vec![2; entries],
        }
    }

    fn index(&self, key: u64) -> usize {
        (key as usize) & (self.counters.len() - 1)
    }

    fn predict(&self, key: u64) -> bool {
        self.counters[self.index(key)] >= 2
    }

    fn update(&mut self, key: u64, taken: bool) {
        let idx = self.index(key);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// Configuration for [`CombinedPredictor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchConfig {
    /// Bimodal table entries (power of two).
    pub bimodal_entries: usize,
    /// Gshare table entries (power of two).
    pub gshare_entries: usize,
    /// Selector table entries (power of two).
    pub selector_entries: usize,
    /// Global-history length in bits.
    pub history_bits: u32,
    /// BTB entry count (power of two, total across ways).
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
}

impl Default for BranchConfig {
    /// Table 1 of the paper.
    fn default() -> BranchConfig {
        BranchConfig {
            bimodal_entries: 4096,
            gshare_entries: 4096,
            selector_entries: 4096,
            history_bits: 12,
            btb_entries: 1024,
            btb_ways: 4,
            ras_depth: 16,
        }
    }
}

/// Combined bimodal/gshare direction predictor (McFarling-style), as used
/// by the paper's machine model.
///
/// ```
/// use mos_uarch::branch::{BranchConfig, CombinedPredictor};
/// let mut p = CombinedPredictor::new(&BranchConfig::default());
/// // Train an always-taken branch.
/// for _ in 0..8 {
///     let (pred, h) = p.predict(0x400100);
///     p.update(0x400100, true, h);
/// }
/// assert!(p.predict(0x400100).0);
/// ```
#[derive(Debug, Clone)]
pub struct CombinedPredictor {
    bimodal: CounterTable,
    gshare: CounterTable,
    selector: CounterTable,
    history: u64,
    history_mask: u64,
}

impl CombinedPredictor {
    /// Build a predictor from `config`.
    pub fn new(config: &BranchConfig) -> CombinedPredictor {
        CombinedPredictor {
            bimodal: CounterTable::new(config.bimodal_entries),
            gshare: CounterTable::new(config.gshare_entries),
            selector: CounterTable::new(config.selector_entries),
            history: 0,
            history_mask: (1u64 << config.history_bits) - 1,
        }
    }

    fn keys(&self, pc: u64) -> (u64, u64, u64) {
        let pc_key = pc >> 2;
        (pc_key, pc_key ^ self.history, pc_key)
    }

    /// Predict the direction of the conditional branch at `pc`,
    /// speculatively shifting the prediction into the global history.
    /// Returns the prediction and the pre-prediction history, which must be
    /// passed back to [`CombinedPredictor::update`] (and to
    /// [`CombinedPredictor::restore_history`] on a squash).
    pub fn predict(&mut self, pc: u64) -> (bool, u64) {
        let (bk, gk, sk) = self.keys(pc);
        let use_gshare = self.selector.predict(sk);
        let pred = if use_gshare {
            self.gshare.predict(gk)
        } else {
            self.bimodal.predict(bk)
        };
        let checkpoint = self.history;
        self.history = ((self.history << 1) | u64::from(pred)) & self.history_mask;
        (pred, checkpoint)
    }

    /// Train the predictor with the resolved outcome of the branch at `pc`.
    /// `history_at_predict` is the checkpoint returned by
    /// [`CombinedPredictor::predict`] for this dynamic branch.
    pub fn update(&mut self, pc: u64, taken: bool, history_at_predict: u64) {
        let pc_key = pc >> 2;
        let gk = pc_key ^ history_at_predict;
        let bimodal_pred = self.bimodal.predict(pc_key);
        let gshare_pred = self.gshare.predict(gk);
        // Selector trains toward the component that was right (when they
        // disagree).
        if bimodal_pred != gshare_pred {
            self.selector.update(pc_key, gshare_pred == taken);
        }
        self.bimodal.update(pc_key, taken);
        self.gshare.update(gk, taken);
    }

    /// Current (speculative) global history.
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Restore the global history after a squash: the checkpoint taken at
    /// the mispredicted branch, extended with its actual outcome.
    pub fn restore_history(&mut self, history_at_predict: u64, actual_taken: bool) {
        self.history =
            ((history_at_predict << 1) | u64::from(actual_taken)) & self.history_mask;
    }
}

/// Branch target buffer: set-associative, LRU, tagged by PC.
#[derive(Debug, Clone)]
pub struct Btb {
    ways: usize,
    sets: usize,
    /// (tag, target, lru) per way per set; `u64::MAX` tag = invalid.
    entries: Vec<(u64, u64, u64)>,
    tick: u64,
}

impl Btb {
    /// Build a BTB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible into power-of-two sets.
    pub fn new(entries: usize, ways: usize) -> Btb {
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "BTB sets must be a power of two");
        Btb {
            ways,
            sets,
            entries: vec![(u64::MAX, 0, 0); entries],
            tick: 0,
        }
    }

    fn set_range(&self, pc: u64) -> std::ops::Range<usize> {
        let set = ((pc >> 2) as usize) & (self.sets - 1);
        set * self.ways..(set + 1) * self.ways
    }

    /// Predicted target for the control instruction at `pc`, if present.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.tick += 1;
        let tag = pc >> 2;
        let range = self.set_range(pc);
        let tick = self.tick;
        for e in &mut self.entries[range] {
            if e.0 == tag {
                e.2 = tick;
                return Some(e.1);
            }
        }
        None
    }

    /// Install or refresh the target of the control instruction at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let tag = pc >> 2;
        let range = self.set_range(pc);
        let tick = self.tick;
        let set = &mut self.entries[range];
        if let Some(e) = set.iter_mut().find(|e| e.0 == tag) {
            e.1 = target;
            e.2 = tick;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| e.2)
            .expect("BTB set is non-empty");
        *victim = (tag, target, tick);
    }
}

/// Return-address stack with a fixed depth; pushes wrap around (oldest
/// entries are overwritten), as in hardware.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    stack: Vec<u64>,
    top: usize,
    depth: usize,
}

impl ReturnAddressStack {
    /// Build a RAS of `depth` entries.
    pub fn new(depth: usize) -> ReturnAddressStack {
        assert!(depth > 0);
        ReturnAddressStack {
            stack: vec![0; depth],
            top: 0,
            depth,
        }
    }

    /// Push a return address (on a call).
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % self.depth;
        self.stack[self.top] = addr;
    }

    /// Pop the predicted return address (on a return).
    pub fn pop(&mut self) -> u64 {
        let v = self.stack[self.top];
        self.top = (self.top + self.depth - 1) % self.depth;
        v
    }

    /// Snapshot for squash recovery.
    pub fn snapshot(&self) -> (usize, Vec<u64>) {
        (self.top, self.stack.clone())
    }

    /// Restore a snapshot taken by [`ReturnAddressStack::snapshot`].
    pub fn restore(&mut self, snap: (usize, Vec<u64>)) {
        self.top = snap.0;
        self.stack = snap.1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_biased_branch() {
        let mut p = CombinedPredictor::new(&BranchConfig::default());
        let pc = 0x40_0000;
        let mut correct = 0;
        for _ in 0..100 {
            let (pred, h) = p.predict(pc);
            if pred {
                correct += 1;
            }
            p.update(pc, true, h);
        }
        assert!(correct > 90, "always-taken branch should be learned: {correct}");
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut p = CombinedPredictor::new(&BranchConfig::default());
        let pc = 0x40_0040;
        let mut correct = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let (pred, h) = p.predict(pc);
            if pred == taken {
                correct += 1;
            } else {
                // Model the pipeline's squash recovery: history is restored
                // to the checkpoint extended with the actual outcome.
                p.restore_history(h, taken);
            }
            p.update(pc, taken, h);
        }
        // Bimodal alone would get ~50%; gshare captures the pattern.
        assert!(correct > 300, "alternating branch should be learned: {correct}");
    }

    #[test]
    fn history_restore_round_trips() {
        let mut p = CombinedPredictor::new(&BranchConfig::default());
        let (_, h0) = p.predict(0x1000);
        let wrong_path_history = p.history();
        let _ = p.predict(0x2000); // wrong-path prediction pollutes history
        assert_ne!(p.history(), wrong_path_history << 1 | 99); // arbitrary
        p.restore_history(h0, true);
        assert_eq!(p.history() & 1, 1);
    }

    #[test]
    fn btb_hits_after_update_and_evicts_lru() {
        let mut btb = Btb::new(8, 2); // 4 sets x 2 ways
        assert_eq!(btb.lookup(0x100), None);
        btb.update(0x100, 0x500);
        assert_eq!(btb.lookup(0x100), Some(0x500));
        // Two more entries mapping to the same set (stride = sets*4 = 16).
        btb.update(0x110, 0x501);
        // Refresh 0x100 so 0x110 becomes the LRU way.
        assert_eq!(btb.lookup(0x100), Some(0x500));
        btb.update(0x120, 0x502);
        assert_eq!(btb.lookup(0x110), None, "LRU way was evicted");
        assert_eq!(btb.lookup(0x100), Some(0x500));
        assert_eq!(btb.lookup(0x120), Some(0x502));
    }

    #[test]
    fn ras_predicts_nested_returns() {
        let mut ras = ReturnAddressStack::new(16);
        ras.push(0x100);
        ras.push(0x200);
        assert_eq!(ras.pop(), 0x200);
        assert_eq!(ras.pop(), 0x100);
    }

    #[test]
    fn ras_snapshot_restores_across_wrong_path() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(0xA);
        let snap = ras.snapshot();
        ras.push(0xB); // wrong-path call
        ras.pop();
        ras.pop();
        ras.restore(snap);
        assert_eq!(ras.pop(), 0xA);
    }

    #[test]
    fn ras_overflow_wraps() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.pop(), 3);
        assert_eq!(ras.pop(), 2);
        assert_eq!(ras.pop(), 3, "wrapped stack re-reads overwritten slot");
    }
}

//! # mos-uarch
//!
//! Microarchitectural substrates for the `mopsched` pipeline, configured to
//! Table 1 of the paper:
//!
//! * [`branch`] — combined bimodal (4k) / gshare (4k) predictor with a 4k
//!   selector, a 1k-entry 4-way BTB and a 16-entry return-address stack;
//! * [`cache`] — set-associative LRU caches (16KB 2-way IL1, 16KB 4-way
//!   DL1, 256KB 4-way unified L2, 100-cycle memory) assembled into a
//!   [`cache::MemoryHierarchy`].
//!
//! Both are standalone and unit-tested; the timing simulator in `mos-sim`
//! composes them.

#![warn(missing_docs)]

pub mod branch;
pub mod cache;

//! Set-associative LRU caches and the two-level memory hierarchy of
//! Table 1: 16KB 2-way 64B-line IL1 (2 cycles), 16KB 4-way 64B-line DL1
//! (2 cycles), 256KB 4-way 128B-line unified L2 (8 cycles), 100-cycle
//! main memory.


/// Geometry and latency of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// 16KB 2-way 64B-line, 2-cycle IL1 (Table 1).
    pub fn il1() -> CacheConfig {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency: 2,
        }
    }

    /// 16KB 4-way 64B-line, 2-cycle DL1 (Table 1).
    pub fn dl1() -> CacheConfig {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
            hit_latency: 2,
        }
    }

    /// 256KB 4-way 128B-line, 8-cycle unified L2 (Table 1).
    pub fn l2() -> CacheConfig {
        CacheConfig {
            size_bytes: 256 * 1024,
            ways: 4,
            line_bytes: 128,
            hit_latency: 8,
        }
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Whether the line was present.
    pub hit: bool,
    /// Line-aligned address of a line evicted by the fill (misses only).
    pub evicted: Option<u64>,
}

/// A set-associative cache with true-LRU replacement.
///
/// The cache tracks presence only (no data); the functional value stream
/// comes from the oracle trace. [`Cache::access`] fills on miss and
/// reports the evicted line so callers can invalidate side structures —
/// which is exactly what the MOP pointer store needs when an I-cache line
/// (and the pointers riding on it) is replaced.
///
/// ```
/// use mos_uarch::cache::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::dl1());
/// assert!(!c.access(0x1000).hit);
/// assert!(c.access(0x1008).hit); // same 64B line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    /// (line address, lru tick) per way; `u64::MAX` = invalid.
    lines: Vec<(u64, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache.
    ///
    /// # Panics
    ///
    /// Panics unless line size and the resulting set count are powers of
    /// two and the geometry divides evenly.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.line_bytes.is_power_of_two());
        let sets = config.size_bytes / (config.ways * config.line_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets,
            lines: vec![(u64::MAX, 0); sets * config.ways],
            config,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Geometry of this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_bytes as u64 - 1)
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = ((line / self.config.line_bytes as u64) as usize) & (self.sets - 1);
        set * self.config.ways..(set + 1) * self.config.ways
    }

    /// Access the line containing `addr`, filling it on a miss.
    pub fn access(&mut self, addr: u64) -> Access {
        self.tick += 1;
        let line = self.line_addr(addr);
        let tick = self.tick;
        let range = self.set_range(line);
        let set = &mut self.lines[range];
        if let Some(e) = set.iter_mut().find(|e| e.0 == line) {
            e.1 = tick;
            self.hits += 1;
            return Access {
                hit: true,
                evicted: None,
            };
        }
        self.misses += 1;
        let victim = set.iter_mut().min_by_key(|e| e.1).expect("non-empty set");
        let evicted = (victim.0 != u64::MAX).then_some(victim.0);
        *victim = (line, tick);
        Access {
            hit: false,
            evicted,
        }
    }

    /// Probe without filling or touching LRU state.
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        self.lines[self.set_range(line)].iter().any(|e| e.0 == line)
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Latency outcome of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Total latency in cycles, including the L1 hit latency.
    pub latency: u32,
    /// True if the access hit in the L1.
    pub l1_hit: bool,
    /// Line evicted from the L1, if the fill displaced one.
    pub l1_evicted: Option<u64>,
}

/// Two-level hierarchy: a private L1 in front of a unified L2 and a flat
/// main-memory latency.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1: Cache,
    l2: Cache,
    memory_latency: u32,
}

impl MemoryHierarchy {
    /// Compose an L1 and L2 with a main-memory latency (Table 1: 100).
    pub fn new(l1: Cache, l2: Cache, memory_latency: u32) -> MemoryHierarchy {
        MemoryHierarchy {
            l1,
            l2,
            memory_latency,
        }
    }

    /// Table 1 data side: DL1 + L2 + 100-cycle memory.
    pub fn data_side() -> MemoryHierarchy {
        MemoryHierarchy::new(Cache::new(CacheConfig::dl1()), Cache::new(CacheConfig::l2()), 100)
    }

    /// Table 1 instruction side: IL1 + L2 + 100-cycle memory.
    ///
    /// (The paper's L2 is unified; `mos-sim` routes instruction and data
    /// misses through one shared L2 instance instead of this convenience.)
    pub fn inst_side() -> MemoryHierarchy {
        MemoryHierarchy::new(Cache::new(CacheConfig::il1()), Cache::new(CacheConfig::l2()), 100)
    }

    /// Access `addr`, filling all levels on the way down.
    pub fn access(&mut self, addr: u64) -> MemAccess {
        let l1 = self.l1.access(addr);
        if l1.hit {
            return MemAccess {
                latency: self.l1.config().hit_latency,
                l1_hit: true,
                l1_evicted: None,
            };
        }
        let l2 = self.l2.access(addr);
        let latency = self.l1.config().hit_latency
            + self.l2.config().hit_latency
            + if l2.hit { 0 } else { self.memory_latency };
        MemAccess {
            latency,
            l1_hit: false,
            l1_evicted: l1.evicted,
        }
    }

    /// The L1 level.
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 level.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            hit_latency: 2,
        })
    }

    #[test]
    fn same_line_hits() {
        let mut c = tiny();
        assert!(!c.access(0x0).hit);
        assert!(c.access(0x3f).hit);
        assert!(!c.access(0x40).hit, "next line is separate");
    }

    #[test]
    fn lru_eviction_reports_victim() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = sets * line = 256).
        c.access(0x000);
        c.access(0x100);
        let a = c.access(0x200);
        assert_eq!(a.evicted, Some(0x000), "LRU way is the victim");
        assert!(!c.access(0x000).hit);
        assert!(c.access(0x200).hit);
    }

    #[test]
    fn probe_does_not_fill() {
        let mut c = tiny();
        assert!(!c.probe(0x80));
        c.access(0x80);
        assert!(c.probe(0x80));
        let (h, m) = c.stats();
        assert_eq!((h, m), (0, 1), "probe must not count");
    }

    #[test]
    fn working_set_behaviour() {
        let mut c = Cache::new(CacheConfig::dl1());
        // Fits: 16KB working set re-accessed → ~all hits second pass.
        for addr in (0..16 * 1024u64).step_by(64) {
            c.access(addr);
        }
        let (_, misses_cold) = c.stats();
        for addr in (0..16 * 1024u64).step_by(64) {
            assert!(c.access(addr).hit);
        }
        assert_eq!(misses_cold, 256);
    }

    #[test]
    fn hierarchy_latencies() {
        let mut m = MemoryHierarchy::data_side();
        let first = m.access(0x4000);
        assert!(!first.l1_hit);
        assert_eq!(first.latency, 2 + 8 + 100, "cold miss goes to memory");
        let second = m.access(0x4000);
        assert!(second.l1_hit);
        assert_eq!(second.latency, 2);
    }

    #[test]
    fn l2_catches_l1_victims() {
        let mut m = MemoryHierarchy::data_side();
        // Walk far past DL1 capacity but within L2 capacity.
        for addr in (0..64 * 1024u64).step_by(64) {
            m.access(addr);
        }
        // 0x0 long since evicted from DL1 but resident in L2.
        let a = m.access(0x0);
        assert!(!a.l1_hit);
        assert_eq!(a.latency, 2 + 8);
    }
}

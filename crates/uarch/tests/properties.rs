//! Property-based tests for the cache and branch-prediction substrates.

use proptest::prelude::*;

use mos_uarch::branch::{BranchConfig, Btb, CombinedPredictor, ReturnAddressStack};
use mos_uarch::cache::{Cache, CacheConfig, MemoryHierarchy};

fn tiny_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 1024,
        ways: 2,
        line_bytes: 64,
        hit_latency: 2,
    })
}

proptest! {
    /// Re-accessing any address immediately after an access always hits.
    #[test]
    fn access_then_access_hits(addrs in prop::collection::vec(0u64..1 << 20, 1..200)) {
        let mut c = tiny_cache();
        for a in addrs {
            c.access(a);
            prop_assert!(c.access(a).hit, "immediate re-access of {a:#x} must hit");
            prop_assert!(c.probe(a), "probe must agree");
        }
    }

    /// Hit + miss counts always equal total accesses, and the number of
    /// distinct resident lines never exceeds capacity.
    #[test]
    fn counters_and_capacity(addrs in prop::collection::vec(0u64..1 << 16, 1..300)) {
        let mut c = tiny_cache();
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for &a in &addrs {
            let r = c.access(a);
            resident.insert(a & !63);
            if let Some(e) = r.evicted {
                resident.remove(&e);
            }
        }
        let (h, m) = c.stats();
        prop_assert_eq!(h + m, addrs.len() as u64);
        prop_assert!(resident.len() <= 1024 / 64, "lines {} > capacity", resident.len());
        // Every tracked-resident line must probe as present.
        for line in resident {
            prop_assert!(c.probe(line), "line {line:#x} lost without an eviction report");
        }
    }

    /// Evictions are only reported on misses, and the evicted line really
    /// leaves the cache.
    #[test]
    fn evictions_are_real(addrs in prop::collection::vec(0u64..1 << 14, 1..300)) {
        let mut c = tiny_cache();
        for a in addrs {
            let r = c.access(a);
            if r.hit {
                prop_assert!(r.evicted.is_none());
            } else if let Some(e) = r.evicted {
                prop_assert!(!c.probe(e), "evicted line {e:#x} still probes");
            }
        }
    }

    /// The hierarchy's latency is always one of the three legal values
    /// and the L1 hit path reports the L1 latency.
    #[test]
    fn hierarchy_latency_domain(addrs in prop::collection::vec(0u64..1 << 22, 1..200)) {
        let mut m = MemoryHierarchy::data_side();
        for a in addrs {
            let r = m.access(a);
            let lat = r.latency;
            prop_assert!(
                lat == 2 || lat == 10 || lat == 110,
                "illegal hierarchy latency {lat}"
            );
            prop_assert_eq!(r.l1_hit, lat == 2);
        }
    }

    /// The BTB never returns a target it was not taught.
    #[test]
    fn btb_returns_only_taught_targets(
        ops in prop::collection::vec((0u64..4096, 0u64..1 << 30, any::<bool>()), 1..200)
    ) {
        let mut btb = Btb::new(64, 4);
        let mut taught: std::collections::HashMap<u64, u64> = Default::default();
        for (pc, target, is_update) in ops {
            let pc = pc << 2;
            if is_update {
                btb.update(pc, target);
                taught.insert(pc, target);
            } else if let Some(t) = btb.lookup(pc) {
                prop_assert_eq!(Some(&t), taught.get(&pc), "BTB invented a target");
            }
        }
    }

    /// RAS pop returns the matching push as long as depth is respected.
    #[test]
    fn ras_is_a_stack_within_depth(depth_ops in prop::collection::vec(0u64..1 << 20, 1..16)) {
        let mut ras = ReturnAddressStack::new(16);
        for (i, &v) in depth_ops.iter().enumerate() {
            ras.push(v + i as u64);
        }
        for (i, &v) in depth_ops.iter().enumerate().rev() {
            prop_assert_eq!(ras.pop(), v + i as u64);
        }
    }

    /// Predictor accuracy on an always-taken branch converges regardless
    /// of the PC, and history restore round-trips.
    #[test]
    fn predictor_converges_on_bias(pc in 0u64..1 << 20) {
        let pc = pc << 2;
        let mut p = CombinedPredictor::new(&BranchConfig::default());
        let mut last_correct = false;
        for _ in 0..32 {
            let (pred, h) = p.predict(pc);
            last_correct = pred;
            if !pred {
                p.restore_history(h, true);
            }
            p.update(pc, true, h);
        }
        prop_assert!(last_correct, "always-taken branch not learned at {pc:#x}");
    }
}

#[test]
fn snapshot_restore_is_exact() {
    let mut ras = ReturnAddressStack::new(8);
    for v in [1u64, 2, 3] {
        ras.push(v);
    }
    let snap = ras.snapshot();
    for v in [9u64, 8, 7, 6, 5, 4, 3, 2, 1] {
        ras.push(v);
    }
    ras.restore(snap);
    assert_eq!(ras.pop(), 3);
    assert_eq!(ras.pop(), 2);
    assert_eq!(ras.pop(), 1);
}

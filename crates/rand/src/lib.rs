//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the rand 0.9 API it actually
//! uses: [`rngs::SmallRng`] (xoshiro256++, the same algorithm rand 0.9
//! uses for its 64-bit `SmallRng`), [`SeedableRng::seed_from_u64`]
//! (SplitMix64 seeding, as upstream), [`Rng::random`] for `f64`/`bool`,
//! and [`Rng::random_range`] over integer ranges (Lemire's widening
//! multiply, bias-free for the range sizes used here).
//!
//! The exact output stream is not bit-identical to crates.io rand —
//! callers in this workspace only rely on determinism for a fixed seed
//! and on sound uniform distributions, both of which hold.

use std::ops::{Bound, RangeBounds};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits into [0, 1), matching upstream's Standard f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Lossless widening to the sampling domain.
    fn to_i128(self) -> i128;
    /// Narrowing back after sampling (the value is in range by construction).
    fn from_i128(v: i128) -> Self;
    /// Largest representable value, for unbounded upper ends.
    const MAX: Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_i128(self) -> i128 { self as i128 }
            #[inline]
            fn from_i128(v: i128) -> Self { v as $t }
            const MAX: Self = <$t>::MAX;
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value uniformly over `T`'s domain.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from an integer range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T: UniformInt, B: RangeBounds<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v.to_i128(),
            Bound::Excluded(&v) => v.to_i128() + 1,
            Bound::Unbounded => panic!("random_range requires a lower bound"),
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v.to_i128(),
            Bound::Excluded(&v) => v.to_i128() - 1,
            Bound::Unbounded => T::MAX.to_i128(),
        };
        assert!(lo <= hi, "cannot sample from empty range");
        let span = (hi - lo + 1) as u128;
        if span == 0 || span > u64::MAX as u128 {
            // Full 64-bit domain: a raw word is already uniform.
            return T::from_i128(lo + self.next_u64() as i128);
        }
        // Lemire's widening-multiply method with rejection of the biased
        // low zone; the loop terminates with overwhelming probability.
        let span = span as u64;
        let zone = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= zone {
                return T::from_i128(lo + (m >> 64) as i128);
            }
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind rand 0.9's 64-bit `SmallRng`.
    /// Fast, small-state, and statistically strong for simulation use;
    /// not cryptographically secure (neither is upstream `SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = rng.random_range(0..3u64);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let v = rng.random_range(2..=4u32);
            assert!((2..=4).contains(&v));
            let w: i64 = rng.random_range(1..64);
            assert!((1..64).contains(&w));
            let u = rng.random_range(0..5usize);
            assert!(u < 5);
        }
    }
}

//! RV32 machine-code codec: encode an [`RvProgram`] to a flat
//! little-endian binary and decode such a binary back into instructions.
//! This is the loader path for running pre-assembled RISC-V images through
//! the pipeline; [`decode_word`]/[`encode_word`] round-trip exactly for
//! every instruction the frontend supports.

use std::fmt;

use crate::inst::{RvInst, RvOp, RvProgram};

/// Decode failure: the word and its index in the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RvDecodeError {
    /// Word index within the binary image.
    pub idx: usize,
    /// The raw 32-bit word.
    pub word: u32,
    what: &'static str,
}

impl fmt::Display for RvDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "word {} ({:#010x}): {}",
            self.idx, self.word, self.what
        )
    }
}

impl std::error::Error for RvDecodeError {}

const OP_LUI: u32 = 0b011_0111;
const OP_AUIPC: u32 = 0b001_0111;
const OP_JAL: u32 = 0b110_1111;
const OP_JALR: u32 = 0b110_0111;
const OP_BRANCH: u32 = 0b110_0011;
const OP_LOAD: u32 = 0b000_0011;
const OP_STORE: u32 = 0b010_0011;
const OP_IMM: u32 = 0b001_0011;
const OP_REG: u32 = 0b011_0011;
const OP_FENCE: u32 = 0b000_1111;
const OP_SYSTEM: u32 = 0b111_0011;

fn funct3(op: RvOp) -> u32 {
    use RvOp::*;
    match op {
        Beq | Lb | Sb | Addi | Add | Sub | Mul | Jalr | Fence | Ecall | Ebreak | Lui | Auipc
        | Jal => 0,
        Bne | Lh | Sh | Slli | Sll | Mulh => 1,
        Lw | Sw | Slt | Slti | Mulhsu => 2,
        Sltiu | Sltu | Mulhu => 3,
        Blt | Lbu | Xori | Xor | Div => 4,
        Bge | Lhu | Srli | Srai | Srl | Sra | Divu => 5,
        Bltu | Ori | Or | Rem => 6,
        Bgeu | Andi | And | Remu => 7,
    }
}

/// Encode one instruction to its 32-bit RV32 word.
pub fn encode_word(inst: &RvInst) -> u32 {
    use RvOp::*;
    let rd = u32::from(inst.rd) << 7;
    let rs1 = u32::from(inst.rs1) << 15;
    let rs2 = u32::from(inst.rs2) << 20;
    let f3 = funct3(inst.op) << 12;
    let imm = inst.imm as u32;
    match inst.op {
        Lui => (imm & 0xf_ffff) << 12 | rd | OP_LUI,
        Auipc => (imm & 0xf_ffff) << 12 | rd | OP_AUIPC,
        Jal => {
            let i = imm;
            let enc = (i >> 20 & 1) << 31
                | (i >> 1 & 0x3ff) << 21
                | (i >> 11 & 1) << 20
                | (i >> 12 & 0xff) << 12;
            enc | rd | OP_JAL
        }
        Jalr => (imm & 0xfff) << 20 | rs1 | f3 | rd | OP_JALR,
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            let i = imm;
            (i >> 12 & 1) << 31
                | (i >> 5 & 0x3f) << 25
                | rs2
                | rs1
                | f3
                | (i >> 1 & 0xf) << 8
                | (i >> 11 & 1) << 7
                | OP_BRANCH
        }
        Lb | Lh | Lw | Lbu | Lhu => (imm & 0xfff) << 20 | rs1 | f3 | rd | OP_LOAD,
        Sb | Sh | Sw => {
            (imm >> 5 & 0x7f) << 25 | rs2 | rs1 | f3 | (imm & 0x1f) << 7 | OP_STORE
        }
        Addi | Slti | Sltiu | Xori | Ori | Andi => (imm & 0xfff) << 20 | rs1 | f3 | rd | OP_IMM,
        Slli => (imm & 0x1f) << 20 | rs1 | f3 | rd | OP_IMM,
        Srli => (imm & 0x1f) << 20 | rs1 | f3 | rd | OP_IMM,
        Srai => 0x4000_0000 | (imm & 0x1f) << 20 | rs1 | f3 | rd | OP_IMM,
        Add | Sll | Slt | Sltu | Xor | Srl | Or | And => rs2 | rs1 | f3 | rd | OP_REG,
        Sub | Sra => 0x4000_0000 | rs2 | rs1 | f3 | rd | OP_REG,
        Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu => {
            0x0200_0000 | rs2 | rs1 | f3 | rd | OP_REG
        }
        Fence => f3 | OP_FENCE,
        Ecall => OP_SYSTEM,
        Ebreak => 1 << 20 | OP_SYSTEM,
    }
}

fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

/// Decode one 32-bit RV32 word. `idx` is only used for error reporting.
///
/// # Errors
///
/// Returns [`RvDecodeError`] for opcodes/functs outside the supported
/// RV32I+M subset.
pub fn decode_word(word: u32, idx: usize) -> Result<RvInst, RvDecodeError> {
    use RvOp::*;
    let err = |what: &'static str| RvDecodeError { idx, word, what };
    let opcode = word & 0x7f;
    let rd = (word >> 7 & 0x1f) as u8;
    let f3 = word >> 12 & 7;
    let rs1 = (word >> 15 & 0x1f) as u8;
    let rs2 = (word >> 20 & 0x1f) as u8;
    let f7 = word >> 25;
    let i_imm = sext(word >> 20, 12);
    Ok(match opcode {
        OP_LUI => RvInst::u(Lui, rd, (word >> 12) as i32),
        OP_AUIPC => RvInst::u(Auipc, rd, (word >> 12) as i32),
        OP_JAL => {
            let imm = (word >> 31 & 1) << 20
                | (word >> 12 & 0xff) << 12
                | (word >> 20 & 1) << 11
                | (word >> 21 & 0x3ff) << 1;
            RvInst::jal(rd, sext(imm, 21))
        }
        OP_JALR if f3 == 0 => RvInst::i(Jalr, rd, rs1, i_imm),
        OP_BRANCH => {
            let op = match f3 {
                0 => Beq,
                1 => Bne,
                4 => Blt,
                5 => Bge,
                6 => Bltu,
                7 => Bgeu,
                _ => return Err(err("bad branch funct3")),
            };
            let imm = (word >> 31 & 1) << 12
                | (word >> 7 & 1) << 11
                | (word >> 25 & 0x3f) << 5
                | (word >> 8 & 0xf) << 1;
            RvInst::branch(op, rs1, rs2, sext(imm, 13))
        }
        OP_LOAD => {
            let op = match f3 {
                0 => Lb,
                1 => Lh,
                2 => Lw,
                4 => Lbu,
                5 => Lhu,
                _ => return Err(err("bad load funct3")),
            };
            RvInst::load(op, rd, i_imm, rs1)
        }
        OP_STORE => {
            let op = match f3 {
                0 => Sb,
                1 => Sh,
                2 => Sw,
                _ => return Err(err("bad store funct3")),
            };
            let imm = (word >> 25) << 5 | (word >> 7 & 0x1f);
            RvInst::store(op, rs2, sext(imm, 12), rs1)
        }
        OP_IMM => match f3 {
            0 => RvInst::i(Addi, rd, rs1, i_imm),
            2 => RvInst::i(Slti, rd, rs1, i_imm),
            3 => RvInst::i(Sltiu, rd, rs1, i_imm),
            4 => RvInst::i(Xori, rd, rs1, i_imm),
            6 => RvInst::i(Ori, rd, rs1, i_imm),
            7 => RvInst::i(Andi, rd, rs1, i_imm),
            1 if f7 == 0 => RvInst::i(Slli, rd, rs1, i32::from(rs2)),
            5 if f7 == 0 => RvInst::i(Srli, rd, rs1, i32::from(rs2)),
            5 if f7 == 0b010_0000 => RvInst::i(Srai, rd, rs1, i32::from(rs2)),
            _ => return Err(err("bad op-imm funct")),
        },
        OP_REG => {
            let op = match (f7, f3) {
                (0, 0) => Add,
                (0b010_0000, 0) => Sub,
                (0, 1) => Sll,
                (0, 2) => Slt,
                (0, 3) => Sltu,
                (0, 4) => Xor,
                (0, 5) => Srl,
                (0b010_0000, 5) => Sra,
                (0, 6) => Or,
                (0, 7) => And,
                (1, 0) => Mul,
                (1, 1) => Mulh,
                (1, 2) => Mulhsu,
                (1, 3) => Mulhu,
                (1, 4) => Div,
                (1, 5) => Divu,
                (1, 6) => Rem,
                (1, 7) => Remu,
                _ => return Err(err("bad op-reg funct")),
            };
            RvInst::r(op, rd, rs1, rs2)
        }
        OP_FENCE => RvInst::sys(Fence),
        OP_SYSTEM if word >> 7 == 0 => RvInst::sys(Ecall),
        OP_SYSTEM if word >> 7 == 1 << 13 => RvInst::sys(Ebreak),
        _ => return Err(err("unsupported opcode")),
    })
}

/// Encode a whole program to a little-endian flat binary (code only; the
/// data image and entry are not representable in a flat code stream).
pub fn encode_program(prog: &RvProgram) -> Vec<u8> {
    let mut out = Vec::with_capacity(prog.len() * 4);
    for inst in &prog.insts {
        out.extend_from_slice(&encode_word(inst).to_le_bytes());
    }
    out
}

/// Decode a little-endian flat binary into an [`RvProgram`] with entry 0.
///
/// # Errors
///
/// Returns [`RvDecodeError`] for a trailing partial word or any word
/// outside the supported RV32I+M subset.
pub fn decode_flat(name: &str, bytes: &[u8]) -> Result<RvProgram, RvDecodeError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(RvDecodeError {
            idx: bytes.len() / 4,
            word: 0,
            what: "image length is not a multiple of 4",
        });
    }
    let mut prog = RvProgram::new(name);
    for (idx, chunk) in bytes.chunks_exact(4).enumerate() {
        let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        prog.insts.push(decode_word(word, idx)?);
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn known_golden_words() {
        // Cross-checked against the RISC-V spec encodings.
        assert_eq!(encode_word(&RvInst::i(RvOp::Addi, 0, 0, 0)), 0x0000_0013); // nop
        assert_eq!(encode_word(&RvInst::sys(RvOp::Ecall)), 0x0000_0073);
        assert_eq!(encode_word(&RvInst::sys(RvOp::Ebreak)), 0x0010_0073);
        // add a0, a1, a2 = 0x00c58533
        assert_eq!(encode_word(&RvInst::r(RvOp::Add, 10, 11, 12)), 0x00c5_8533);
        // lw t0, 8(sp) = 0x00812283
        assert_eq!(encode_word(&RvInst::load(RvOp::Lw, 5, 8, 2)), 0x0081_2283);
        // jalr x0, 0(ra) (ret) = 0x00008067
        assert_eq!(encode_word(&RvInst::i(RvOp::Jalr, 0, 1, 0)), 0x0000_8067);
    }

    #[test]
    fn every_shape_round_trips() {
        let mut cases = vec![
            RvInst::u(RvOp::Lui, 7, 0xf_ffff),
            RvInst::u(RvOp::Auipc, 1, 1),
            RvInst::jal(1, -2048),
            RvInst::jal(0, 0x0f_fffe),
            RvInst::i(RvOp::Jalr, 3, 4, -5),
            RvInst::sys(RvOp::Fence),
            RvInst::sys(RvOp::Ecall),
            RvInst::sys(RvOp::Ebreak),
        ];
        for op in [RvOp::Beq, RvOp::Bne, RvOp::Blt, RvOp::Bge, RvOp::Bltu, RvOp::Bgeu] {
            cases.push(RvInst::branch(op, 5, 6, -4096));
            cases.push(RvInst::branch(op, 31, 0, 4094));
        }
        for op in [RvOp::Lb, RvOp::Lh, RvOp::Lw, RvOp::Lbu, RvOp::Lhu] {
            cases.push(RvInst::load(op, 9, -2048, 10));
        }
        for op in [RvOp::Sb, RvOp::Sh, RvOp::Sw] {
            cases.push(RvInst::store(op, 11, 2047, 12));
        }
        for op in [RvOp::Addi, RvOp::Slti, RvOp::Sltiu, RvOp::Xori, RvOp::Ori, RvOp::Andi] {
            cases.push(RvInst::i(op, 13, 14, -1));
        }
        for op in [RvOp::Slli, RvOp::Srli, RvOp::Srai] {
            cases.push(RvInst::i(op, 15, 16, 31));
        }
        for op in [
            RvOp::Add, RvOp::Sub, RvOp::Sll, RvOp::Slt, RvOp::Sltu, RvOp::Xor, RvOp::Srl,
            RvOp::Sra, RvOp::Or, RvOp::And, RvOp::Mul, RvOp::Mulh, RvOp::Mulhsu, RvOp::Mulhu,
            RvOp::Div, RvOp::Divu, RvOp::Rem, RvOp::Remu,
        ] {
            cases.push(RvInst::r(op, 17, 18, 19));
        }
        for inst in cases {
            let word = encode_word(&inst);
            let back = decode_word(word, 0).unwrap_or_else(|e| panic!("{inst}: {e}"));
            assert_eq!(back, inst, "word {word:#010x}");
        }
    }

    #[test]
    fn program_round_trips_through_flat_binary() {
        let p = assemble(
            "t",
            "_start:\nli t0, 100\nli a0, 0\nloop:\nadd a0, a0, t0\naddi t0, t0, -1\nbnez t0, loop\nebreak",
        )
        .unwrap();
        let bytes = encode_program(&p);
        let back = decode_flat("t", &bytes).unwrap();
        assert_eq!(back.insts, p.insts);
    }

    #[test]
    fn bad_words_are_rejected() {
        assert!(decode_word(0xffff_ffff, 3).is_err());
        assert!(decode_flat("t", &[0x13, 0x00, 0x00]).is_err());
        let err = decode_word(0x0000_0000, 7).unwrap_err();
        assert_eq!(err.idx, 7);
    }
}

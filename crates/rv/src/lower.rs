//! Lowering from RV32 instructions to the custom uop ISA consumed by the
//! timing simulator.
//!
//! Most RV32I instructions lower 1:1 (the custom ISA was designed as an
//! Alpha-like superset of exactly this shape); the exceptions are the two
//! link-register jumps `jal rd` / `jalr rd` with a non-standard `rd`,
//! which expand to a `li rd, pc+4` uop followed by the jump — so a *bundle*
//! of uops per RV instruction, tracked by [`Lowered::bundle`].
//!
//! ## Register map
//!
//! RV32's 31 writable registers map injectively onto the custom ISA's 31
//! writable integer registers, preserving the three special roles:
//! `x0 → r31` (hard-wired zero), `x1/ra → r26` (the return-address register
//! the custom `call`/`ret` pair uses, so the RAS predicts RV calls), and
//! `x2/sp → r30`. The remaining registers pack in order: `x3..x28 →
//! r0..r25`, `x29..x31 → r27..r29`.

use std::fmt;

use mos_isa::{Opcode, Program, Reg, StaticInst};

use crate::inst::{RvInst, RvOp, RvProgram};

/// Map an RV32 integer register onto the custom ISA's integer file.
///
/// # Panics
///
/// Panics if `x >= 32`.
pub fn map_reg(x: u8) -> Reg {
    match x {
        0 => Reg::ZERO,
        1 => Reg::RA,
        2 => Reg::SP,
        3..=28 => Reg::int(x - 3),
        29..=31 => Reg::int(x - 2),
        _ => panic!("RV register x{x} out of range"),
    }
}

/// Error produced by [`lower`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A branch or `jal` target is misaligned or outside the program.
    BadTarget {
        /// RV instruction index of the transfer.
        idx: u32,
        /// The byte offset it encodes.
        offset: i32,
    },
    /// The program has no instructions.
    Empty,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::BadTarget { idx, offset } => {
                write!(f, "rv inst {idx}: branch offset {offset} leaves the program")
            }
            LowerError::Empty => write!(f, "rv program is empty"),
        }
    }
}

impl std::error::Error for LowerError {}

/// An RV32 program lowered to the custom uop ISA, with the maps needed to
/// translate between the two index spaces.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The lowered uop program (what the simulator fetches and schedules).
    pub program: Program,
    /// `start[i]` = first uop index of RV instruction `i`;
    /// `start[len]` = total uop count.
    start: Vec<u32>,
    /// Uop index → RV instruction index.
    rv_of: Vec<u32>,
}

impl Lowered {
    /// Uop index range occupied by RV instruction `idx`.
    pub fn bundle(&self, idx: u32) -> std::ops::Range<u32> {
        self.start[idx as usize]..self.start[idx as usize + 1]
    }

    /// First uop index of RV instruction `idx`. `idx` may be one past the
    /// last instruction, yielding the total uop count.
    pub fn start_of(&self, idx: u32) -> u32 {
        self.start[idx as usize]
    }

    /// RV instruction index owning uop `uop_idx`.
    pub fn rv_of(&self, uop_idx: u32) -> u32 {
        self.rv_of[uop_idx as usize]
    }

    /// Total number of uops.
    pub fn uops(&self) -> usize {
        self.rv_of.len()
    }
}

/// Number of uops instruction `inst` lowers to.
fn bundle_len(inst: &RvInst) -> u32 {
    match inst.op {
        RvOp::Jal if inst.rd > 1 => 2,
        RvOp::Jalr if inst.rd != 0 => 2,
        _ => 1,
    }
}

/// Branch/`jal` target as an RV instruction index.
fn target_idx(prog: &RvProgram, idx: u32, offset: i32) -> Result<u32, LowerError> {
    let bad = || LowerError::BadTarget { idx, offset };
    if offset % 4 != 0 {
        return Err(bad());
    }
    let t = i64::from(idx) + i64::from(offset / 4);
    if t < 0 || t >= prog.len() as i64 {
        return Err(bad());
    }
    Ok(t as u32)
}

/// Lower an RV32 program to the custom uop ISA.
///
/// # Errors
///
/// Returns [`LowerError`] when the program is empty or a static transfer
/// target leaves the code image.
pub fn lower(rv: &RvProgram) -> Result<Lowered, LowerError> {
    use RvOp::*;
    if rv.is_empty() {
        return Err(LowerError::Empty);
    }
    // Pass 1: bundle start offsets, so pass 2 can aim branches at the
    // lowered index of their RV target.
    let mut start = Vec::with_capacity(rv.len() + 1);
    let mut total = 0u32;
    for inst in &rv.insts {
        start.push(total);
        total += bundle_len(inst);
    }
    start.push(total);

    let mut program = Program::new(rv.name.clone());
    let mut rv_of = Vec::with_capacity(total as usize);
    for (idx, inst) in rv.insts.iter().enumerate() {
        let idx = idx as u32;
        let pc4 = i64::from(rv.pc_of(idx).wrapping_add(4));
        let (rd, rs1, rs2) = (map_reg(inst.rd), map_reg(inst.rs1), map_reg(inst.rs2));
        let imm = i64::from(inst.imm);
        let mut emit = |i: StaticInst| {
            program.push(i);
            rv_of.push(idx);
        };
        match inst.op {
            Lui => emit(StaticInst::li(rd, i64::from((inst.imm as u32) << 12))),
            Auipc => {
                let v = rv.pc_of(idx).wrapping_add((inst.imm as u32) << 12);
                emit(StaticInst::li(rd, i64::from(v)));
            }
            Add => emit(StaticInst::alu(Opcode::Add, rd, rs1, rs2)),
            Sub => emit(StaticInst::alu(Opcode::Sub, rd, rs1, rs2)),
            Sll => emit(StaticInst::alu(Opcode::Sll, rd, rs1, rs2)),
            Slt => emit(StaticInst::alu(Opcode::Slt, rd, rs1, rs2)),
            Sltu => emit(StaticInst::alu(Opcode::Sltu, rd, rs1, rs2)),
            Xor => emit(StaticInst::alu(Opcode::Xor, rd, rs1, rs2)),
            Srl => emit(StaticInst::alu(Opcode::Srl, rd, rs1, rs2)),
            Sra => emit(StaticInst::alu(Opcode::Sra, rd, rs1, rs2)),
            Or => emit(StaticInst::alu(Opcode::Or, rd, rs1, rs2)),
            And => emit(StaticInst::alu(Opcode::And, rd, rs1, rs2)),
            Mul | Mulh | Mulhsu | Mulhu => emit(StaticInst::alu(Opcode::Mul, rd, rs1, rs2)),
            Div | Divu | Rem | Remu => emit(StaticInst::alu(Opcode::Div, rd, rs1, rs2)),
            Addi => emit(StaticInst::alui(Opcode::Addi, rd, rs1, imm)),
            Slti => emit(StaticInst::alui(Opcode::Slti, rd, rs1, imm)),
            Sltiu => emit(StaticInst::alui(Opcode::Sltiu, rd, rs1, imm)),
            Xori => emit(StaticInst::alui(Opcode::Xori, rd, rs1, imm)),
            Ori => emit(StaticInst::alui(Opcode::Ori, rd, rs1, imm)),
            Andi => emit(StaticInst::alui(Opcode::Andi, rd, rs1, imm)),
            Slli => emit(StaticInst::alui(Opcode::Slli, rd, rs1, imm)),
            Srli => emit(StaticInst::alui(Opcode::Srli, rd, rs1, imm)),
            Srai => emit(StaticInst::alui(Opcode::Srai, rd, rs1, imm)),
            Lb | Lh | Lw | Lbu | Lhu => emit(StaticInst::load(rd, imm, rs1)),
            Sb | Sh | Sw => emit(StaticInst::store(rs2, imm, rs1)),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let t = start[target_idx(rv, idx, inst.imm)? as usize];
                // Compare-to-zero forms keep a single dependence, matching
                // what a native compare-to-zero ISA decoder would produce.
                let i = match (inst.op, inst.rs1, inst.rs2) {
                    (Beq, _, 0) => StaticInst::branch(Opcode::Beqz, rs1, t),
                    (Beq, 0, _) => StaticInst::branch(Opcode::Beqz, rs2, t),
                    (Bne, _, 0) => StaticInst::branch(Opcode::Bnez, rs1, t),
                    (Bne, 0, _) => StaticInst::branch(Opcode::Bnez, rs2, t),
                    (Blt, _, 0) => StaticInst::branch(Opcode::Bltz, rs1, t),
                    (Bge, _, 0) => StaticInst::branch(Opcode::Bgez, rs1, t),
                    (Beq, ..) => StaticInst::branch2(Opcode::Beq, rs1, rs2, t),
                    (Bne, ..) => StaticInst::branch2(Opcode::Bne, rs1, rs2, t),
                    (Blt, ..) => StaticInst::branch2(Opcode::Blt, rs1, rs2, t),
                    (Bge, ..) => StaticInst::branch2(Opcode::Bge, rs1, rs2, t),
                    (Bltu, ..) => StaticInst::branch2(Opcode::Bltu, rs1, rs2, t),
                    _ => StaticInst::branch2(Opcode::Bgeu, rs1, rs2, t),
                };
                emit(i);
            }
            Jal => {
                let t = start[target_idx(rv, idx, inst.imm)? as usize];
                match inst.rd {
                    0 => emit(StaticInst::jmp(t)),
                    // `jal ra` is a plain call: the custom Call writes the
                    // mapped ra (r26) and pushes the RAS.
                    1 => emit(StaticInst::call(t)),
                    _ => {
                        emit(StaticInst::li(rd, pc4));
                        emit(StaticInst::jmp(t));
                    }
                }
            }
            Jalr => match (inst.rd, inst.rs1, inst.imm) {
                // `ret`: pops the RAS.
                (0, 1, 0) => emit(StaticInst::ret()),
                (0, ..) => emit(StaticInst::jr(rs1)),
                _ => {
                    // Link then jump. When rd == rs1 the jump reads the
                    // *new* value — a false dependence the RV interpreter
                    // never sees (it resolves targets architecturally), and
                    // a pessimism the scheduler tolerates; documented in
                    // DESIGN §11. Indirect calls also bypass the RAS.
                    emit(StaticInst::li(rd, pc4));
                    emit(StaticInst::jr(rs1));
                }
            },
            Fence => emit(StaticInst::nop()),
            Ecall | Ebreak => emit(StaticInst::halt()),
        }
    }
    for (name, idx) in &rv.labels {
        program.set_label(name.clone(), start[*idx as usize]);
    }
    program.set_entry(start[rv.entry as usize]);
    program
        .validate()
        .expect("lowered program structurally valid");
    Ok(Lowered {
        program,
        start,
        rv_of,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use mos_isa::InstClass;

    #[test]
    fn register_map_is_injective_and_role_preserving() {
        let mut seen = [false; 32];
        for x in 0..32u8 {
            let r = map_reg(x);
            assert!(r.is_int());
            assert!(!seen[r.index()], "x{x} collides");
            seen[r.index()] = true;
        }
        assert_eq!(map_reg(0), Reg::ZERO);
        assert_eq!(map_reg(1), Reg::RA);
        assert_eq!(map_reg(2), Reg::SP);
    }

    #[test]
    fn one_to_one_lowering_preserves_indices() {
        let rv = assemble(
            "t",
            "_start:\naddi t0, zero, 3\nloop:\naddi t0, t0, -1\nbnez t0, loop\nebreak",
        )
        .unwrap();
        let low = lower(&rv).unwrap();
        assert_eq!(low.uops(), 4);
        assert_eq!(low.bundle(2), 2..3);
        // bnez lowers to the single-source custom bnez aimed at uop 1.
        let b = low.program.inst(2).unwrap();
        assert_eq!(b.opcode(), Opcode::Bnez);
        assert_eq!(b.target(), Some(1));
        assert_eq!(low.program.inst(3).unwrap().class(), InstClass::Halt);
    }

    #[test]
    fn linking_jumps_expand_to_bundles() {
        let rv = assemble("t", "_start:\njal t0, next\nnext:\njalr t1, 0(t0)\nebreak").unwrap();
        let low = lower(&rv).unwrap();
        assert_eq!(low.uops(), 5);
        assert_eq!(low.bundle(0), 0..2);
        assert_eq!(low.bundle(1), 2..4);
        assert_eq!(low.rv_of(3), 1);
        // jal t0: li t0, pc+4 ; j — link value is the RV byte pc.
        let li = low.program.inst(0).unwrap();
        assert_eq!(li.opcode(), Opcode::Li);
        assert_eq!(li.imm(), i64::from(RvProgram::BASE_PC) + 4);
        assert_eq!(low.program.inst(1).unwrap().target(), Some(2));
    }

    #[test]
    fn call_ret_use_the_ras_opcodes() {
        let rv = assemble("t", "_start:\ncall f\nebreak\nf:\nret").unwrap();
        let low = lower(&rv).unwrap();
        assert_eq!(low.program.inst(0).unwrap().class(), InstClass::Call);
        assert_eq!(low.program.inst(2).unwrap().class(), InstClass::Return);
    }

    #[test]
    fn compare_to_zero_branches_keep_one_source() {
        let rv = assemble("t", "top:\nbeq a0, zero, top\nbeq a0, a1, top\nebreak").unwrap();
        let low = lower(&rv).unwrap();
        assert_eq!(low.program.inst(0).unwrap().src_regs().count(), 1);
        assert_eq!(low.program.inst(1).unwrap().src_regs().count(), 2);
    }

    #[test]
    fn entry_and_labels_map_through_bundles() {
        let rv = assemble("t", "jal t3, main\nmain:\nebreak").unwrap();
        let low = lower(&rv).unwrap();
        assert_eq!(low.program.label("main"), Some(2));
        // default entry is rv index 0 -> uop 0.
        assert_eq!(low.program.entry(), 0);
    }

    #[test]
    fn out_of_range_targets_are_rejected() {
        let mut rv = RvProgram::new("t");
        rv.insts.push(RvInst::branch(RvOp::Beq, 1, 2, 64));
        assert!(matches!(lower(&rv), Err(LowerError::BadTarget { .. })));
        assert!(matches!(lower(&RvProgram::new("e")), Err(LowerError::Empty)));
    }
}

//! RV32 architectural interpreter: the functional oracle.
//!
//! Executes full RV32I+M semantics — 32 × 32-bit registers and a sparse
//! byte-addressed memory — and reports, for every retired instruction,
//! where control went and which effective address it touched. The
//! differential harness compares the timing pipeline's committed state
//! against this interpreter's; the trace adapter in [`crate::trace`] turns
//! its steps into the committed-path uop stream the simulator consumes.

use std::collections::HashMap;

use crate::inst::{RvInst, RvOp, RvProgram};

/// Initial stack pointer (`x2`) — far above any program data so stacks and
/// heaps don't collide in the tests' address space.
pub const STACK_TOP: u32 = 0x7fff_0000;

/// Architectural RV32 state: register file plus sparse byte memory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RvState {
    regs: [u32; 32],
    mem: HashMap<u32, u8>,
}

impl RvState {
    /// Fresh state: all registers zero except `sp`, empty memory.
    pub fn new() -> RvState {
        let mut s = RvState::default();
        s.regs[2] = STACK_TOP;
        s
    }

    /// Read register `x<n>`.
    pub fn reg(&self, n: u8) -> u32 {
        self.regs[n as usize]
    }

    /// Write register `x<n>`; writes to `x0` are discarded.
    pub fn set_reg(&mut self, n: u8, v: u32) {
        if n != 0 {
            self.regs[n as usize] = v;
        }
    }

    /// Load one byte (unwritten memory reads as 0).
    pub fn load8(&self, addr: u32) -> u8 {
        self.mem.get(&addr).copied().unwrap_or(0)
    }

    /// Load a little-endian halfword.
    pub fn load16(&self, addr: u32) -> u16 {
        u16::from(self.load8(addr)) | u16::from(self.load8(addr.wrapping_add(1))) << 8
    }

    /// Load a little-endian word.
    pub fn load32(&self, addr: u32) -> u32 {
        u32::from(self.load16(addr)) | u32::from(self.load16(addr.wrapping_add(2))) << 16
    }

    /// Store one byte.
    pub fn store8(&mut self, addr: u32, v: u8) {
        self.mem.insert(addr, v);
    }

    /// Store a little-endian halfword.
    pub fn store16(&mut self, addr: u32, v: u16) {
        self.store8(addr, v as u8);
        self.store8(addr.wrapping_add(1), (v >> 8) as u8);
    }

    /// Store a little-endian word.
    pub fn store32(&mut self, addr: u32, v: u32) {
        self.store16(addr, v as u16);
        self.store16(addr.wrapping_add(2), (v >> 16) as u16);
    }

    /// The written-memory image, as sorted `(address, byte)` pairs.
    pub fn mem_image(&self) -> Vec<(u32, u8)> {
        let mut v: Vec<(u32, u8)> = self.mem.iter().map(|(&a, &b)| (a, b)).collect();
        v.sort_unstable();
        v
    }

    /// FNV-1a digest over registers and the sorted memory image — a
    /// compact fingerprint for golden tests.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for r in &self.regs {
            for b in r.to_le_bytes() {
                eat(b);
            }
        }
        for (a, b) in self.mem_image() {
            for ab in a.to_le_bytes() {
                eat(ab);
            }
            eat(b);
        }
        h
    }
}

/// Architectural effect of executing one instruction at byte pc `pc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RvEffect {
    /// Byte pc of the next instruction.
    pub next_pc: u32,
    /// A control transfer left the fall-through path.
    pub taken: bool,
    /// Effective byte address for loads/stores.
    pub eff_addr: Option<u32>,
    /// The instruction halts the program (`ecall`/`ebreak`).
    pub halt: bool,
}

/// Execute one instruction against `state`. This is the single source of
/// RV semantics: the interpreter steps with it, and the differential
/// harness replays the pipeline's committed instructions through it.
pub fn execute(state: &mut RvState, inst: &RvInst, pc: u32) -> RvEffect {
    use RvOp::*;
    let (a, b) = (state.reg(inst.rs1), state.reg(inst.rs2));
    let (sa, sb) = (a as i32, b as i32);
    let imm = inst.imm;
    let fall = pc.wrapping_add(4);
    let mut eff = RvEffect {
        next_pc: fall,
        taken: false,
        eff_addr: None,
        halt: false,
    };
    let wr = |s: &mut RvState, v: u32| s.set_reg(inst.rd, v);
    match inst.op {
        Lui => wr(state, (imm as u32) << 12),
        Auipc => wr(state, pc.wrapping_add((imm as u32) << 12)),
        Add => wr(state, a.wrapping_add(b)),
        Sub => wr(state, a.wrapping_sub(b)),
        Sll => wr(state, a.wrapping_shl(b)),
        Slt => wr(state, u32::from(sa < sb)),
        Sltu => wr(state, u32::from(a < b)),
        Xor => wr(state, a ^ b),
        Srl => wr(state, a.wrapping_shr(b)),
        Sra => wr(state, sa.wrapping_shr(b) as u32),
        Or => wr(state, a | b),
        And => wr(state, a & b),
        Addi => wr(state, a.wrapping_add(imm as u32)),
        Slti => wr(state, u32::from(sa < imm)),
        Sltiu => wr(state, u32::from(a < imm as u32)),
        Xori => wr(state, a ^ imm as u32),
        Ori => wr(state, a | imm as u32),
        Andi => wr(state, a & imm as u32),
        Slli => wr(state, a.wrapping_shl(imm as u32)),
        Srli => wr(state, a.wrapping_shr(imm as u32)),
        Srai => wr(state, sa.wrapping_shr(imm as u32) as u32),
        Mul => wr(state, a.wrapping_mul(b)),
        Mulh => wr(state, ((i64::from(sa) * i64::from(sb)) >> 32) as u32),
        Mulhsu => wr(state, ((i64::from(sa) * i64::from(b)) >> 32) as u32),
        Mulhu => wr(state, ((u64::from(a) * u64::from(b)) >> 32) as u32),
        Div => wr(
            state,
            if b == 0 {
                u32::MAX
            } else if sa == i32::MIN && sb == -1 {
                sa as u32
            } else {
                (sa / sb) as u32
            },
        ),
        Divu => wr(state, a.checked_div(b).unwrap_or(u32::MAX)),
        Rem => wr(
            state,
            if b == 0 {
                a
            } else if sa == i32::MIN && sb == -1 {
                0
            } else {
                (sa % sb) as u32
            },
        ),
        Remu => wr(state, if b == 0 { a } else { a % b }),
        Lb | Lh | Lw | Lbu | Lhu => {
            let addr = a.wrapping_add(imm as u32);
            eff.eff_addr = Some(addr);
            let v = match inst.op {
                Lb => state.load8(addr) as i8 as u32,
                Lbu => u32::from(state.load8(addr)),
                Lh => state.load16(addr) as i16 as u32,
                Lhu => u32::from(state.load16(addr)),
                _ => state.load32(addr),
            };
            wr(state, v);
        }
        Sb | Sh | Sw => {
            let addr = a.wrapping_add(imm as u32);
            eff.eff_addr = Some(addr);
            match inst.op {
                Sb => state.store8(addr, b as u8),
                Sh => state.store16(addr, b as u16),
                _ => state.store32(addr, b),
            }
        }
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            let taken = match inst.op {
                Beq => a == b,
                Bne => a != b,
                Blt => sa < sb,
                Bge => sa >= sb,
                Bltu => a < b,
                _ => a >= b,
            };
            if taken {
                eff.taken = true;
                eff.next_pc = pc.wrapping_add(imm as u32);
            }
        }
        Jal => {
            wr(state, fall);
            eff.taken = true;
            eff.next_pc = pc.wrapping_add(imm as u32);
        }
        Jalr => {
            let t = a.wrapping_add(imm as u32) & !1;
            wr(state, fall);
            eff.taken = true;
            eff.next_pc = t;
        }
        Fence => {}
        Ecall | Ebreak => eff.halt = true,
    }
    eff
}

/// One retired RV instruction, in index space: which instruction ran,
/// where control went, and the address it touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RvStep {
    /// Instruction index executed.
    pub idx: u32,
    /// Index of the next instruction (may be one past the end for a
    /// program that runs off its last instruction before halting).
    pub next_idx: u32,
    /// Whether a control transfer was taken.
    pub taken: bool,
    /// Effective byte address for loads/stores.
    pub eff_addr: Option<u32>,
}

/// The RV32 functional interpreter.
///
/// Mirrors the `mos-asm` interpreter's contract: `step` retires one
/// instruction per call; `ecall`/`ebreak` stop the machine *without*
/// retiring (their halt uop is likewise filtered by the pipeline's
/// decoder), and an invalid dynamic jump target or running off the code
/// image stops the machine with `faulted` set.
#[derive(Debug, Clone)]
pub struct RvInterp {
    program: RvProgram,
    state: RvState,
    pc_idx: u32,
    halted: bool,
    faulted: bool,
    retired: u64,
}

impl RvInterp {
    /// Interpreter over a program, with `.byte`/`.word` data preloaded.
    pub fn new(program: &RvProgram) -> RvInterp {
        let mut state = RvState::new();
        for &(addr, byte) in &program.data {
            state.store8(addr, byte);
        }
        let pc_idx = program.entry;
        RvInterp {
            program: program.clone(),
            state,
            pc_idx,
            halted: false,
            faulted: false,
            retired: 0,
        }
    }

    /// Architectural state so far.
    pub fn state(&self) -> &RvState {
        &self.state
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The machine stopped on `ecall`/`ebreak` (not a fault, not still
    /// running).
    pub fn stopped_cleanly(&self) -> bool {
        self.halted && !self.faulted
    }

    /// The machine stopped on a bad dynamic jump target or by running off
    /// the code image.
    pub fn faulted(&self) -> bool {
        self.faulted
    }

    /// Retire one instruction. Returns `None` once halted or faulted.
    pub fn step(&mut self) -> Option<RvStep> {
        if self.halted {
            return None;
        }
        let idx = self.pc_idx;
        let Some(&inst) = self.program.insts.get(idx as usize) else {
            self.halted = true;
            self.faulted = true;
            return None;
        };
        let pc = self.program.pc_of(idx);
        let eff = execute(&mut self.state, &inst, pc);
        if eff.halt {
            self.halted = true;
            return None;
        }
        // Decode the next pc back to an index; one-past-the-end is legal
        // here (the *next* step faults), anything else is a fault now.
        let next_idx = if eff.next_pc == self.program.pc_of(self.program.len() as u32) {
            self.program.len() as u32
        } else {
            match self.program.index_of_pc(eff.next_pc) {
                Some(i) => i,
                None => {
                    self.halted = true;
                    self.faulted = true;
                    return None;
                }
            }
        };
        self.pc_idx = next_idx;
        self.retired += 1;
        Some(RvStep {
            idx,
            next_idx,
            taken: eff.taken,
            eff_addr: eff.eff_addr,
        })
    }

    /// Run to completion (or `max` steps), collecting every step.
    pub fn run_collect(&mut self, max: usize) -> Vec<RvStep> {
        let mut steps = Vec::new();
        while steps.len() < max {
            match self.step() {
                Some(s) => steps.push(s),
                None => break,
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str) -> RvInterp {
        let p = assemble("t", src).unwrap();
        let mut i = RvInterp::new(&p);
        let steps = i.run_collect(1_000_000);
        assert!(i.stopped_cleanly(), "did not halt cleanly: {steps:?}");
        i
    }

    #[test]
    fn loop_sums() {
        let i = run("_start:\nli t0, 100\nli a0, 0\nloop:\nadd a0, a0, t0\naddi t0, t0, -1\nbnez t0, loop\nebreak");
        assert_eq!(i.state().reg(10), 5050);
        // 2 setup + 100 iterations * 3.
        assert_eq!(i.retired(), 302);
    }

    #[test]
    fn memory_widths_and_sign_extension() {
        let i = run(
            "_start:
                li t0, 0x1000
                li t1, -2      # 0xfffffffe
                sw t1, 0(t0)
                lb a0, 0(t0)   # 0xfe sign-extends to -2
                lbu a1, 0(t0)  # 254
                lh a2, 0(t0)   # -2
                lhu a3, 0(t0)  # 0xfffe
                sh zero, 2(t0)
                lw a4, 0(t0)   # 0x0000fffe
                ebreak",
        );
        assert_eq!(i.state().reg(10) as i32, -2);
        assert_eq!(i.state().reg(11), 254);
        assert_eq!(i.state().reg(12) as i32, -2);
        assert_eq!(i.state().reg(13), 0xfffe);
        assert_eq!(i.state().reg(14), 0xfffe);
    }

    #[test]
    fn m_extension_edge_cases() {
        let i = run(
            "_start:
                li t0, -2147483648
                li t1, -1
                div a0, t0, t1    # overflow -> INT_MIN
                rem a1, t0, t1    # overflow -> 0
                li t2, 0
                div a2, t0, t2    # div by zero -> -1
                rem a3, t0, t2    # rem by zero -> dividend
                mulh a4, t0, t1   # high half of INT_MIN * -1
                li t3, 7
                li t4, 3
                divu a5, t3, t4
                ebreak",
        );
        assert_eq!(i.state().reg(10), 0x8000_0000);
        assert_eq!(i.state().reg(11), 0);
        assert_eq!(i.state().reg(12), u32::MAX);
        assert_eq!(i.state().reg(13), 0x8000_0000);
        assert_eq!(i.state().reg(14), 0);
        assert_eq!(i.state().reg(15), 2);
    }

    #[test]
    fn call_ret_and_stack() {
        let i = run(
            "_start:
                li a0, 5
                call double
                ebreak
             double:
                addi sp, sp, -4
                sw a0, 0(sp)
                lw t0, 0(sp)
                add a0, t0, t0
                addi sp, sp, 4
                ret",
        );
        assert_eq!(i.state().reg(10), 10);
        assert_eq!(i.state().reg(2), STACK_TOP);
    }

    #[test]
    fn x0_is_immutable_and_faults_are_detected() {
        let p = assemble("t", "_start:\nli t0, 3\njr t0\nebreak").unwrap();
        let mut i = RvInterp::new(&p);
        i.run_collect(100);
        assert!(i.faulted(), "misaligned jr target must fault");

        let i2 = run("_start:\naddi zero, zero, 7\nmv a0, zero\nebreak");
        assert_eq!(i2.state().reg(10), 0);
    }

    #[test]
    fn digest_is_order_independent_for_memory() {
        let a = run("_start:\nli t0, 0x100\nsb t0, 0(t0)\nsb t0, 4(t0)\nebreak");
        let b = run("_start:\nli t0, 0x100\nsb t0, 4(t0)\nsb t0, 0(t0)\nebreak");
        assert_eq!(a.state().digest(), b.state().digest());
        assert_ne!(a.state().digest(), RvState::new().digest());
    }
}

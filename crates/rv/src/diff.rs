//! The differential oracle: run an RV32 program through the timing
//! pipeline and through the architectural interpreter, then assert that
//! (a) the pipeline committed exactly the interpreter's uop expansion, in
//! order, and (b) replaying the pipeline's committed instructions
//! functionally reproduces the interpreter's final register file and
//! memory image.
//!
//! The timing simulator is trace-driven — it never computes values — so
//! check (a) pins the committed *sequence* (no lost, duplicated, or
//! reordered retirement), and check (b) pins the *architectural meaning*
//! of that sequence by executing it through the same `execute` semantics
//! the oracle used and comparing final state.

use std::fmt;
use std::sync::Arc;

use mos_isa::InstClass;
use mos_sim::{CpiStack, MachineConfig, SharedCommitLog, SimStats, Simulator};

use crate::interp::{execute, RvInterp, RvState};
use crate::inst::RvProgram;
use crate::lower::{lower, LowerError};
use crate::trace::RvTraceSource;

/// The seven scheduler configurations the repo studies, by CLI label.
pub const SCHED_KINDS: [&str; 7] = [
    "base",
    "2cycle",
    "mop-2src",
    "mop-wor",
    "sf-squash",
    "sf-scoreboard",
    "spec-wakeup",
];

/// Standard 32-entry-queue machine configuration for a scheduler label
/// (the same presets `mossim --sched` resolves). `None` for unknown
/// labels.
pub fn config_for(sched: &str) -> Option<MachineConfig> {
    use mos_core::WakeupStyle;
    Some(match sched {
        "base" => MachineConfig::base_32(),
        "2cycle" => MachineConfig::two_cycle_32(),
        "mop-2src" => MachineConfig::macro_op(WakeupStyle::CamTwoSource, Some(32), 1),
        "mop-wor" => MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
        "sf-squash" => MachineConfig::select_free_squash_dep_32(),
        "sf-scoreboard" => MachineConfig::select_free_scoreboard_32(),
        "spec-wakeup" => MachineConfig::speculative_wakeup_32(),
        _ => return None,
    })
}

/// A passed differential run's summary numbers.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Scheduler label the pipeline ran under.
    pub sched: String,
    /// RV instructions the oracle retired.
    pub rv_retired: u64,
    /// Uops the pipeline committed (equals the oracle expansion).
    pub uops_committed: u64,
    /// Pipeline cycles.
    pub cycles: u64,
    /// Committed uops per cycle.
    pub ipc: f64,
    /// Fraction of committed uops that issued as part of a MOP group.
    pub fusion_rate: f64,
    /// Share of issue slots lost to the scheduling loop (atomicity)
    /// constraint, from the run's CPI stack.
    pub sched_loop_share: f64,
    /// Full end-of-run statistics.
    pub stats: SimStats,
}

/// A differential failure.
#[derive(Debug, Clone)]
pub enum DiffError {
    /// Lowering failed.
    Lower(LowerError),
    /// The functional oracle never reached `ecall`/`ebreak`.
    DidNotHalt {
        /// `true` when it faulted, `false` when the step budget ran out.
        faulted: bool,
        /// Steps retired before stopping.
        retired: u64,
    },
    /// Committed uop sequence diverged from the oracle expansion.
    TraceMismatch {
        /// Position of the first divergence.
        at: usize,
        /// Expected uop static index (`None` = oracle stream ended).
        expected: Option<u32>,
        /// Committed uop static index (`None` = pipeline stream ended).
        got: Option<u32>,
    },
    /// Final architectural state diverged.
    StateMismatch(String),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Lower(e) => write!(f, "lowering failed: {e}"),
            DiffError::DidNotHalt { faulted, retired } => write!(
                f,
                "oracle did not halt cleanly after {retired} insts (faulted: {faulted})"
            ),
            DiffError::TraceMismatch { at, expected, got } => write!(
                f,
                "committed uop {at} diverged: expected {expected:?}, pipeline committed {got:?}"
            ),
            DiffError::StateMismatch(what) => write!(f, "final state diverged: {what}"),
        }
    }
}

impl std::error::Error for DiffError {}

impl From<LowerError> for DiffError {
    fn from(e: LowerError) -> DiffError {
        DiffError::Lower(e)
    }
}

/// Run the full differential check for one scheduler configuration.
///
/// `max_steps` bounds the functional oracle (guards non-terminating
/// programs); the pipeline then runs until its trace drains.
///
/// # Errors
///
/// Returns [`DiffError`] describing the first divergence found.
pub fn run_differential(
    rv: &RvProgram,
    sched: &str,
    cfg: MachineConfig,
    max_steps: usize,
) -> Result<DiffReport, DiffError> {
    let lowered = Arc::new(lower(rv)?);

    // 1. Functional oracle: retire the whole program, keep every step.
    let mut oracle = RvInterp::new(rv);
    let steps = oracle.run_collect(max_steps);
    if !oracle.stopped_cleanly() {
        return Err(DiffError::DidNotHalt {
            faulted: oracle.faulted(),
            retired: oracle.retired(),
        });
    }

    // 2. Its expected committed-uop expansion: every bundle uop except
    //    nops, which the pipeline's decoder filters (halts never retire —
    //    the interpreter stops before emitting them).
    let mut expected: Vec<u32> = Vec::new();
    for s in &steps {
        for sidx in lowered.bundle(s.idx) {
            let class = lowered.program.inst(sidx).expect("bundle in range").class();
            if !matches!(class, InstClass::Nop | InstClass::Halt) {
                expected.push(sidx);
            }
        }
    }

    // 3. Timing pipeline over the same program, commit log attached.
    let trace = RvTraceSource::with_lowered(Arc::clone(&lowered), RvInterp::new(rv));
    let issue_width = cfg.sched.issue_width as u64;
    let mut sim = Simulator::new(cfg, trace);
    // Slot accounting is observation-only (never changes simulated
    // cycles), so turning it on here keeps the differential untouched
    // while giving every report a sched_loop share.
    sim.enable_slot_accounting();
    let log = SharedCommitLog::new();
    sim.set_event_sink(Box::new(log.clone()));
    let stats = sim.run(u64::MAX);
    let got = log.take();

    // 4. Committed sequence must equal the expansion exactly.
    if expected != got {
        let at = expected
            .iter()
            .zip(&got)
            .position(|(e, g)| e != g)
            .unwrap_or_else(|| expected.len().min(got.len()));
        return Err(DiffError::TraceMismatch {
            at,
            expected: expected.get(at).copied(),
            got: got.get(at).copied(),
        });
    }

    // 5. Replay the *pipeline's* committed uops as RV instructions
    //    through fresh architectural state and compare against the
    //    oracle's final state.
    let mut replay = RvState::new();
    for &(addr, byte) in &rv.data {
        replay.store8(addr, byte);
    }
    for &sidx in &got {
        let idx = lowered.rv_of(sidx);
        // A bundle retires its RV instruction once: on its last
        // committed uop.
        let last_committed = lowered.bundle(idx).rev().find(|&u| {
            !matches!(
                lowered.program.inst(u).expect("in range").class(),
                InstClass::Nop | InstClass::Halt
            )
        });
        if last_committed == Some(sidx) {
            execute(&mut replay, &rv.insts[idx as usize], rv.pc_of(idx));
        }
    }
    compare_states(&replay, oracle.state())?;

    let stack = CpiStack::from_stats(&rv.name, sched, issue_width, &stats);
    Ok(DiffReport {
        sched: sched.to_owned(),
        rv_retired: oracle.retired(),
        uops_committed: stats.committed,
        cycles: stats.cycles,
        ipc: stats.ipc(),
        fusion_rate: stats.grouped_frac(),
        sched_loop_share: stack.share(mos_core::SlotCause::SchedLoop),
        stats,
    })
}

fn compare_states(replay: &RvState, oracle: &RvState) -> Result<(), DiffError> {
    for x in 0..32u8 {
        let (r, o) = (replay.reg(x), oracle.reg(x));
        if r != o {
            return Err(DiffError::StateMismatch(format!(
                "x{x}: replay {r:#010x} != oracle {o:#010x}"
            )));
        }
    }
    let (rm, om) = (replay.mem_image(), oracle.mem_image());
    if rm != om {
        let n = rm
            .iter()
            .zip(&om)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| rm.len().min(om.len()));
        return Err(DiffError::StateMismatch(format!(
            "memory image diverges at entry {n}: replay {:?} != oracle {:?}",
            rm.get(n),
            om.get(n)
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    const SUM: &str = "_start:\nli t0, 50\nli a0, 0\nloop:\nadd a0, a0, t0\naddi t0, t0, -1\nbnez t0, loop\nebreak";

    #[test]
    fn differential_passes_on_every_scheduler() {
        let rv = assemble("sum", SUM).unwrap();
        for sched in SCHED_KINDS {
            let cfg = config_for(sched).expect("known scheduler");
            let rep = run_differential(&rv, sched, cfg, 1_000_000)
                .unwrap_or_else(|e| panic!("{sched}: {e}"));
            assert_eq!(rep.rv_retired, 152, "{sched}");
            assert_eq!(rep.uops_committed, 152, "{sched}");
            assert!(rep.cycles > 0 && rep.ipc > 0.0, "{sched}");
        }
    }

    #[test]
    fn nonterminating_programs_are_reported() {
        let rv = assemble("spin", "spin:\nj spin").unwrap();
        let err = run_differential(&rv, "base", config_for("base").unwrap(), 1000).unwrap_err();
        assert!(matches!(err, DiffError::DidNotHalt { faulted: false, retired: 1000 }));
    }

    #[test]
    fn faulting_programs_are_reported() {
        let rv = assemble("fall", "_start:\nadd a0, a1, a2").unwrap();
        let err = run_differential(&rv, "base", config_for("base").unwrap(), 1000).unwrap_err();
        assert!(matches!(err, DiffError::DidNotHalt { faulted: true, .. }));
    }

    #[test]
    fn every_label_resolves_to_a_config() {
        for s in SCHED_KINDS {
            assert!(config_for(s).is_some(), "{s}");
        }
        assert!(config_for("bogus").is_none());
    }
}

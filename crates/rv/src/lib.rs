//! RV32I(+M) frontend for the macro-op scheduling study: run *real*
//! RISC-V programs through the MOP pipeline, validated by a differential
//! functional oracle.
//!
//! The repo's timing simulator is trace-driven: it consumes a static
//! program plus a committed-path [`mos_isa::DynInst`] stream and models
//! *when* things happen, never *what* values they compute. This crate
//! supplies that pair for real RISC-V code:
//!
//! - [`asm::assemble`] parses RV32 assembly (GNU-`as`-subset syntax with
//!   ABI register names and the common pseudo-instructions);
//!   [`encode::decode_flat`] loads pre-encoded flat binaries.
//! - [`lower::lower`] translates RV32 instructions into the custom uop
//!   ISA the scheduler models (mostly 1:1; link-register jumps become
//!   2-uop bundles), with maps between the two index spaces.
//! - [`interp::RvInterp`] executes full RV32I+M semantics — the
//!   *functional oracle* — and [`trace::RvTraceSource`] turns its retired
//!   instructions into the committed uop stream the pipeline fetches.
//! - [`diff::run_differential`] closes the loop: the pipeline's committed
//!   uop sequence must equal the oracle's expansion, and replaying those
//!   commits must reproduce the oracle's final register/memory state.
//!
//! [`suite::PROGRAMS`] carries the checked-in real-program suite
//! (`tests/programs/*.s`): loops, recursion, memcpy/strlen-style memory
//! kernels, and branchy code.

#![warn(missing_docs)]

pub mod asm;
pub mod diff;
pub mod encode;
pub mod inst;
pub mod interp;
pub mod lower;
pub mod suite;
pub mod trace;

pub use asm::{assemble, RvAsmError};
pub use diff::{config_for, run_differential, DiffError, DiffReport, SCHED_KINDS};
pub use encode::{decode_flat, encode_program, RvDecodeError};
pub use inst::{RvInst, RvOp, RvProgram};
pub use interp::{RvInterp, RvState};
pub use lower::{lower, map_reg, LowerError, Lowered};
pub use trace::RvTraceSource;

//! The checked-in RV32 test-program suite (`tests/programs/*.s`),
//! embedded at compile time so integration tests, the fuzzer's sanity
//! anchors, and the experiments driver all run the same real programs.

use crate::asm::assemble;
use crate::inst::RvProgram;

/// One suite program: its source plus the register values a correct run
/// must end with.
#[derive(Debug, Clone, Copy)]
pub struct RvTestProgram {
    /// Program name (file stem under `tests/programs/`).
    pub name: &'static str,
    /// Assembly source text.
    pub source: &'static str,
    /// `(register, value)` pairs checked after a clean halt.
    pub expect: &'static [(u8, u32)],
}

impl RvTestProgram {
    /// Assemble the source.
    ///
    /// # Panics
    ///
    /// Panics if the checked-in source no longer assembles.
    pub fn assemble(&self) -> RvProgram {
        assemble(self.name, self.source)
            .unwrap_or_else(|e| panic!("suite program `{}`: {e}", self.name))
    }
}

/// A0 shorthand for the expectation tables.
const A0: u8 = 10;

/// The full suite: loops, recursion, memory kernels and branchy code.
pub const PROGRAMS: [RvTestProgram; 7] = [
    RvTestProgram {
        name: "sum_loop",
        source: include_str!("../../../tests/programs/sum_loop.s"),
        expect: &[(A0, 5050)],
    },
    RvTestProgram {
        name: "fib_rec",
        source: include_str!("../../../tests/programs/fib_rec.s"),
        expect: &[(A0, 144)],
    },
    RvTestProgram {
        name: "memcpy",
        source: include_str!("../../../tests/programs/memcpy.s"),
        expect: &[(A0, 32640)],
    },
    RvTestProgram {
        name: "strlen",
        source: include_str!("../../../tests/programs/strlen.s"),
        expect: &[(A0, 19)],
    },
    RvTestProgram {
        name: "gcd",
        source: include_str!("../../../tests/programs/gcd.s"),
        expect: &[(A0, 354)],
    },
    RvTestProgram {
        name: "collatz",
        source: include_str!("../../../tests/programs/collatz.s"),
        expect: &[(A0, 709)],
    },
    RvTestProgram {
        name: "bubble_sort",
        source: include_str!("../../../tests/programs/bubble_sort.s"),
        expect: &[(A0, 26784)],
    },
];

/// Look up a suite program by name.
pub fn by_name(name: &str) -> Option<&'static RvTestProgram> {
    PROGRAMS.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::RvInterp;

    #[test]
    fn every_program_halts_with_its_expected_registers() {
        for p in &PROGRAMS {
            let rv = p.assemble();
            let mut interp = RvInterp::new(&rv);
            interp.run_collect(10_000_000);
            assert!(
                interp.stopped_cleanly(),
                "{}: did not halt cleanly (retired {})",
                p.name,
                interp.retired()
            );
            for &(reg, want) in p.expect {
                assert_eq!(
                    interp.state().reg(reg),
                    want,
                    "{}: x{reg} mismatch",
                    p.name
                );
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("gcd").unwrap().name, "gcd");
        assert!(by_name("missing").is_none());
    }
}

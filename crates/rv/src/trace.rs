//! Adapter from the RV32 interpreter to the simulator's committed-path
//! uop stream: an [`RvTraceSource`] walks the functional oracle and
//! expands each retired RV instruction into its lowered uop bundle,
//! chaining `next_sidx` through the bundle and across instructions so the
//! timing simulator's sequential-fetch invariant holds.

use std::collections::VecDeque;
use std::sync::Arc;

use mos_isa::{DynInst, Program, TraceSource};

use crate::interp::{RvInterp, RvStep};
use crate::inst::RvProgram;
use crate::lower::{lower, LowerError, Lowered};

/// A [`TraceSource`] over an RV32 program: the lowered uop program plus a
/// committed-path uop stream produced by the architectural interpreter.
#[derive(Debug, Clone)]
pub struct RvTraceSource {
    lowered: Arc<Lowered>,
    interp: RvInterp,
    pending: VecDeque<DynInst>,
}

impl RvTraceSource {
    /// Lower `rv` and build the stream.
    ///
    /// # Errors
    ///
    /// Returns [`LowerError`] for an empty program or out-of-image
    /// transfer targets.
    pub fn new(rv: &RvProgram) -> Result<RvTraceSource, LowerError> {
        Ok(RvTraceSource::with_lowered(Arc::new(lower(rv)?), RvInterp::new(rv)))
    }

    /// Build from an already-lowered program and a fresh interpreter over
    /// the same RV program (lets callers share one [`Lowered`] across
    /// scheduler configurations).
    pub fn with_lowered(lowered: Arc<Lowered>, interp: RvInterp) -> RvTraceSource {
        RvTraceSource {
            lowered,
            interp,
            pending: VecDeque::new(),
        }
    }

    /// The lowering maps backing this stream.
    pub fn lowered(&self) -> &Lowered {
        &self.lowered
    }

    /// The driving interpreter (its state is final once the stream ends).
    pub fn interp(&self) -> &RvInterp {
        &self.interp
    }

    /// Expand one retired RV instruction into its uop bundle. Intra-bundle
    /// uops fall through to the next uop; the last uop carries the
    /// instruction's control outcome.
    fn expand(&mut self, step: RvStep) {
        let bundle = self.lowered.bundle(step.idx);
        let last = bundle.end - 1;
        let next = self.lowered.start_of(step.next_idx);
        for sidx in bundle {
            let is_last = sidx == last;
            let inst = self.lowered.program.inst(sidx).expect("bundle uop in range");
            self.pending.push_back(DynInst {
                sidx,
                next_sidx: if is_last { next } else { sidx + 1 },
                taken: is_last && step.taken,
                eff_addr: if inst.class().is_mem() {
                    step.eff_addr.map(u64::from)
                } else {
                    None
                },
            });
        }
    }
}

impl Iterator for RvTraceSource {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        if self.pending.is_empty() {
            let step = self.interp.step()?;
            self.expand(step);
        }
        self.pending.pop_front()
    }
}

impl TraceSource for RvTraceSource {
    fn program(&self) -> &Program {
        &self.lowered.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use mos_isa::InstClass;

    #[test]
    fn stream_chains_next_sidx_sequentially() {
        let rv = assemble(
            "t",
            "_start:\nli t0, 2\nloop:\naddi t0, t0, -1\nbnez t0, loop\nebreak",
        )
        .unwrap();
        let mut src = RvTraceSource::new(&rv).unwrap();
        let mut stream = Vec::new();
        let mut expect_sidx = src.program().entry();
        for d in src.by_ref() {
            assert_eq!(d.sidx, expect_sidx, "fetch chain broken at {stream:?}");
            expect_sidx = d.next_sidx;
            stream.push(d);
        }
        // li, (addi, bnez) x2 = 5 committed uops; halt is never emitted.
        assert_eq!(stream.len(), 5);
        assert!(stream[2].taken, "first bnez is taken");
        assert!(!stream[4].taken, "second bnez falls through");
        assert!(src.interp().stopped_cleanly());
    }

    #[test]
    fn bundles_fall_through_internally() {
        // jal t0 expands to li+jmp: the li falls through to the jmp, the
        // jmp carries the taken edge.
        let rv = assemble("t", "_start:\njal t0, next\nnext:\nebreak").unwrap();
        let src = RvTraceSource::new(&rv).unwrap();
        let ds: Vec<DynInst> = src.collect();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].next_sidx, 1);
        assert!(!ds[0].taken);
        assert!(ds[1].taken);
        assert_eq!(ds[1].next_sidx, 2);
    }

    #[test]
    fn eff_addr_rides_the_memory_uop() {
        let rv = assemble("t", "_start:\nli t0, 0x40\nsw t0, 4(t0)\nlw t1, 4(t0)\nebreak").unwrap();
        let src = RvTraceSource::new(&rv).unwrap();
        let ds: Vec<DynInst> = src.collect();
        let mems: Vec<u64> = ds.iter().filter_map(|d| d.eff_addr).collect();
        assert_eq!(mems, vec![0x44, 0x44]);
    }

    #[test]
    fn program_is_the_lowered_image() {
        let rv = assemble("t", "_start:\nfence\necall").unwrap();
        let src = RvTraceSource::new(&rv).unwrap();
        assert_eq!(src.program().inst(0).unwrap().class(), InstClass::Nop);
        assert_eq!(src.program().inst(1).unwrap().class(), InstClass::Halt);
        // The fence lowers to a nop, which *is* emitted (decode filters it).
        let ds: Vec<DynInst> = src.collect();
        assert_eq!(ds.len(), 1);
    }
}

//! RV32 instruction representation shared by the assembler, the binary
//! codec, the lowering pass and the architectural interpreter.

use std::fmt;

/// An RV32I or RV32M operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum RvOp {
    // --- RV32I ---
    Lui,
    Auipc,
    Jal,
    Jalr,
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
    Sb,
    Sh,
    Sw,
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Fence,
    Ecall,
    Ebreak,
    // --- RV32M ---
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

impl RvOp {
    /// Canonical mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use RvOp::*;
        match self {
            Lui => "lui",
            Auipc => "auipc",
            Jal => "jal",
            Jalr => "jalr",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Lb => "lb",
            Lh => "lh",
            Lw => "lw",
            Lbu => "lbu",
            Lhu => "lhu",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Addi => "addi",
            Slti => "slti",
            Sltiu => "sltiu",
            Xori => "xori",
            Ori => "ori",
            Andi => "andi",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Add => "add",
            Sub => "sub",
            Sll => "sll",
            Slt => "slt",
            Sltu => "sltu",
            Xor => "xor",
            Srl => "srl",
            Sra => "sra",
            Or => "or",
            And => "and",
            Fence => "fence",
            Ecall => "ecall",
            Ebreak => "ebreak",
            Mul => "mul",
            Mulh => "mulh",
            Mulhsu => "mulhsu",
            Mulhu => "mulhu",
            Div => "div",
            Divu => "divu",
            Rem => "rem",
            Remu => "remu",
        }
    }

    /// All operations, in declaration order (exhaustive-test helper).
    pub fn all() -> impl Iterator<Item = RvOp> {
        use RvOp::*;
        [
            Lui, Auipc, Jal, Jalr, Beq, Bne, Blt, Bge, Bltu, Bgeu, Lb, Lh, Lw, Lbu, Lhu, Sb, Sh,
            Sw, Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai, Add, Sub, Sll, Slt, Sltu,
            Xor, Srl, Sra, Or, And, Fence, Ecall, Ebreak, Mul, Mulh, Mulhsu, Mulhu, Div, Divu,
            Rem, Remu,
        ]
        .into_iter()
    }

    /// `true` for the six conditional branches.
    pub fn is_branch(self) -> bool {
        use RvOp::*;
        matches!(self, Beq | Bne | Blt | Bge | Bltu | Bgeu)
    }

    /// `true` for loads.
    pub fn is_load(self) -> bool {
        use RvOp::*;
        matches!(self, Lb | Lh | Lw | Lbu | Lhu)
    }

    /// `true` for stores.
    pub fn is_store(self) -> bool {
        use RvOp::*;
        matches!(self, Sb | Sh | Sw)
    }

    /// `true` for the RV32M multiply/divide extension.
    pub fn is_m_ext(self) -> bool {
        use RvOp::*;
        matches!(self, Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu)
    }
}

impl fmt::Display for RvOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// ABI name of integer register `x<n>`.
///
/// # Panics
///
/// Panics if `n >= 32`.
pub fn abi_name(n: u8) -> &'static str {
    const NAMES: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
        "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
        "t3", "t4", "t5", "t6",
    ];
    NAMES[n as usize]
}

/// One decoded RV32 instruction.
///
/// The immediate is held fully sign-extended exactly as the architecture
/// sees it: byte offsets for branches/`jal`, the *unshifted* 20-bit value
/// for `lui`/`auipc`, byte displacements for loads/stores, and the shift
/// amount for immediate shifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RvInst {
    /// Operation.
    pub op: RvOp,
    /// Destination register `x<rd>` (0 where the format has none).
    pub rd: u8,
    /// First source register `x<rs1>` (0 where the format has none).
    pub rs1: u8,
    /// Second source register `x<rs2>` (0 where the format has none).
    pub rs2: u8,
    /// Sign-extended immediate (see type docs for per-format meaning).
    pub imm: i32,
}

impl RvInst {
    /// R-type `op rd, rs1, rs2`.
    pub fn r(op: RvOp, rd: u8, rs1: u8, rs2: u8) -> RvInst {
        RvInst { op, rd, rs1, rs2, imm: 0 }
    }

    /// I-type `op rd, rs1, imm` (also immediate shifts and `jalr`).
    pub fn i(op: RvOp, rd: u8, rs1: u8, imm: i32) -> RvInst {
        RvInst { op, rd, rs1, rs2: 0, imm }
    }

    /// Load `op rd, imm(rs1)`.
    pub fn load(op: RvOp, rd: u8, imm: i32, rs1: u8) -> RvInst {
        RvInst { op, rd, rs1, rs2: 0, imm }
    }

    /// Store `op rs2, imm(rs1)`.
    pub fn store(op: RvOp, rs2: u8, imm: i32, rs1: u8) -> RvInst {
        RvInst { op, rd: 0, rs1, rs2, imm }
    }

    /// Branch `op rs1, rs2, byte-offset`.
    pub fn branch(op: RvOp, rs1: u8, rs2: u8, offset: i32) -> RvInst {
        RvInst { op, rd: 0, rs1, rs2, imm: offset }
    }

    /// U-type `op rd, imm20` (`imm` is the unshifted 20-bit value).
    pub fn u(op: RvOp, rd: u8, imm: i32) -> RvInst {
        RvInst { op, rd, rs1: 0, rs2: 0, imm }
    }

    /// `jal rd, byte-offset`.
    pub fn jal(rd: u8, offset: i32) -> RvInst {
        RvInst { op: RvOp::Jal, rd, rs1: 0, rs2: 0, imm: offset }
    }

    /// System/fence instruction with no operands.
    pub fn sys(op: RvOp) -> RvInst {
        RvInst { op, rd: 0, rs1: 0, rs2: 0, imm: 0 }
    }
}

impl fmt::Display for RvInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use RvOp::*;
        let m = self.op.mnemonic();
        let (rd, rs1, rs2) = (
            abi_name(self.rd),
            abi_name(self.rs1),
            abi_name(self.rs2),
        );
        match self.op {
            Lui | Auipc => write!(f, "{m} {rd}, {:#x}", self.imm),
            Jal => write!(f, "{m} {rd}, {:+}", self.imm),
            Jalr => write!(f, "{m} {rd}, {}({rs1})", self.imm),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                write!(f, "{m} {rs1}, {rs2}, {:+}", self.imm)
            }
            Lb | Lh | Lw | Lbu | Lhu => write!(f, "{m} {rd}, {}({rs1})", self.imm),
            Sb | Sh | Sw => write!(f, "{m} {rs2}, {}({rs1})", self.imm),
            Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai => {
                write!(f, "{m} {rd}, {rs1}, {}", self.imm)
            }
            Fence | Ecall | Ebreak => f.write_str(m),
            _ => write!(f, "{m} {rd}, {rs1}, {rs2}"),
        }
    }
}

/// An assembled or decoded RV32 program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RvProgram {
    /// Human-readable name (file stem or suite entry).
    pub name: String,
    /// Instructions in address order; instruction `i` lives at
    /// `RvProgram::BASE_PC + 4 * i`.
    pub insts: Vec<RvInst>,
    /// Entry index.
    pub entry: u32,
    /// `(byte address, byte value)` pairs preloaded before execution.
    pub data: Vec<(u32, u8)>,
    /// Labels attached by the assembler (diagnostics only).
    pub labels: Vec<(String, u32)>,
}

impl RvProgram {
    /// Byte address of instruction index 0 in the RV32 address space.
    /// `auipc`/`jalr` arithmetic is done against this base; note it is a
    /// *different* address space from the lowered uop program's PCs, which
    /// renumber per-uop.
    pub const BASE_PC: u32 = 0x0040_0000;

    /// Empty program with a name.
    pub fn new(name: impl Into<String>) -> RvProgram {
        RvProgram {
            name: name.into(),
            insts: Vec::new(),
            entry: 0,
            data: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Byte program counter of instruction index `idx`.
    pub fn pc_of(&self, idx: u32) -> u32 {
        Self::BASE_PC + 4 * idx
    }

    /// Instruction index of a byte program counter, if in range and
    /// 4-byte aligned.
    pub fn index_of_pc(&self, pc: u32) -> Option<u32> {
        if pc < Self::BASE_PC || !(pc - Self::BASE_PC).is_multiple_of(4) {
            return None;
        }
        let idx = (pc - Self::BASE_PC) / 4;
        ((idx as usize) < self.insts.len()).then_some(idx)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` when the program holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

impl fmt::Display for RvProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# rv32 program `{}`, {} insts", self.name, self.len())?;
        for (i, inst) in self.insts.iter().enumerate() {
            for (l, idx) in &self.labels {
                if *idx == i as u32 {
                    writeln!(f, "{l}:")?;
                }
            }
            writeln!(f, "  {i:4}  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_cover_all_registers() {
        assert_eq!(abi_name(0), "zero");
        assert_eq!(abi_name(2), "sp");
        assert_eq!(abi_name(10), "a0");
        assert_eq!(abi_name(31), "t6");
    }

    #[test]
    fn display_shapes() {
        assert_eq!(RvInst::r(RvOp::Add, 10, 5, 6).to_string(), "add a0, t0, t1");
        assert_eq!(RvInst::i(RvOp::Addi, 10, 10, -1).to_string(), "addi a0, a0, -1");
        assert_eq!(RvInst::load(RvOp::Lw, 5, 8, 2).to_string(), "lw t0, 8(sp)");
        assert_eq!(RvInst::store(RvOp::Sw, 5, -4, 2).to_string(), "sw t0, -4(sp)");
        assert_eq!(RvInst::branch(RvOp::Bne, 5, 0, -8).to_string(), "bne t0, zero, -8");
        assert_eq!(RvInst::sys(RvOp::Ecall).to_string(), "ecall");
    }

    #[test]
    fn pc_round_trip() {
        let mut p = RvProgram::new("t");
        p.insts.push(RvInst::sys(RvOp::Ebreak));
        p.insts.push(RvInst::sys(RvOp::Ebreak));
        assert_eq!(p.index_of_pc(p.pc_of(1)), Some(1));
        assert_eq!(p.index_of_pc(RvProgram::BASE_PC + 2), None);
        assert_eq!(p.index_of_pc(RvProgram::BASE_PC + 8), None);
        assert_eq!(p.index_of_pc(0), None);
    }

    #[test]
    fn classification_predicates() {
        assert!(RvOp::Beq.is_branch());
        assert!(RvOp::Lbu.is_load());
        assert!(RvOp::Sh.is_store());
        assert!(RvOp::Remu.is_m_ext());
        assert!(!RvOp::Add.is_m_ext());
        assert_eq!(RvOp::all().count(), 48);
    }
}

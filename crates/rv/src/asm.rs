//! RV32 assembler: a practical subset of GNU `as` syntax — labels, ABI
//! register names, the common pseudo-instructions (`li`, `mv`, `j`, `ret`,
//! `call`, `beqz`, ...), `#`/`;` comments, and `.byte`/`.word`/`.ascii`
//! data directives for preloading memory.
//!
//! Pseudo-instructions are expanded during the first pass (their expansion
//! length depends only on operands known at parse time), so label fixups in
//! the second pass see final instruction indices.

use std::collections::BTreeMap;
use std::fmt;

use crate::inst::{RvInst, RvOp, RvProgram};

/// Error produced by [`assemble`], carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RvAsmError {
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    msg: String,
}

impl RvAsmError {
    fn new(line: usize, msg: impl Into<String>) -> RvAsmError {
        RvAsmError { line, msg: msg.into() }
    }
}

impl fmt::Display for RvAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for RvAsmError {}

/// Parse an integer register: `x0..x31` or any ABI name (`zero`, `ra`,
/// `sp`, `gp`, `tp`, `t0..t6`, `s0`/`fp`, `s1..s11`, `a0..a7`).
fn parse_reg(tok: &str, line: usize) -> Result<u8, RvAsmError> {
    let t = tok.trim();
    if let Some(num) = t.strip_prefix('x') {
        if let Ok(n) = num.parse::<u8>() {
            if n < 32 {
                return Ok(n);
            }
        }
    }
    let named = match t {
        "zero" => 0,
        "ra" => 1,
        "sp" => 2,
        "gp" => 3,
        "tp" => 4,
        "t0" => 5,
        "t1" => 6,
        "t2" => 7,
        "s0" | "fp" => 8,
        "s1" => 9,
        _ => {
            if let Some(n) = t.strip_prefix('a').and_then(|s| s.parse::<u8>().ok()) {
                if n < 8 {
                    return Ok(10 + n);
                }
            }
            if let Some(n) = t.strip_prefix('s').and_then(|s| s.parse::<u8>().ok()) {
                if (2..=11).contains(&n) {
                    return Ok(16 + n);
                }
            }
            if let Some(n) = t.strip_prefix('t').and_then(|s| s.parse::<u8>().ok()) {
                if (3..=6).contains(&n) {
                    return Ok(25 + n);
                }
            }
            return Err(RvAsmError::new(line, format!("bad register `{t}`")));
        }
    };
    Ok(named)
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, RvAsmError> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = t.strip_prefix("0b") {
        i64::from_str_radix(bin, 2)
    } else {
        t.parse()
    }
    .map_err(|_| RvAsmError::new(line, format!("expected immediate, got `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

/// Immediate constrained to a range (inclusive).
fn parse_imm_in(tok: &str, line: usize, lo: i64, hi: i64) -> Result<i32, RvAsmError> {
    let v = parse_imm(tok, line)?;
    if v < lo || v > hi {
        return Err(RvAsmError::new(
            line,
            format!("immediate {v} out of range [{lo}, {hi}]"),
        ));
    }
    Ok(v as i32)
}

/// A 32-bit constant for `li`/`.word`: accepts the full signed and
/// unsigned 32-bit ranges.
fn parse_imm32(tok: &str, line: usize) -> Result<i32, RvAsmError> {
    let v = parse_imm(tok, line)?;
    if v < i64::from(i32::MIN) || v > i64::from(u32::MAX) {
        return Err(RvAsmError::new(line, format!("constant {v} exceeds 32 bits")));
    }
    Ok(v as u32 as i32)
}

/// Parses `imm(reg)` memory-operand syntax.
fn parse_mem(tok: &str, line: usize) -> Result<(i32, u8), RvAsmError> {
    let t = tok.trim();
    let open = t
        .find('(')
        .ok_or_else(|| RvAsmError::new(line, format!("expected imm(reg), got `{t}`")))?;
    if !t.ends_with(')') {
        return Err(RvAsmError::new(line, format!("expected imm(reg), got `{t}`")));
    }
    let imm = if open == 0 {
        0
    } else {
        parse_imm_in(&t[..open], line, -2048, 2047)?
    };
    let reg = parse_reg(&t[open + 1..t.len() - 1], line)?;
    Ok((imm, reg))
}

/// Expand `li rd, imm` into 1–2 real instructions.
fn expand_li(rd: u8, imm: i32, out: &mut Vec<RvInst>) {
    if (-2048..=2047).contains(&imm) {
        out.push(RvInst::i(RvOp::Addi, rd, 0, imm));
        return;
    }
    // hi/lo split with the +0x800 rounding trick so the 12-bit lo part is
    // a valid sign-extended addi immediate.
    let hi = (imm.wrapping_add(0x800) as u32) >> 12;
    let lo = imm.wrapping_sub((hi << 12) as i32);
    out.push(RvInst::u(RvOp::Lui, rd, hi as i32));
    if lo != 0 {
        out.push(RvInst::i(RvOp::Addi, rd, rd, lo));
    }
}

/// A branch/jump awaiting label resolution: `(inst index, label, line)`.
type Fixup = (u32, String, usize);

/// Assemble RV32 source text into an [`RvProgram`].
///
/// # Errors
///
/// Returns an [`RvAsmError`] pinpointing the offending line for syntax
/// errors, unknown mnemonics/registers, out-of-range immediates, or
/// undefined labels.
pub fn assemble(name: &str, src: &str) -> Result<RvProgram, RvAsmError> {
    let mut prog = RvProgram::new(name);
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut fixups: Vec<Fixup> = Vec::new();
    let mut entry_label: Option<(String, usize)> = None;

    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let mut line = raw;
        if let Some(i) = line.find(['#', ';']) {
            line = &line[..i];
        }
        let mut line = line.trim();
        while let Some(colon) = line.find(':') {
            let (label, rest) = line.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            let idx = prog.insts.len() as u32;
            labels.insert(label.to_owned(), idx);
            prog.labels.push((label.to_owned(), idx));
            line = rest[1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        if line.starts_with('.') {
            parse_directive(line, lineno, &mut prog, &mut entry_label)?;
            continue;
        }

        let (mnemonic, rest) = match line.find(char::is_whitespace) {
            Some(i) => (&line[..i], line[i..].trim()),
            None => (line, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let before = prog.insts.len() as u32;
        if let Some(label) = parse_inst(mnemonic, &ops, lineno, &mut prog.insts)? {
            fixups.push((before, label, lineno));
        }
    }

    for (idx, label, lineno) in fixups {
        let target = *labels
            .get(&label)
            .ok_or_else(|| RvAsmError::new(lineno, format!("undefined label `{label}`")))?;
        let offset = (i64::from(target) - i64::from(idx)) * 4;
        if offset < i64::from(i32::MIN) || offset > i64::from(i32::MAX) {
            return Err(RvAsmError::new(lineno, "branch offset overflow"));
        }
        prog.insts[idx as usize].imm = offset as i32;
    }
    if let Some((label, lineno)) = entry_label {
        prog.entry = *labels
            .get(&label)
            .ok_or_else(|| RvAsmError::new(lineno, format!("undefined entry label `{label}`")))?;
    } else if let Some(&e) = labels.get("_start") {
        prog.entry = e;
    }
    if prog.insts.is_empty() {
        return Err(RvAsmError::new(0, "program is empty"));
    }
    Ok(prog)
}

fn parse_directive(
    line: &str,
    lineno: usize,
    prog: &mut RvProgram,
    entry_label: &mut Option<(String, usize)>,
) -> Result<(), RvAsmError> {
    let (dir, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    };
    match dir {
        ".entry" | ".global" | ".globl" => {
            if dir == ".entry" {
                *entry_label = Some((rest.to_owned(), lineno));
            }
            Ok(())
        }
        ".text" | ".data" | ".section" | ".align" | ".option" => Ok(()),
        ".byte" | ".word" => {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() < 2 {
                return Err(RvAsmError::new(lineno, format!("{dir} takes `addr, value...`")));
            }
            let mut addr = parse_imm32(parts[0], lineno)? as u32;
            for v in &parts[1..] {
                if dir == ".byte" {
                    let b = parse_imm_in(v, lineno, -128, 255)? as u8;
                    prog.data.push((addr, b));
                    addr = addr.wrapping_add(1);
                } else {
                    let w = parse_imm32(v, lineno)? as u32;
                    for (k, byte) in w.to_le_bytes().into_iter().enumerate() {
                        prog.data.push((addr.wrapping_add(k as u32), byte));
                    }
                    addr = addr.wrapping_add(4);
                }
            }
            Ok(())
        }
        ".ascii" | ".asciz" => {
            // `.ascii addr, "text"` — bytes at addr; `.asciz` appends NUL.
            let comma = rest
                .find(',')
                .ok_or_else(|| RvAsmError::new(lineno, format!("{dir} takes `addr, \"text\"`")))?;
            let mut addr = parse_imm32(&rest[..comma], lineno)? as u32;
            let text = rest[comma + 1..].trim();
            let inner = text
                .strip_prefix('"')
                .and_then(|t| t.strip_suffix('"'))
                .ok_or_else(|| RvAsmError::new(lineno, "string must be double-quoted"))?;
            for b in inner.bytes() {
                prog.data.push((addr, b));
                addr = addr.wrapping_add(1);
            }
            if dir == ".asciz" {
                prog.data.push((addr, 0));
            }
            Ok(())
        }
        _ => Err(RvAsmError::new(lineno, format!("unknown directive `{dir}`"))),
    }
}

/// Parse one mnemonic + operands, appending its expansion to `out`.
/// Returns the label a trailing branch/jump needs patched, if any.
fn parse_inst(
    mnemonic: &str,
    ops: &[&str],
    line: usize,
    out: &mut Vec<RvInst>,
) -> Result<Option<String>, RvAsmError> {
    use RvOp::*;

    let expect = |n: usize| -> Result<(), RvAsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(RvAsmError::new(
                line,
                format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
            ))
        }
    };
    let reg = |i: usize| parse_reg(ops[i], line);

    let r_type = |op: RvOp| -> Result<RvInst, RvAsmError> {
        expect(3)?;
        Ok(RvInst::r(op, reg(0)?, reg(1)?, reg(2)?))
    };
    let i_type = |op: RvOp| -> Result<RvInst, RvAsmError> {
        expect(3)?;
        Ok(RvInst::i(op, reg(0)?, reg(1)?, parse_imm_in(ops[2], line, -2048, 2047)?))
    };
    let shift = |op: RvOp| -> Result<RvInst, RvAsmError> {
        expect(3)?;
        Ok(RvInst::i(op, reg(0)?, reg(1)?, parse_imm_in(ops[2], line, 0, 31)?))
    };
    let load = |op: RvOp| -> Result<RvInst, RvAsmError> {
        expect(2)?;
        let (imm, base) = parse_mem(ops[1], line)?;
        Ok(RvInst::load(op, reg(0)?, imm, base))
    };
    let store = |op: RvOp| -> Result<RvInst, RvAsmError> {
        expect(2)?;
        let (imm, base) = parse_mem(ops[1], line)?;
        Ok(RvInst::store(op, reg(0)?, imm, base))
    };
    // Two-register branch; the label is returned for fixup.
    let branch = |op: RvOp| -> Result<(RvInst, String), RvAsmError> {
        expect(3)?;
        Ok((RvInst::branch(op, reg(0)?, reg(1)?, 0), ops[2].to_owned()))
    };
    // Compare-to-zero branch pseudo `bXXz rs, label`.
    let branch_z = |op: RvOp, swap: bool| -> Result<(RvInst, String), RvAsmError> {
        expect(2)?;
        let rs = reg(0)?;
        let (rs1, rs2) = if swap { (0, rs) } else { (rs, 0) };
        Ok((RvInst::branch(op, rs1, rs2, 0), ops[1].to_owned()))
    };

    let mut pending: Option<String> = None;
    match mnemonic {
        "add" => out.push(r_type(Add)?),
        "sub" => out.push(r_type(Sub)?),
        "sll" => out.push(r_type(Sll)?),
        "slt" => out.push(r_type(Slt)?),
        "sltu" => out.push(r_type(Sltu)?),
        "xor" => out.push(r_type(Xor)?),
        "srl" => out.push(r_type(Srl)?),
        "sra" => out.push(r_type(Sra)?),
        "or" => out.push(r_type(Or)?),
        "and" => out.push(r_type(And)?),
        "mul" => out.push(r_type(Mul)?),
        "mulh" => out.push(r_type(Mulh)?),
        "mulhsu" => out.push(r_type(Mulhsu)?),
        "mulhu" => out.push(r_type(Mulhu)?),
        "div" => out.push(r_type(Div)?),
        "divu" => out.push(r_type(Divu)?),
        "rem" => out.push(r_type(Rem)?),
        "remu" => out.push(r_type(Remu)?),
        "addi" => out.push(i_type(Addi)?),
        "slti" => out.push(i_type(Slti)?),
        "sltiu" => out.push(i_type(Sltiu)?),
        "xori" => out.push(i_type(Xori)?),
        "ori" => out.push(i_type(Ori)?),
        "andi" => out.push(i_type(Andi)?),
        "slli" => out.push(shift(Slli)?),
        "srli" => out.push(shift(Srli)?),
        "srai" => out.push(shift(Srai)?),
        "lb" => out.push(load(Lb)?),
        "lh" => out.push(load(Lh)?),
        "lw" => out.push(load(Lw)?),
        "lbu" => out.push(load(Lbu)?),
        "lhu" => out.push(load(Lhu)?),
        "sb" => out.push(store(Sb)?),
        "sh" => out.push(store(Sh)?),
        "sw" => out.push(store(Sw)?),
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            let op = match mnemonic {
                "beq" => Beq,
                "bne" => Bne,
                "blt" => Blt,
                "bge" => Bge,
                "bltu" => Bltu,
                _ => Bgeu,
            };
            let (inst, label) = branch(op)?;
            out.push(inst);
            pending = Some(label);
        }
        // `bgt/ble/bgtu/bleu rs, rt, label` — swapped-operand pseudos.
        "bgt" | "ble" | "bgtu" | "bleu" => {
            expect(3)?;
            let op = match mnemonic {
                "bgt" => Blt,
                "ble" => Bge,
                "bgtu" => Bltu,
                _ => Bgeu,
            };
            out.push(RvInst::branch(op, reg(1)?, reg(0)?, 0));
            pending = Some(ops[2].to_owned());
        }
        "beqz" => {
            let (inst, label) = branch_z(Beq, false)?;
            out.push(inst);
            pending = Some(label);
        }
        "bnez" => {
            let (inst, label) = branch_z(Bne, false)?;
            out.push(inst);
            pending = Some(label);
        }
        "bltz" => {
            let (inst, label) = branch_z(Blt, false)?;
            out.push(inst);
            pending = Some(label);
        }
        "bgez" => {
            let (inst, label) = branch_z(Bge, false)?;
            out.push(inst);
            pending = Some(label);
        }
        "bgtz" => {
            let (inst, label) = branch_z(Blt, true)?;
            out.push(inst);
            pending = Some(label);
        }
        "blez" => {
            let (inst, label) = branch_z(Bge, true)?;
            out.push(inst);
            pending = Some(label);
        }
        "lui" => {
            expect(2)?;
            out.push(RvInst::u(Lui, reg(0)?, parse_imm_in(ops[1], line, 0, 0xf_ffff)?));
        }
        "auipc" => {
            expect(2)?;
            out.push(RvInst::u(Auipc, reg(0)?, parse_imm_in(ops[1], line, 0, 0xf_ffff)?));
        }
        "jal" => match ops.len() {
            1 => {
                out.push(RvInst::jal(1, 0));
                pending = Some(ops[0].to_owned());
            }
            2 => {
                out.push(RvInst::jal(reg(0)?, 0));
                pending = Some(ops[1].to_owned());
            }
            n => {
                return Err(RvAsmError::new(
                    line,
                    format!("`jal` expects 1 or 2 operands, got {n}"),
                ))
            }
        },
        "jalr" => match ops.len() {
            1 => out.push(RvInst::i(Jalr, 1, reg(0)?, 0)),
            2 => {
                let (imm, base) = parse_mem(ops[1], line)?;
                out.push(RvInst::i(Jalr, reg(0)?, base, imm));
            }
            3 => out.push(RvInst::i(
                Jalr,
                reg(0)?,
                reg(1)?,
                parse_imm_in(ops[2], line, -2048, 2047)?,
            )),
            n => {
                return Err(RvAsmError::new(
                    line,
                    format!("`jalr` expects 1-3 operands, got {n}"),
                ))
            }
        },
        "j" => {
            expect(1)?;
            out.push(RvInst::jal(0, 0));
            pending = Some(ops[0].to_owned());
        }
        "call" => {
            expect(1)?;
            out.push(RvInst::jal(1, 0));
            pending = Some(ops[0].to_owned());
        }
        "jr" => {
            expect(1)?;
            out.push(RvInst::i(Jalr, 0, reg(0)?, 0));
        }
        "ret" => {
            expect(0)?;
            out.push(RvInst::i(Jalr, 0, 1, 0));
        }
        "li" => {
            expect(2)?;
            expand_li(reg(0)?, parse_imm32(ops[1], line)?, out);
        }
        "mv" => {
            expect(2)?;
            out.push(RvInst::i(Addi, reg(0)?, reg(1)?, 0));
        }
        "not" => {
            expect(2)?;
            out.push(RvInst::i(Xori, reg(0)?, reg(1)?, -1));
        }
        "neg" => {
            expect(2)?;
            out.push(RvInst::r(Sub, reg(0)?, 0, reg(1)?));
        }
        "seqz" => {
            expect(2)?;
            out.push(RvInst::i(Sltiu, reg(0)?, reg(1)?, 1));
        }
        "snez" => {
            expect(2)?;
            out.push(RvInst::r(Sltu, reg(0)?, 0, reg(1)?));
        }
        "nop" => {
            expect(0)?;
            out.push(RvInst::i(Addi, 0, 0, 0));
        }
        "fence" => out.push(RvInst::sys(Fence)),
        "ecall" => {
            expect(0)?;
            out.push(RvInst::sys(Ecall));
        }
        "ebreak" => {
            expect(0)?;
            out.push(RvInst::sys(Ebreak));
        }
        _ => {
            return Err(RvAsmError::new(line, format!("unknown mnemonic `{mnemonic}`")));
        }
    }
    Ok(pending)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_basic_shapes() {
        let p = assemble(
            "t",
            r"
            _start:
                addi t0, zero, 5
                add  a0, t0, t0
                lw   t1, 8(sp)
                sw   t1, -4(sp)
                beq  t0, t1, done
                jal  ra, done
            done:
                ebreak
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 7);
        assert_eq!(p.entry, 0);
        // beq at index 4 jumps to 6: offset (6-4)*4 = 8.
        assert_eq!(p.insts[4].imm, 8);
        assert_eq!(p.insts[5].imm, 4);
    }

    #[test]
    fn li_expansion() {
        let small = assemble("t", "li a0, -7\nebreak").unwrap();
        assert_eq!(small.insts[0], RvInst::i(RvOp::Addi, 10, 0, -7));

        let big = assemble("t", "li a0, 0x12345678\nebreak").unwrap();
        assert_eq!(big.insts[0].op, RvOp::Lui);
        assert_eq!(big.insts[1].op, RvOp::Addi);
        // lui places hi s.t. hi<<12 + lo == value.
        let hi = big.insts[0].imm as u32;
        let lo = big.insts[1].imm;
        assert_eq!((hi << 12).wrapping_add(lo as u32), 0x1234_5678);

        let round = assemble("t", "li a0, 0x10000\nebreak").unwrap();
        // exact multiple of 0x1000: single lui.
        assert_eq!(round.insts[0].op, RvOp::Lui);
        assert_eq!(round.insts[1].op, RvOp::Ebreak);
    }

    #[test]
    fn li_expansion_keeps_labels_aligned() {
        let p = assemble(
            "t",
            "li a0, 0x12345678\ntarget:\nadd a1, a0, a0\nj target\nebreak",
        )
        .unwrap();
        // li expands to 2 insts, so `target` is index 2 and j (index 3)
        // branches back by -4 bytes.
        assert_eq!(p.insts[3].imm, -4);
    }

    #[test]
    fn pseudo_branches() {
        let p = assemble("t", "top: beqz a0, top\nbgtz a1, top\nebreak").unwrap();
        assert_eq!(p.insts[0], RvInst::branch(RvOp::Beq, 10, 0, 0));
        assert_eq!(p.insts[1], RvInst::branch(RvOp::Blt, 0, 11, -4));
    }

    #[test]
    fn abi_and_numeric_registers_agree() {
        let p = assemble("t", "add x10, x5, x31\nadd a0, t0, t6\nebreak").unwrap();
        assert_eq!(p.insts[0], p.insts[1]);
    }

    #[test]
    fn data_directives() {
        let p = assemble(
            "t",
            ".byte 0x100, 1, 2\n.word 0x200, 0x11223344\n.asciz 0x300, \"hi\"\nebreak",
        )
        .unwrap();
        assert_eq!(p.data[0], (0x100, 1));
        assert_eq!(p.data[1], (0x101, 2));
        assert_eq!(p.data[2], (0x200, 0x44));
        assert_eq!(p.data[5], (0x203, 0x11));
        assert_eq!(p.data[6], (0x300, b'h'));
        assert_eq!(p.data[8], (0x302, 0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("t", "nop\nbogus a0, a1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));

        let err = assemble("t", "addi a0, a1, 99999\nebreak").unwrap_err();
        assert_eq!(err.line, 1);

        let err = assemble("t", "beq a0, a1, nowhere\nebreak").unwrap_err();
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn entry_defaults_to_start_label() {
        let p = assemble("t", "nop\n_start:\nebreak").unwrap();
        assert_eq!(p.entry, 1);
        let p = assemble("t", ".entry main\nnop\nmain:\nebreak").unwrap();
        assert_eq!(p.entry, 1);
    }
}

//! # mos-bench
//!
//! Criterion benchmark harness. Each bench target regenerates one of the
//! paper's tables/figures at a reduced instruction budget and *prints the
//! same rows the paper reports* alongside the timing measurement:
//!
//! * `benches/figures.rs` — `table2`, `fig6`, `fig7`, `fig13`, `fig14`,
//!   `fig15`, `fig16`;
//! * `benches/ablations.rs` — detection delay, cycle heuristic,
//!   last-arriving-operand filter, independent MOPs, MOP size;
//! * `benches/components.rs` — microbenchmarks of the substrates
//!   (detector step, issue-queue cycle, full-pipeline throughput).
//!
//! Run with `cargo bench --workspace`; single figures via
//! `cargo bench -p mos-bench --bench figures -- fig14`.

/// Committed-instruction budget per simulated configuration inside the
/// benches (kept small so a full `cargo bench` stays tractable).
pub const BENCH_INSTS: u64 = 20_000;

/// The benchmark subset used for per-figure timing measurements (the
/// printed tables still cover all twelve).
pub const TIMING_BENCH: &str = "gzip";

//! Ablation benches for the design choices DESIGN.md calls out: each
//! group prints the ablation's result rows, then measures one arm.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mos_bench::{BENCH_INSTS, TIMING_BENCH};
use mos_core::{CycleDetection, WakeupStyle};
use mos_experiments::{ablations, runner};
use mos_sim::MachineConfig;

fn mop_cfg() -> MachineConfig {
    MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1)
}

fn bench_detection_delay(c: &mut Criterion) {
    println!("\n{}", ablations::detection_delay(BENCH_INSTS));
    c.bench_function("ablation_detection_delay", |b| {
        let mut cfg = mop_cfg();
        cfg.sched.mop.detection_delay = 100;
        b.iter(|| black_box(runner::run_benchmark(TIMING_BENCH, cfg.clone(), BENCH_INSTS)))
    });
}

fn bench_cycle_heuristic(c: &mut Criterion) {
    println!("\n{}", ablations::cycle_heuristic(BENCH_INSTS));
    c.bench_function("ablation_cycle_heuristic", |b| {
        let mut cfg = mop_cfg();
        cfg.sched.mop.cycle_detection = CycleDetection::Precise;
        b.iter(|| black_box(runner::run_benchmark(TIMING_BENCH, cfg.clone(), BENCH_INSTS)))
    });
}

fn bench_last_arrival(c: &mut Criterion) {
    println!("\n{}", ablations::last_arrival_filter(BENCH_INSTS));
    c.bench_function("ablation_last_arriving", |b| {
        let mut cfg = mop_cfg();
        cfg.sched.mop.last_arrival_filter = false;
        b.iter(|| black_box(runner::run_benchmark(TIMING_BENCH, cfg.clone(), BENCH_INSTS)))
    });
}

fn bench_independent_mops(c: &mut Criterion) {
    println!("\n{}", ablations::independent_mops(BENCH_INSTS));
    c.bench_function("ablation_independent_mops", |b| {
        let mut cfg = mop_cfg();
        cfg.sched.mop.group_independent = false;
        b.iter(|| black_box(runner::run_benchmark(TIMING_BENCH, cfg.clone(), BENCH_INSTS)))
    });
}

fn bench_mop_size(c: &mut Criterion) {
    println!("\n{}", ablations::mop_size(BENCH_INSTS));
    c.bench_function("ablation_mop_size", |b| {
        let mut cfg = mop_cfg();
        cfg.sched.mop.max_mop_size = 4;
        b.iter(|| black_box(runner::run_benchmark(TIMING_BENCH, cfg.clone(), BENCH_INSTS)))
    });
}

criterion_group! {
    name = ablation_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_detection_delay, bench_cycle_heuristic, bench_last_arrival,
              bench_independent_mops, bench_mop_size
}
criterion_main!(ablation_benches);

//! One bench target per table/figure of the paper's evaluation. Each
//! group first regenerates and prints the figure's rows (at the bench
//! instruction budget), then measures the cost of one representative
//! simulation so regressions in simulator throughput are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mos_bench::{BENCH_INSTS, TIMING_BENCH};
use mos_core::WakeupStyle;
use mos_experiments::{fig13, fig14, fig15, fig16, fig6, fig7, runner, tables};
use mos_sim::MachineConfig;

fn bench_table2(c: &mut Criterion) {
    println!("\n{}", tables::table1());
    println!("{}", tables::table2(BENCH_INSTS));
    c.bench_function("table2_base_ipc", |b| {
        b.iter(|| {
            black_box(runner::run_benchmark(
                TIMING_BENCH,
                MachineConfig::base_32(),
                BENCH_INSTS,
            ))
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    println!("\n{}", fig6::run(BENCH_INSTS as usize));
    c.bench_function("fig6_dependence_distance", |b| {
        b.iter(|| black_box(fig6::analyze_one(TIMING_BENCH, BENCH_INSTS as usize)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    println!("\n{}", fig7::run(BENCH_INSTS as usize));
    c.bench_function("fig7_mop_size", |b| {
        b.iter(|| black_box(fig7::analyze_one(TIMING_BENCH, BENCH_INSTS as usize)))
    });
}

fn bench_fig13(c: &mut Criterion) {
    println!("\n{}", fig13::run(BENCH_INSTS));
    c.bench_function("fig13_grouped", |b| {
        b.iter(|| {
            black_box(runner::run_benchmark(
                TIMING_BENCH,
                MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
                BENCH_INSTS,
            ))
        })
    });
}

fn bench_fig14(c: &mut Criterion) {
    println!("\n{}", fig14::run(BENCH_INSTS));
    c.bench_function("fig14_vanilla", |b| {
        b.iter(|| {
            black_box(runner::run_benchmark(
                TIMING_BENCH,
                MachineConfig::macro_op(WakeupStyle::WiredOr, None, 0),
                BENCH_INSTS,
            ))
        })
    });
}

fn bench_fig15(c: &mut Criterion) {
    println!("\n{}", fig15::run(BENCH_INSTS));
    c.bench_function("fig15_contention", |b| {
        b.iter(|| {
            black_box(runner::run_benchmark(
                TIMING_BENCH,
                MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 2),
                BENCH_INSTS,
            ))
        })
    });
}

fn bench_fig16(c: &mut Criterion) {
    println!("\n{}", fig16::run(BENCH_INSTS));
    c.bench_function("fig16_selectfree", |b| {
        b.iter(|| {
            black_box(runner::run_benchmark(
                TIMING_BENCH,
                MachineConfig::select_free_scoreboard_32(),
                BENCH_INSTS,
            ))
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_table2, bench_fig6, bench_fig7, bench_fig13, bench_fig14,
              bench_fig15, bench_fig16
}
criterion_main!(figures);

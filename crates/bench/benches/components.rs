//! Microbenchmarks of the individual substrates: MOP detection matrix
//! steps, issue-queue wakeup/select cycles, branch prediction, cache
//! accesses, trace generation, and end-to-end pipeline throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mos_core::detect::{DetectInst, MopDetector};
use mos_core::queue::IssueQueue;
use mos_core::{MopConfig, SchedConfig, SchedUop, SchedulerKind, Tag, UopId, WakeupStyle};
use mos_isa::{InstClass, Opcode, Reg, StaticInst};
use mos_sim::{MachineConfig, Simulator};
use mos_workload::spec2000;

fn bench_detector(c: &mut Criterion) {
    let group: Vec<DetectInst> = (0..4u32)
        .map(|i| {
            let inst = if i % 2 == 0 {
                StaticInst::addi(Reg::int(1 + i as u8), Reg::int(9), 1)
            } else {
                StaticInst::alu(Opcode::Sub, Reg::int(5 + i as u8), Reg::int(i as u8), Reg::int(9))
            };
            DetectInst::from_static(i, &inst, false, 0x40)
        })
        .collect();
    c.bench_function("component_detector_step", |b| {
        let mut det = MopDetector::new(MopConfig::default(), None, 4);
        b.iter(|| black_box(det.step(&group, |_| false, |_, _| false)))
    });
}

fn bench_issue_queue(c: &mut Criterion) {
    c.bench_function("component_queue_cycle", |b| {
        let cfg = SchedConfig {
            kind: SchedulerKind::MacroOp,
            wakeup: WakeupStyle::WiredOr,
            queue_entries: Some(32),
            ..SchedConfig::default()
        };
        let mut q = IssueQueue::new(cfg);
        let mut now = 0u64;
        let mut id = 0u64;
        b.iter(|| {
            // Keep the queue half-full with a rolling chain.
            while q.free_entries() > 16 {
                let mut u = SchedUop::leaf(UopId(id), InstClass::IntAlu, Some(Tag(id)));
                if id > 0 {
                    u.srcs = vec![Tag(id - 1)];
                }
                q.insert(u).expect("space available");
                id += 1;
            }
            let issued = q.cycle(now);
            now += 1;
            black_box(issued)
        })
    });

    // The allocation-free path the simulator's hot loop uses, measured
    // under select-free scheduling (speculative broadcasts stress the tag
    // table hardest) with periodic pruning as in the real cycle loop.
    c.bench_function("component_queue_cycle_into", |b| {
        let cfg = SchedConfig {
            kind: SchedulerKind::SelectFreeScoreboard,
            wakeup: WakeupStyle::WiredOr,
            queue_entries: Some(32),
            ..SchedConfig::default()
        };
        let mut q = IssueQueue::new(cfg);
        let mut out = Vec::new();
        let mut now = 0u64;
        let mut id = 0u64;
        b.iter(|| {
            while q.free_entries() > 16 {
                let mut u = SchedUop::leaf(UopId(id), InstClass::IntAlu, Some(Tag(id)));
                if id > 0 {
                    // Two-source fan-in exercises the wakeup CAM per entry.
                    u.srcs = vec![Tag(id - 1), Tag(id.saturating_sub(7))];
                }
                q.insert(u).expect("space available");
                id += 1;
            }
            q.cycle_into(now, &mut out);
            now += 1;
            if now.is_multiple_of(4096) {
                q.prune_tags(4096);
            }
            black_box(out.len())
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let spec = spec2000::by_name("gzip").expect("known benchmark");
    c.bench_function("component_trace_walk_10k", |b| {
        let prog = spec.build(42);
        b.iter(|| {
            let mut t = prog.walk(7);
            black_box(t.by_ref().take(10_000).count())
        })
    });
}

fn bench_pipeline_throughput(c: &mut Criterion) {
    let spec = spec2000::by_name("gzip").expect("known benchmark");
    c.bench_function("component_pipeline_10k_insts", |b| {
        b.iter(|| {
            let t = spec.trace(42);
            let mut sim = Simulator::new(
                MachineConfig::macro_op(WakeupStyle::WiredOr, Some(32), 1),
                t,
            );
            black_box(sim.run(10_000))
        })
    });
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(10);
    targets = bench_detector, bench_issue_queue, bench_trace_generation,
              bench_pipeline_throughput
}
criterion_main!(components);

//! Lightweight observability primitives for the simulator: power-of-two
//! (log₂) bucket histograms, interval time series, and a small registry
//! that assembles named counters/gauges/histograms into Markdown or JSON
//! run reports.
//!
//! Everything here is observation-only and dependency-free. The hot
//! simulator paths own their [`Hist`]s directly (no name lookups per
//! sample); the [`Registry`] exists at the reporting boundary, where
//! end-of-run values are gathered under stable names.
//!
//! Merging is plain commutative integer addition, so per-worker
//! histograms folded in job-index order render byte-identically for any
//! `--jobs N` — the same determinism contract as the experiments runner.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// Number of possible log₂ buckets for a `u64` sample (bucket 0 for the
/// value zero plus one bucket per bit position).
pub const MAX_BUCKETS: usize = 65;

/// A power-of-two-bucket histogram over `u64` samples.
///
/// Bucket 0 holds the value `0`; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`. The vector only grows as large as the highest
/// bucket actually hit, so an all-small distribution stays tiny.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hist {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

/// Log₂ bucket index for `v`: 0 for 0, `floor(log2(v)) + 1` otherwise.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive value range `[lo, hi]` covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (i - 1);
        let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
        (lo, hi)
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let i = bucket_index(v);
        if i >= self.buckets.len() {
            self.buckets.resize(i + 1, 0);
        }
        self.buckets[i] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self` (commutative and associative: elementwise
    /// bucket adds, summed counts, max of maxima).
    pub fn merge(&mut self, other: &Hist) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts, lowest bucket first (trailing zero buckets are
    /// not materialized).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), assuming samples are
    /// uniformly spread within each log₂ bucket (linear interpolation
    /// between the bucket bounds). Exact for single-value buckets, an
    /// estimate otherwise; clamped to the observed maximum. 0.0 when
    /// empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= target {
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                let (lo, hi) = bucket_bounds(i);
                let v = lo as f64 + frac * (hi - lo) as f64;
                return v.min(self.max as f64);
            }
            cum += c;
        }
        self.max as f64
    }

    /// JSON object: `{"count":..,"sum":..,"max":..,"mean":..,
    /// "p50":..,"p95":..,"p99":..,
    /// "buckets":[{"lo":..,"hi":..,"count":..},..]}` with empty buckets
    /// omitted.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.6},\
             \"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3},\"buckets\":[",
            self.count,
            self.sum,
            self.max,
            self.mean(),
            self.percentile(0.50),
            self.percentile(0.95),
            self.percentile(0.99),
        );
        let mut first = true;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            let (lo, hi) = bucket_bounds(i);
            let _ = write!(s, "{{\"lo\":{lo},\"hi\":{hi},\"count\":{c}}}");
        }
        s.push_str("]}");
        s
    }

    /// Text rendering: one `[lo, hi]` row per non-empty bucket with a
    /// proportional bar.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = bucket_bounds(i);
            let bar = "#".repeat((c * 40).div_ceil(peak) as usize);
            let _ = writeln!(s, "  [{lo:>8}, {hi:>8}] {c:>10} {bar}");
        }
        if self.count == 0 {
            s.push_str("  (empty)\n");
        }
        s
    }
}

/// One interval row: cumulative-counter deltas over `(start, end_cycle]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesRow {
    /// Last cycle covered by this row (a multiple of the interval except
    /// for a final partial row at the end of a run).
    pub end_cycle: u64,
    /// Column deltas, in [`Series::cols`] order.
    pub vals: Vec<u64>,
}

/// A periodic interval time series: fixed columns of integer counter
/// deltas, one row per elapsed interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Series {
    /// Snapshot period in cycles.
    pub interval: u64,
    /// Column names, parallel to every row's `vals`.
    pub cols: Vec<&'static str>,
    /// Rows in time order.
    pub rows: Vec<SeriesRow>,
}

impl Series {
    /// An empty series sampling every `interval` cycles.
    pub fn new(interval: u64, cols: Vec<&'static str>) -> Series {
        Series {
            interval: interval.max(1),
            cols,
            rows: Vec::new(),
        }
    }

    /// Append a row ending at `end_cycle`. `vals` must match `cols`.
    pub fn push(&mut self, end_cycle: u64, vals: Vec<u64>) {
        debug_assert_eq!(vals.len(), self.cols.len());
        self.rows.push(SeriesRow { end_cycle, vals });
    }

    /// Sum of one column across all rows (`None` for unknown columns) —
    /// the reconciliation hook: a delta column must total the cumulative
    /// end-of-run counter.
    pub fn column_total(&self, col: &str) -> Option<u64> {
        let i = self.cols.iter().position(|&c| c == col)?;
        Some(self.rows.iter().map(|r| r.vals[i]).sum())
    }

    /// JSON object:
    /// `{"interval":..,"cols":[..],"rows":[{"end_cycle":..,"vals":[..]},..]}`.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"interval\":{},\"cols\":[", self.interval);
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{c}\"");
        }
        s.push_str("],\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let vals: Vec<String> = r.vals.iter().map(u64::to_string).collect();
            let _ = write!(
                s,
                "{{\"end_cycle\":{},\"vals\":[{}]}}",
                r.end_cycle,
                vals.join(",")
            );
        }
        s.push_str("]}");
        s
    }
}

/// One named value gathered at the reporting boundary.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotonically accumulated integer.
    Counter(u64),
    /// A point-in-time or derived floating value.
    Gauge(f64),
    /// A full distribution.
    Hist(Hist),
}

/// An ordered registry of named metrics, assembled once per report.
/// Insertion order is preserved so renderings are deterministic.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    items: Vec<(String, Metric)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register a counter value under `name`.
    pub fn counter(&mut self, name: &str, v: u64) {
        self.items.push((name.to_owned(), Metric::Counter(v)));
    }

    /// Register a gauge value under `name`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.items.push((name.to_owned(), Metric::Gauge(v)));
    }

    /// Register a histogram under `name`.
    pub fn hist(&mut self, name: &str, h: Hist) {
        self.items.push((name.to_owned(), Metric::Hist(h)));
    }

    /// Registered `(name, metric)` pairs in insertion order.
    pub fn items(&self) -> &[(String, Metric)] {
        &self.items
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.items.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// JSON object mapping each name to its value (histograms to their
    /// [`Hist::to_json`] objects).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (name, m)) in self.items.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":");
            match m {
                Metric::Counter(v) => {
                    let _ = write!(s, "{v}");
                }
                Metric::Gauge(v) => {
                    let _ = write!(s, "{v:.6}");
                }
                Metric::Hist(h) => s.push_str(&h.to_json()),
            }
        }
        s.push('}');
        s
    }

    /// Markdown rendering: a `name | value` table for scalars followed by
    /// one histogram block per registered [`Hist`].
    pub fn to_markdown(&self) -> String {
        let mut s = String::from("| metric | value |\n|---|---|\n");
        for (name, m) in &self.items {
            match m {
                Metric::Counter(v) => {
                    let _ = writeln!(s, "| {name} | {v} |");
                }
                Metric::Gauge(v) => {
                    let _ = writeln!(s, "| {name} | {v:.4} |");
                }
                Metric::Hist(_) => {}
            }
        }
        for (name, m) in &self.items {
            if let Metric::Hist(h) = m {
                let _ = writeln!(
                    s,
                    "\n**{name}** (n={}, mean={:.2}, p50={:.1}, p95={:.1}, p99={:.1}, max={})\n\n```text\n{}```",
                    h.count(),
                    h.mean(),
                    h.percentile(0.50),
                    h.percentile(0.95),
                    h.percentile(0.99),
                    h.max(),
                    h.render()
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Value 0 lives alone in bucket 0; each 2^k starts a new bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for k in 1..63 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v - 1), k, "2^{k}-1 ends bucket {k}");
            assert_eq!(bucket_index(v), k + 1, "2^{k} starts bucket {}", k + 1);
            assert_eq!(bucket_index(v + 1), k + 1);
        }
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        assert_eq!(bucket_bounds(0), (0, 0));
        for i in 1..MAX_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            let (prev_lo, prev_hi) = bucket_bounds(i - 1);
            assert!(prev_hi < lo && prev_lo <= prev_hi);
        }
        assert_eq!(bucket_bounds(64).1, u64::MAX);
    }

    #[test]
    fn record_accumulates_count_sum_max() {
        let mut h = Hist::new();
        for v in [0, 1, 2, 3, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1021);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.buckets()[0], 1); // the 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 1); // 7
        assert_eq!(h.buckets()[4], 1); // 8
        assert_eq!(h.buckets()[10], 1); // 1000 in [512, 1023]
    }

    #[test]
    fn merge_is_commutative_and_matches_single_stream() {
        let all: Vec<u64> = (0..500).map(|i| (i * i) % 777).collect();
        let mut whole = Hist::new();
        for &v in &all {
            whole.record(v);
        }
        // Split across 3 workers, merge in both orders.
        let parts: Vec<Hist> = all
            .chunks(167)
            .map(|c| {
                let mut h = Hist::new();
                for &v in c {
                    h.record(v);
                }
                h
            })
            .collect();
        let mut fwd = Hist::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Hist::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, whole);
        assert_eq!(rev, whole);
        assert_eq!(fwd.to_json(), rev.to_json());
    }

    #[test]
    fn series_column_totals_reconcile() {
        let mut s = Series::new(100, vec!["cycles", "committed"]);
        s.push(100, vec![100, 42]);
        s.push(200, vec![100, 58]);
        s.push(250, vec![50, 10]); // final partial row
        assert_eq!(s.column_total("cycles"), Some(250));
        assert_eq!(s.column_total("committed"), Some(110));
        assert_eq!(s.column_total("nope"), None);
        let j = s.to_json();
        assert!(j.contains("\"interval\":100"));
        assert!(j.contains("{\"end_cycle\":250,\"vals\":[50,10]}"));
    }

    #[test]
    fn registry_renders_json_and_markdown() {
        let mut r = Registry::new();
        r.counter("cycles", 1000);
        r.gauge("ipc", 1.5);
        let mut h = Hist::new();
        h.record(4);
        r.hist("occupancy", h);
        let j = r.to_json();
        assert!(j.contains("\"cycles\":1000"));
        assert!(j.contains("\"ipc\":1.500000"));
        assert!(j.contains("\"occupancy\":{\"count\":1"));
        let md = r.to_markdown();
        assert!(md.contains("| cycles | 1000 |"));
        assert!(md.contains("**occupancy**"));
        assert!(matches!(r.get("cycles"), Some(Metric::Counter(1000))));
    }

    #[test]
    fn empty_hist_is_safe() {
        let h = Hist::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert!(h.render().contains("(empty)"));
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(
            h.to_json(),
            "{\"count\":0,\"sum\":0,\"max\":0,\"mean\":0.000000,\
             \"p50\":0.000,\"p95\":0.000,\"p99\":0.000,\"buckets\":[]}"
        );
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        // 100 samples of the value 7 all land in the [4, 7] bucket; the
        // estimator assumes uniform spread inside it, so p50 is the
        // bucket midpoint and higher quantiles climb toward (and are
        // clamped by) the observed max.
        let mut h = Hist::new();
        for _ in 0..100 {
            h.record(7);
        }
        assert_eq!(h.percentile(0.50), 5.5);
        assert!((h.percentile(0.99) - 6.97).abs() < 1e-9);
        assert_eq!(h.percentile(1.0), 7.0, "p100 clamps to max");

        // Single-value buckets are exact: bucket 1 holds only [1, 1].
        let mut h = Hist::new();
        for _ in 0..10 {
            h.record(1);
        }
        assert_eq!(h.percentile(0.50), 1.0);
        assert_eq!(h.percentile(0.99), 1.0);

        // 90 samples in [0,0] and 10 in [8,15]: p50 sits in the zero
        // bucket, p95/p99 interpolate inside [8, 15], ordered and
        // bounded by the bucket.
        let mut h = Hist::new();
        for _ in 0..90 {
            h.record(0);
        }
        for v in 0..10 {
            h.record(8 + v % 8);
        }
        assert_eq!(h.percentile(0.50), 0.0);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!((8.0..=15.0).contains(&p95), "p95 {p95} inside the bucket");
        assert!(p95 <= p99, "quantiles are monotone");
        assert!(p99 <= h.max() as f64, "clamped to the observed max");
    }
}

//! Persisted run records: everything one archived simulation carries.
//!
//! A [`RunRecord`] is the unit the ledger stores under a run's
//! content-addressed key: the run identity, provenance (code version,
//! wall-clock time, host throughput), the flat sim-side totals the
//! differ compares, the CPI stack when slot accounting was on, and —
//! when saved from `mossim report --save` — the full run-report JSON
//! document embedded verbatim. Serialization goes through
//! [`crate::json`]'s canonical renderer, so a record file re-rendered
//! after a parse is byte-identical.

use mos_core::{SlotCause, SlotCounts};
use mos_sim::{CpiStack, SimStats};

use crate::json::{self, Value};
use crate::key::SCHEMA_VERSION;

/// The CPI-stack section of a record: issue width plus per-cause slots.
#[derive(Debug, Clone, PartialEq)]
pub struct CpiSection {
    /// Machine issue width (slots per cycle).
    pub issue_width: u64,
    /// `(cause name, slots)` in [`SlotCause::ALL`] order.
    pub slots: Vec<(String, u64)>,
}

impl CpiSection {
    /// Capture a [`CpiStack`]'s counts.
    pub fn from_stack(stack: &CpiStack) -> CpiSection {
        CpiSection {
            issue_width: stack.issue_width,
            slots: SlotCause::ALL
                .iter()
                .map(|&c| (c.name().to_string(), stack.slots.get(c)))
                .collect(),
        }
    }

    /// Rebuild a [`CpiStack`] for differential rendering. `label`
    /// becomes the stack's scheduler column header.
    pub fn to_stack(&self, bench: &str, label: &str, cycles: u64, committed: u64) -> CpiStack {
        let mut slots = SlotCounts::default();
        for (name, n) in &self.slots {
            if let Some(&cause) = SlotCause::ALL.iter().find(|c| c.name() == name) {
                slots.add(cause, *n);
            }
        }
        CpiStack {
            bench: bench.to_string(),
            sched: label.to_string(),
            cycles,
            committed,
            issue_width: self.issue_width,
            slots,
        }
    }
}

/// One archived run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Record schema version ([`SCHEMA_VERSION`] at save time).
    pub schema: u32,
    /// Content-addressed key (64 hex chars).
    pub key: String,
    /// Record kind: `"run"`, `"figure"`, or `"rv_probe"`.
    pub kind: String,
    /// Workload name (benchmark / kernel / rv program / figure).
    pub bench: String,
    /// Workload source: `"bench"`, `"kernel"`, `"rv"`, or `"sweep"`.
    pub source: String,
    /// Scheduler label (CLI vocabulary; `"all"` for sweeps).
    pub sched: String,
    /// Committed-instruction budget.
    pub insts: u64,
    /// Workload seed.
    pub seed: u64,
    /// Code version at save time (short git revision).
    pub git_rev: String,
    /// Save wall-clock time (Unix seconds).
    pub unix_time: u64,
    /// Host throughput of the archived run (simulated cycles per
    /// wall-clock second; advisory, never part of the key).
    pub host_cycles_per_sec: f64,
    /// Whether this record was served from the ledger instead of
    /// simulated (set on incremental-sweep hits).
    pub cached: bool,
    /// Scheduler kinds a sweep exercised (empty for single runs).
    pub sched_kinds: Vec<String>,
    /// Flat sim-side totals: `(metric name, value)` in a fixed order.
    pub totals: Vec<(String, f64)>,
    /// CPI stack, when slot accounting was enabled.
    pub cpi: Option<CpiSection>,
    /// Full `mossim report` JSON document, when saved from report mode.
    pub report: Option<Value>,
}

impl RunRecord {
    /// The flat totals a [`SimStats`] contributes to a record, in the
    /// order the differ displays them.
    pub fn totals_from_stats(stats: &SimStats) -> Vec<(String, f64)> {
        let u = |v: u64| v as f64;
        vec![
            ("cycles".into(), u(stats.cycles)),
            ("committed".into(), u(stats.committed)),
            ("ipc".into(), stats.ipc()),
            ("fetched".into(), u(stats.fetched)),
            ("wrong_path_fetched".into(), u(stats.wrong_path_fetched)),
            ("branches".into(), u(stats.branches)),
            ("mispredicts".into(), u(stats.mispredicts)),
            ("squashes".into(), u(stats.squashes)),
            ("loads".into(), u(stats.loads)),
            ("dl1_miss_rate".into(), stats.dl1_miss_rate()),
            ("stores".into(), u(stats.stores)),
            ("grouped_frac".into(), stats.grouped_frac()),
            ("mop_entries_issued".into(), u(stats.mop_entries_issued)),
            ("pointer_installs".into(), u(stats.pointers.0)),
            ("pointer_hits".into(), u(stats.pointer_hits)),
            ("issued_entries".into(), u(stats.queue.issued_entries)),
            ("issued_uops".into(), u(stats.queue.issued_uops)),
            ("load_replay_uops".into(), u(stats.queue.load_replay_uops)),
            ("mean_occupancy".into(), stats.queue.mean_occupancy()),
        ]
    }

    /// Value of a named total, if recorded.
    pub fn total(&self, name: &str) -> Option<f64> {
        self.totals
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The record as a JSON [`Value`] tree (canonical field order).
    pub fn to_value(&self) -> Value {
        let num = Value::Num;
        let s = |v: &str| Value::Str(v.to_string());
        let meta = Value::Obj(vec![
            ("bench".into(), s(&self.bench)),
            ("source".into(), s(&self.source)),
            ("sched".into(), s(&self.sched)),
            ("insts".into(), num(self.insts as f64)),
            ("seed".into(), num(self.seed as f64)),
        ]);
        let provenance = Value::Obj(vec![
            ("git_rev".into(), s(&self.git_rev)),
            ("unix_time".into(), num(self.unix_time as f64)),
            ("host_cycles_per_sec".into(), num(self.host_cycles_per_sec)),
            ("cached".into(), Value::Bool(self.cached)),
        ]);
        let totals = Value::Obj(
            self.totals
                .iter()
                .map(|(n, v)| (n.clone(), num(*v)))
                .collect(),
        );
        let cpi = match &self.cpi {
            Some(c) => Value::Obj(vec![
                ("issue_width".into(), num(c.issue_width as f64)),
                (
                    "causes".into(),
                    Value::Arr(
                        c.slots
                            .iter()
                            .map(|(name, n)| {
                                Value::Obj(vec![
                                    ("cause".into(), s(name)),
                                    ("slots".into(), num(*n as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            None => Value::Null,
        };
        Value::Obj(vec![
            ("schema".into(), num(self.schema as f64)),
            ("key".into(), s(&self.key)),
            ("kind".into(), s(&self.kind)),
            ("meta".into(), meta),
            ("provenance".into(), provenance),
            (
                "sched_kinds".into(),
                Value::Arr(self.sched_kinds.iter().map(|k| s(k)).collect()),
            ),
            ("totals".into(), totals),
            ("cpi".into(), cpi),
            (
                "report".into(),
                self.report.clone().unwrap_or(Value::Null),
            ),
        ])
    }

    /// The record as one compact JSON document.
    pub fn to_json(&self) -> String {
        json::render(&self.to_value())
    }

    /// Parse a record document back. Rejects unknown schema versions.
    pub fn parse(text: &str) -> Result<RunRecord, String> {
        let v = json::parse(text)?;
        let schema = field_u64(&v, "schema")? as u32;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "record schema {schema} does not match supported schema {SCHEMA_VERSION}"
            ));
        }
        let meta = v.get("meta").ok_or("missing meta")?;
        let prov = v.get("provenance").ok_or("missing provenance")?;
        let totals = match v.get("totals") {
            Some(Value::Obj(pairs)) => pairs
                .iter()
                .map(|(n, t)| {
                    t.as_num()
                        .map(|x| (n.clone(), x))
                        .ok_or_else(|| format!("total `{n}` is not a number"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing totals object".into()),
        };
        let cpi = match v.get("cpi") {
            Some(Value::Null) | None => None,
            Some(c) => {
                let causes = c
                    .get("causes")
                    .and_then(Value::as_arr)
                    .ok_or("cpi without causes array")?;
                Some(CpiSection {
                    issue_width: field_u64(c, "issue_width")?,
                    slots: causes
                        .iter()
                        .map(|e| {
                            let name = e
                                .get("cause")
                                .and_then(Value::as_str)
                                .ok_or("cause without name")?;
                            let slots = field_u64(e, "slots")?;
                            Ok::<_, String>((name.to_string(), slots))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                })
            }
        };
        let sched_kinds = match v.get("sched_kinds") {
            Some(Value::Arr(items)) => items
                .iter()
                .filter_map(|i| i.as_str().map(str::to_string))
                .collect(),
            _ => Vec::new(),
        };
        Ok(RunRecord {
            schema,
            key: field_str(&v, "key")?,
            kind: field_str(&v, "kind")?,
            bench: field_str(meta, "bench")?,
            source: field_str(meta, "source")?,
            sched: field_str(meta, "sched")?,
            insts: field_u64(meta, "insts")?,
            seed: field_u64(meta, "seed")?,
            git_rev: field_str(prov, "git_rev")?,
            unix_time: field_u64(prov, "unix_time")?,
            host_cycles_per_sec: prov
                .get("host_cycles_per_sec")
                .and_then(Value::as_num)
                .ok_or("provenance without host_cycles_per_sec")?,
            cached: matches!(prov.get("cached"), Some(Value::Bool(true))),
            sched_kinds,
            totals,
            cpi,
            report: match v.get("report") {
                Some(Value::Null) | None => None,
                Some(r) => Some(r.clone()),
            },
        })
    }
}

fn field_str(v: &Value, name: &str) -> Result<String, String> {
    v.get(name)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{name}`"))
}

fn field_u64(v: &Value, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field `{name}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(key: &str, cycles: u64) -> RunRecord {
        let stats = SimStats {
            cycles,
            committed: 900,
            fetched: 1200,
            branches: 100,
            mispredicts: 7,
            loads: 220,
            stores: 110,
            ..SimStats::default()
        };
        let mut slots = SlotCounts::default();
        slots.add(SlotCause::Useful, 900);
        slots.add(SlotCause::SchedLoop, 100);
        slots.add(SlotCause::Drained, 4 * cycles - 1000);
        RunRecord {
            schema: SCHEMA_VERSION,
            key: key.to_string(),
            kind: "run".into(),
            bench: "gzip".into(),
            source: "bench".into(),
            sched: "mop-wor".into(),
            insts: 1000,
            seed: 42,
            git_rev: "abc1234".into(),
            unix_time: 1_786_000_000,
            host_cycles_per_sec: 650_000.0,
            cached: false,
            sched_kinds: Vec::new(),
            totals: RunRecord::totals_from_stats(&stats),
            cpi: Some(CpiSection {
                issue_width: 4,
                slots: SlotCause::ALL
                    .iter()
                    .map(|&c| (c.name().to_string(), slots.get(c)))
                    .collect(),
            }),
            report: None,
        }
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let rec = sample("ab".repeat(32).as_str(), 1000);
        let once = rec.to_json();
        let back = RunRecord::parse(&once).expect("parses");
        assert_eq!(back, rec);
        assert_eq!(back.to_json(), once);
    }

    #[test]
    fn embedded_report_survives_round_trip() {
        let mut rec = sample("cd".repeat(32).as_str(), 1000);
        rec.report = Some(json::parse(r#"{"meta":{"bench":"gzip"},"series":null}"#).unwrap());
        let text = rec.to_json();
        let back = RunRecord::parse(&text).unwrap();
        assert_eq!(back.report, rec.report);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut rec = sample("ef".repeat(32).as_str(), 1000);
        rec.schema = SCHEMA_VERSION + 1;
        let err = RunRecord::parse(&rec.to_json()).unwrap_err();
        assert!(err.contains("schema"));
    }

    #[test]
    fn cpi_section_round_trips_through_stack() {
        let rec = sample("01".repeat(32).as_str(), 1000);
        let section = rec.cpi.as_ref().unwrap();
        let stack = section.to_stack("gzip", "mop-wor@abc", 1000, 900);
        assert_eq!(stack.slots.get(SlotCause::SchedLoop), 100);
        assert!(stack.check_conservation().is_ok());
        assert_eq!(CpiSection::from_stack(&stack).slots, section.slots);
    }
}

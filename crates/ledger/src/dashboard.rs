//! The regression dashboard: one self-contained document tying the
//! bench history and the ledger together.
//!
//! [`render`] takes the raw text of `results/bench_history.jsonl` plus
//! an open [`Ledger`] and produces Markdown with three sections: the
//! host-throughput trend across archived sweeps (aggregate and, when
//! recorded, the jobs=1 normalized figure), the latest per-figure
//! sim-side results (IPC and cache provenance), and the RV32
//! `sched_loop` share trend across code revisions. [`to_html`] wraps the
//! same content into a dependency-free HTML page for sharing.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, fmt_num, Value};
use crate::key::short;
use crate::record::RunRecord;
use crate::store::Ledger;

fn num(v: &Value, name: &str) -> Option<f64> {
    v.get(name).and_then(Value::as_num)
}

fn text<'a>(v: &'a Value, name: &str) -> &'a str {
    v.get(name).and_then(Value::as_str).unwrap_or("?")
}

/// Render the throughput-trend section from `bench_history.jsonl` text.
fn throughput_section(history: &str, out: &mut String) {
    out.push_str("## Host throughput trend\n\n");
    let entries: Vec<Value> = history
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| json::parse(l).ok())
        .collect();
    if entries.is_empty() {
        out.push_str("No bench history recorded yet — run `experiments perf`.\n\n");
        return;
    }
    out.push_str(
        "| git_rev | unix_time | insts | jobs | cycles/sec (aggregate) | cycles/sec (jobs=1) | probe ipc |\n",
    );
    out.push_str("|---|---:|---:|---:|---:|---:|---:|\n");
    for e in &entries {
        let jobs1 = num(e, "probe_cycles_per_sec_jobs1")
            .map_or_else(|| "—".to_string(), |v| fmt_num(v.round()));
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} |",
            text(e, "git_rev"),
            num(e, "unix_time").map_or_else(|| "?".into(), fmt_num),
            num(e, "insts").map_or_else(|| "?".into(), fmt_num),
            num(e, "jobs").map_or_else(|| "?".into(), fmt_num),
            num(e, "total_cycles_per_sec").map_or_else(|| "?".into(), |v| fmt_num(v.round())),
            jobs1,
            num(e, "probe_ipc").map_or_else(|| "?".into(), |v| format!("{v:.4}")),
        );
    }
    if let Some((first, last)) = entries.first().zip(entries.last()) {
        if let Some((a, b)) =
            num(first, "total_cycles_per_sec").zip(num(last, "total_cycles_per_sec"))
        {
            if a > 0.0 {
                let _ = writeln!(
                    out,
                    "\nAggregate throughput over the window: {:+.1}% ({} → {}).",
                    (b - a) / a * 100.0,
                    fmt_num(a.round()),
                    fmt_num(b.round()),
                );
            }
        }
    }
    out.push('\n');
}

/// Render the per-figure section: the latest archived record per figure
/// name, with IPC and cache provenance.
fn figures_section(ledger: &Ledger, out: &mut String) {
    out.push_str("## Figures (latest archived sweep per figure)\n\n");
    // Last save wins per bench name; the index is already in save order.
    let mut latest: BTreeMap<String, (u64, bool)> = BTreeMap::new();
    let mut keys: BTreeMap<String, String> = BTreeMap::new();
    for e in ledger.index() {
        if e.kind != "figure" {
            continue;
        }
        latest.insert(e.bench.clone(), (e.unix_time, e.cached));
        keys.insert(e.bench.clone(), e.key.clone());
    }
    if latest.is_empty() {
        out.push_str("No figure sweeps archived yet — run `experiments perf --ledger`.\n\n");
        return;
    }
    out.push_str("| figure | key | cycles | committed | ipc | git_rev | cached |\n");
    out.push_str("|---|---|---:|---:|---:|---|---|\n");
    for (bench, (_, cached)) in &latest {
        let key = &keys[bench];
        let Ok(rec) = ledger.load(key) else { continue };
        let cycles = rec.total("cycles").unwrap_or(0.0);
        let committed = rec.total("committed").unwrap_or(0.0);
        let ipc = if cycles > 0.0 { committed / cycles } else { 0.0 };
        let _ = writeln!(
            out,
            "| {bench} | {} | {} | {} | {ipc:.4} | {} | {} |",
            short(key),
            fmt_num(cycles),
            fmt_num(committed),
            rec.git_rev,
            if *cached { "yes" } else { "no" },
        );
    }
    out.push('\n');
}

/// Render the RV32 `sched_loop`-share trend: one row per archived
/// `rv_probe` record (i.e. per sweep/revision), one column per program.
fn rv_trend_section(ledger: &Ledger, out: &mut String) {
    out.push_str("## RV32 sched_loop share trend (macro-op scheduler)\n\n");
    let probes: Vec<RunRecord> = ledger
        .index()
        .iter()
        .filter(|e| e.kind == "rv_probe" && !e.cached)
        .filter_map(|e| ledger.load(&e.key).ok())
        .collect();
    if probes.is_empty() {
        out.push_str("No RV probes archived yet — run `experiments perf --ledger`.\n\n");
        return;
    }
    // Program columns: union across probes, in first-seen order.
    let mut programs: Vec<String> = Vec::new();
    for rec in &probes {
        for (name, _) in &rec.totals {
            if let Some(prog) = name.strip_prefix("sched_loop_mop.") {
                if !programs.iter().any(|p| p == prog) {
                    programs.push(prog.to_string());
                }
            }
        }
    }
    let _ = writeln!(out, "| git_rev | unix_time | {} |", programs.join(" | "));
    let _ = writeln!(out, "|---|---:|{}", "---:|".repeat(programs.len()));
    for rec in &probes {
        let cells: Vec<String> = programs
            .iter()
            .map(|p| {
                rec.total(&format!("sched_loop_mop.{p}"))
                    .map_or_else(|| "—".to_string(), |v| format!("{:.1}%", v * 100.0))
            })
            .collect();
        let _ = writeln!(
            out,
            "| {} | {} | {} |",
            rec.git_rev,
            rec.unix_time,
            cells.join(" | ")
        );
    }
    out.push('\n');
}

/// Render the full dashboard as Markdown.
pub fn render(history: &str, ledger: &Ledger) -> String {
    let mut out = String::from("# mopsched regression dashboard\n\n");
    let _ = writeln!(
        out,
        "Ledger: `{}` ({} archived save(s)).\n",
        ledger.root().display(),
        ledger.index().len()
    );
    throughput_section(history, &mut out);
    figures_section(ledger, &mut out);
    rv_trend_section(ledger, &mut out);
    out
}

/// Wrap dashboard Markdown into a self-contained HTML page (no external
/// assets; the Markdown is shown preformatted).
pub fn to_html(markdown: &str) -> String {
    let mut escaped = String::with_capacity(markdown.len());
    for c in markdown.chars() {
        match c {
            '&' => escaped.push_str("&amp;"),
            '<' => escaped.push_str("&lt;"),
            '>' => escaped.push_str("&gt;"),
            other => escaped.push(other),
        }
    }
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>mopsched regression dashboard</title>\n\
         <style>body{{font-family:ui-monospace,monospace;margin:2rem;background:#fafafa;color:#222}}\
         pre{{white-space:pre-wrap;line-height:1.45}}</style>\n</head>\n<body>\n<pre>\n{escaped}</pre>\n</body>\n</html>\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::SCHEMA_VERSION;

    fn temp_ledger(tag: &str) -> Ledger {
        let dir = std::env::temp_dir().join(format!(
            "mos_ledger_dash_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Ledger::open(dir)
    }

    fn record(kind: &str, bench: &str, key_fill: &str, totals: Vec<(String, f64)>) -> RunRecord {
        RunRecord {
            schema: SCHEMA_VERSION,
            key: key_fill.repeat(32),
            kind: kind.into(),
            bench: bench.into(),
            source: "sweep".into(),
            sched: "all".into(),
            insts: 1000,
            seed: 42,
            git_rev: "abc1234".into(),
            unix_time: 1_786_000_000,
            host_cycles_per_sec: 1.0,
            cached: false,
            sched_kinds: Vec::new(),
            totals,
            cpi: None,
            report: None,
        }
    }

    #[test]
    fn dashboard_covers_all_three_sections() {
        let ledger = temp_ledger("all");
        ledger
            .save(&record(
                "figure",
                "fig14",
                "aa",
                vec![("cycles".into(), 1000.0), ("committed".into(), 900.0)],
            ))
            .unwrap();
        ledger
            .save(&record(
                "rv_probe",
                "rv-suite",
                "bb",
                vec![
                    ("sched_loop_mop.rv_memcpy".into(), 0.12),
                    ("sched_loop_mop.rv_strlen".into(), 0.31),
                ],
            ))
            .unwrap();
        let history = concat!(
            r#"{"git_rev": "abc1234", "unix_time": 1786000000, "insts": 60000, "jobs": 4, "total_sim_cycles": 1000, "total_wall_seconds": 2.0, "total_cycles_per_sec": 500.0, "probe_ipc": 0.9}"#,
            "\n",
            r#"{"git_rev": "def5678", "unix_time": 1786000100, "insts": 60000, "jobs": 4, "total_sim_cycles": 1000, "total_wall_seconds": 1.0, "total_cycles_per_sec": 1000.0, "probe_cycles_per_sec_jobs1": 800.0, "probe_ipc": 0.9}"#,
            "\n"
        );
        let md = render(history, &ledger);
        assert!(md.contains("Host throughput trend"));
        assert!(md.contains("| def5678 |"));
        assert!(md.contains("+100.0%"));
        assert!(md.contains("| fig14 |"));
        assert!(md.contains("0.9000"));
        assert!(md.contains("rv_memcpy"));
        assert!(md.contains("12.0%"));

        let html = to_html(&md);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("&lt;") || !md.contains('<'));
        assert!(html.contains("rv_strlen"));
        let _ = std::fs::remove_dir_all(ledger.root());
    }

    #[test]
    fn empty_inputs_render_placeholders() {
        let ledger = temp_ledger("empty");
        let md = render("", &ledger);
        assert!(md.contains("No bench history recorded yet"));
        assert!(md.contains("No figure sweeps archived yet"));
        assert!(md.contains("No RV probes archived yet"));
        let _ = std::fs::remove_dir_all(ledger.root());
    }
}

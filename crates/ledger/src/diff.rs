//! Cross-run diffing with a noise-band verdict.
//!
//! Sim-side metrics (cycles, IPC, slot counts, …) are deterministic: the
//! same key must reproduce them bit-for-bit, so *any* sim-side delta
//! between two archived runs is real and reported as such. Host
//! throughput is the one advisory measurement — it moves with machine
//! load — so its delta is only flagged when it leaves a noise band
//! (default ±[`HOST_NOISE_BAND_PCT`]%), and even then it never makes a
//! diff "fail".

use std::fmt::Write as _;

use mos_sim::cpistack::compare_markdown;

use crate::json::fmt_num;
use crate::key::short;
use crate::record::RunRecord;

/// Default width of the host-throughput noise band, in percent.
pub const HOST_NOISE_BAND_PCT: f64 = 20.0;

/// Result of diffing two archived runs.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// The rendered side-by-side report.
    pub markdown: String,
    /// Number of sim-side metrics that differ (always real).
    pub sim_deltas: usize,
    /// Whether host throughput stayed inside the noise band.
    pub host_within_noise: bool,
}

fn delta_pct(a: f64, b: f64) -> Option<f64> {
    (a != 0.0).then(|| (b - a) / a * 100.0)
}

fn pct_cell(a: f64, b: f64) -> String {
    match delta_pct(a, b) {
        Some(p) => format!("{p:+.2}%"),
        None if b == 0.0 => "0.00%".to_string(),
        None => "n/a".to_string(),
    }
}

/// Diff two records: identity, sim-side totals, advisory host
/// throughput, and (when both carry one) a differential CPI stack.
/// `noise_pct` widens or narrows the host noise band.
pub fn diff(a: &RunRecord, b: &RunRecord, noise_pct: f64) -> DiffOutcome {
    let mut out = String::new();
    let la = format!("{}@{}", a.sched, short(&a.key));
    let lb = format!("{}@{}", b.sched, short(&b.key));

    let _ = writeln!(out, "# Run diff: {la} vs {lb}\n");
    out.push_str("| field | A | B |\n|---|---|---|\n");
    for (name, va, vb) in [
        ("key", short(&a.key).to_string(), short(&b.key).to_string()),
        ("kind", a.kind.clone(), b.kind.clone()),
        ("bench", a.bench.clone(), b.bench.clone()),
        ("sched", a.sched.clone(), b.sched.clone()),
        ("insts", a.insts.to_string(), b.insts.to_string()),
        ("seed", a.seed.to_string(), b.seed.to_string()),
        ("git_rev", a.git_rev.clone(), b.git_rev.clone()),
        ("unix_time", a.unix_time.to_string(), b.unix_time.to_string()),
        (
            "cached",
            a.cached.to_string(),
            b.cached.to_string(),
        ),
    ] {
        let _ = writeln!(out, "| {name} | {va} | {vb} |");
    }

    // Sim-side totals: union of both records' metric names, A's order
    // first so two same-shape records diff in a stable layout.
    let mut names: Vec<&str> = a.totals.iter().map(|(n, _)| n.as_str()).collect();
    for (n, _) in &b.totals {
        if !names.contains(&n.as_str()) {
            names.push(n);
        }
    }
    let mut sim_deltas = 0usize;
    out.push_str("\n## Sim-side metrics (deterministic — any delta is real)\n\n");
    out.push_str("| metric | A | B | delta |\n|---|---:|---:|---:|\n");
    for name in names {
        let va = a.total(name);
        let vb = b.total(name);
        let differs = va != vb;
        if differs {
            sim_deltas += 1;
        }
        let cell = |v: Option<f64>| v.map_or_else(|| "—".to_string(), fmt_num);
        let delta = match (va, vb) {
            (Some(x), Some(y)) if x == y => "=".to_string(),
            (Some(x), Some(y)) => pct_cell(x, y),
            _ => "only one side".to_string(),
        };
        let _ = writeln!(out, "| {name} | {} | {} | {delta} |", cell(va), cell(vb));
    }
    let verdict = if sim_deltas == 0 {
        "**Verdict: sim-identical** — no sim-side metric differs.".to_string()
    } else {
        format!("**Verdict: {sim_deltas} real sim-side delta(s).**")
    };
    let _ = writeln!(out, "\n{verdict}");

    // Host throughput: advisory only.
    let host_pct = delta_pct(a.host_cycles_per_sec, b.host_cycles_per_sec);
    let host_within_noise = host_pct.is_none_or(|p| p.abs() <= noise_pct);
    out.push_str("\n## Host throughput (advisory — machine-dependent)\n\n");
    let _ = writeln!(
        out,
        "| cycles/sec A | cycles/sec B | delta | noise band |\n|---:|---:|---:|---:|\n| {} | {} | {} | ±{noise_pct}% |",
        fmt_num(a.host_cycles_per_sec),
        fmt_num(b.host_cycles_per_sec),
        pct_cell(a.host_cycles_per_sec, b.host_cycles_per_sec),
    );
    let _ = writeln!(
        out,
        "\n{}",
        if host_within_noise {
            "Host delta is within the noise band; treat as measurement noise.".to_string()
        } else {
            format!(
                "Host delta exceeds the ±{noise_pct}% noise band — advisory only, but worth a fresh measurement."
            )
        }
    );

    // Differential CPI stack, when both sides archived one.
    if let (Some(ca), Some(cb)) = (&a.cpi, &b.cpi) {
        let cycles = |r: &RunRecord| r.total("cycles").unwrap_or(0.0) as u64;
        let committed = |r: &RunRecord| r.total("committed").unwrap_or(0.0) as u64;
        let stacks = [
            ca.to_stack(&a.bench, &la, cycles(a), committed(a)),
            cb.to_stack(&b.bench, &lb, cycles(b), committed(b)),
        ];
        out.push_str("\n## Differential CPI stack\n\n");
        out.push_str(&compare_markdown(&stacks));
    }

    DiffOutcome {
        markdown: out,
        sim_deltas,
        host_within_noise,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::SCHEMA_VERSION;
    use crate::record::{CpiSection, RunRecord};
    use mos_core::{SlotCause, SlotCounts};
    use mos_sim::SimStats;

    fn record(cycles: u64, host: f64) -> RunRecord {
        let stats = SimStats {
            cycles,
            committed: 900,
            ..SimStats::default()
        };
        let mut slots = SlotCounts::default();
        slots.add(SlotCause::Useful, 900);
        slots.add(SlotCause::SchedLoop, 4 * cycles - 900);
        RunRecord {
            schema: SCHEMA_VERSION,
            key: "ab".repeat(32),
            kind: "run".into(),
            bench: "gzip".into(),
            source: "bench".into(),
            sched: "mop-wor".into(),
            insts: 1000,
            seed: 42,
            git_rev: "abc1234".into(),
            unix_time: 1_786_000_000,
            host_cycles_per_sec: host,
            cached: false,
            sched_kinds: Vec::new(),
            totals: RunRecord::totals_from_stats(&stats),
            cpi: Some(CpiSection {
                issue_width: 4,
                slots: SlotCause::ALL
                    .iter()
                    .map(|&c| (c.name().to_string(), slots.get(c)))
                    .collect(),
            }),
            report: None,
        }
    }

    #[test]
    fn identical_sim_sides_are_sim_identical() {
        let a = record(1000, 650_000.0);
        let b = record(1000, 700_000.0); // host moved, sim did not
        let d = diff(&a, &b, HOST_NOISE_BAND_PCT);
        assert_eq!(d.sim_deltas, 0);
        assert!(d.host_within_noise);
        assert!(d.markdown.contains("sim-identical"));
        assert!(d.markdown.contains("Differential CPI stack"));
    }

    #[test]
    fn sim_deltas_are_counted_and_real() {
        let a = record(1000, 650_000.0);
        let b = record(1100, 650_000.0);
        let d = diff(&a, &b, HOST_NOISE_BAND_PCT);
        // cycles + ipc both moved.
        assert!(d.sim_deltas >= 2);
        assert!(d.markdown.contains("real sim-side delta"));
    }

    #[test]
    fn host_noise_band_is_advisory() {
        let a = record(1000, 650_000.0);
        let b = record(1000, 100_000.0);
        let d = diff(&a, &b, HOST_NOISE_BAND_PCT);
        assert_eq!(d.sim_deltas, 0);
        assert!(!d.host_within_noise);
        assert!(d.markdown.contains("exceeds"));
        let wide = diff(&a, &b, 1000.0);
        assert!(wide.host_within_noise);
    }
}

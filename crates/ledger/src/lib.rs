//! `mos-ledger`: a persistent, content-addressed archive of simulation
//! runs.
//!
//! Every simulation the CLI or the experiment driver archives gets a
//! [`RunKey`] — a SHA-256 over a canonical preimage of everything that
//! determines its sim-side results (program digest, canonicalized
//! machine config, scheduler, budget/seed, schema version, git
//! revision) — and a [`RunRecord`] stored under `results/ledger/`,
//! sharded by key prefix, with an append-only `index.jsonl` naming each
//! save. On top of the store sit three consumers:
//!
//! * [`diff`](mod@diff) — side-by-side metric deltas between two archived runs,
//!   with a noise-band verdict separating deterministic sim-side deltas
//!   (always real) from advisory host-throughput drift;
//! * [`dashboard`] — a self-contained Markdown/HTML regression
//!   dashboard over the bench history and the archive;
//! * the incremental sweep cache in `experiments perf --ledger`, which
//!   serves unchanged keys straight from the archive (`cached: true`).
//!
//! Everything is hand-rolled on `std` only (including [`sha`] and
//! [`json`]) because the workspace builds without registry access.

#![warn(missing_docs)]

pub mod dashboard;
pub mod diff;
pub mod json;
pub mod key;
pub mod record;
pub mod sha;
pub mod store;

pub use diff::{diff, DiffOutcome, HOST_NOISE_BAND_PCT};
pub use key::{
    git_short_rev, program_digest, push_config, run_key, short, Preimage, RunIdent, RunKey,
    SCHEMA_VERSION,
};
pub use record::{CpiSection, RunRecord};
pub use store::{IndexEntry, Ledger};

//! The on-disk ledger: a content-addressed record store plus an
//! append-only index.
//!
//! Layout under the ledger root (default `results/ledger/`, overridable
//! with `--ledger-dir` or `MOS_LEDGER_DIR`):
//!
//! ```text
//! results/ledger/
//!   index.jsonl          one line per save, in save order (seq ascending)
//!   ab/abcdef01…ef.json  record files, sharded by the key's first byte
//! ```
//!
//! Record files are written at `shard/<key>.json`; saving the same key
//! again overwrites the record (the content is identical by
//! construction — that is what content addressing means here) and
//! appends a fresh index line, so `latest`/`latest-1` name *saves*, not
//! distinct keys. A cache hit appends an index line with `cached: true`
//! and leaves the record file untouched.

use std::path::{Path, PathBuf};

use crate::json::{self, Value};
use crate::key::short;
use crate::record::RunRecord;

/// One line of the ledger index: the save event for a record.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry {
    /// Monotonic save sequence number (1-based).
    pub seq: u64,
    /// The saved record's key.
    pub key: String,
    /// Record kind (`run` / `figure` / `rv_probe`).
    pub kind: String,
    /// Workload or figure name.
    pub bench: String,
    /// Scheduler label.
    pub sched: String,
    /// Instruction budget.
    pub insts: u64,
    /// Code version at save time.
    pub git_rev: String,
    /// Save time (Unix seconds).
    pub unix_time: u64,
    /// Whether the save was an incremental-sweep cache hit.
    pub cached: bool,
}

impl IndexEntry {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("seq".into(), Value::Num(self.seq as f64)),
            ("key".into(), Value::Str(self.key.clone())),
            ("kind".into(), Value::Str(self.kind.clone())),
            ("bench".into(), Value::Str(self.bench.clone())),
            ("sched".into(), Value::Str(self.sched.clone())),
            ("insts".into(), Value::Num(self.insts as f64)),
            ("git_rev".into(), Value::Str(self.git_rev.clone())),
            ("unix_time".into(), Value::Num(self.unix_time as f64)),
            ("cached".into(), Value::Bool(self.cached)),
        ])
    }

    fn parse(line: &str) -> Option<IndexEntry> {
        let v = json::parse(line).ok()?;
        Some(IndexEntry {
            seq: v.get("seq")?.as_u64()?,
            key: v.get("key")?.as_str()?.to_string(),
            kind: v.get("kind")?.as_str()?.to_string(),
            bench: v.get("bench")?.as_str()?.to_string(),
            sched: v.get("sched")?.as_str()?.to_string(),
            insts: v.get("insts")?.as_u64()?,
            git_rev: v.get("git_rev")?.as_str()?.to_string(),
            unix_time: v.get("unix_time")?.as_u64()?,
            cached: matches!(v.get("cached"), Some(Value::Bool(true))),
        })
    }
}

/// A ledger rooted at one directory.
#[derive(Debug, Clone)]
pub struct Ledger {
    root: PathBuf,
}

impl Ledger {
    /// Open (without touching the filesystem) a ledger at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Ledger {
        Ledger { root: root.into() }
    }

    /// The default ledger root: `$MOS_LEDGER_DIR` when set, else
    /// `results/ledger` under the current directory.
    pub fn default_root() -> PathBuf {
        match std::env::var_os("MOS_LEDGER_DIR") {
            Some(dir) if !dir.is_empty() => PathBuf::from(dir),
            _ => PathBuf::from("results/ledger"),
        }
    }

    /// This ledger's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the record file for `key`.
    pub fn record_path(&self, key: &str) -> PathBuf {
        let shard = &key[..key.len().min(2)];
        self.root.join(shard).join(format!("{key}.json"))
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index.jsonl")
    }

    /// Whether a record for `key` is archived.
    pub fn contains(&self, key: &str) -> bool {
        self.record_path(key).is_file()
    }

    /// Persist `record` and append its index line. Returns the record
    /// file path.
    pub fn save(&self, record: &RunRecord) -> Result<PathBuf, String> {
        let path = self.record_path(&record.key);
        let dir = path.parent().expect("record path has a shard directory");
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        std::fs::write(&path, record.to_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        self.append_index(record)?;
        Ok(path)
    }

    /// Append an index line for `record` without rewriting its file —
    /// used by [`Ledger::save`] and, directly, by cache hits (where the
    /// record on disk must stay byte-identical).
    pub fn append_index(&self, record: &RunRecord) -> Result<(), String> {
        use std::io::Write as _;
        std::fs::create_dir_all(&self.root)
            .map_err(|e| format!("mkdir {}: {e}", self.root.display()))?;
        let seq = self.index().last().map_or(0, |e| e.seq) + 1;
        let entry = IndexEntry {
            seq,
            key: record.key.clone(),
            kind: record.kind.clone(),
            bench: record.bench.clone(),
            sched: record.sched.clone(),
            insts: record.insts,
            git_rev: record.git_rev.clone(),
            unix_time: record.unix_time,
            cached: record.cached,
        };
        let path = self.index_path();
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        let line = format!("{}\n", json::render(&entry.to_value()));
        file.write_all(line.as_bytes())
            .map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Load the record archived under `key`.
    pub fn load(&self, key: &str) -> Result<RunRecord, String> {
        let path = self.record_path(key);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("no record {} in ledger {}: {e}", short(key), self.root.display()))?;
        RunRecord::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Every index entry in save order. Malformed lines are skipped; a
    /// missing index means an empty ledger.
    pub fn index(&self) -> Vec<IndexEntry> {
        match std::fs::read_to_string(self.index_path()) {
            Ok(text) => text.lines().filter_map(IndexEntry::parse).collect(),
            Err(_) => Vec::new(),
        }
    }

    /// Resolve a user-facing run spec to a key:
    ///
    /// * `latest` — the most recent save;
    /// * `latest-N` — the save N steps before it;
    /// * otherwise — an unambiguous key prefix (at least 4 hex chars).
    pub fn resolve(&self, spec: &str) -> Result<String, String> {
        let index = self.index();
        if spec == "latest" || spec.starts_with("latest-") {
            let back: usize = match spec.strip_prefix("latest-") {
                None => 0,
                Some(n) => n
                    .parse()
                    .map_err(|_| format!("bad run spec `{spec}` (use latest, latest-N, or a key prefix)"))?,
            };
            if index.len() <= back {
                return Err(format!(
                    "ledger has {} save(s); `{spec}` needs at least {}",
                    index.len(),
                    back + 1
                ));
            }
            return Ok(index[index.len() - 1 - back].key.clone());
        }
        if spec.len() < 4 || !spec.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!(
                "bad run spec `{spec}`: use latest, latest-N, or a key prefix of >= 4 hex chars"
            ));
        }
        let mut matches: Vec<&str> = index
            .iter()
            .map(|e| e.key.as_str())
            .filter(|k| k.starts_with(spec))
            .collect();
        matches.dedup();
        match matches.len() {
            0 if self.contains(spec) => Ok(spec.to_string()),
            0 => Err(format!("no archived run matches `{spec}`")),
            1 => Ok(matches[0].to_string()),
            n => Err(format!(
                "key prefix `{spec}` is ambiguous ({n} matches): {}",
                matches
                    .iter()
                    .map(|k| short(k))
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
        }
    }

    /// The `mossim history` listing: newest first, optionally filtered
    /// by bench and/or scheduler, capped at `limit` rows.
    pub fn history_markdown(
        &self,
        bench: Option<&str>,
        sched: Option<&str>,
        limit: usize,
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("| seq | key | kind | bench | sched | insts | git_rev | unix_time | cached |\n");
        out.push_str("|---:|---|---|---|---|---:|---|---:|---|\n");
        let mut shown = 0usize;
        for e in self.index().iter().rev() {
            if bench.is_some_and(|b| b != e.bench) || sched.is_some_and(|s| s != e.sched) {
                continue;
            }
            if shown == limit {
                break;
            }
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                e.seq,
                short(&e.key),
                e.kind,
                e.bench,
                e.sched,
                e.insts,
                e.git_rev,
                e.unix_time,
                if e.cached { "yes" } else { "no" }
            );
            shown += 1;
        }
        if shown == 0 {
            out.push_str("| — | (no matching archived runs) | | | | | | | |\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunRecord;
    use mos_sim::SimStats;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mos_ledger_test_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(key_fill: &str, bench: &str) -> RunRecord {
        RunRecord {
            schema: crate::key::SCHEMA_VERSION,
            key: key_fill.repeat(32),
            kind: "run".into(),
            bench: bench.into(),
            source: "bench".into(),
            sched: "mop-wor".into(),
            insts: 1000,
            seed: 42,
            git_rev: "abc1234".into(),
            unix_time: 1_786_000_000,
            host_cycles_per_sec: 1.0,
            cached: false,
            sched_kinds: Vec::new(),
            totals: RunRecord::totals_from_stats(&SimStats::default()),
            cpi: None,
            report: None,
        }
    }

    #[test]
    fn save_load_resolve_history() {
        let ledger = Ledger::open(temp_root("slrh"));
        let a = record("aa", "gzip");
        let b = record("bb", "gap");
        ledger.save(&a).unwrap();
        ledger.save(&b).unwrap();
        assert!(ledger.contains(&a.key));
        assert_eq!(ledger.load(&a.key).unwrap(), a);

        assert_eq!(ledger.resolve("latest").unwrap(), b.key);
        assert_eq!(ledger.resolve("latest-1").unwrap(), a.key);
        assert_eq!(ledger.resolve("aaaa").unwrap(), a.key);
        assert!(ledger.resolve("latest-2").is_err());
        assert!(ledger.resolve("zz").is_err());
        assert!(ledger.resolve("ffff").is_err());

        let history = ledger.history_markdown(None, None, 10);
        assert!(history.contains("| gzip |"));
        assert!(history.contains("| gap |"));
        let filtered = ledger.history_markdown(Some("gzip"), None, 10);
        assert!(filtered.contains("| gzip |"));
        assert!(!filtered.contains("| gap |"));
        let _ = std::fs::remove_dir_all(ledger.root());
    }

    #[test]
    fn resaving_a_key_appends_but_keeps_one_record() {
        let ledger = Ledger::open(temp_root("resave"));
        let a = record("cc", "gzip");
        ledger.save(&a).unwrap();
        ledger.save(&a).unwrap();
        assert_eq!(ledger.index().len(), 2);
        assert_eq!(ledger.index()[1].seq, 2);
        assert_eq!(ledger.resolve("latest").unwrap(), ledger.resolve("latest-1").unwrap());
        let _ = std::fs::remove_dir_all(ledger.root());
    }

    #[test]
    fn cache_hit_index_lines_leave_the_record_untouched() {
        let ledger = Ledger::open(temp_root("hit"));
        let mut a = record("dd", "fig14");
        ledger.save(&a).unwrap();
        let before = std::fs::read(ledger.record_path(&a.key)).unwrap();
        a.cached = true;
        ledger.append_index(&a).unwrap();
        let after = std::fs::read(ledger.record_path(&a.key)).unwrap();
        assert_eq!(before, after);
        let index = ledger.index();
        assert_eq!(index.len(), 2);
        assert!(!index[0].cached);
        assert!(index[1].cached);
        let _ = std::fs::remove_dir_all(ledger.root());
    }
}

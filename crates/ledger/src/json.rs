//! A minimal JSON reader/writer: recursive-descent parser plus a
//! canonical renderer.
//!
//! The workspace emits all JSON by hand (no serde anywhere), so the
//! ledger needs an independent reader to load archived [`crate::record::RunRecord`]
//! documents back, and tests use the same parser for schema checks
//! (re-exported as `mos_testutil::json`). This is deliberately small:
//! no escapes beyond `\"`, `\\`, `\/`, `\n`, `\t`, `\r`, `\b`, `\f` and
//! `\uXXXX` (kept verbatim), numbers as `f64`, objects as ordered pairs.
//!
//! [`render`] is the inverse: it prints a [`Value`] compactly with
//! numbers in their shortest round-trip form (whole numbers without a
//! fractional part), so `render(parse(render(v)))` is byte-stable.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Format a number the way [`render`] does: whole numbers print without
/// a fractional part, everything else uses Rust's shortest round-trip
/// `f64` form.
pub fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Render a [`Value`] as one compact JSON document (no whitespace).
/// Strings escape only what [`parse`] unescapes, so the pair round-trips.
pub fn render(v: &Value) -> String {
    let mut out = String::new();
    render_into(v, &mut out);
    out
}

fn render_into(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => out.push_str(&fmt_num(*n)),
        Value::Str(s) => render_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render_into(item, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            other => out.push(other),
        }
    }
    out.push('"');
}

/// Parse one JSON document. Returns an error message with a byte offset
/// on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let b = text.as_bytes();
    let mut pos = 0;
    let v = value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Value::Str(string(b, pos)?)),
        Some(b't') => lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => lit(b, pos, "null", Value::Null),
        Some(_) => number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn lit(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let c = *b.get(*pos).ok_or("unterminated escape")?;
                let unescaped = match c {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'b' => '\u{8}',
                    b'f' => '\u{c}',
                    b'u' => {
                        // Keep \uXXXX escapes verbatim; no emitter here
                        // produces them.
                        out.push('\\');
                        'u'
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                };
                out.push(unescaped);
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through unchanged.
                let ch_len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&b[*pos..*pos + ch_len])
                    .map_err(|_| format!("bad utf-8 at byte {pos}"))?;
                out.push_str(s);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".into())
}

fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        let k = string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        pairs.push((k, value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ty","d":null},"e":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ty")
        );
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} garbage").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn whole_number_check_is_strict() {
        assert_eq!(parse("4").unwrap().as_u64(), Some(4));
        assert_eq!(parse("4.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn render_round_trips_byte_stably() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"c":"x\ty","d":null},"e":true,"f":0.9039}"#;
        let once = render(&parse(doc).unwrap());
        let twice = render(&parse(&once).unwrap());
        assert_eq!(once, doc);
        assert_eq!(once, twice);
    }

    #[test]
    fn fmt_num_shortest_forms() {
        assert_eq!(fmt_num(12345.0), "12345");
        assert_eq!(fmt_num(0.9039), "0.9039");
        assert_eq!(fmt_num(-2.0), "-2");
        assert_eq!(fmt_num(1.0e16), "10000000000000000");
    }
}

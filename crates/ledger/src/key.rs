//! Content-addressed run keys.
//!
//! A [`RunKey`] is a SHA-256 over a **canonical preimage**: a sorted
//! `name=value` listing of everything that determines a simulation's
//! sim-side results — the program digest (or, for whole-figure sweeps,
//! the sweep identity), the canonicalized [`MachineConfig`], the
//! scheduler label, the run budget and seed, the ledger schema version,
//! and the code version (git revision). Two runs with equal keys are
//! byte-identical in every sim-derived statistic; that is the contract
//! the incremental-sweep cache and the jobs-determinism tests enforce.
//!
//! Canonicalization sorts the preimage pairs by name, so the key is
//! stable under any reordering of how callers (or future struct
//! refactors) push the fields.

use std::fmt::Display;

use mos_isa::Program;
use mos_sim::MachineConfig;

use crate::sha;

/// Version of the ledger's key/record schema. Bump on any change to the
/// preimage vocabulary or the record layout; old records then simply
/// stop matching instead of being misread.
pub const SCHEMA_VERSION: u32 = 1;

/// A content-addressed run key: 64 lowercase hex characters.
pub type RunKey = String;

/// Canonical preimage under construction: named fields that will be
/// sorted and hashed into a [`RunKey`].
#[derive(Debug, Clone, Default)]
pub struct Preimage {
    pairs: Vec<(String, String)>,
}

impl Preimage {
    /// Empty preimage (carries the schema version only).
    pub fn new() -> Preimage {
        let mut p = Preimage { pairs: Vec::new() };
        p.push("schema", SCHEMA_VERSION);
        p
    }

    /// Add one named field. Order of calls does not affect the key.
    pub fn push(&mut self, name: &str, value: impl Display) {
        self.pairs.push((name.to_string(), value.to_string()));
    }

    /// The sorted `name=value` text the key hashes (one pair per line).
    pub fn canonical_text(&self) -> String {
        let mut pairs = self.pairs.clone();
        pairs.sort();
        let mut out = String::new();
        for (name, value) in &pairs {
            out.push_str(name);
            out.push('=');
            out.push_str(value);
            out.push('\n');
        }
        out
    }

    /// Hash the canonical text into a [`RunKey`].
    pub fn key(&self) -> RunKey {
        sha::hex_digest(self.canonical_text().as_bytes())
    }
}

/// Push every field of a [`MachineConfig`] onto `p`, prefixed `config.`.
/// Exhaustive by construction: destructuring binds each struct field by
/// name, so adding a field to any config struct breaks this function
/// until the new field is hashed (or explicitly ignored) — the key can
/// never silently miss a timing-relevant knob.
pub fn push_config(p: &mut Preimage, cfg: &MachineConfig) {
    let MachineConfig {
        fetch_width,
        commit_width,
        rob_entries,
        front_depth,
        extra_mop_stages,
        exec_offset,
        sched,
        branch,
        il1,
        dl1,
        l2,
        memory_latency,
        ideal_branch,
        ideal_memory,
    } = cfg;
    p.push("config.fetch_width", fetch_width);
    p.push("config.commit_width", commit_width);
    p.push("config.rob_entries", rob_entries);
    p.push("config.front_depth", front_depth);
    p.push("config.extra_mop_stages", extra_mop_stages);
    p.push("config.exec_offset", exec_offset);
    p.push("config.memory_latency", memory_latency);
    p.push("config.ideal_branch", ideal_branch);
    p.push("config.ideal_memory", ideal_memory);

    let mos_core::SchedConfig {
        kind,
        wakeup,
        queue_entries,
        issue_width,
        fu_counts,
        confirm_window,
        replay_penalty,
        load_sched_latency,
        mop,
    } = sched;
    p.push("config.sched.kind", format_args!("{kind:?}"));
    p.push("config.sched.wakeup", format_args!("{wakeup:?}"));
    p.push("config.sched.queue_entries", format_args!("{queue_entries:?}"));
    p.push("config.sched.issue_width", issue_width);
    p.push("config.sched.fu_counts", format_args!("{fu_counts:?}"));
    p.push("config.sched.confirm_window", confirm_window);
    p.push("config.sched.replay_penalty", replay_penalty);
    p.push("config.sched.load_sched_latency", load_sched_latency);

    let mos_core::MopConfig {
        max_mop_size,
        scope,
        cycle_detection,
        detection_delay,
        group_independent,
        last_arrival_filter,
    } = mop;
    p.push("config.mop.max_mop_size", max_mop_size);
    p.push("config.mop.scope", scope);
    p.push("config.mop.cycle_detection", format_args!("{cycle_detection:?}"));
    p.push("config.mop.detection_delay", detection_delay);
    p.push("config.mop.group_independent", group_independent);
    p.push("config.mop.last_arrival_filter", last_arrival_filter);

    p.push("config.branch", format_args!("{branch:?}"));
    p.push("config.il1", format_args!("{il1:?}"));
    p.push("config.dl1", format_args!("{dl1:?}"));
    p.push("config.l2", format_args!("{l2:?}"));
}

/// Digest of a static uop program: SHA-256 over its entry point and
/// every instruction's full field listing, independent of program name.
pub fn program_digest(program: &Program) -> String {
    let mut sha = sha::Sha256::new();
    sha.update(format!("entry={}\n", program.entry()).as_bytes());
    for (idx, inst) in program.iter() {
        sha.update(format!("{idx}:{inst:?}\n").as_bytes());
    }
    let digest = sha.finish();
    let mut out = String::with_capacity(64);
    for b in digest {
        use std::fmt::Write as _;
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Identity of one archivable run, before hashing.
#[derive(Debug, Clone)]
pub struct RunIdent<'a> {
    /// Record kind: `"run"` for single simulations, `"figure"` for whole
    /// figure sweeps, `"rv_probe"` for the RV32 probe.
    pub kind: &'a str,
    /// Workload name (benchmark / kernel / rv program / figure).
    pub bench: &'a str,
    /// Workload source: `"bench"`, `"kernel"`, `"rv"`, or `"sweep"`.
    pub source: &'a str,
    /// Scheduler label (CLI vocabulary; `"all"` for sweeps).
    pub sched: &'a str,
    /// Committed-instruction budget.
    pub insts: u64,
    /// Workload seed.
    pub seed: u64,
    /// Program digest from [`program_digest`], or `"-"` when the
    /// program content is determined by the code version (figure sweeps
    /// generate their synthetic programs from in-repo constants).
    pub program_sha: &'a str,
    /// Code version (short git revision, `"unknown"` outside a repo).
    pub git_rev: &'a str,
}

/// Compute the content-addressed key for a run.
pub fn run_key(ident: &RunIdent<'_>, cfg: Option<&MachineConfig>) -> RunKey {
    let mut p = Preimage::new();
    p.push("kind", ident.kind);
    p.push("bench", ident.bench);
    p.push("source", ident.source);
    p.push("sched", ident.sched);
    p.push("insts", ident.insts);
    p.push("seed", ident.seed);
    p.push("program", ident.program_sha);
    p.push("git_rev", ident.git_rev);
    if let Some(cfg) = cfg {
        push_config(&mut p, cfg);
    }
    p.key()
}

/// Short display form of a key (first 12 hex characters).
pub fn short(key: &str) -> &str {
    &key[..key.len().min(12)]
}

/// The current checkout's short git revision, or `"unknown"` when git
/// is unavailable (e.g. an exported tarball).
pub fn git_short_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_stable_under_field_reordering() {
        let mut a = Preimage::new();
        a.push("bench", "gzip");
        a.push("sched", "mop-wor");
        a.push("insts", 100_000u64);
        let mut b = Preimage::new();
        b.push("insts", 100_000u64);
        b.push("bench", "gzip");
        b.push("sched", "mop-wor");
        assert_eq!(a.key(), b.key());
        assert_eq!(a.canonical_text(), b.canonical_text());
    }

    #[test]
    fn key_changes_with_any_field() {
        let ident = RunIdent {
            kind: "run",
            bench: "gzip",
            source: "bench",
            sched: "mop-wor",
            insts: 1000,
            seed: 42,
            program_sha: "-",
            git_rev: "abc1234",
        };
        let base = run_key(&ident, Some(&MachineConfig::base_32()));
        let other_cfg = run_key(&ident, Some(&MachineConfig::two_cycle_32()));
        assert_ne!(base, other_cfg);
        let mut moved = ident.clone();
        moved.seed = 43;
        assert_ne!(base, run_key(&moved, Some(&MachineConfig::base_32())));
        let mut rev = ident.clone();
        rev.git_rev = "def5678";
        assert_ne!(base, run_key(&rev, Some(&MachineConfig::base_32())));
        assert_eq!(base, run_key(&ident, Some(&MachineConfig::base_32())));
        assert_eq!(base.len(), 64);
    }

    #[test]
    fn config_canonicalization_sees_every_knob() {
        let mut cfg = MachineConfig::base_32();
        let mut p = Preimage::new();
        push_config(&mut p, &cfg);
        let before = p.key();
        cfg.sched.replay_penalty += 1;
        let mut q = Preimage::new();
        push_config(&mut q, &cfg);
        assert_ne!(before, q.key());
    }

    #[test]
    fn program_digest_ignores_name_but_not_code() {
        use mos_isa::{Program, Reg, StaticInst};
        let mut a = Program::new("one");
        a.push(StaticInst::addi(Reg::int(1), Reg::ZERO, 5));
        let mut b = Program::new("two");
        b.push(StaticInst::addi(Reg::int(1), Reg::ZERO, 5));
        assert_eq!(program_digest(&a), program_digest(&b));
        b.push(StaticInst::addi(Reg::int(2), Reg::int(1), 1));
        assert_ne!(program_digest(&a), program_digest(&b));
    }
}

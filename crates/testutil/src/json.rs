//! A minimal recursive-descent JSON parser for schema checks in tests.
//!
//! The workspace emits all JSON by hand (no serde anywhere), so tests
//! need an independent reader to verify that emitted documents actually
//! parse and carry the promised structure. This is deliberately small:
//! no escapes beyond `\"`, `\\`, `\/`, `\n`, `\t`, `\r`, `\b`, `\f` and
//! `\uXXXX` (kept verbatim), numbers as `f64`, objects as ordered pairs.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one JSON document. Returns an error message with a byte offset
/// on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let b = text.as_bytes();
    let mut pos = 0;
    let v = value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Value::Str(string(b, pos)?)),
        Some(b't') => lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => lit(b, pos, "null", Value::Null),
        Some(_) => number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn lit(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let c = *b.get(*pos).ok_or("unterminated escape")?;
                let unescaped = match c {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'b' => '\u{8}',
                    b'f' => '\u{c}',
                    b'u' => {
                        // Keep \uXXXX escapes verbatim; no emitter here
                        // produces them.
                        out.push('\\');
                        'u'
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                };
                out.push(unescaped);
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through unchanged.
                let ch_len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&b[*pos..*pos + ch_len])
                    .map_err(|_| format!("bad utf-8 at byte {pos}"))?;
                out.push_str(s);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".into())
}

fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        let k = string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        pairs.push((k, value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ty","d":null},"e":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ty")
        );
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} garbage").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn whole_number_check_is_strict() {
        assert_eq!(parse("4").unwrap().as_u64(), Some(4));
        assert_eq!(parse("4.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}

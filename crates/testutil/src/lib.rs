//! Test-support helpers shared by the repository's integration tests.
//!
//! The central type is [`TracedRun`]: a simulator run with the event
//! tracer attached to a bounded ring, so a failing assertion can print
//! the last events leading up to the problem — a minimized, replayable
//! slice of machine state — instead of a bare statistics mismatch.

#![warn(missing_docs)]

pub use mos_ledger::json;

use mos_isa::TraceSource;
use mos_sim::timeline::UopTimeline;
use mos_sim::{MachineConfig, SharedCommitLog, SharedRing, SimStats, Simulator, TeeSink};

/// How many trailing events a failure excerpt shows by default.
pub const EXCERPT_EVENTS: usize = 32;

/// A completed simulator run with its end-of-run statistics, the tail of
/// its event trace, and (optionally) recorded uop timelines.
pub struct TracedRun {
    /// End-of-run statistics.
    pub stats: SimStats,
    /// Recorded per-uop timelines; empty unless requested.
    pub timelines: Vec<UopTimeline>,
    ring: SharedRing,
}

impl TracedRun {
    /// The last `n` buffered trace events, rendered one JSON object per
    /// line (oldest first).
    pub fn excerpt(&self, n: usize) -> String {
        self.ring.excerpt(n)
    }

    /// Panic with `msg` followed by the trailing event window when
    /// `cond` is false. Use for any invariant over the run so the
    /// failure message carries the events leading up to the violation.
    #[track_caller]
    pub fn expect(&self, cond: bool, msg: impl FnOnce() -> String) {
        if !cond {
            panic!(
                "{}\nlast {} events:\n{}",
                msg(),
                EXCERPT_EVENTS,
                self.excerpt(EXCERPT_EVENTS)
            );
        }
    }

    /// Assert the run committed exactly `expected` instructions; on
    /// mismatch the panic carries the trailing event window, which shows
    /// whether the machine deadlocked, over-committed or lost uops.
    #[track_caller]
    pub fn assert_committed(&self, expected: u64, context: &str) {
        self.expect(self.stats.committed == expected, || {
            format!(
                "{context}: committed {} instructions, expected {expected} \
                 (cycles {})",
                self.stats.committed, self.stats.cycles
            )
        });
    }
}

/// Run `trace` under `cfg` until `max_commits`, keeping the most recent
/// `keep_last` trace events for failure excerpts.
pub fn run_traced<T: TraceSource>(
    cfg: MachineConfig,
    trace: T,
    max_commits: u64,
    keep_last: usize,
) -> TracedRun {
    run_traced_with_timeline(cfg, trace, max_commits, keep_last, 0)
}

/// [`run_traced`] that additionally records the full committed static-index
/// sequence (unbounded), for differential comparison against a functional
/// oracle's expected expansion. Returns the run plus the commit sequence.
pub fn run_traced_with_commits<T: TraceSource>(
    cfg: MachineConfig,
    trace: T,
    max_commits: u64,
    keep_last: usize,
) -> (TracedRun, Vec<u32>) {
    let mut sim = Simulator::new(cfg, trace);
    let ring = SharedRing::new(keep_last);
    let log = SharedCommitLog::new();
    sim.set_event_sink(Box::new(TeeSink(Box::new(ring.clone()), Box::new(log.clone()))));
    let stats = sim.run(max_commits);
    let run = TracedRun {
        stats,
        timelines: Vec::new(),
        ring,
    };
    (run, log.take())
}

/// [`run_traced`] that additionally records the first `uops` uop
/// timelines (0 disables recording).
pub fn run_traced_with_timeline<T: TraceSource>(
    cfg: MachineConfig,
    trace: T,
    max_commits: u64,
    keep_last: usize,
    uops: usize,
) -> TracedRun {
    let mut sim = Simulator::new(cfg, trace);
    let ring = SharedRing::new(keep_last);
    sim.set_event_sink(Box::new(ring.clone()));
    if uops > 0 {
        sim.enable_timeline(uops);
    }
    let stats = sim.run(max_commits);
    let timelines = sim
        .timeline()
        .map(|t| t.entries().to_vec())
        .unwrap_or_default();
    TracedRun {
        stats,
        timelines,
        ring,
    }
}

use std::collections::BTreeMap;
use std::fmt;

use mos_isa::{Opcode, Program, Reg, StaticInst};

/// An assembled program plus its preloaded data memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// The static code.
    pub program: Program,
    /// `(byte address, 8-byte word)` pairs preloaded by `.word` directives.
    pub data: Vec<(u64, i64)>,
}

/// Error produced by [`assemble`], carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending source line (0 for file-level
    /// errors such as an undefined entry label).
    pub line: usize,
    msg: String,
}

impl AsmError {
    fn new(line: usize, msg: impl Into<String>) -> AsmError {
        AsmError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.trim();
    match t {
        "zero" => return Ok(Reg::ZERO),
        "sp" => return Ok(Reg::SP),
        "ra" => return Ok(Reg::RA),
        _ => {}
    }
    let (kind, num) = t.split_at(1.min(t.len()));
    let n: u8 = num
        .parse()
        .map_err(|_| AsmError::new(line, format!("expected register, got `{t}`")))?;
    match kind {
        "r" if n < Reg::NUM_INT => Ok(Reg::int(n)),
        "f" if n < Reg::NUM_FP => Ok(Reg::fp(n)),
        _ => Err(AsmError::new(line, format!("bad register `{t}`"))),
    }
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = t.strip_prefix("0b") {
        i64::from_str_radix(bin, 2)
    } else {
        t.parse()
    }
    .map_err(|_| AsmError::new(line, format!("expected immediate, got `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

/// Parses `imm(reg)` memory-operand syntax.
fn parse_mem(tok: &str, line: usize) -> Result<(i64, Reg), AsmError> {
    let t = tok.trim();
    let open = t
        .find('(')
        .ok_or_else(|| AsmError::new(line, format!("expected imm(reg), got `{t}`")))?;
    if !t.ends_with(')') {
        return Err(AsmError::new(line, format!("expected imm(reg), got `{t}`")));
    }
    let imm = if open == 0 {
        0
    } else {
        parse_imm(&t[..open], line)?
    };
    let reg = parse_reg(&t[open + 1..t.len() - 1], line)?;
    Ok((imm, reg))
}

enum PendingTarget {
    None,
    Label(String),
}

/// Assemble source text into an [`Image`].
///
/// # Errors
///
/// Returns an [`AsmError`] pinpointing the offending line for syntax
/// errors, unknown mnemonics/registers, undefined labels, or a structurally
/// invalid result (e.g. empty program).
pub fn assemble(src: &str) -> Result<Image, AsmError> {
    let mut program = Program::new("asm");
    let mut data = Vec::new();
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut fixups: Vec<(u32, String, usize)> = Vec::new();
    let mut entry_label: Option<(String, usize)> = None;

    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let mut line = raw;
        if let Some(i) = line.find([';', '#']) {
            line = &line[..i];
        }
        let mut line = line.trim();
        // Labels (possibly several) at line start.
        while let Some(colon) = line.find(':') {
            let (label, rest) = line.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            let idx = program.len() as u32;
            labels.insert(label.to_owned(), idx);
            program.set_label(label, idx);
            line = rest[1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".entry") {
            entry_label = Some((rest.trim().to_owned(), lineno));
            continue;
        }
        if let Some(rest) = line.strip_prefix(".word") {
            let parts: Vec<&str> = rest.split(',').collect();
            if parts.len() != 2 {
                return Err(AsmError::new(lineno, ".word takes `addr, value`"));
            }
            let addr = parse_imm(parts[0], lineno)? as u64;
            let value = parse_imm(parts[1], lineno)?;
            data.push((addr, value));
            continue;
        }

        let (mnemonic, rest) = match line.find(char::is_whitespace) {
            Some(i) => (&line[..i], line[i..].trim()),
            None => (line, ""),
        };
        let op: Opcode = mnemonic
            .parse()
            .map_err(|e| AsmError::new(lineno, format!("{e}")))?;
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let expect =
            |n: usize| -> Result<(), AsmError> {
                if ops.len() == n {
                    Ok(())
                } else {
                    Err(AsmError::new(
                        lineno,
                        format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                    ))
                }
            };

        use Opcode::*;
        let mut pending = PendingTarget::None;
        let inst = match op {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Cmpeq | Mul | Div => {
                expect(3)?;
                StaticInst::alu(
                    op,
                    parse_reg(ops[0], lineno)?,
                    parse_reg(ops[1], lineno)?,
                    parse_reg(ops[2], lineno)?,
                )
            }
            Fadd | Fsub | Fmul | Fdiv => {
                expect(3)?;
                StaticInst::alu(
                    op,
                    parse_reg(ops[0], lineno)?,
                    parse_reg(ops[1], lineno)?,
                    parse_reg(ops[2], lineno)?,
                )
            }
            Addi | Subi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Sltiu => {
                expect(3)?;
                StaticInst::alui(
                    op,
                    parse_reg(ops[0], lineno)?,
                    parse_reg(ops[1], lineno)?,
                    parse_imm(ops[2], lineno)?,
                )
            }
            Li => {
                expect(2)?;
                StaticInst::li(parse_reg(ops[0], lineno)?, parse_imm(ops[1], lineno)?)
            }
            Mov | Not | Fneg | Itof | Ftoi => {
                expect(2)?;
                StaticInst::new(
                    op,
                    Some(parse_reg(ops[0], lineno)?),
                    [Some(parse_reg(ops[1], lineno)?), None],
                    0,
                    None,
                )
            }
            Ld | Fld => {
                expect(2)?;
                let (imm, base) = parse_mem(ops[1], lineno)?;
                StaticInst::load(parse_reg(ops[0], lineno)?, imm, base)
            }
            St | Fst => {
                expect(2)?;
                let (imm, base) = parse_mem(ops[1], lineno)?;
                StaticInst::store(parse_reg(ops[0], lineno)?, imm, base)
            }
            Beqz | Bnez | Bltz | Bgez => {
                expect(2)?;
                pending = PendingTarget::Label(ops[1].to_owned());
                StaticInst::branch(op, parse_reg(ops[0], lineno)?, 0)
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                expect(3)?;
                pending = PendingTarget::Label(ops[2].to_owned());
                StaticInst::branch2(
                    op,
                    parse_reg(ops[0], lineno)?,
                    parse_reg(ops[1], lineno)?,
                    0,
                )
            }
            Jmp => {
                expect(1)?;
                pending = PendingTarget::Label(ops[0].to_owned());
                StaticInst::jmp(0)
            }
            Call => {
                expect(1)?;
                pending = PendingTarget::Label(ops[0].to_owned());
                StaticInst::call(0)
            }
            Jr => {
                expect(1)?;
                StaticInst::jr(parse_reg(ops[0], lineno)?)
            }
            Ret => {
                expect(0)?;
                StaticInst::ret()
            }
            Nop => {
                expect(0)?;
                StaticInst::nop()
            }
            Halt => {
                expect(0)?;
                StaticInst::halt()
            }
        };
        let idx = program.push(inst);
        if let PendingTarget::Label(l) = pending {
            fixups.push((idx, l, lineno));
        }
    }

    for (idx, label, lineno) in fixups {
        let target = *labels
            .get(&label)
            .ok_or_else(|| AsmError::new(lineno, format!("undefined label `{label}`")))?;
        let patched = program.inst(idx).expect("fixup index valid").with_target(target);
        *program.inst_mut(idx).expect("fixup index valid") = patched;
    }
    if let Some((label, lineno)) = entry_label {
        let e = *labels
            .get(&label)
            .ok_or_else(|| AsmError::new(lineno, format!("undefined entry label `{label}`")))?;
        program.set_entry(e);
    }
    program
        .validate()
        .map_err(|e| AsmError::new(0, e.to_string()))?;
    Ok(Image { program, data })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mos_isa::InstClass;

    #[test]
    fn assembles_all_shapes() {
        let src = r"
            .entry main
            .word 0x1000, 7
        main:
            li   r1, 0x10
            addi r2, r1, -3
            add  r3, r1, r2
            mul  r4, r3, r3
            ld   r5, 8(sp)
            st   r5, 0(r1)
            fld  f1, 0(r1)
            fadd f2, f1, f1
            beqz r5, done
            call sub
            jr   r3
        sub:
            ret
        done:
            halt
        ";
        let img = assemble(src).unwrap();
        assert_eq!(img.program.entry(), img.program.label("main").unwrap());
        assert_eq!(img.data, vec![(0x1000, 7)]);
        assert_eq!(img.program.len(), 13);
        let beqz = img.program.inst(img.program.label("main").unwrap() + 8).unwrap();
        assert_eq!(beqz.target(), Some(img.program.label("done").unwrap()));
    }

    #[test]
    fn forward_and_backward_labels_resolve() {
        let img = assemble("top: j bottom\nbottom: j top\nhalt").unwrap();
        assert_eq!(img.program.inst(0).unwrap().target(), Some(1));
        assert_eq!(img.program.inst(1).unwrap().target(), Some(0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus r1, r2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));

        let err = assemble("add r1, r2\nhalt").unwrap_err();
        assert_eq!(err.line, 1);

        let err = assemble("beqz r1, nowhere\nhalt").unwrap_err();
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn register_aliases() {
        let img = assemble("mov sp, zero\nmov ra, sp\nhalt").unwrap();
        assert_eq!(img.program.inst(0).unwrap().dst(), Some(Reg::SP));
        assert_eq!(img.program.inst(1).unwrap().dst(), Some(Reg::RA));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let img = assemble("; leading\n\n  nop ; trailing\n# hash comment\nhalt").unwrap();
        assert_eq!(img.program.len(), 2);
        assert_eq!(img.program.inst(0).unwrap().class(), InstClass::Nop);
    }

    #[test]
    fn negative_and_hex_immediates() {
        let img = assemble("li r1, -0x10\nli r2, 42\nhalt").unwrap();
        assert_eq!(img.program.inst(0).unwrap().imm(), -16);
        assert_eq!(img.program.inst(1).unwrap().imm(), 42);
    }
}

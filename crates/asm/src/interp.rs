use std::collections::HashMap;

use mos_isa::{DynInst, Opcode, Program, Reg, TraceSource};

use crate::Image;

/// Architectural state of the functional machine: 32 integer registers,
/// 32 floating-point registers, and a sparse 8-byte-word memory.
#[derive(Debug, Clone, Default)]
pub struct ArchState {
    int: [i64; Reg::NUM_INT as usize],
    fp: [f64; Reg::NUM_FP as usize],
    mem: HashMap<u64, i64>,
}

impl ArchState {
    /// Fresh state: all registers zero, memory empty, `sp` pointing at a
    /// conventional stack top.
    pub fn new() -> ArchState {
        let mut s = ArchState::default();
        s.set_int_reg(Reg::SP, 0x7fff_0000);
        s
    }

    /// Read an integer register (the zero register reads as 0).
    ///
    /// # Panics
    ///
    /// Panics if `r` is a floating-point register.
    pub fn int_reg(&self, r: Reg) -> i64 {
        assert!(r.is_int());
        if r.is_zero() {
            0
        } else {
            self.int[r.index()]
        }
    }

    /// Write an integer register (writes to the zero register are ignored).
    ///
    /// # Panics
    ///
    /// Panics if `r` is a floating-point register.
    pub fn set_int_reg(&mut self, r: Reg, v: i64) {
        assert!(r.is_int());
        if !r.is_zero() {
            self.int[r.index()] = v;
        }
    }

    /// Read a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `r` is an integer register.
    pub fn fp_reg(&self, r: Reg) -> f64 {
        assert!(r.is_fp());
        self.fp[r.index() - Reg::NUM_INT as usize]
    }

    /// Write a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `r` is an integer register.
    pub fn set_fp_reg(&mut self, r: Reg, v: f64) {
        assert!(r.is_fp());
        self.fp[r.index() - Reg::NUM_INT as usize] = v;
    }

    /// Read the 8-byte memory word containing byte address `addr`
    /// (unwritten memory reads as zero).
    pub fn load(&self, addr: u64) -> i64 {
        self.mem.get(&(addr & !7)).copied().unwrap_or(0)
    }

    /// Write the 8-byte memory word containing byte address `addr`.
    pub fn store(&mut self, addr: u64, value: i64) {
        self.mem.insert(addr & !7, value);
    }
}

/// Architectural interpreter over an assembled [`Image`].
///
/// Yields one [`DynInst`] per executed instruction; iteration ends at
/// `halt`, on a fall-off-the-end, or on an invalid indirect-jump target
/// (check [`Interpreter::stopped_cleanly`] to distinguish).
#[derive(Debug, Clone)]
pub struct Interpreter {
    program: Program,
    state: ArchState,
    pc: u32,
    halted: bool,
    faulted: bool,
}

impl Interpreter {
    /// Start interpreting `image` at its entry point with `.word`
    /// directives preloaded.
    pub fn new(image: &Image) -> Interpreter {
        let mut state = ArchState::new();
        for &(addr, value) in &image.data {
            state.store(addr, value);
        }
        Interpreter {
            program: image.program.clone(),
            state,
            pc: image.program.entry(),
            halted: false,
            faulted: false,
        }
    }

    /// Current architectural state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// `true` once a `halt` has been executed (as opposed to a fault or an
    /// exhausted step budget).
    pub fn stopped_cleanly(&self) -> bool {
        self.halted && !self.faulted
    }

    /// Run up to `max_steps` instructions, returning the trace and final
    /// architectural state.
    pub fn run_collect(mut self, max_steps: usize) -> (Vec<DynInst>, ArchState) {
        let mut trace = Vec::new();
        for d in self.by_ref().take(max_steps) {
            trace.push(d);
        }
        (trace, self.state)
    }

    fn step(&mut self) -> Option<DynInst> {
        if self.halted {
            return None;
        }
        let inst = match self.program.inst(self.pc) {
            Some(i) => *i,
            None => {
                self.halted = true;
                self.faulted = true;
                return None;
            }
        };
        let sidx = self.pc;
        let s = &mut self.state;
        let mut next = sidx + 1;
        let mut taken = false;
        let mut eff_addr = None;
        let rs = |s: &ArchState, i: usize| inst.raw_srcs()[i].map_or(0, |r| s.int_reg(r));
        let fs = |s: &ArchState, i: usize| inst.raw_srcs()[i].map_or(0.0, |r| s.fp_reg(r));

        use Opcode::*;
        match inst.opcode() {
            Add => s.set_int_reg(inst.dst_raw(), rs(s, 0).wrapping_add(rs(s, 1))),
            Addi => s.set_int_reg(inst.dst_raw(), rs(s, 0).wrapping_add(inst.imm())),
            Sub => s.set_int_reg(inst.dst_raw(), rs(s, 0).wrapping_sub(rs(s, 1))),
            Subi => s.set_int_reg(inst.dst_raw(), rs(s, 0).wrapping_sub(inst.imm())),
            And => s.set_int_reg(inst.dst_raw(), rs(s, 0) & rs(s, 1)),
            Andi => s.set_int_reg(inst.dst_raw(), rs(s, 0) & inst.imm()),
            Or => s.set_int_reg(inst.dst_raw(), rs(s, 0) | rs(s, 1)),
            Ori => s.set_int_reg(inst.dst_raw(), rs(s, 0) | inst.imm()),
            Xor => s.set_int_reg(inst.dst_raw(), rs(s, 0) ^ rs(s, 1)),
            Xori => s.set_int_reg(inst.dst_raw(), rs(s, 0) ^ inst.imm()),
            Not => s.set_int_reg(inst.dst_raw(), !rs(s, 0)),
            Sll => s.set_int_reg(inst.dst_raw(), rs(s, 0).wrapping_shl(rs(s, 1) as u32 & 63)),
            Slli => s.set_int_reg(inst.dst_raw(), rs(s, 0).wrapping_shl(inst.imm() as u32 & 63)),
            Srl => s.set_int_reg(
                inst.dst_raw(),
                ((rs(s, 0) as u64).wrapping_shr(rs(s, 1) as u32 & 63)) as i64,
            ),
            Srli => s.set_int_reg(
                inst.dst_raw(),
                ((rs(s, 0) as u64).wrapping_shr(inst.imm() as u32 & 63)) as i64,
            ),
            Sra => s.set_int_reg(inst.dst_raw(), rs(s, 0).wrapping_shr(rs(s, 1) as u32 & 63)),
            Srai => s.set_int_reg(inst.dst_raw(), rs(s, 0).wrapping_shr(inst.imm() as u32 & 63)),
            Slt => s.set_int_reg(inst.dst_raw(), i64::from(rs(s, 0) < rs(s, 1))),
            Sltu => s.set_int_reg(inst.dst_raw(), i64::from((rs(s, 0) as u64) < (rs(s, 1) as u64))),
            Slti => s.set_int_reg(inst.dst_raw(), i64::from(rs(s, 0) < inst.imm())),
            Sltiu => s.set_int_reg(
                inst.dst_raw(),
                i64::from((rs(s, 0) as u64) < (inst.imm() as u64)),
            ),
            Cmpeq => s.set_int_reg(inst.dst_raw(), i64::from(rs(s, 0) == rs(s, 1))),
            Li => s.set_int_reg(inst.dst_raw(), inst.imm()),
            Mov => s.set_int_reg(inst.dst_raw(), rs(s, 0)),
            Mul => s.set_int_reg(inst.dst_raw(), rs(s, 0).wrapping_mul(rs(s, 1))),
            Div => {
                let (a, b) = (rs(s, 0), rs(s, 1));
                s.set_int_reg(inst.dst_raw(), if b == 0 { 0 } else { a.wrapping_div(b) });
            }
            Fadd => s.set_fp_reg(inst.dst_raw(), fs(s, 0) + fs(s, 1)),
            Fsub => s.set_fp_reg(inst.dst_raw(), fs(s, 0) - fs(s, 1)),
            Fmul => s.set_fp_reg(inst.dst_raw(), fs(s, 0) * fs(s, 1)),
            Fdiv => s.set_fp_reg(inst.dst_raw(), fs(s, 0) / fs(s, 1)),
            Fneg => s.set_fp_reg(inst.dst_raw(), -fs(s, 0)),
            Itof => s.set_fp_reg(inst.dst_raw(), rs(s, 0) as f64),
            Ftoi => s.set_int_reg(inst.dst_raw(), fs(s, 0) as i64),
            Ld => {
                let addr = rs(s, 0).wrapping_add(inst.imm()) as u64;
                eff_addr = Some(addr);
                let v = s.load(addr);
                s.set_int_reg(inst.dst_raw(), v);
            }
            Fld => {
                let addr = rs(s, 0).wrapping_add(inst.imm()) as u64;
                eff_addr = Some(addr);
                let v = f64::from_bits(s.load(addr) as u64);
                s.set_fp_reg(inst.dst_raw(), v);
            }
            St => {
                let addr = rs(s, 0).wrapping_add(inst.imm()) as u64;
                eff_addr = Some(addr);
                let v = rs(s, 1);
                s.store(addr, v);
            }
            Fst => {
                let addr = rs(s, 0).wrapping_add(inst.imm()) as u64;
                eff_addr = Some(addr);
                let v = fs(s, 1).to_bits() as i64;
                s.store(addr, v);
            }
            Beqz | Bnez | Bltz | Bgez => {
                let v = rs(s, 0);
                taken = match inst.opcode() {
                    Beqz => v == 0,
                    Bnez => v != 0,
                    Bltz => v < 0,
                    _ => v >= 0,
                };
                if taken {
                    next = inst.target().expect("validated branch target");
                }
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let (a, b) = (rs(s, 0), rs(s, 1));
                taken = match inst.opcode() {
                    Beq => a == b,
                    Bne => a != b,
                    Blt => a < b,
                    Bge => a >= b,
                    Bltu => (a as u64) < (b as u64),
                    _ => (a as u64) >= (b as u64),
                };
                if taken {
                    next = inst.target().expect("validated branch target");
                }
            }
            Jmp => {
                taken = true;
                next = inst.target().expect("validated jump target");
            }
            Call => {
                taken = true;
                s.set_int_reg(Reg::RA, i64::from(sidx + 1));
                next = inst.target().expect("validated call target");
            }
            Jr | Ret => {
                taken = true;
                let t = rs(s, 0);
                if t < 0 || t as usize >= self.program.len() {
                    self.halted = true;
                    self.faulted = true;
                    return None;
                }
                next = t as u32;
            }
            Nop => {}
            Halt => {
                self.halted = true;
                return None;
            }
        }
        self.pc = next;
        Some(DynInst {
            sidx,
            next_sidx: next,
            taken,
            eff_addr,
        })
    }
}

/// Extension used internally: destination including zero-register writes
/// (the interpreter discards them via [`ArchState::set_int_reg`]).
trait DstRaw {
    fn dst_raw(&self) -> Reg;
}

impl DstRaw for mos_isa::StaticInst {
    fn dst_raw(&self) -> Reg {
        self.dst().unwrap_or(Reg::ZERO)
    }
}

impl Iterator for Interpreter {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        self.step()
    }
}

impl TraceSource for Interpreter {
    fn program(&self) -> &Program {
        &self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    fn run(src: &str) -> (Vec<DynInst>, ArchState) {
        Interpreter::new(&assemble(src).unwrap()).run_collect(100_000)
    }

    #[test]
    fn arithmetic_basics() {
        let (_, s) = run("li r1, 6\nli r2, 7\nmul r3, r1, r2\nsub r4, r3, r1\nhalt");
        assert_eq!(s.int_reg(Reg::int(3)), 42);
        assert_eq!(s.int_reg(Reg::int(4)), 36);
    }

    #[test]
    fn loop_sums_correctly() {
        let (trace, s) = run(r"
            li r1, 10      ; counter
            li r2, 0       ; sum
        loop:
            add r2, r2, r1
            addi r1, r1, -1
            bnez r1, loop
            halt");
        assert_eq!(s.int_reg(Reg::int(2)), 55);
        // 2 setup + 10 iterations * 3
        assert_eq!(trace.len(), 32);
        // last branch not taken
        assert!(!trace.last().unwrap().taken);
        assert!(trace[4].taken);
    }

    #[test]
    fn memory_and_preload() {
        let (trace, s) = run(".word 0x100, 99\nli r1, 0x100\nld r2, 0(r1)\nst r2, 8(r1)\nld r3, 8(r1)\nhalt");
        assert_eq!(s.int_reg(Reg::int(3)), 99);
        assert_eq!(trace[1].eff_addr, Some(0x100));
        assert_eq!(trace[2].eff_addr, Some(0x108));
    }

    #[test]
    fn call_and_ret() {
        let (trace, s) = run(r"
            .entry main
        f:
            li r5, 123
            ret
        main:
            call f
            mov r6, r5
            halt");
        assert_eq!(s.int_reg(Reg::int(6)), 123);
        let calls: Vec<_> = trace.iter().filter(|d| d.taken).collect();
        assert_eq!(calls.len(), 2); // call + ret
    }

    #[test]
    fn fp_operations() {
        let (_, s) = run(r"
            li r1, 3
            itof f1, r1
            fadd f2, f1, f1
            fmul f3, f2, f1
            ftoi r2, f3
            halt");
        assert_eq!(s.int_reg(Reg::int(2)), 18);
        assert!((s.fp_reg(Reg::fp(3)) - 18.0).abs() < 1e-9);
    }

    #[test]
    fn fp_memory_round_trip() {
        let (_, s) = run(r"
            li r1, 7
            itof f1, r1
            li r9, 0x200
            fst f1, 0(r9)
            fld f2, 0(r9)
            ftoi r2, f2
            halt");
        assert_eq!(s.int_reg(Reg::int(2)), 7);
    }

    #[test]
    fn two_source_branches_and_imm_shifts() {
        let (trace, s) = run(r"
            li   r1, -8
            srai r2, r1, 1      ; -4 (arithmetic)
            sltiu r3, r1, 3     ; -8 as unsigned is huge -> 0
            li   r4, 5
            li   r5, 5
            beq  r4, r5, eq     ; taken
            li   r6, 111
        eq:
            blt  r1, r4, lt     ; -8 < 5, taken
            li   r6, 222
        lt:
            bgeu r1, r4, done   ; unsigned -8 >= 5, taken
            li   r6, 333
        done:
            halt");
        assert_eq!(s.int_reg(Reg::int(2)), -4);
        assert_eq!(s.int_reg(Reg::int(3)), 0);
        assert_eq!(s.int_reg(Reg::int(6)), 0, "all three branches taken");
        assert_eq!(trace.iter().filter(|d| d.taken).count(), 3);
    }

    #[test]
    fn div_by_zero_yields_zero() {
        let (_, s) = run("li r1, 5\nli r2, 0\ndiv r3, r1, r2\nhalt");
        assert_eq!(s.int_reg(Reg::int(3)), 0);
    }

    #[test]
    fn zero_register_is_immutable() {
        let (_, s) = run("li zero, 7\nadd r1, zero, zero\nhalt");
        assert_eq!(s.int_reg(Reg::int(1)), 0);
    }

    #[test]
    fn bad_indirect_jump_faults() {
        let img = assemble("li r1, 9999\njr r1\nhalt").unwrap();
        let mut i = Interpreter::new(&img);
        let n = i.by_ref().count();
        assert_eq!(n, 1);
        assert!(!i.stopped_cleanly());
    }

    #[test]
    fn halt_stops_cleanly() {
        let img = assemble("nop\nhalt").unwrap();
        let mut i = Interpreter::new(&img);
        assert_eq!(i.by_ref().count(), 1);
        assert!(i.stopped_cleanly());
    }

    #[test]
    fn next_sidx_chains() {
        let (trace, _) = run("li r1, 2\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt");
        for w in trace.windows(2) {
            assert_eq!(w[0].next_sidx, w[1].sidx);
        }
    }
}

//! # mos-asm
//!
//! A small assembler and architectural (functional) interpreter for the
//! `mos-isa` instruction set. Together they play the role SimpleScalar's
//! functional simulator played for the paper: turning programs into exact
//! committed-path dynamic traces ([`mos_isa::DynInst`] streams) that the
//! timing simulator consumes, and providing a golden reference for
//! correctness checks.
//!
//! ## Assembly syntax
//!
//! ```text
//! ; comments run to end of line
//! .entry main          ; optional, defaults to the first instruction
//! .word 0x1000, 42     ; preload 8-byte memory word
//! main:
//!     li   r1, 10
//! loop:
//!     addi r1, r1, -1
//!     bnez r1, loop
//!     halt
//! ```
//!
//! Register names are `r0..r31` (aliases: `zero` = r31, `sp` = r30,
//! `ra` = r26) and `f0..f31`. Loads and stores use `imm(reg)` addressing.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use mos_asm::{assemble, Interpreter};
//!
//! let img = assemble("li r1, 3\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt")?;
//! let (trace, state) = Interpreter::new(&img).run_collect(1_000);
//! assert_eq!(state.int_reg(mos_isa::Reg::int(1)), 0);
//! assert_eq!(trace.len(), 7); // li + 3x(addi, bnez)
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod interp;
mod parser;

pub use interp::{ArchState, Interpreter};
pub use parser::{assemble, AsmError, Image};

//! Exhaustive semantics tests: one assertion per opcode family, covering
//! sign handling, wrapping, shift masking and conversion truncation. The
//! interpreter is the golden reference for the whole workspace, so its
//! semantics deserve line-item coverage.

use mos_asm::{assemble, Interpreter};
use mos_isa::Reg;

fn run_expect(src: &str, reg: u8, expect: i64) {
    let img = assemble(src).unwrap_or_else(|e| panic!("assemble failed: {e}\n{src}"));
    let (_, state) = Interpreter::new(&img).run_collect(100_000);
    assert_eq!(
        state.int_reg(Reg::int(reg)),
        expect,
        "r{reg} mismatch for:\n{src}"
    );
}

#[test]
fn add_sub_wrap() {
    run_expect("li r1, 20\nli r2, 22\nadd r3, r1, r2\nhalt", 3, 42);
    run_expect("li r1, 5\nli r2, 9\nsub r3, r1, r2\nhalt", 3, -4);
    // Wrapping at i64 boundaries must not panic.
    run_expect(
        "li r1, 0x7fffffffffffffff\nli r2, 1\nadd r3, r1, r2\nhalt",
        3,
        i64::MIN,
    );
}

#[test]
fn addi_subi() {
    run_expect("li r1, 10\naddi r2, r1, -3\nhalt", 2, 7);
    run_expect("li r1, 10\nsubi r2, r1, 3\nhalt", 2, 7);
}

#[test]
fn bitwise_ops() {
    run_expect("li r1, 0b1100\nli r2, 0b1010\nand r3, r1, r2\nhalt", 3, 0b1000);
    run_expect("li r1, 0b1100\nli r2, 0b1010\nor r3, r1, r2\nhalt", 3, 0b1110);
    run_expect("li r1, 0b1100\nli r2, 0b1010\nxor r3, r1, r2\nhalt", 3, 0b0110);
    run_expect("li r1, 0\nnot r2, r1\nhalt", 2, -1);
    run_expect("li r1, 0xff\nandi r2, r1, 0x0f\nhalt", 2, 0x0f);
    run_expect("li r1, 0xf0\nori r2, r1, 0x0f\nhalt", 2, 0xff);
    run_expect("li r1, 0xff\nxori r2, r1, 0x0f\nhalt", 2, 0xf0);
}

#[test]
fn shifts_mask_their_amount() {
    run_expect("li r1, 1\nslli r2, r1, 4\nhalt", 2, 16);
    run_expect("li r1, 16\nsrli r2, r1, 4\nhalt", 2, 1);
    run_expect("li r1, 1\nli r2, 68\nsll r3, r1, r2\nhalt", 3, 16, );
    // srl is a logical shift: sign bit does not smear.
    run_expect("li r1, -8\nli r2, 1\nsrl r3, r1, r2\nhalt", 3, ((-8i64) as u64 >> 1) as i64);
    // sra is arithmetic: sign preserved.
    run_expect("li r1, -8\nli r2, 1\nsra r3, r1, r2\nhalt", 3, -4);
}

#[test]
fn comparisons_signed_and_unsigned() {
    run_expect("li r1, -1\nli r2, 1\nslt r3, r1, r2\nhalt", 3, 1);
    // Unsigned: -1 is the largest value.
    run_expect("li r1, -1\nli r2, 1\nsltu r3, r1, r2\nhalt", 3, 0);
    run_expect("li r1, 5\nslti r2, r1, 6\nhalt", 2, 1);
    run_expect("li r1, 7\nli r2, 7\ncmpeq r3, r1, r2\nhalt", 3, 1);
    run_expect("li r1, 7\nli r2, 8\ncmpeq r3, r1, r2\nhalt", 3, 0);
}

#[test]
fn mul_div_semantics() {
    run_expect("li r1, -6\nli r2, 7\nmul r3, r1, r2\nhalt", 3, -42);
    run_expect("li r1, 42\nli r2, -7\ndiv r3, r1, r2\nhalt", 3, -6);
    run_expect("li r1, 7\nli r2, 2\ndiv r3, r1, r2\nhalt", 3, 3);
    run_expect("li r1, 1\nli r2, 0\ndiv r3, r1, r2\nhalt", 3, 0, );
    // i64::MIN / -1 would overflow; wrapping_div keeps it defined.
    run_expect(
        "li r1, 0x7fffffffffffffff\nli r2, 1\nadd r1, r1, r2\nli r2, -1\ndiv r3, r1, r2\nhalt",
        3,
        i64::MIN,
    );
}

#[test]
fn mov_li() {
    run_expect("li r1, 99\nmov r2, r1\nhalt", 2, 99);
    run_expect("li r1, -0x10\nhalt", 1, -16);
}

#[test]
fn branch_directions() {
    run_expect("li r1, 0\nli r3, 1\nbeqz r1, t\nli r3, 2\nt: halt", 3, 1);
    run_expect("li r1, 5\nli r3, 1\nbeqz r1, t\nli r3, 2\nt: halt", 3, 2);
    run_expect("li r1, 5\nli r3, 1\nbnez r1, t\nli r3, 2\nt: halt", 3, 1);
    run_expect("li r1, -1\nli r3, 1\nbltz r1, t\nli r3, 2\nt: halt", 3, 1);
    run_expect("li r1, 0\nli r3, 1\nbltz r1, t\nli r3, 2\nt: halt", 3, 2);
    run_expect("li r1, 0\nli r3, 1\nbgez r1, t\nli r3, 2\nt: halt", 3, 1);
    run_expect("li r1, -1\nli r3, 1\nbgez r1, t\nli r3, 2\nt: halt", 3, 2);
}

#[test]
fn jumps_and_indirect() {
    run_expect("j skip\nli r1, 1\nskip: li r2, 2\nhalt", 2, 2);
    // jr through a register holding a static index.
    run_expect("li r1, 4\njr r1\nli r2, 1\nhalt\nli r2, 9\nj done\ndone: halt", 2, 9);
}

#[test]
fn memory_word_addressing() {
    // Sub-word addresses alias the containing 8-byte word.
    run_expect(
        "li r1, 0x100\nli r2, 7\nst r2, 0(r1)\nld r3, 4(r1)\nhalt",
        3,
        7,
    );
    // Different words do not alias.
    run_expect(
        "li r1, 0x100\nli r2, 7\nst r2, 0(r1)\nld r3, 8(r1)\nhalt",
        3,
        0,
    );
    // Negative displacement.
    run_expect(
        "li r1, 0x108\nli r2, 5\nst r2, -8(r1)\nli r4, 0x100\nld r3, 0(r4)\nhalt",
        3,
        5,
    );
}

#[test]
fn fp_family() {
    let src = |body: &str| format!("li r1, 9\nli r2, 2\nitof f1, r1\nitof f2, r2\n{body}\nftoi r3, f3\nhalt");
    run_expect(&src("fadd f3, f1, f2"), 3, 11);
    run_expect(&src("fsub f3, f1, f2"), 3, 7);
    run_expect(&src("fmul f3, f1, f2"), 3, 18);
    run_expect(&src("fdiv f3, f1, f2"), 3, 4); // 4.5 truncates toward zero
    run_expect("li r1, 3\nitof f1, r1\nfneg f2, f1\nftoi r3, f2\nhalt", 3, -3);
}

#[test]
fn call_ret_nesting() {
    run_expect(
        r"
        .entry main
    inner:
        addi r5, r5, 100
        ret
    outer:
        mov r7, ra          ; calls clobber ra: callee-save it
        addi r5, r5, 10
        call inner
        addi r5, r5, 1
        mov ra, r7
        ret
    main:
        li r5, 0
        call outer
        mov r6, r5
        halt",
        6,
        111,
    );
}

#[test]
fn zero_register_semantics_everywhere() {
    run_expect("li zero, 42\nadd r1, zero, zero\nhalt", 1, 0);
    run_expect("li r1, 5\nadd r2, r1, zero\nhalt", 2, 5);
    // Store using zero as data writes 0.
    run_expect("li r1, 0x200\nli r3, 9\nst r3, 0(r1)\nst zero, 0(r1)\nld r2, 0(r1)\nhalt", 2, 0);
}

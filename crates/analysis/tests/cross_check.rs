//! Cross-checks between the analytical model and the cycle simulator:
//! the simulator can never beat the analytical bound, and the analytical
//! wakeup-floor sensitivity must agree in direction with the measured
//! base-vs-2-cycle gap.

use mos_analysis::{Ddg, EdgeCosts, ScheduleModel};
use mos_isa::TraceSource;
use mos_sim::{MachineConfig, Simulator};
use mos_workload::{kernels, spec2000};

#[test]
fn simulator_never_beats_the_bound_on_kernels() {
    for k in kernels::all() {
        let ddg = Ddg::from_trace(k.interpreter(), usize::MAX);
        // Committed counts exclude no-ops; our kernels contain none on
        // the committed path, so the graph matches the committed stream.
        let bound = ScheduleModel::table1_atomic().lower_bound_cycles(&ddg);
        let stats = Simulator::new(MachineConfig::base_32(), k.interpreter()).run(u64::MAX);
        assert!(
            stats.cycles >= bound,
            "{}: simulated {} cycles beats analytical bound {}",
            k.name,
            stats.cycles,
            bound
        );
    }
}

#[test]
fn simulator_never_beats_the_bound_on_benchmarks() {
    for name in ["gap", "gzip", "mcf", "vortex"] {
        let spec = spec2000::by_name(name).expect("known");
        let n = 20_000;
        let ddg = Ddg::from_trace(spec.trace(42), n);
        let bound = ScheduleModel::table1_atomic().lower_bound_cycles(&ddg);
        let stats = Simulator::new(MachineConfig::base_32(), spec.trace(42)).run(n as u64);
        assert!(
            stats.cycles >= bound,
            "{name}: simulated {} cycles beats bound {}",
            stats.cycles,
            bound
        );
    }
}

#[test]
fn analytical_floor_sensitivity_tracks_the_simulator() {
    // Rank benchmarks by analytical 2-cycle sensitivity (estimate model)
    // and by simulated sensitivity: gap must rank above vortex in both.
    let sensitivity_analytic = |name: &str| {
        let spec = spec2000::by_name(name).expect("known");
        let ddg = Ddg::from_trace(spec.trace(42), 20_000);
        let a = ScheduleModel::table1_atomic().estimate_ipc(&ddg);
        let t = ScheduleModel::table1_two_cycle().estimate_ipc(&ddg);
        t / a
    };
    let sensitivity_sim = |name: &str| {
        let spec = spec2000::by_name(name).expect("known");
        let a = Simulator::new(MachineConfig::base_unrestricted(), spec.trace(42))
            .run(20_000)
            .ipc();
        let t = Simulator::new(MachineConfig::two_cycle_unrestricted(), spec.trace(42))
            .run(20_000)
            .ipc();
        t / a
    };
    let (ga, va) = (sensitivity_analytic("gap"), sensitivity_analytic("vortex"));
    let (gs, vs) = (sensitivity_sim("gap"), sensitivity_sim("vortex"));
    assert!(ga < va, "analytic: gap {ga:.3} should lose more than vortex {va:.3}");
    assert!(gs < vs, "simulated: gap {gs:.3} should lose more than vortex {vs:.3}");
}

#[test]
fn window_depth_separates_sensitive_from_insensitive() {
    let depth = |name: &str| {
        let spec = spec2000::by_name(name).expect("known");
        let ddg = Ddg::from_trace(spec.trace(42), 20_000);
        // Depth added by the 2-cycle floor within a ROB-sized window.
        let d1 = ddg.mean_window_depth(128, 64, EdgeCosts::atomic());
        let d2 = ddg.mean_window_depth(128, 64, EdgeCosts::two_cycle());
        d2 - d1
    };
    assert!(
        depth("gap") > depth("vortex"),
        "gap gains more window depth from the 2-cycle floor"
    );
}

#[test]
fn graph_len_matches_committed_stream() {
    let spec = spec2000::by_name("perl").expect("known");
    let n = 5_000;
    let ddg = Ddg::from_trace(spec.trace(42), n);
    assert_eq!(ddg.len(), n);
    // All predecessor indices point backward.
    for (k, node) in ddg.nodes().iter().enumerate() {
        for &p in &node.preds {
            assert!(p < k);
        }
    }
    // And every node's sidx is a valid program index.
    let t = spec.trace(42);
    let p = t.program().clone();
    for node in ddg.nodes() {
        assert!(p.inst(node.sidx).is_some());
    }
}

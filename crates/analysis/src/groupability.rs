//! Macro-op groupability characterization over arbitrary traces — the
//! generalized form of the paper's Section 4 analyses, reusable for any
//! [`TraceSource`] (kernels, synthetic models, recorded traces).

use mos_isa::{Reg, TraceSource};

/// Aggregate groupability profile of a trace window.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateProfile {
    /// Committed instructions examined.
    pub total: u64,
    /// Macro-op candidates (single-cycle operations).
    pub candidates: u64,
    /// Value-generating candidates (potential MOP heads).
    pub valuegen: u64,
    /// Histogram over head→nearest-tail distances, indexed by distance
    /// (1-based; index 0 unused). Distances beyond the horizon are
    /// accumulated in the last bucket.
    pub distance_histogram: Vec<u64>,
    /// Heads whose dependents are all multi-cycle.
    pub no_candidate_tail: u64,
    /// Heads that die unread.
    pub dead: u64,
}

impl CandidateProfile {
    /// Fraction of heads with a candidate tail within `d` instructions.
    pub fn within(&self, d: usize) -> f64 {
        let total = self.valuegen.max(1) as f64;
        let sum: u64 = self
            .distance_histogram
            .iter()
            .take(d + 1)
            .sum();
        sum as f64 / total
    }

    /// Fraction of committed instructions that are candidates.
    pub fn candidate_frac(&self) -> f64 {
        self.candidates as f64 / self.total.max(1) as f64
    }

    /// Fraction of committed instructions that are value-generating
    /// candidates (Figure 6's `% total insts`).
    pub fn valuegen_frac(&self) -> f64 {
        self.valuegen as f64 / self.total.max(1) as f64
    }
}

/// Characterize the first `n` committed instructions of `trace` with a
/// forward horizon of `horizon` instructions.
pub fn candidate_profile<T: TraceSource>(mut trace: T, n: usize, horizon: usize) -> CandidateProfile {
    let program = trace.program().clone();
    #[derive(Clone, Copy)]
    struct Head {
        pos: u64,
        any_consumer: bool,
        done: bool,
    }
    let mut last_writer: [Option<usize>; Reg::NUM] = [None; Reg::NUM];
    let mut heads: Vec<Head> = Vec::new();
    let mut profile = CandidateProfile {
        total: 0,
        candidates: 0,
        valuegen: 0,
        distance_histogram: vec![0; horizon + 1],
        no_candidate_tail: 0,
        dead: 0,
    };
    let close = |h: &Head, dist: Option<u64>, profile: &mut CandidateProfile| match dist {
        Some(d) => {
            let idx = (d as usize).min(horizon);
            profile.distance_histogram[idx] += 1;
        }
        None if h.any_consumer => profile.no_candidate_tail += 1,
        None => profile.dead += 1,
    };

    for (k, d) in trace.by_ref().take(n).enumerate() {
        let inst = program.inst(d.sidx).expect("trace index valid");
        profile.total += 1;
        if inst.is_mop_candidate() {
            profile.candidates += 1;
        }
        for src in inst.src_regs() {
            if let Some(hidx) = last_writer[src.index()] {
                let h = &mut heads[hidx];
                if !h.done {
                    h.any_consumer = true;
                    if inst.is_mop_candidate() {
                        h.done = true;
                        let dist = k as u64 - h.pos;
                        let hc = *h;
                        close(&hc, Some(dist), &mut profile);
                    }
                }
            }
        }
        if let Some(dst) = inst.dst() {
            if let Some(hidx) = last_writer[dst.index()].take() {
                if !heads[hidx].done {
                    heads[hidx].done = true;
                    let hc = heads[hidx];
                    close(&hc, None, &mut profile);
                }
            }
            if inst.is_value_generating_candidate() {
                profile.valuegen += 1;
                last_writer[dst.index()] = Some(heads.len());
                heads.push(Head {
                    pos: k as u64,
                    any_consumer: false,
                    done: false,
                });
            }
        }
        // Age out heads past the horizon.
        if k >= horizon && k.is_multiple_of(horizon) {
            let cutoff = (k - horizon) as u64;
            for h in heads.iter_mut().filter(|h| !h.done && h.pos <= cutoff) {
                h.done = true;
                let hc = *h;
                close(&hc, None, &mut profile);
            }
        }
    }
    for h in heads.iter().filter(|h| !h.done) {
        close(h, None, &mut profile);
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use mos_asm::{assemble, Interpreter};

    fn profile(src: &str) -> CandidateProfile {
        candidate_profile(Interpreter::new(&assemble(src).expect("valid")), 100_000, 64)
    }

    #[test]
    fn adjacent_pair_is_distance_one() {
        let p = profile("li r1, 5\naddi r2, r1, 1\nhalt");
        assert_eq!(p.valuegen, 2);
        assert_eq!(p.distance_histogram[1], 1, "li -> addi at distance 1");
        assert_eq!(p.dead, 1, "addi's value dies");
        assert!((p.within(3) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn load_consumer_is_not_a_tail() {
        let p = profile("li r1, 0x100\nld r2, 0(r1)\nhalt");
        assert_eq!(p.no_candidate_tail, 1, "only consumer is a load");
    }

    #[test]
    fn overwrite_kills_the_head() {
        let p = profile("li r1, 1\nli r1, 2\naddi r2, r1, 1\nhalt");
        assert_eq!(p.dead, 2, "first li dies, addi's value dies");
        assert_eq!(p.distance_histogram[1], 1, "second li pairs with addi");
    }

    #[test]
    fn candidate_fractions_are_sane() {
        let p = profile("li r1, 0x100\nld r2, 0(r1)\nmul r3, r2, r2\naddi r4, r3, 1\nhalt");
        assert_eq!(p.total, 4);
        assert_eq!(p.candidates, 2, "li and addi");
        assert!((p.candidate_frac() - 0.5).abs() < 1e-9);
        assert!((p.valuegen_frac() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn totals_balance() {
        let p = profile(
            "li r1, 2\nloop: addi r2, r1, 3\nslli r3, r2, 1\naddi r1, r1, -1\nbnez r1, loop\nhalt",
        );
        let classified: u64 =
            p.distance_histogram.iter().sum::<u64>() + p.no_candidate_tail + p.dead;
        assert_eq!(classified, p.valuegen, "every head classified exactly once");
    }
}

//! Data-dependence-graph construction and path metrics.

use mos_isa::{InstClass, Reg, TraceSource};

/// Edge-latency model. The *wakeup floor* is the minimum dependents-visible
/// latency of any operation — 1 under atomic scheduling, 2 under the
/// paper's pipelined 2-cycle loop — so the same graph answers "what does
/// this workload's critical path look like under either scheduler".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeCosts {
    /// Minimum dependence-edge latency in cycles.
    pub wakeup_floor: u64,
    /// Assumed load-to-use latency (address generation + DL1 hit).
    pub load_latency: u64,
}

impl EdgeCosts {
    /// Atomic (1-cycle) scheduling: edges cost their execution latency.
    pub fn atomic() -> EdgeCosts {
        EdgeCosts {
            wakeup_floor: 1,
            load_latency: 3,
        }
    }

    /// Pipelined 2-cycle scheduling: single-cycle edges stretch to 2.
    pub fn two_cycle() -> EdgeCosts {
        EdgeCosts {
            wakeup_floor: 2,
            load_latency: 3,
        }
    }

    /// Edge cost for a producer of the given class.
    pub fn cost(&self, producer: InstClass) -> u64 {
        let lat = match producer {
            InstClass::Load => self.load_latency,
            c => u64::from(c.exec_latency()),
        };
        lat.max(self.wakeup_floor)
    }
}

/// One node of the dependence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DdgNode {
    /// Static instruction index.
    pub sidx: u32,
    /// Latency class.
    pub class: InstClass,
    /// Indices (into the trace window) of direct register producers.
    pub preds: Vec<usize>,
}

/// The data dependence graph of a committed-path trace window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ddg {
    nodes: Vec<DdgNode>,
}

impl Ddg {
    /// Build the graph from the first `n` committed instructions of a
    /// trace. Register dependences use last-writer semantics; the
    /// hard-wired zero register never carries an edge.
    pub fn from_trace<T: TraceSource>(mut trace: T, n: usize) -> Ddg {
        let program = trace.program().clone();
        let mut last_writer: [Option<usize>; Reg::NUM] = [None; Reg::NUM];
        let mut nodes = Vec::with_capacity(n.min(1 << 20));
        for (k, d) in trace.by_ref().take(n).enumerate() {
            let inst = program.inst(d.sidx).expect("trace index in program");
            let mut preds: Vec<usize> = inst
                .src_regs()
                .filter_map(|s| last_writer[s.index()])
                .collect();
            preds.sort_unstable();
            preds.dedup();
            nodes.push(DdgNode {
                sidx: d.sidx,
                class: inst.class(),
                preds,
            });
            if let Some(dst) = inst.dst() {
                last_writer[dst.index()] = Some(k);
            }
        }
        Ddg { nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes, in program order.
    pub fn nodes(&self) -> &[DdgNode] {
        &self.nodes
    }

    /// Per-node completion depth under `costs` (longest dependence path
    /// ending at each node, inclusive of the producers' latencies).
    pub fn depths(&self, costs: EdgeCosts) -> Vec<u64> {
        let mut done = vec![0u64; self.nodes.len()];
        for (k, node) in self.nodes.iter().enumerate() {
            let mut r = 0;
            for &p in &node.preds {
                r = r.max(done[p] + costs.cost(self.nodes[p].class));
            }
            done[k] = r;
        }
        done
    }

    /// Critical-path length under `costs`.
    pub fn critical_path(&self, costs: EdgeCosts) -> u64 {
        self.depths(costs).into_iter().max().unwrap_or(0)
    }

    /// Mean dependence depth of sliding `window`-node sub-graphs (edges
    /// confined to the window), sampled every `stride` nodes — the
    /// chain depth an out-of-order core with a `window`-entry ROB
    /// actually contends with.
    pub fn mean_window_depth(&self, window: usize, stride: usize, costs: EdgeCosts) -> f64 {
        assert!(window > 0 && stride > 0);
        if self.nodes.len() < window {
            return self.critical_path(costs) as f64;
        }
        let mut sum = 0.0;
        let mut count = 0u64;
        let mut done = vec![0u64; window];
        for start in (0..=self.nodes.len() - window).step_by(stride) {
            let mut max = 0;
            for k in 0..window {
                let node = &self.nodes[start + k];
                let mut r = 0;
                for &p in &node.preds {
                    if p >= start {
                        r = r.max(done[p - start] + costs.cost(self.nodes[p].class));
                    }
                }
                done[k] = r;
                max = max.max(r);
            }
            sum += max as f64;
            count += 1;
        }
        sum / count as f64
    }

    /// Fraction of edges whose producer is a single-cycle operation —
    /// the edges a pipelined scheduling loop stretches.
    pub fn single_cycle_edge_frac(&self) -> f64 {
        let mut total = 0u64;
        let mut single = 0u64;
        for node in &self.nodes {
            for &p in &node.preds {
                total += 1;
                if self.nodes[p].class.is_single_cycle() {
                    single += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            single as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mos_asm::{assemble, Interpreter};

    fn ddg_of(src: &str, n: usize) -> Ddg {
        Ddg::from_trace(Interpreter::new(&assemble(src).expect("valid asm")), n)
    }

    #[test]
    fn serial_chain_critical_path() {
        // 6 dependent adds: path = 5 edges (the first has no producer).
        let src = "li r1, 0\naddi r1, r1, 1\naddi r1, r1, 1\naddi r1, r1, 1\n\
                   addi r1, r1, 1\naddi r1, r1, 1\nhalt";
        let d = ddg_of(src, 100);
        assert_eq!(d.len(), 6);
        assert_eq!(d.critical_path(EdgeCosts::atomic()), 5);
        assert_eq!(d.critical_path(EdgeCosts::two_cycle()), 10);
    }

    #[test]
    fn independent_work_has_flat_paths() {
        let src = "li r1, 1\nli r2, 2\nli r3, 3\nli r4, 4\nhalt";
        let d = ddg_of(src, 100);
        assert_eq!(d.critical_path(EdgeCosts::atomic()), 0);
    }

    #[test]
    fn load_edges_do_not_stretch_under_two_cycle() {
        let src = "li r1, 0x100\nld r2, 0(r1)\naddi r3, r2, 1\nhalt";
        let d = ddg_of(src, 100);
        // li -> ld (1 or 2) then ld -> addi (3 either way).
        assert_eq!(d.critical_path(EdgeCosts::atomic()), 1 + 3);
        assert_eq!(d.critical_path(EdgeCosts::two_cycle()), 2 + 3);
    }

    #[test]
    fn depths_are_monotone_in_the_floor() {
        let src = "li r1, 1\naddi r2, r1, 1\nld r3, 0(r2)\naddi r4, r3, 1\nhalt";
        let d = ddg_of(src, 100);
        let a = d.depths(EdgeCosts::atomic());
        let b = d.depths(EdgeCosts::two_cycle());
        for (x, y) in a.iter().zip(&b) {
            assert!(y >= x);
        }
    }

    #[test]
    fn window_depth_ignores_out_of_window_edges() {
        // A long serial chain: full-graph depth grows with length, but
        // a window of 4 sees at most 3 edges.
        let mut src = String::from("li r1, 0\n");
        for _ in 0..40 {
            src.push_str("addi r1, r1, 1\n");
        }
        src.push_str("halt");
        let d = ddg_of(&src, 100);
        let w = d.mean_window_depth(4, 1, EdgeCosts::atomic());
        assert!(w <= 3.0 + 1e-9, "window depth {w}");
        assert!(w > 2.0, "window depth {w}");
    }

    #[test]
    fn single_cycle_edge_fraction() {
        let src = "li r1, 0x100\nld r2, 0(r1)\naddi r3, r2, 1\naddi r4, r3, 1\nhalt";
        let d = ddg_of(src, 100);
        // Edges: li->ld (single-cycle producer), ld->addi (load), addi->addi (single).
        let f = d.single_cycle_edge_frac();
        assert!((f - 2.0 / 3.0).abs() < 1e-9, "{f}");
    }

    #[test]
    fn zero_register_carries_no_edges() {
        let src = "li r1, 1\nadd r2, zero, zero\nhalt";
        let d = ddg_of(src, 100);
        assert!(d.nodes()[1].preds.is_empty());
    }
}

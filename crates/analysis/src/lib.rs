//! # mos-analysis
//!
//! Machine-independent dataflow analysis over dynamic traces — the
//! analytical companion to the cycle simulator in `mos-sim`:
//!
//! * [`Ddg`] — the data dependence graph of a committed-path trace
//!   window, with per-edge latencies derived from instruction classes;
//! * [`EdgeCosts`] — the cost model: a configurable *wakeup floor*
//!   expresses scheduling-loop pipelining analytically (floor 1 = atomic
//!   scheduling, floor 2 = the paper's 2-cycle loop), so
//!   `Ddg::critical_path` directly reproduces the reasoning behind the
//!   paper's Figure 5;
//! * windowed depth metrics ([`Ddg::mean_window_depth`]) — how deep
//!   dependence chains look to a 128-entry ROB, the quantity that decides
//!   whether a workload is scheduling-loop-bound;
//! * [`candidate_profile`] — the generalized Figure 6 characterization:
//!   macro-op candidate fractions and head-to-tail distance histograms
//!   for any trace;
//! * [`ScheduleModel`] — closed-form lower bounds and a greedy schedule
//!   estimate for width/window-limited machines, cross-checked against
//!   the cycle simulator by the test suite (the simulator can never beat
//!   the analytical bound).
//!
//! ```
//! use mos_analysis::{Ddg, EdgeCosts};
//! use mos_workload::spec2000;
//!
//! let trace = spec2000::by_name("gap").unwrap().trace(42);
//! let ddg = Ddg::from_trace(trace, 10_000);
//! let atomic = ddg.critical_path(EdgeCosts::atomic());
//! let pipelined = ddg.critical_path(EdgeCosts::two_cycle());
//! assert!(pipelined >= atomic);
//! ```

#![warn(missing_docs)]

mod ddg;
mod groupability;
mod schedule;

pub use ddg::{Ddg, DdgNode, EdgeCosts};
pub use groupability::{candidate_profile, CandidateProfile};
pub use schedule::ScheduleModel;

//! Analytical schedule bounds and estimates for width/window-limited
//! machines.

use crate::ddg::{Ddg, EdgeCosts};

/// A resource model: issue width, in-flight window (ROB) and edge costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleModel {
    /// Instructions issued per cycle.
    pub width: usize,
    /// Maximum in-flight instructions (ROB size).
    pub window: usize,
    /// Edge-latency model.
    pub costs: EdgeCosts,
}

impl ScheduleModel {
    /// The paper's machine under atomic scheduling: 4-wide, 128-entry ROB.
    pub fn table1_atomic() -> ScheduleModel {
        ScheduleModel {
            width: 4,
            window: 128,
            costs: EdgeCosts::atomic(),
        }
    }

    /// The paper's machine under the pipelined 2-cycle loop.
    pub fn table1_two_cycle() -> ScheduleModel {
        ScheduleModel {
            width: 4,
            window: 128,
            costs: EdgeCosts::two_cycle(),
        }
    }

    /// A true lower bound on execution cycles: no machine of this width
    /// can beat `max(N / width, critical path)`. The cycle simulator's
    /// measured cycles must always be at least this.
    pub fn lower_bound_cycles(&self, ddg: &Ddg) -> u64 {
        let width_bound = ddg.len().div_ceil(self.width) as u64;
        width_bound.max(ddg.critical_path(self.costs))
    }

    /// Upper bound on achievable IPC (from [`Self::lower_bound_cycles`]).
    pub fn ipc_upper_bound(&self, ddg: &Ddg) -> f64 {
        let c = self.lower_bound_cycles(ddg);
        if c == 0 {
            self.width as f64
        } else {
            ddg.len() as f64 / c as f64
        }
    }

    /// Greedy schedule estimate: issue in dependence-and-resource order
    /// with at most `width` issues per cycle and at most `window`
    /// instructions in flight (an instruction may not issue until the
    /// instruction `window` places earlier has completed). An idealized
    /// machine — no fetch breaks, perfect predictions and caches — so it
    /// overestimates real IPC but tracks scheduler sensitivity.
    pub fn estimate_cycles(&self, ddg: &Ddg) -> u64 {
        let n = ddg.len();
        if n == 0 {
            return 0;
        }
        let nodes = ddg.nodes();
        let mut issue = vec![0u64; n];
        let mut complete = vec![0u64; n];
        // Earliest issue per dependences.
        let mut slot_base = 0u64; // current cycle candidate for in-order greedy fill
        let mut issued_in_cycle = 0usize;
        for k in 0..n {
            let mut ready = 0u64;
            for &p in &nodes[k].preds {
                ready = ready.max(issue[p] + self.costs.cost(nodes[p].class));
            }
            // Window: wait for the (k - window)-th completion.
            if k >= self.window {
                ready = ready.max(complete[k - self.window]);
            }
            // Width: pack greedily.
            let t = if ready > slot_base {
                issued_in_cycle = 0;
                ready
            } else {
                if issued_in_cycle >= self.width {
                    issued_in_cycle = 0;
                    slot_base + 1
                } else {
                    slot_base
                }
            };
            slot_base = t;
            issued_in_cycle += 1;
            issue[k] = t;
            complete[k] = t + self.costs.cost(nodes[k].class);
        }
        issue[n - 1] + 1
    }

    /// IPC from [`Self::estimate_cycles`].
    pub fn estimate_ipc(&self, ddg: &Ddg) -> f64 {
        let c = self.estimate_cycles(ddg);
        if c == 0 {
            0.0
        } else {
            ddg.len() as f64 / c as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mos_asm::{assemble, Interpreter};

    fn ddg_of(src: &str) -> Ddg {
        Ddg::from_trace(Interpreter::new(&assemble(src).expect("valid")), 100_000)
    }

    #[test]
    fn width_bound_dominates_flat_graphs() {
        let src = "li r1, 1\nli r2, 2\nli r3, 3\nli r4, 4\nli r5, 5\nli r6, 6\nli r7, 7\nli r8, 8\nhalt";
        let d = ddg_of(src);
        let m = ScheduleModel::table1_atomic();
        assert_eq!(m.lower_bound_cycles(&d), 2, "8 insts / width 4");
        assert!((m.ipc_upper_bound(&d) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn chain_bound_dominates_serial_graphs() {
        let mut src = String::from("li r1, 0\n");
        for _ in 0..50 {
            src.push_str("addi r1, r1, 1\n");
        }
        src.push_str("halt");
        let d = ddg_of(&src);
        let atomic = ScheduleModel::table1_atomic();
        let two = ScheduleModel::table1_two_cycle();
        assert_eq!(atomic.lower_bound_cycles(&d), 50);
        assert_eq!(two.lower_bound_cycles(&d), 100);
        // The estimate respects the chain too.
        assert!(atomic.estimate_cycles(&d) >= 50);
        assert!(two.estimate_cycles(&d) >= 100);
    }

    #[test]
    fn estimate_never_beats_the_bound() {
        let src = r"
            li r1, 30
            li r2, 0
        loop:
            add r2, r2, r1
            ld r3, 0(r2)
            add r2, r2, r3
            addi r1, r1, -1
            bnez r1, loop
            halt";
        let d = ddg_of(src);
        for m in [ScheduleModel::table1_atomic(), ScheduleModel::table1_two_cycle()] {
            assert!(m.estimate_cycles(&d) >= m.lower_bound_cycles(&d));
        }
    }

    #[test]
    fn window_limits_far_ahead_issue() {
        // Independent instructions, tiny window: issue rate still capped
        // by completion of older work... with 1-cycle ops the window never
        // binds, so use a long-latency producer stream.
        let mut src = String::new();
        for i in 0..16 {
            src.push_str(&format!("li r{}, {}\n", 1 + (i % 8), i));
        }
        src.push_str("halt");
        let d = ddg_of(&src);
        let narrow = ScheduleModel {
            width: 4,
            window: 4,
            costs: EdgeCosts::atomic(),
        };
        let wide = ScheduleModel {
            width: 4,
            window: 128,
            costs: EdgeCosts::atomic(),
        };
        assert!(narrow.estimate_cycles(&d) >= wide.estimate_cycles(&d));
    }

    #[test]
    fn empty_graph_is_trivial() {
        let d = Ddg::from_trace(Interpreter::new(&assemble("halt").unwrap()), 10);
        let m = ScheduleModel::table1_atomic();
        assert_eq!(m.estimate_cycles(&d), 0);
        assert_eq!(m.lower_bound_cycles(&d), 0);
    }
}

use std::fmt;


/// Latency/resource class of an instruction, mirroring Table 1 of the paper.
///
/// The class determines execution latency, which functional-unit pool the
/// instruction competes for, and whether it is a macro-op grouping candidate
/// (single-cycle operations only: integer ALU, store address generation and
/// control instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply (3 cycles).
    IntMul,
    /// Integer divide (20 cycles).
    IntDiv,
    /// Floating-point add/convert (2 cycles).
    FpAlu,
    /// Floating-point multiply (4 cycles).
    FpMul,
    /// Floating-point divide (24 cycles).
    FpDiv,
    /// Memory load (address generation + cache access; variable latency).
    Load,
    /// Memory store. Decoded into a single-cycle address-generation
    /// operation plus a store-data operation performed at commit, as in the
    /// Pentium 4-style model of Section 2.1.
    Store,
    /// Conditional direct branch (single-cycle).
    CondBranch,
    /// Unconditional direct jump (single-cycle).
    Jump,
    /// Direct call; writes the return address (single-cycle).
    Call,
    /// Indirect jump through a register (single-cycle).
    IndirectJump,
    /// Return through the return-address stack (single-cycle).
    Return,
    /// No-op; removed by the decoder without executing.
    Nop,
    /// Program terminator (treated like a no-op by the timing model).
    Halt,
}

impl InstClass {
    /// Default execution latency in cycles (Table 1 of the paper).
    ///
    /// For [`InstClass::Load`] this is the address-generation latency only;
    /// the cache adds its own hit/miss latency on top. Branch classes
    /// resolve in one cycle in the execution stage.
    pub fn exec_latency(self) -> u32 {
        use InstClass::*;
        match self {
            IntAlu | CondBranch | Jump | Call | IndirectJump | Return | Store => 1,
            IntMul => 3,
            IntDiv => 20,
            FpAlu => 2,
            FpMul => 4,
            FpDiv => 24,
            Load => 1,
            Nop | Halt => 1,
        }
    }

    /// Functional-unit pool this class issues to.
    pub fn fu(self) -> FuKind {
        use InstClass::*;
        match self {
            IntAlu | CondBranch | Jump | Call | IndirectJump | Return | Nop | Halt => FuKind::IntAlu,
            IntMul | IntDiv => FuKind::IntMulDiv,
            FpAlu => FuKind::FpAlu,
            FpMul | FpDiv => FuKind::FpMulDiv,
            Load | Store => FuKind::MemPort,
        }
    }

    /// `true` when the class executes in a single cycle, i.e. the class
    /// whose dependents demand an atomic 1-cycle scheduling loop. These are
    /// the macro-op grouping candidates of Section 4.1: single-cycle ALU,
    /// store address generation and control instructions.
    pub fn is_single_cycle(self) -> bool {
        use InstClass::*;
        matches!(
            self,
            IntAlu | Store | CondBranch | Jump | Call | IndirectJump | Return
        )
    }

    /// `true` for control-transfer classes.
    pub fn is_control(self) -> bool {
        use InstClass::*;
        matches!(self, CondBranch | Jump | Call | IndirectJump | Return)
    }

    /// `true` for classes that access memory.
    pub fn is_mem(self) -> bool {
        matches!(self, InstClass::Load | InstClass::Store)
    }
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstClass::IntAlu => "int-alu",
            InstClass::IntMul => "int-mul",
            InstClass::IntDiv => "int-div",
            InstClass::FpAlu => "fp-alu",
            InstClass::FpMul => "fp-mul",
            InstClass::FpDiv => "fp-div",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::CondBranch => "cond-branch",
            InstClass::Jump => "jump",
            InstClass::Call => "call",
            InstClass::IndirectJump => "indirect-jump",
            InstClass::Return => "return",
            InstClass::Nop => "nop",
            InstClass::Halt => "halt",
        };
        f.write_str(s)
    }
}

/// Functional-unit pool identifiers; pool sizes come from the machine
/// configuration (Table 1: 4 integer ALUs, 2 FP ALUs, 2 integer MUL/DIV,
/// 2 FP MUL/DIV, 2 general memory ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Integer ALU (also executes branches).
    IntAlu,
    /// Integer multiplier/divider.
    IntMulDiv,
    /// Floating-point adder.
    FpAlu,
    /// Floating-point multiplier/divider.
    FpMulDiv,
    /// General memory port.
    MemPort,
}

impl FuKind {
    /// All functional-unit kinds.
    pub const ALL: [FuKind; 5] = [
        FuKind::IntAlu,
        FuKind::IntMulDiv,
        FuKind::FpAlu,
        FuKind::FpMulDiv,
        FuKind::MemPort,
    ];

    /// Dense index for per-pool bookkeeping tables.
    pub fn index(self) -> usize {
        match self {
            FuKind::IntAlu => 0,
            FuKind::IntMulDiv => 1,
            FuKind::FpAlu => 2,
            FuKind::FpMulDiv => 3,
            FuKind::MemPort => 4,
        }
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::IntAlu => "int-alu",
            FuKind::IntMulDiv => "int-muldiv",
            FuKind::FpAlu => "fp-alu",
            FuKind::FpMulDiv => "fp-muldiv",
            FuKind::MemPort => "mem-port",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_classes_match_paper_candidates() {
        assert!(InstClass::IntAlu.is_single_cycle());
        assert!(InstClass::Store.is_single_cycle(), "store address generation");
        assert!(InstClass::CondBranch.is_single_cycle());
        assert!(!InstClass::Load.is_single_cycle());
        assert!(!InstClass::IntMul.is_single_cycle());
        assert!(!InstClass::FpAlu.is_single_cycle());
    }

    #[test]
    fn latencies_match_table1() {
        assert_eq!(InstClass::IntAlu.exec_latency(), 1);
        assert_eq!(InstClass::IntMul.exec_latency(), 3);
        assert_eq!(InstClass::IntDiv.exec_latency(), 20);
        assert_eq!(InstClass::FpAlu.exec_latency(), 2);
        assert_eq!(InstClass::FpMul.exec_latency(), 4);
        assert_eq!(InstClass::FpDiv.exec_latency(), 24);
    }

    #[test]
    fn fu_indices_are_dense_and_unique() {
        let mut seen = [false; 5];
        for fu in FuKind::ALL {
            assert!(!seen[fu.index()]);
            seen[fu.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}

use std::fmt;
use std::str::FromStr;


use crate::class::InstClass;

/// Operation performed by a [`StaticInst`](crate::StaticInst).
///
/// The set is deliberately small but covers every latency class of the
/// paper's machine model (Table 1) plus enough arithmetic/control variety to
/// write real kernels in `mos-asm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Opcode {
    // --- single-cycle integer ALU (MOP candidates) ---
    Add,
    Addi,
    Sub,
    Subi,
    And,
    Andi,
    Or,
    Ori,
    Xor,
    Xori,
    Not,
    Sll,
    Slli,
    Srl,
    Srli,
    Sra,
    Slt,
    Sltu,
    Slti,
    Sltiu,
    Srai,
    Cmpeq,
    /// Load immediate into a register (`li rd, imm`).
    Li,
    /// Register move (`mov rd, rs`).
    Mov,
    // --- long-latency integer ---
    Mul,
    Div,
    // --- floating point ---
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
    Fneg,
    /// Convert integer register to floating point register.
    Itof,
    /// Convert floating point register to integer register.
    Ftoi,
    // --- memory ---
    /// Integer load: `ld rd, imm(rs)`.
    Ld,
    /// Integer store: `st rs2, imm(rs1)`.
    St,
    /// Floating-point load: `fld fd, imm(rs)`.
    Fld,
    /// Floating-point store: `fst fs2, imm(rs1)`.
    Fst,
    // --- control ---
    /// Branch if equal zero: `beqz rs, label`.
    Beqz,
    /// Branch if not equal zero: `bnez rs, label`.
    Bnez,
    /// Branch if less than zero: `bltz rs, label`.
    Bltz,
    /// Branch if greater or equal zero: `bgez rs, label`.
    Bgez,
    /// Two-source branch if equal: `beq rs1, rs2, label` (RV lowering target).
    Beq,
    /// Two-source branch if not equal: `bne rs1, rs2, label`.
    Bne,
    /// Two-source branch if less than (signed): `blt rs1, rs2, label`.
    Blt,
    /// Two-source branch if greater or equal (signed): `bge rs1, rs2, label`.
    Bge,
    /// Two-source branch if less than (unsigned): `bltu rs1, rs2, label`.
    Bltu,
    /// Two-source branch if greater or equal (unsigned): `bgeu rs1, rs2, label`.
    Bgeu,
    /// Unconditional direct jump: `j label`.
    Jmp,
    /// Direct call, writes return address to `ra`: `call label`.
    Call,
    /// Indirect jump through a register: `jr rs`.
    Jr,
    /// Return through the return-address register (RAS-predicted).
    Ret,
    // --- misc ---
    /// No operation; filtered by the decoder without executing (as the
    /// paper does for Alpha no-ops).
    Nop,
    /// Stop the program.
    Halt,
}

impl Opcode {
    /// Latency/resource class of this opcode.
    pub fn class(self) -> InstClass {
        use Opcode::*;
        match self {
            Add | Addi | Sub | Subi | And | Andi | Or | Ori | Xor | Xori | Not | Sll | Slli
            | Srl | Srli | Sra | Srai | Slt | Sltu | Slti | Sltiu | Cmpeq | Li | Mov => {
                InstClass::IntAlu
            }
            Mul => InstClass::IntMul,
            Div => InstClass::IntDiv,
            Fadd | Fsub | Fneg | Itof | Ftoi => InstClass::FpAlu,
            Fmul => InstClass::FpMul,
            Fdiv => InstClass::FpDiv,
            Ld | Fld => InstClass::Load,
            St | Fst => InstClass::Store,
            Beqz | Bnez | Bltz | Bgez | Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                InstClass::CondBranch
            }
            Jmp => InstClass::Jump,
            Call => InstClass::Call,
            Jr => InstClass::IndirectJump,
            Ret => InstClass::Return,
            Nop => InstClass::Nop,
            Halt => InstClass::Halt,
        }
    }

    /// Mnemonic as accepted by the `mos-asm` assembler.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Addi => "addi",
            Sub => "sub",
            Subi => "subi",
            And => "and",
            Andi => "andi",
            Or => "or",
            Ori => "ori",
            Xor => "xor",
            Xori => "xori",
            Not => "not",
            Sll => "sll",
            Slli => "slli",
            Srl => "srl",
            Srli => "srli",
            Sra => "sra",
            Slt => "slt",
            Sltu => "sltu",
            Slti => "slti",
            Sltiu => "sltiu",
            Srai => "srai",
            Cmpeq => "cmpeq",
            Li => "li",
            Mov => "mov",
            Mul => "mul",
            Div => "div",
            Fadd => "fadd",
            Fsub => "fsub",
            Fmul => "fmul",
            Fdiv => "fdiv",
            Fneg => "fneg",
            Itof => "itof",
            Ftoi => "ftoi",
            Ld => "ld",
            St => "st",
            Fld => "fld",
            Fst => "fst",
            Beqz => "beqz",
            Bnez => "bnez",
            Bltz => "bltz",
            Bgez => "bgez",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Jmp => "j",
            Call => "call",
            Jr => "jr",
            Ret => "ret",
            Nop => "nop",
            Halt => "halt",
        }
    }

    /// All opcodes, in declaration order. Useful for exhaustive tests.
    pub fn all() -> impl Iterator<Item = Opcode> {
        use Opcode::*;
        [
            Add, Addi, Sub, Subi, And, Andi, Or, Ori, Xor, Xori, Not, Sll, Slli, Srl, Srli, Sra,
            Srai, Slt, Sltu, Slti, Sltiu, Cmpeq, Li, Mov, Mul, Div, Fadd, Fsub, Fmul, Fdiv, Fneg,
            Itof, Ftoi, Ld, St, Fld, Fst, Beqz, Bnez, Bltz, Bgez, Beq, Bne, Blt, Bge, Bltu, Bgeu,
            Jmp, Call, Jr, Ret, Nop, Halt,
        ]
        .into_iter()
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when parsing an unknown mnemonic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpcodeError(pub(crate) String);

impl fmt::Display for ParseOpcodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown mnemonic `{}`", self.0)
    }
}

impl std::error::Error for ParseOpcodeError {}

impl FromStr for Opcode {
    type Err = ParseOpcodeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Opcode::all()
            .find(|op| op.mnemonic() == s)
            .ok_or_else(|| ParseOpcodeError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_round_trip() {
        for op in Opcode::all() {
            assert_eq!(op.mnemonic().parse::<Opcode>().unwrap(), op);
        }
    }

    #[test]
    fn unknown_mnemonic_is_an_error() {
        assert!("bogus".parse::<Opcode>().is_err());
    }

    #[test]
    fn alu_ops_are_single_cycle_classes() {
        assert_eq!(Opcode::Add.class(), InstClass::IntAlu);
        assert_eq!(Opcode::Slli.class(), InstClass::IntAlu);
        assert_eq!(Opcode::Mul.class(), InstClass::IntMul);
        assert_eq!(Opcode::Ld.class(), InstClass::Load);
        assert_eq!(Opcode::Beqz.class(), InstClass::CondBranch);
    }
}

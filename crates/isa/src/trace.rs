use std::sync::Arc;


use crate::Program;

/// One committed-path dynamic instruction: which static instruction ran,
/// where control went next, and — for memory operations — the effective
/// address.
///
/// A stream of `DynInst`s plus the static [`Program`] is everything the
/// timing simulator needs: correct-path instruction identity and branch
/// outcomes come from the trace, while *wrong-path* fetch after a
/// misprediction walks the static program under the branch predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Static index of the instruction within the program.
    pub sidx: u32,
    /// Static index of the next committed instruction.
    pub next_sidx: u32,
    /// For control transfers: whether the transfer was taken. For
    /// fall-through instructions this is `false`.
    pub taken: bool,
    /// Effective byte address for loads and stores.
    pub eff_addr: Option<u64>,
}

/// A source of committed-path dynamic instructions over a static program.
///
/// Implemented by the functional interpreter in `mos-asm` (architecturally
/// exact) and the stochastic workload walker in `mos-workload`
/// (statistically calibrated). Sources are `Iterator`s over [`DynInst`];
/// they must be deterministic for a given construction so that different
/// scheduler configurations can be compared on identical streams.
pub trait TraceSource: Iterator<Item = DynInst> {
    /// The static program the dynamic stream runs over.
    fn program(&self) -> &Program;
}

/// A pre-recorded trace, replayable any number of times.
///
/// ```
/// use mos_isa::{DynInst, Program, ReplayTrace, StaticInst, TraceSource};
/// let mut p = Program::new("p");
/// p.push(StaticInst::nop());
/// let t = ReplayTrace::new(p, vec![DynInst { sidx: 0, next_sidx: 0, taken: false, eff_addr: None }]);
/// let mut run = t.clone();
/// assert_eq!(run.next().map(|d| d.sidx), Some(0));
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayTrace {
    program: Arc<Program>,
    events: Arc<[DynInst]>,
    pos: usize,
}

impl ReplayTrace {
    /// Wrap a program and a recorded event list.
    pub fn new(program: Program, events: Vec<DynInst>) -> ReplayTrace {
        ReplayTrace {
            program: Arc::new(program),
            events: events.into(),
            pos: 0,
        }
    }

    /// Record every event of `source` (up to `limit`) into a replayable
    /// trace.
    pub fn record<S: TraceSource>(mut source: S, limit: usize) -> ReplayTrace {
        let mut events = Vec::new();
        while events.len() < limit {
            match source.next() {
                Some(d) => events.push(d),
                None => break,
            }
        }
        ReplayTrace {
            program: Arc::new(source.program().clone()),
            events: events.into(),
            pos: 0,
        }
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Restart playback from the beginning.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }

    /// The recorded events.
    pub fn events(&self) -> &[DynInst] {
        &self.events
    }
}

impl Iterator for ReplayTrace {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        let d = self.events.get(self.pos).copied()?;
        self.pos += 1;
        Some(d)
    }
}

impl TraceSource for ReplayTrace {
    fn program(&self) -> &Program {
        &self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticInst;

    fn trace3() -> ReplayTrace {
        let mut p = Program::new("p");
        p.push(StaticInst::nop());
        p.push(StaticInst::nop());
        let mk = |s: u32| DynInst {
            sidx: s,
            next_sidx: s + 1,
            taken: false,
            eff_addr: None,
        };
        ReplayTrace::new(p, vec![mk(0), mk(1), mk(0)])
    }

    #[test]
    fn replay_yields_in_order_and_rewinds() {
        let mut t = trace3();
        let a: Vec<u32> = t.by_ref().map(|d| d.sidx).collect();
        assert_eq!(a, vec![0, 1, 0]);
        assert_eq!(t.next(), None);
        t.rewind();
        assert_eq!(t.next().map(|d| d.sidx), Some(0));
    }

    #[test]
    fn record_truncates_at_limit() {
        let t = trace3();
        let recorded = ReplayTrace::record(t, 2);
        assert_eq!(recorded.len(), 2);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = trace3();
        let mut b = a.clone();
        a.next();
        a.next();
        assert_eq!(b.next().map(|d| d.sidx), Some(0));
    }
}

use std::fmt;


/// An architectural register: integer registers `r0..r31` and floating-point
/// registers `f0..f31`.
///
/// `r31` is hard-wired to zero (as on Alpha); writes to it are discarded and
/// it never creates a data dependence. The type is a compact `u8` index so
/// it can be used directly in rename tables.
///
/// ```
/// use mos_isa::Reg;
/// let r = Reg::int(3);
/// assert!(r.is_int() && !r.is_zero());
/// assert_eq!(r.to_string(), "r3");
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of integer architectural registers.
    pub const NUM_INT: u8 = 32;
    /// Number of floating-point architectural registers.
    pub const NUM_FP: u8 = 32;
    /// Total architectural register count (integer + floating point).
    pub const NUM: usize = (Self::NUM_INT + Self::NUM_FP) as usize;
    /// The hard-wired zero register (`r31`).
    pub const ZERO: Reg = Reg(31);
    /// Conventional stack-pointer register (`r30`).
    pub const SP: Reg = Reg(30);
    /// Conventional return-address register (`r26`), written by calls.
    pub const RA: Reg = Reg(26);

    /// Integer register `r<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn int(n: u8) -> Reg {
        assert!(n < Self::NUM_INT);
        Reg(n)
    }

    /// Floating-point register `f<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn fp(n: u8) -> Reg {
        assert!(n < Self::NUM_FP);
        Reg(Self::NUM_INT + n)
    }

    /// Flat index in `0..Reg::NUM`, usable as a rename-table key.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a register from [`Reg::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::NUM`.
    pub fn from_index(index: usize) -> Reg {
        assert!(index < Self::NUM);
        Reg(index as u8)
    }

    /// `true` for integer registers (including the zero register).
    pub const fn is_int(self) -> bool {
        self.0 < Self::NUM_INT
    }

    /// `true` for floating-point registers.
    pub const fn is_fp(self) -> bool {
        self.0 >= Self::NUM_INT
    }

    /// `true` for the hard-wired zero register, which never participates in
    /// dependences.
    pub const fn is_zero(self) -> bool {
        self.0 == Self::ZERO.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int() {
            write!(f, "r{}", self.0)
        } else {
            write!(f, "f{}", self.0 - Self::NUM_INT)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_spaces_are_disjoint() {
        assert_ne!(Reg::int(0), Reg::fp(0));
        assert!(Reg::int(5).is_int());
        assert!(Reg::fp(5).is_fp());
        assert!(!Reg::fp(5).is_int());
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(Reg::ZERO.is_int());
        assert!(!Reg::int(0).is_zero());
    }

    #[test]
    fn index_round_trip() {
        for i in 0..Reg::NUM {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::int(7).to_string(), "r7");
        assert_eq!(Reg::fp(7).to_string(), "f7");
        assert_eq!(Reg::ZERO.to_string(), "r31");
    }

    #[test]
    #[should_panic]
    fn out_of_range_int_panics() {
        let _ = Reg::int(32);
    }
}

use std::fmt;


use crate::{InstClass, Opcode, Reg};

/// A static instruction as laid out in the program image.
///
/// Operands follow the usual three-address RISC conventions: at most one
/// destination register, at most two source registers, an immediate, and —
/// for direct control transfers — a static target (an index into the
/// owning [`Program`](crate::Program)'s code).
///
/// Reads of the hard-wired zero register are materialized in `srcs` but are
/// excluded from [`StaticInst::src_regs`], the dependence-carrying view that
/// scheduling logic uses.
///
/// ```
/// use mos_isa::{Reg, StaticInst};
/// let i = StaticInst::add(Reg::int(5), Reg::int(1), Reg::ZERO);
/// assert_eq!(i.dst(), Some(Reg::int(5)));
/// // the zero-register source carries no dependence:
/// assert_eq!(i.src_regs().count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaticInst {
    opcode: Opcode,
    dst: Option<Reg>,
    srcs: [Option<Reg>; 2],
    imm: i64,
    target: Option<u32>,
}

impl StaticInst {
    /// General constructor; prefer the named helpers for common shapes.
    pub fn new(
        opcode: Opcode,
        dst: Option<Reg>,
        srcs: [Option<Reg>; 2],
        imm: i64,
        target: Option<u32>,
    ) -> StaticInst {
        StaticInst {
            opcode,
            dst,
            srcs,
            imm,
            target,
        }
    }

    /// Three-register ALU op `op rd, rs1, rs2`.
    pub fn alu(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> StaticInst {
        StaticInst::new(op, Some(rd), [Some(rs1), Some(rs2)], 0, None)
    }

    /// Register–immediate ALU op `op rd, rs, imm`.
    pub fn alui(op: Opcode, rd: Reg, rs: Reg, imm: i64) -> StaticInst {
        StaticInst::new(op, Some(rd), [Some(rs), None], imm, None)
    }

    /// `add rd, rs1, rs2`.
    pub fn add(rd: Reg, rs1: Reg, rs2: Reg) -> StaticInst {
        Self::alu(Opcode::Add, rd, rs1, rs2)
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(rd: Reg, rs1: Reg, rs2: Reg) -> StaticInst {
        Self::alu(Opcode::Sub, rd, rs1, rs2)
    }

    /// `addi rd, rs, imm`.
    pub fn addi(rd: Reg, rs: Reg, imm: i64) -> StaticInst {
        Self::alui(Opcode::Addi, rd, rs, imm)
    }

    /// `li rd, imm`.
    pub fn li(rd: Reg, imm: i64) -> StaticInst {
        StaticInst::new(Opcode::Li, Some(rd), [None, None], imm, None)
    }

    /// `mov rd, rs`.
    pub fn mov(rd: Reg, rs: Reg) -> StaticInst {
        StaticInst::new(Opcode::Mov, Some(rd), [Some(rs), None], 0, None)
    }

    /// `not rd, rs`.
    pub fn not(rd: Reg, rs: Reg) -> StaticInst {
        StaticInst::new(Opcode::Not, Some(rd), [Some(rs), None], 0, None)
    }

    /// Load `ld rd, imm(rs)` (or `fld` when `rd` is floating point).
    pub fn load(rd: Reg, imm: i64, rs: Reg) -> StaticInst {
        let op = if rd.is_fp() { Opcode::Fld } else { Opcode::Ld };
        StaticInst::new(op, Some(rd), [Some(rs), None], imm, None)
    }

    /// Store `st rval, imm(rbase)` (or `fst` when `rval` is floating point).
    ///
    /// `srcs[0]` is the address base, `srcs[1]` the stored value.
    pub fn store(rval: Reg, imm: i64, rbase: Reg) -> StaticInst {
        let op = if rval.is_fp() { Opcode::Fst } else { Opcode::St };
        StaticInst::new(op, None, [Some(rbase), Some(rval)], imm, None)
    }

    /// Conditional branch `op rs, target` where `target` is a static index.
    pub fn branch(op: Opcode, rs: Reg, target: u32) -> StaticInst {
        debug_assert!(matches!(
            op,
            Opcode::Beqz | Opcode::Bnez | Opcode::Bltz | Opcode::Bgez
        ));
        StaticInst::new(op, None, [Some(rs), None], 0, Some(target))
    }

    /// Two-source conditional branch `op rs1, rs2, target` (the shape RV32
    /// branches lower to) where `target` is a static index.
    pub fn branch2(op: Opcode, rs1: Reg, rs2: Reg, target: u32) -> StaticInst {
        debug_assert!(matches!(
            op,
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge | Opcode::Bltu | Opcode::Bgeu
        ));
        StaticInst::new(op, None, [Some(rs1), Some(rs2)], 0, Some(target))
    }

    /// Unconditional direct jump to a static index.
    pub fn jmp(target: u32) -> StaticInst {
        StaticInst::new(Opcode::Jmp, None, [None, None], 0, Some(target))
    }

    /// Direct call to a static index; writes [`Reg::RA`].
    pub fn call(target: u32) -> StaticInst {
        StaticInst::new(Opcode::Call, Some(Reg::RA), [None, None], 0, Some(target))
    }

    /// Indirect jump through `rs`.
    pub fn jr(rs: Reg) -> StaticInst {
        StaticInst::new(Opcode::Jr, None, [Some(rs), None], 0, None)
    }

    /// Return through [`Reg::RA`].
    pub fn ret() -> StaticInst {
        StaticInst::new(Opcode::Ret, None, [Some(Reg::RA), None], 0, None)
    }

    /// No-op.
    pub fn nop() -> StaticInst {
        StaticInst::new(Opcode::Nop, None, [None, None], 0, None)
    }

    /// Program terminator.
    pub fn halt() -> StaticInst {
        StaticInst::new(Opcode::Halt, None, [None, None], 0, None)
    }

    /// The operation.
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// Latency/resource class (shorthand for `self.opcode().class()`).
    pub fn class(&self) -> InstClass {
        self.opcode.class()
    }

    /// Destination register, if the instruction writes one. Writes to the
    /// zero register are reported as `None`.
    pub fn dst(&self) -> Option<Reg> {
        self.dst.filter(|r| !r.is_zero())
    }

    /// Raw operand slots as encoded, including zero-register reads.
    pub fn raw_srcs(&self) -> [Option<Reg>; 2] {
        self.srcs
    }

    /// Dependence-carrying source registers (zero-register reads excluded).
    pub fn src_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().flatten().copied().filter(|r| !r.is_zero())
    }

    /// Immediate operand.
    pub fn imm(&self) -> i64 {
        self.imm
    }

    /// Static target index for direct control transfers.
    pub fn target(&self) -> Option<u32> {
        self.target
    }

    /// Replace the static target (used by the assembler when resolving
    /// forward labels).
    pub fn with_target(mut self, target: u32) -> StaticInst {
        self.target = Some(target);
        self
    }

    /// `true` when this is a macro-op grouping candidate (Section 4.1):
    /// a single-cycle operation — integer ALU, store address generation or
    /// control instruction. No-ops are not candidates because the decoder
    /// removes them.
    pub fn is_mop_candidate(&self) -> bool {
        let class = self.class();
        class.is_single_cycle() && !matches!(class, InstClass::Nop | InstClass::Halt)
    }

    /// `true` when this candidate generates a register value and may thus
    /// have dependent instructions — a potential MOP head. (Branches and
    /// store address generations are candidates but can only be tails.)
    pub fn is_value_generating_candidate(&self) -> bool {
        self.is_mop_candidate() && self.dst().is_some()
    }

    /// `true` for any control transfer.
    pub fn is_control(&self) -> bool {
        self.class().is_control()
    }

    /// `true` for conditional branches specifically.
    pub fn is_cond_branch(&self) -> bool {
        self.class() == InstClass::CondBranch
    }
}

impl fmt::Display for StaticInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        match self.class() {
            InstClass::Load => {
                sep(f)?;
                write!(f, "{}", self.dst.expect("load has dst"))?;
                sep(f)?;
                write!(f, "{}({})", self.imm, self.srcs[0].expect("load has base"))?;
            }
            InstClass::Store => {
                sep(f)?;
                write!(f, "{}", self.srcs[1].expect("store has value"))?;
                sep(f)?;
                write!(f, "{}({})", self.imm, self.srcs[0].expect("store has base"))?;
            }
            _ => {
                if let Some(d) = self.dst {
                    sep(f)?;
                    write!(f, "{d}")?;
                }
                for s in self.srcs.iter().flatten() {
                    // `call` encodes RA implicitly; don't print implicit RA of ret.
                    if self.opcode == Opcode::Ret {
                        continue;
                    }
                    sep(f)?;
                    write!(f, "{s}")?;
                }
                if let Some(t) = self.target {
                    sep(f)?;
                    write!(f, "@{t}")?;
                } else if self.uses_imm() {
                    sep(f)?;
                    write!(f, "{}", self.imm)?;
                }
            }
        }
        Ok(())
    }
}

impl StaticInst {
    fn uses_imm(&self) -> bool {
        use Opcode::*;
        matches!(
            self.opcode,
            Addi | Subi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Sltiu | Li
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_writes_are_not_value_generating() {
        let i = StaticInst::add(Reg::ZERO, Reg::int(1), Reg::int(2));
        assert_eq!(i.dst(), None);
        assert!(i.is_mop_candidate());
        assert!(!i.is_value_generating_candidate());
    }

    #[test]
    fn branch_is_candidate_but_not_value_generating() {
        let b = StaticInst::branch(Opcode::Bnez, Reg::int(3), 7);
        assert!(b.is_mop_candidate());
        assert!(!b.is_value_generating_candidate());
        assert_eq!(b.target(), Some(7));
    }

    #[test]
    fn two_source_branch_carries_both_dependences() {
        let b = StaticInst::branch2(Opcode::Blt, Reg::int(3), Reg::int(4), 9);
        assert!(b.is_mop_candidate());
        assert!(!b.is_value_generating_candidate());
        assert!(b.is_cond_branch());
        assert_eq!(b.src_regs().count(), 2);
        assert_eq!(b.target(), Some(9));
        // A zero-register operand drops out of the dependence view.
        let bz = StaticInst::branch2(Opcode::Bne, Reg::int(3), Reg::ZERO, 2);
        assert_eq!(bz.src_regs().count(), 1);
    }

    #[test]
    fn store_is_candidate_address_generation() {
        let s = StaticInst::store(Reg::int(4), 8, Reg::int(5));
        assert!(s.is_mop_candidate());
        assert!(!s.is_value_generating_candidate());
        assert_eq!(s.src_regs().count(), 2);
    }

    #[test]
    fn load_and_mul_are_not_candidates() {
        assert!(!StaticInst::load(Reg::int(1), 0, Reg::int(2)).is_mop_candidate());
        assert!(!StaticInst::alu(Opcode::Mul, Reg::int(1), Reg::int(2), Reg::int(3))
            .is_mop_candidate());
    }

    #[test]
    fn call_generates_a_value() {
        let c = StaticInst::call(3);
        assert!(c.is_value_generating_candidate());
        assert_eq!(c.dst(), Some(Reg::RA));
    }

    #[test]
    fn display_is_reasonable() {
        assert_eq!(
            StaticInst::addi(Reg::int(1), Reg::int(2), 4).to_string(),
            "addi r1, r2, 4"
        );
        assert_eq!(
            StaticInst::load(Reg::int(4), 0, Reg::int(1)).to_string(),
            "ld r4, 0(r1)"
        );
        assert_eq!(
            StaticInst::store(Reg::int(4), 16, Reg::SP).to_string(),
            "st r4, 16(r30)"
        );
    }
}

use std::collections::BTreeMap;
use std::fmt;


use crate::StaticInst;

/// A static program image: a flat sequence of [`StaticInst`]s.
///
/// Instructions are addressed by *static index*; the byte program counter of
/// index `i` is `Program::BASE_PC + 4 * i`, which is what the instruction
/// cache and branch predictors index with.
///
/// ```
/// use mos_isa::{Program, Reg, StaticInst};
/// let mut p = Program::new("loop");
/// let top = p.push(StaticInst::addi(Reg::int(1), Reg::int(1), -1));
/// p.push(StaticInst::branch(mos_isa::Opcode::Bnez, Reg::int(1), top));
/// p.push(StaticInst::halt());
/// assert_eq!(p.pc_of(top), Program::BASE_PC);
/// assert!(p.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    code: Vec<StaticInst>,
    entry: u32,
    labels: BTreeMap<String, u32>,
}

impl Program {
    /// Byte address of static index 0.
    pub const BASE_PC: u64 = 0x0040_0000;

    /// Create an empty program. The entry point defaults to index 0.
    pub fn new(name: impl Into<String>) -> Program {
        Program {
            name: name.into(),
            code: Vec::new(),
            entry: 0,
            labels: BTreeMap::new(),
        }
    }

    /// Human-readable program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append an instruction, returning its static index.
    pub fn push(&mut self, inst: StaticInst) -> u32 {
        let idx = self.code.len() as u32;
        self.code.push(inst);
        idx
    }

    /// Attach a label to a static index (used by the assembler and for
    /// diagnostics).
    pub fn set_label(&mut self, name: impl Into<String>, idx: u32) {
        self.labels.insert(name.into(), idx);
    }

    /// Look up a label.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// Set the entry point.
    pub fn set_entry(&mut self, entry: u32) {
        self.entry = entry;
    }

    /// Entry-point static index.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Instruction at a static index.
    pub fn inst(&self, idx: u32) -> Option<&StaticInst> {
        self.code.get(idx as usize)
    }

    /// Mutable instruction access (used for target patching).
    pub fn inst_mut(&mut self, idx: u32) -> Option<&mut StaticInst> {
        self.code.get_mut(idx as usize)
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// `true` when the program holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Iterate over `(static index, instruction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &StaticInst)> {
        self.code.iter().enumerate().map(|(i, inst)| (i as u32, inst))
    }

    /// Byte program counter of a static index.
    pub fn pc_of(&self, idx: u32) -> u64 {
        Self::BASE_PC + 4 * u64::from(idx)
    }

    /// Static index of a byte program counter produced by [`Program::pc_of`].
    /// Returns `None` for misaligned or out-of-image addresses.
    pub fn index_of_pc(&self, pc: u64) -> Option<u32> {
        if pc < Self::BASE_PC || !(pc - Self::BASE_PC).is_multiple_of(4) {
            return None;
        }
        let idx = (pc - Self::BASE_PC) / 4;
        (idx < self.code.len() as u64).then_some(idx as u32)
    }

    /// Check structural invariants: the entry point and all direct-transfer
    /// targets must be in range, and direct transfers must have targets.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ProgramBuildError> {
        if self.code.is_empty() {
            return Err(ProgramBuildError::Empty);
        }
        if self.entry as usize >= self.code.len() {
            return Err(ProgramBuildError::EntryOutOfRange(self.entry));
        }
        for (idx, inst) in self.iter() {
            let needs_target = matches!(
                inst.class(),
                crate::InstClass::CondBranch | crate::InstClass::Jump | crate::InstClass::Call
            );
            match inst.target() {
                Some(t) if (t as usize) < self.code.len() => {}
                Some(t) => return Err(ProgramBuildError::TargetOutOfRange { idx, target: t }),
                None if needs_target => return Err(ProgramBuildError::MissingTarget(idx)),
                None => {}
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program `{}`, {} insts", self.name, self.code.len())?;
        let by_idx: BTreeMap<u32, &str> = self
            .labels
            .iter()
            .map(|(name, &i)| (i, name.as_str()))
            .collect();
        for (idx, inst) in self.iter() {
            if let Some(l) = by_idx.get(&idx) {
                writeln!(f, "{l}:")?;
            }
            writeln!(f, "  {:4}  {}", idx, inst)?;
        }
        Ok(())
    }
}

/// Structural error reported by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramBuildError {
    /// The program contains no instructions.
    Empty,
    /// The entry index is outside the code image.
    EntryOutOfRange(u32),
    /// A direct control transfer points outside the code image.
    TargetOutOfRange {
        /// Offending instruction index.
        idx: u32,
        /// Its out-of-range target.
        target: u32,
    },
    /// A direct control transfer has no target at all.
    MissingTarget(u32),
}

impl fmt::Display for ProgramBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramBuildError::Empty => write!(f, "program is empty"),
            ProgramBuildError::EntryOutOfRange(e) => write!(f, "entry index {e} out of range"),
            ProgramBuildError::TargetOutOfRange { idx, target } => {
                write!(f, "instruction {idx} targets out-of-range index {target}")
            }
            ProgramBuildError::MissingTarget(idx) => {
                write!(f, "direct control transfer at index {idx} lacks a target")
            }
        }
    }
}

impl std::error::Error for ProgramBuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, Reg};

    fn tiny() -> Program {
        let mut p = Program::new("t");
        p.push(StaticInst::li(Reg::int(1), 3));
        let top = p.push(StaticInst::addi(Reg::int(1), Reg::int(1), -1));
        p.push(StaticInst::branch(Opcode::Bnez, Reg::int(1), top));
        p.push(StaticInst::halt());
        p
    }

    #[test]
    fn pc_round_trip() {
        let p = tiny();
        for (idx, _) in p.iter() {
            assert_eq!(p.index_of_pc(p.pc_of(idx)), Some(idx));
        }
        assert_eq!(p.index_of_pc(Program::BASE_PC + 2), None);
        assert_eq!(p.index_of_pc(Program::BASE_PC + 4 * 1000), None);
        assert_eq!(p.index_of_pc(0), None);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_target() {
        let mut p = tiny();
        p.push(StaticInst::jmp(999));
        assert_eq!(
            p.validate(),
            Err(ProgramBuildError::TargetOutOfRange { idx: 4, target: 999 })
        );
    }

    #[test]
    fn validate_rejects_empty_and_bad_entry() {
        assert_eq!(Program::new("e").validate(), Err(ProgramBuildError::Empty));
        let mut p = tiny();
        p.set_entry(100);
        assert_eq!(p.validate(), Err(ProgramBuildError::EntryOutOfRange(100)));
    }

    #[test]
    fn labels() {
        let mut p = tiny();
        p.set_label("top", 1);
        assert_eq!(p.label("top"), Some(1));
        assert_eq!(p.label("missing"), None);
        let text = p.to_string();
        assert!(text.contains("top:"));
    }
}

//! # mos-isa
//!
//! Instruction-set model used throughout the `mopsched` workspace — a small
//! RISC-style 64-bit ISA in the spirit of the Alpha AXP ISA the paper's
//! SimpleScalar-derived simulator executed.
//!
//! The crate defines:
//!
//! * [`Reg`] — architectural registers (32 integer + 32 floating-point),
//! * [`Opcode`] and [`InstClass`] — operations with the latency classes of
//!   Table 1 of the paper (single-cycle integer ALU, 3/20-cycle integer
//!   multiply/divide, 2/4/24-cycle FP, loads, split stores, control),
//! * [`StaticInst`] and [`Program`] — static code as fetched from the
//!   instruction cache (program counters are `4 * index`),
//! * [`DynInst`] and [`TraceSource`] — the dynamic, committed-path oracle
//!   trace a timing simulator consumes (branch outcomes and effective
//!   addresses), produced either by the functional interpreter in `mos-asm`
//!   or the synthetic workload walker in `mos-workload`.
//!
//! Macro-op scheduling vocabulary also starts here: [`StaticInst::is_mop_candidate`]
//! identifies single-cycle operations eligible for grouping and
//! [`StaticInst::is_value_generating_candidate`] the subset that produces a
//! register value (potential MOP heads).
//!
//! ```
//! use mos_isa::{Program, Reg, StaticInst};
//!
//! let mut p = Program::new("doc");
//! let r1 = Reg::int(1);
//! let r2 = Reg::int(2);
//! p.push(StaticInst::addi(r1, Reg::ZERO, 5));
//! p.push(StaticInst::add(r2, r1, r1));
//! assert!(p.inst(0).unwrap().is_value_generating_candidate());
//! assert_eq!(p.len(), 2);
//! ```

#![warn(missing_docs)]

mod class;
mod inst;
mod opcode;
mod program;
mod reg;
mod trace;

pub use class::{FuKind, InstClass};
pub use inst::StaticInst;
pub use opcode::Opcode;
pub use program::{Program, ProgramBuildError};
pub use reg::Reg;
pub use trace::{DynInst, ReplayTrace, TraceSource};

//! Property-based tests of the static-program container and instruction
//! encodings.

use proptest::prelude::*;

use mos_isa::{Opcode, Program, Reg, StaticInst};

fn arb_alu() -> impl Strategy<Value = StaticInst> {
    (0u8..31, 0u8..32, 0u8..32, prop::sample::select(vec![
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
    ]))
        .prop_map(|(d, a, b, op)| StaticInst::alu(op, Reg::int(d), Reg::int(a % 32), Reg::int(b % 32)))
}

proptest! {
    /// pc_of / index_of_pc round-trip for arbitrary program sizes.
    #[test]
    fn pc_round_trip(n in 1usize..500) {
        let mut p = Program::new("t");
        for _ in 0..n {
            p.push(StaticInst::nop());
        }
        for idx in 0..n as u32 {
            prop_assert_eq!(p.index_of_pc(p.pc_of(idx)), Some(idx));
        }
        prop_assert_eq!(p.index_of_pc(p.pc_of(n as u32 - 1) + 4), None);
    }

    /// Any mix of well-formed instructions with in-range targets
    /// validates; pushing one out-of-range jump breaks validation.
    #[test]
    fn validation_tracks_targets(insts in prop::collection::vec(arb_alu(), 1..64)) {
        let mut p = Program::new("t");
        for i in &insts {
            p.push(*i);
        }
        let last = p.push(StaticInst::jmp(0));
        prop_assert!(p.validate().is_ok());
        *p.inst_mut(last).expect("exists") = StaticInst::jmp(10_000);
        prop_assert!(p.validate().is_err());
    }

    /// Source iteration never yields the zero register and never exceeds
    /// two registers.
    #[test]
    fn src_regs_invariants(inst in arb_alu()) {
        let srcs: Vec<Reg> = inst.src_regs().collect();
        prop_assert!(srcs.len() <= 2);
        prop_assert!(srcs.iter().all(|r| !r.is_zero()));
    }

    /// Display output is non-empty and starts with the mnemonic for every
    /// constructor shape.
    #[test]
    fn display_starts_with_mnemonic(d in 0u8..31, s in 0u8..31, imm in -64i64..64) {
        let shapes = vec![
            StaticInst::addi(Reg::int(d), Reg::int(s), imm),
            StaticInst::li(Reg::int(d), imm),
            StaticInst::load(Reg::int(d), imm & !7, Reg::int(s)),
            StaticInst::store(Reg::int(d), imm & !7, Reg::int(s)),
            StaticInst::branch(Opcode::Bnez, Reg::int(s), 0),
            StaticInst::call(0),
            StaticInst::ret(),
        ];
        for inst in shapes {
            let text = inst.to_string();
            prop_assert!(text.starts_with(inst.opcode().mnemonic()), "{text}");
        }
    }

    /// Labels attach to indices and survive lookups among many labels.
    #[test]
    fn labels_resolve(names in prop::collection::hash_set("[a-z]{1,8}", 1..20)) {
        let mut p = Program::new("t");
        let names: Vec<String> = names.into_iter().collect();
        for (i, name) in names.iter().enumerate() {
            let idx = p.push(StaticInst::nop());
            prop_assert_eq!(idx as usize, i);
            p.set_label(name.clone(), idx);
        }
        p.push(StaticInst::halt());
        for (i, name) in names.iter().enumerate() {
            prop_assert_eq!(p.label(name), Some(i as u32));
        }
    }
}

#[test]
fn every_opcode_has_a_distinct_mnemonic() {
    let mut seen = std::collections::HashSet::new();
    for op in Opcode::all() {
        assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {}", op.mnemonic());
    }
}

#[test]
fn classes_cover_all_opcodes_without_panic() {
    for op in Opcode::all() {
        let c = op.class();
        // Exercise the class APIs for the whole opcode surface.
        let _ = c.exec_latency();
        let _ = c.fu();
        let _ = c.is_single_cycle();
        let _ = format!("{c}");
    }
}

//! Property-based tests of the MOP detection matrix: structural
//! invariants that must hold for arbitrary instruction streams.

use proptest::prelude::*;

use mos_core::detect::{DetectInst, DetectedPair, MopDetector};
use mos_core::pointer::MopPointer;
use mos_core::{CycleDetection, MopConfig};
use mos_isa::{Opcode, Reg, StaticInst};

#[derive(Debug, Clone)]
enum K {
    Alu1 { dst: u8, a: u8 },
    Alu2 { dst: u8, a: u8, b: u8 },
    Load { dst: u8, a: u8 },
    Store { v: u8, a: u8 },
    Branch { c: u8, taken: bool },
    Mul { dst: u8, a: u8, b: u8 },
}

fn kinds() -> impl Strategy<Value = K> {
    let r = 1u8..12;
    prop_oneof![
        (r.clone(), r.clone()).prop_map(|(dst, a)| K::Alu1 { dst, a }),
        (r.clone(), r.clone(), r.clone()).prop_map(|(dst, a, b)| K::Alu2 { dst, a, b }),
        (r.clone(), r.clone()).prop_map(|(dst, a)| K::Load { dst, a }),
        (r.clone(), r.clone()).prop_map(|(v, a)| K::Store { v, a }),
        (r.clone(), any::<bool>()).prop_map(|(c, taken)| K::Branch { c, taken }),
        (r.clone(), r.clone(), r).prop_map(|(dst, a, b)| K::Mul { dst, a, b }),
    ]
}

fn to_inst(sidx: u32, k: &K) -> DetectInst {
    let (inst, taken) = match *k {
        K::Alu1 { dst, a } => (StaticInst::addi(Reg::int(dst), Reg::int(a), 1), false),
        K::Alu2 { dst, a, b } => (
            StaticInst::alu(Opcode::Add, Reg::int(dst), Reg::int(a), Reg::int(b)),
            false,
        ),
        K::Load { dst, a } => (StaticInst::load(Reg::int(dst), 0, Reg::int(a)), false),
        K::Store { v, a } => (StaticInst::store(Reg::int(v), 0, Reg::int(a)), false),
        K::Branch { c, taken } => (StaticInst::branch(Opcode::Bnez, Reg::int(c), 0), taken),
        K::Mul { dst, a, b } => (
            StaticInst::alu(Opcode::Mul, Reg::int(dst), Reg::int(a), Reg::int(b)),
            false,
        ),
    };
    DetectInst::from_static(sidx, &inst, taken, 0x40 + u64::from(sidx / 16) * 64)
}

fn dst_of(k: &K) -> Option<u8> {
    match *k {
        K::Alu1 { dst, .. } | K::Alu2 { dst, .. } | K::Load { dst, .. } | K::Mul { dst, .. } => {
            Some(dst)
        }
        K::Store { .. } | K::Branch { .. } => None,
    }
}

fn raw_srcs(k: &K) -> Vec<u8> {
    match *k {
        K::Alu1 { a, .. } | K::Load { a, .. } => vec![a],
        K::Alu2 { a, b, .. } | K::Mul { a, b, .. } => vec![a, b],
        K::Store { v, a } => vec![a, v],
        K::Branch { c, .. } => vec![c],
    }
}

/// Detect-level oracle: independently re-derive the legality of every
/// dependent pair the detector emitted — the same payload the simulator
/// publishes as `mop_detect` trace events — from the raw stream alone.
///
/// For each dependent pair (head, tail) it asserts:
/// 1. the tail truly consumes the head's destination and nothing between
///    them redefines it (the dependence mark existed);
/// 2. a tail with two source operands is chosen only when its mark is the
///    first in the head's column — no older consumer of the head sits
///    between them (the Figure 8(c) cycle heuristic);
/// 3. the merged source set (head sources plus tail sources minus the
///    internal head→tail edge) respects the wakeup-array limit.
fn detect_oracle(
    stream: &[K],
    pairs: &[DetectedPair],
    max_srcs: Option<usize>,
) -> Result<(), String> {
    for p in pairs.iter().filter(|p| !p.independent) {
        let (h, t) = (p.head_sidx as usize, p.pointer.tail_sidx as usize);
        if !(h < t && t < stream.len()) {
            return Err(format!("pair ({h}, {t}) out of stream"));
        }
        let head = &stream[h];
        let tail = &stream[t];
        let d = dst_of(head).expect("dependent head must generate a value");
        if !raw_srcs(tail).contains(&d) {
            return Err(format!(
                "tail {t} does not read head {h}'s destination r{d}"
            ));
        }
        let between = &stream[h + 1..t];
        if between.iter().any(|k| dst_of(k) == Some(d)) {
            return Err(format!(
                "r{d} redefined between head {h} and tail {t}: the mark never existed"
            ));
        }
        if raw_srcs(tail).len() >= 2 {
            // Invariant 1 guarantees no redefinition of d in between, so
            // "earlier mark in the column" reduces to "earlier reader of d".
            if let Some(k) = between.iter().position(|k| raw_srcs(k).contains(&d)) {
                return Err(format!(
                    "two-source tail {t} chosen although instruction {} already \
                     held the first mark in column {h}",
                    h + 1 + k
                ));
            }
        }
        if let Some(limit) = max_srcs {
            let mut union = raw_srcs(head);
            for s in raw_srcs(tail) {
                if s != d && !union.contains(&s) {
                    union.push(s);
                }
            }
            if union.len() > limit {
                return Err(format!(
                    "pair ({h}, {t}) needs {} source tags, wakeup array holds {limit}",
                    union.len()
                ));
            }
        }
    }
    Ok(())
}

fn run_detector(
    stream: &[K],
    cycle: CycleDetection,
    max_srcs: Option<usize>,
) -> Vec<mos_core::detect::DetectedPair> {
    let cfg = MopConfig {
        cycle_detection: cycle,
        ..MopConfig::default()
    };
    let mut det = MopDetector::new(cfg, max_srcs, 4);
    let mut out = Vec::new();
    for (g, chunk) in stream.chunks(4).enumerate() {
        let group: Vec<DetectInst> = chunk
            .iter()
            .enumerate()
            .map(|(i, k)| to_inst((g * 4 + i) as u32, k))
            .collect();
        out.extend(det.step(&group, |_| false, |_, _| false));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every emitted pointer is structurally legal: offset 1..=7,
    /// head != tail, tail = head + offset (our streams are sequential).
    #[test]
    fn pointers_are_structurally_legal(stream in prop::collection::vec(kinds(), 4..64)) {
        for p in run_detector(&stream, CycleDetection::Heuristic, None) {
            prop_assert!((1..=7).contains(&p.pointer.offset));
            prop_assert_eq!(
                p.pointer.tail_sidx,
                p.head_sidx + u32::from(p.pointer.offset),
                "sequential stream: tail must sit offset after head"
            );
            prop_assert_eq!(p.independent, p.pointer.independent);
        }
    }

    /// No instruction appears in two pairs (one pointer per instruction;
    /// heads and tails are disjoint across a run).
    #[test]
    fn membership_is_exclusive(stream in prop::collection::vec(kinds(), 4..64)) {
        let pairs = run_detector(&stream, CycleDetection::Heuristic, None);
        let mut used = std::collections::HashSet::new();
        for p in &pairs {
            prop_assert!(used.insert(p.head_sidx), "head {} reused", p.head_sidx);
            prop_assert!(used.insert(p.pointer.tail_sidx), "tail {} reused", p.pointer.tail_sidx);
        }
    }

    /// Dependent heads are value-generating candidates and tails are
    /// candidates; a taken branch between them sets the control bit.
    #[test]
    fn dependent_pair_roles(stream in prop::collection::vec(kinds(), 4..64)) {
        let pairs = run_detector(&stream, CycleDetection::Heuristic, None);
        for p in pairs.iter().filter(|p| !p.independent) {
            let head = &stream[p.head_sidx as usize];
            prop_assert!(
                matches!(head, K::Alu1 { .. } | K::Alu2 { .. }),
                "dependent head must be a value-generating candidate: {head:?}"
            );
            let tail = &stream[p.pointer.tail_sidx as usize];
            prop_assert!(
                !matches!(tail, K::Load { .. } | K::Mul { .. }),
                "tail must be a single-cycle candidate: {tail:?}"
            );
            let taken_between = stream
                [p.head_sidx as usize..p.pointer.tail_sidx as usize]
                .iter()
                .filter(|k| matches!(k, K::Branch { taken: true, .. }))
                .count();
            prop_assert_eq!(taken_between == 1, p.pointer.control);
            prop_assert!(taken_between <= 1, "pointer across two taken branches");
        }
    }

    /// The CAM 2-source limit is respected: the merged source set of a
    /// dependent pair never exceeds two registers.
    #[test]
    fn cam_limit_is_enforced(stream in prop::collection::vec(kinds(), 4..64)) {
        let pairs = run_detector(&stream, CycleDetection::Heuristic, Some(2));
        for p in pairs.iter().filter(|p| !p.independent) {
            let srcs_of = |k: &K| -> Vec<u8> {
                match *k {
                    K::Alu1 { a, .. } | K::Load { dst: _, a } => vec![a],
                    K::Alu2 { a, b, .. } | K::Mul { a, b, .. } => vec![a, b],
                    K::Store { v, a } => vec![a, v],
                    K::Branch { c, .. } => vec![c],
                }
            };
            let head = &stream[p.head_sidx as usize];
            let head_dst = match *head {
                K::Alu1 { dst, .. } | K::Alu2 { dst, .. } => dst,
                _ => unreachable!("dependent heads are ALU"),
            };
            let mut union: Vec<u8> = srcs_of(head);
            for s in srcs_of(&stream[p.pointer.tail_sidx as usize]) {
                if s != head_dst && !union.contains(&s) {
                    union.push(s);
                }
            }
            prop_assert!(union.len() <= 2, "union {union:?} exceeds 2 sources");
        }
    }

    /// Precise cycle detection finds at least as many dependent pairs as
    /// the conservative heuristic (it only removes false positives).
    #[test]
    fn precise_dominates_heuristic(stream in prop::collection::vec(kinds(), 8..64)) {
        let h = run_detector(&stream, CycleDetection::Heuristic, None)
            .iter()
            .filter(|p| !p.independent)
            .count();
        let p = run_detector(&stream, CycleDetection::Precise, None)
            .iter()
            .filter(|p| !p.independent)
            .count();
        prop_assert!(p >= h, "precise {p} < heuristic {h}");
    }

    /// The detect-level oracle confirms every emitted dependent pair:
    /// real dependence, first-mark rule for two-source tails, and (when
    /// limited) the wakeup-array source budget.
    #[test]
    fn heuristic_pairs_pass_the_detect_oracle(stream in prop::collection::vec(kinds(), 4..96)) {
        let pairs = run_detector(&stream, CycleDetection::Heuristic, None);
        detect_oracle(&stream, &pairs, None).unwrap();
    }

    /// Same oracle with the CAM two-source wakeup limit active.
    #[test]
    fn cam_limited_pairs_pass_the_detect_oracle(stream in prop::collection::vec(kinds(), 4..96)) {
        let pairs = run_detector(&stream, CycleDetection::Heuristic, Some(2));
        detect_oracle(&stream, &pairs, Some(2)).unwrap();
    }

    /// Detection is deterministic.
    #[test]
    fn detection_is_deterministic(stream in prop::collection::vec(kinds(), 4..48)) {
        let a = run_detector(&stream, CycleDetection::Heuristic, None);
        let b = run_detector(&stream, CycleDetection::Heuristic, None);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.head_sidx, y.head_sidx);
            prop_assert_eq!(x.pointer, y.pointer);
        }
    }
}

/// The oracle itself must reject illegal pairings, or the property tests
/// above prove nothing. Hand it pairs the detector would never emit.
#[test]
fn detect_oracle_rejects_fabricated_violations() {
    // i0 writes r1; i1 (a load) reads r1 and holds the first mark in
    // column 0; i2 reads r1 and r7 with two source operands.
    let stream = vec![
        K::Alu1 { dst: 1, a: 9 },
        K::Load { dst: 2, a: 1 },
        K::Alu2 { dst: 3, a: 1, b: 7 },
    ];
    let fake = |tail: u32| DetectedPair {
        head_sidx: 0,
        head_line: 0x40,
        pointer: MopPointer::new(tail as u8, false, tail),
        independent: false,
    };
    // Pairing (0, 2) breaks the first-mark heuristic: the load at 1
    // already marked column 0 and the tail has two sources.
    assert!(detect_oracle(&stream, &[fake(2)], None).is_err());
    // Pairing (0, 1) is heuristic-legal; under a two-source CAM limit it
    // is fine too (union {r9, r1-internal} = {r9}).
    assert!(detect_oracle(&stream, &[fake(1)], Some(2)).is_ok());
    // A fabricated pair whose tail never reads the head is a non-dependence.
    let disjoint = vec![K::Alu1 { dst: 1, a: 9 }, K::Alu1 { dst: 2, a: 8 }];
    assert!(detect_oracle(&disjoint, &[fake(1)], None).is_err());
    // A two-source union of three registers must trip the CAM limit.
    let wide = vec![K::Alu2 { dst: 1, a: 8, b: 9 }, K::Alu2 { dst: 2, a: 1, b: 7 }];
    assert!(detect_oracle(&wide, &[fake(1)], Some(2)).is_err());
}

//! Additional issue-queue scenarios: mixed MOP/singleton contention,
//! independent-MOP timing, multi-source wakeup, replay interactions with
//! squash and pending bits, and property-based conservation checks.

use std::collections::HashMap;

use proptest::prelude::*;

use mos_core::queue::IssueQueue;
use mos_core::{SchedConfig, SchedUop, SchedulerKind, Tag, UopId, WakeupStyle};
use mos_isa::InstClass;

fn cfg(kind: SchedulerKind) -> SchedConfig {
    SchedConfig {
        kind,
        wakeup: WakeupStyle::WiredOr,
        queue_entries: Some(32),
        ..SchedConfig::default()
    }
}

fn alu(id: u64, dst: Option<u64>, srcs: &[u64]) -> SchedUop {
    let mut u = SchedUop::leaf(UopId(id), InstClass::IntAlu, dst.map(Tag));
    u.srcs = srcs.iter().copied().map(Tag).collect();
    u
}

fn drain(q: &mut IssueQueue, cycles: u64) -> HashMap<u64, Vec<u64>> {
    let mut sched: HashMap<u64, Vec<u64>> = HashMap::new();
    for now in 0..cycles {
        for i in q.cycle(now) {
            for u in &i.uops {
                sched.entry(u.id.0).or_default().push(i.issue_cycle);
            }
        }
    }
    sched
}

/// An independent MOP serializes its members but its consumers still see
/// 2-cycle wakeup (Section 5.4.1).
#[test]
fn independent_mop_consumer_timing() {
    let mut q = IssueQueue::new(cfg(SchedulerKind::MacroOp));
    let e = q.insert_mop_head(alu(0, Some(100), &[])).unwrap();
    q.fuse_tail(e, alu(1, Some(100), &[])).unwrap(); // same (empty) sources
    q.insert(alu(2, Some(101), &[100])).unwrap();
    let sched = drain(&mut q, 20);
    assert_eq!(sched[&0], vec![0]);
    assert_eq!(sched[&1], vec![0], "members issue as one entry");
    assert_eq!(sched[&2], vec![2], "consumer wakes at S+2, as in plain 2-cycle");
}

/// A three-source MOP (wired-OR) waits for all of them.
#[test]
fn merged_sources_all_gate_issue() {
    let mut q = IssueQueue::new(cfg(SchedulerKind::MacroOp));
    // Three independent producers with different latencies via chains.
    q.insert(alu(0, Some(100), &[])).unwrap();
    q.insert(alu(1, Some(101), &[100])).unwrap(); // ready at +2
    q.insert(alu(2, Some(102), &[101])).unwrap(); // ready at +4
    let e = q.insert_mop_head(alu(3, Some(103), &[100, 101])).unwrap();
    let mut tail = alu(4, Some(103), &[103]);
    tail.srcs.push(Tag(102));
    q.fuse_tail(e, tail).unwrap();
    let sched = drain(&mut q, 30);
    let mop_issue = sched[&3][0];
    let producer2 = sched[&2][0];
    assert!(
        mop_issue >= producer2 + 2,
        "MOP at {mop_issue} must wait for the slowest source (issued {producer2})"
    );
}

/// MOP slot blocking composes with FU limits: two MOPs issued together
/// block two slots and two ALUs next cycle.
#[test]
fn two_mops_block_two_slots() {
    let mut c = cfg(SchedulerKind::MacroOp);
    c.issue_width = 4;
    c.fu_counts = [4, 2, 2, 2, 2];
    let mut q = IssueQueue::new(c);
    for k in 0..2u64 {
        let e = q.insert_mop_head(alu(k * 2, Some(100 + k), &[])).unwrap();
        q.fuse_tail(e, alu(k * 2 + 1, Some(100 + k), &[100 + k])).unwrap();
    }
    for k in 0..6u64 {
        q.insert(alu(10 + k, Some(200 + k), &[])).unwrap();
    }
    let mut per_cycle: HashMap<u64, usize> = HashMap::new();
    for now in 0..10 {
        for _ in q.cycle(now) {
            *per_cycle.entry(now).or_default() += 1;
        }
    }
    // Cycle 0: 2 MOPs + 2 singles = 4 grants. Cycle 1: only 2 slots left.
    assert_eq!(per_cycle[&0], 4);
    assert_eq!(per_cycle[&1], 2, "two slots sequenced by MOP tails");
}

/// Squash while a load replay is pending: surviving entries still replay
/// and re-issue; squashed consumers disappear without deadlock.
#[test]
fn squash_and_replay_interleave() {
    let mut q = IssueQueue::new(cfg(SchedulerKind::Base));
    let mut load = SchedUop::leaf(UopId(0), InstClass::Load, Some(Tag(100)));
    load.srcs = vec![];
    q.insert(load).unwrap();
    q.insert(alu(1, Some(101), &[100])).unwrap(); // older consumer: survives
    q.insert(alu(5, Some(105), &[100])).unwrap(); // younger: squashed
    let mut reissues_of_1 = 0;
    for now in 0..40 {
        if now == 5 {
            q.load_resolved(Tag(100), false, 20);
        }
        if now == 6 {
            q.squash_from(UopId(3));
        }
        for i in q.cycle(now) {
            if i.uops[0].id == UopId(1) {
                reissues_of_1 += 1;
            }
            if now > 6 {
                assert_ne!(i.uops[0].id, UopId(5), "squashed uop must not re-issue");
            }
        }
    }
    assert_eq!(reissues_of_1, 2, "survivor replays once");
    assert_eq!(q.occupancy(), 0, "everything drains");
}

/// cancel_pending is idempotent and safe on issued/freed entries.
#[test]
fn cancel_pending_is_idempotent() {
    let mut q = IssueQueue::new(cfg(SchedulerKind::MacroOp));
    let e = q.insert_mop_head(alu(0, Some(100), &[])).unwrap();
    q.cancel_pending(e);
    q.cancel_pending(e);
    assert_eq!(q.stats().cancelled_pendings, 1);
    let issued = q.cycle(0);
    assert_eq!(issued.len(), 1);
    q.cancel_pending(e); // now issued: no-op
    assert_eq!(q.stats().cancelled_pendings, 1);
}

/// load_resolved on an unknown or squashed tag is a harmless no-op.
#[test]
fn load_resolved_unknown_tag_is_noop() {
    let mut q = IssueQueue::new(cfg(SchedulerKind::Base));
    assert!(q.load_resolved(Tag(999), false, 50).is_empty());
    q.insert(alu(0, Some(100), &[])).unwrap();
    assert_eq!(q.cycle(0).len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Conservation: every inserted singleton eventually issues exactly
    /// once (no loads, no squashes), under every scheduler, regardless of
    /// dependence shape.
    #[test]
    fn all_work_issues_exactly_once(
        deps in prop::collection::vec(prop::option::of(0usize..8), 1..24),
        kind in prop::sample::select(vec![
            SchedulerKind::Base,
            SchedulerKind::TwoCycle,
            SchedulerKind::MacroOp,
            SchedulerKind::SelectFreeSquashDep,
            SchedulerKind::SelectFreeScoreboard,
            SchedulerKind::SpeculativeWakeup,
        ]),
    ) {
        let mut q = IssueQueue::new(cfg(kind));
        for (i, d) in deps.iter().enumerate() {
            // Depend on an earlier uop (by index distance) when possible.
            let srcs: Vec<u64> = match d {
                Some(back) if *back < i => vec![100 + (i - 1 - back) as u64],
                _ => vec![],
            };
            q.insert(alu(i as u64, Some(100 + i as u64), &srcs)).unwrap();
        }
        let sched = drain(&mut q, 300);
        for i in 0..deps.len() as u64 {
            let issues = sched.get(&i).map(Vec::len).unwrap_or(0);
            prop_assert_eq!(issues, 1, "uop {} issued {} times under {:?}", i, issues, kind);
        }
    }

    /// Issue cycles respect dependences: a consumer never issues before
    /// its producer (+1 at minimum).
    #[test]
    fn dependences_are_never_violated(
        deps in prop::collection::vec(prop::option::of(0usize..4), 2..20),
    ) {
        let mut q = IssueQueue::new(cfg(SchedulerKind::Base));
        let mut edges = Vec::new();
        for (i, d) in deps.iter().enumerate() {
            let srcs: Vec<u64> = match d {
                Some(back) if *back < i => {
                    let p = i - 1 - back;
                    edges.push((p as u64, i as u64));
                    vec![100 + p as u64]
                }
                _ => vec![],
            };
            q.insert(alu(i as u64, Some(100 + i as u64), &srcs)).unwrap();
        }
        let sched = drain(&mut q, 200);
        for (p, c) in edges {
            prop_assert!(
                sched[&c][0] > sched[&p][0],
                "consumer {} at {} vs producer {} at {}",
                c, sched[&c][0], p, sched[&p][0]
            );
        }
    }
}

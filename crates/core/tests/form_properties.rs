//! Property-based tests of MOP formation: steering decisions must
//! conserve instructions, pair ids must match up, and the translation
//! table must agree with a reference register-renaming model.

use proptest::prelude::*;

use mos_core::form::{FormedItem, Former, RenamedInst};
use mos_core::pointer::MopPointer;
use mos_core::{Tag, UopId};
use mos_isa::{InstClass, Reg};

#[derive(Debug, Clone)]
struct RandInst {
    dst: Option<u8>,
    srcs: Vec<u8>,
    class: u8,
    taken: bool,
    pointer_offset: Option<u8>,
}

fn rand_inst() -> impl Strategy<Value = RandInst> {
    (
        prop::option::of(1u8..10),
        prop::collection::vec(1u8..10, 0..2),
        0u8..4,
        any::<bool>(),
        prop::option::weighted(0.3, 1u8..5),
    )
        .prop_map(|(dst, srcs, class, taken, pointer_offset)| RandInst {
            dst,
            srcs,
            class,
            taken,
            pointer_offset,
        })
}

fn to_renamed(i: usize, r: &RandInst) -> RenamedInst {
    let class = match r.class {
        0 => InstClass::IntAlu,
        1 => InstClass::Load,
        2 => InstClass::Store,
        _ => InstClass::CondBranch,
    };
    let dst = match class {
        InstClass::IntAlu | InstClass::Load => r.dst.map(Reg::int),
        _ => None,
    };
    let sidx = i as u32;
    let pointer = r
        .pointer_offset
        .filter(|_| class == InstClass::IntAlu && dst.is_some())
        .map(|off| MopPointer::new(off, false, sidx + u32::from(off)));
    RenamedInst {
        id: UopId(i as u64),
        sidx,
        class,
        dst,
        srcs: r.srcs.iter().map(|&n| Reg::int(n)).collect(),
        taken: class == InstClass::CondBranch && r.taken,
        taken_indirect: false,
        pointer,
        is_candidate: class != InstClass::Load,
        is_valuegen: class != InstClass::Load && dst.is_some(),
        fetched_at: 0,
        wrong_path: false,
    }
}

fn run_former(stream: &[RandInst]) -> Vec<FormedItem> {
    let mut f = Former::new(true, 2);
    let mut items = Vec::new();
    for (g, chunk) in stream.chunks(4).enumerate() {
        f.begin_group();
        for (k, r) in chunk.iter().enumerate() {
            items.extend(f.feed(&to_renamed(g * 4 + k, r)));
        }
        items.extend(f.end_group());
    }
    items
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Formation conserves instructions: every fed instruction appears in
    /// exactly one Single/HeadPending/TailFuse item, in order.
    #[test]
    fn instructions_are_conserved(stream in prop::collection::vec(rand_inst(), 1..64)) {
        let items = run_former(&stream);
        let mut seen: Vec<u64> = Vec::new();
        for item in &items {
            match item {
                FormedItem::Single(u) => seen.push(u.id.0),
                FormedItem::HeadPending { head, .. } => seen.push(head.id.0),
                FormedItem::TailFuse { tail, .. } => seen.push(tail.id.0),
                FormedItem::Cancel { .. } => {}
            }
        }
        let expected: Vec<u64> = (0..stream.len() as u64).collect();
        prop_assert_eq!(seen, expected);
    }

    /// Every TailFuse and Cancel refers to a previously issued
    /// HeadPending's pair id, and each pair id is fused or cancelled at
    /// most once (chains may fuse repeatedly but never after a cancel).
    #[test]
    fn pair_ids_are_well_formed(stream in prop::collection::vec(rand_inst(), 1..64)) {
        let items = run_former(&stream);
        let mut open: std::collections::HashSet<u64> = Default::default();
        for item in &items {
            match item {
                FormedItem::HeadPending { pair_id, .. } => {
                    prop_assert!(open.insert(*pair_id), "pair id {} reused", pair_id);
                }
                FormedItem::TailFuse { pair_id, chain_more, .. } => {
                    prop_assert!(open.contains(pair_id), "fuse of unknown pair {}", pair_id);
                    if !chain_more {
                        open.remove(pair_id);
                    }
                }
                FormedItem::Cancel { pair_id } => {
                    prop_assert!(open.remove(pair_id), "cancel of unknown pair {}", pair_id);
                }
                FormedItem::Single(_) => {}
            }
        }
    }

    /// Dependence translation matches a reference renaming: a consumer's
    /// source tags are exactly the tags of the latest writers of its
    /// source registers (deduplicated), with fused tails aliasing their
    /// head's tag.
    #[test]
    fn translation_matches_reference(stream in prop::collection::vec(rand_inst(), 1..64)) {
        let items = run_former(&stream);
        let mut table: std::collections::HashMap<u8, Tag> = Default::default();
        let mut k = 0usize;
        for item in &items {
            let uop = match item {
                FormedItem::Single(u) => u,
                FormedItem::HeadPending { head, .. } => head,
                FormedItem::TailFuse { tail, .. } => tail,
                FormedItem::Cancel { .. } => continue,
            };
            let r = &stream[k];
            k += 1;
            // Expected sources per the reference table.
            let mut expected: Vec<Tag> = Vec::new();
            let renamed = to_renamed(k - 1, r);
            for s in &renamed.srcs {
                if let Some(&t) = table.get(&(s.index() as u8)) {
                    if !expected.contains(&t) {
                        expected.push(t);
                    }
                }
            }
            prop_assert_eq!(&uop.srcs, &expected, "uop {} sources", uop.id.0);
            if let (Some(dst), Some(tag)) = (renamed.dst, uop.dst) {
                table.insert(dst.index() as u8, tag);
            }
        }
    }

    /// Disabled formation degenerates to pure renaming: only Single items.
    #[test]
    fn disabled_former_is_pure_renaming(stream in prop::collection::vec(rand_inst(), 1..48)) {
        let mut f = Former::new(false, 2);
        for (g, chunk) in stream.chunks(4).enumerate() {
            f.begin_group();
            for (k, r) in chunk.iter().enumerate() {
                for item in f.feed(&to_renamed(g * 4 + k, r)) {
                    prop_assert!(matches!(item, FormedItem::Single(_)));
                }
            }
            prop_assert!(f.end_group().is_empty());
        }
    }
}

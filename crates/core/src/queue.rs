//! The issue queue and its wakeup/select engine.
//!
//! One cycle-level engine implements every scheduler of Section 6.2 via
//! [`SchedulerKind`]:
//!
//! * **Base** — ideally pipelined atomic scheduling: an entry selected at
//!   cycle `S` with latency `L` wakes its dependents for selection at
//!   `S + L`, so single-cycle chains issue back-to-back.
//! * **TwoCycle** — pipelined wakeup/select: dependents wake at
//!   `S + max(L, 2)`; single-cycle chains lose a cycle per edge.
//! * **MacroOp** — TwoCycle timing over entries that may hold a fused
//!   pair: a MOP is a non-pipelined 2-cycle unit issuing one tag
//!   broadcast; its dependents wake at `S + 2` while the tail executes in
//!   the slot after the head, reproducing Figure 5 exactly. A MOP blocks
//!   its issue slot (and one functional unit) in the following cycle while
//!   the payload RAM sequences the tail (Section 5.3.1).
//! * **SelectFreeSquashDep / SelectFreeScoreboard** — Brown et al.'s
//!   select-free scheduling: entries broadcast *at wakeup*, speculating
//!   they will be selected. A collision victim (woken but not granted)
//!   either squashes its dependents' wakeups — re-broadcasting on grant
//!   with a one-cycle re-wake penalty (squash-dep) — or lets mis-woken
//!   dependents issue as *pileup victims* that a register scoreboard
//!   catches and selectively replays (scoreboard).
//!
//! Loads are scheduled with their assumed hit latency; on a miss the queue
//! selectively replays every dependent issued in the load shadow — both
//! halves of a MOP together, since dependence tracking is in the MOP ID
//! name space (Section 5.3.2) — and re-broadcasts when the data arrives,
//! plus the configured replay penalty.

use mos_isa::FuKind;
use mos_metrics::Hist;

use crate::config::{SchedConfig, SchedulerKind};
use crate::events::TraceEvent;
use crate::slots::{SlotCause, SlotCounts};
use crate::uop::{SchedUop, Tag, UopId};

/// Handle to an occupied issue-queue entry (generation-checked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryId {
    index: usize,
    gen: u64,
}

impl EntryId {
    /// Queue slot index of the entry.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Allocation generation (distinguishes reuses of the same slot).
    pub fn generation(&self) -> u64 {
        self.gen
    }
}

/// Why an insertion was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// No free issue-queue entry.
    Full,
    /// The target entry no longer exists (squashed) or cannot accept a
    /// tail.
    BadEntry,
    /// Fusing would exceed the configured MOP size.
    MopTooLarge,
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::Full => write!(f, "issue queue is full"),
            InsertError::BadEntry => write!(f, "target entry is gone or cannot fuse"),
            InsertError::MopTooLarge => write!(f, "macro-op size limit exceeded"),
        }
    }
}

impl std::error::Error for InsertError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Waiting,
    Issued,
}

#[derive(Debug, Clone)]
struct Entry {
    gen: u64,
    uops: Vec<SchedUop>,
    /// Merged source tags (internal MOP edges removed).
    srcs: Vec<Tag>,
    dst: Option<Tag>,
    fu: FuKind,
    age: UopId,
    pending_tail: bool,
    state: EntryState,
    /// Entry has been denied a grant at least once while woken
    /// (select-free collision bookkeeping).
    collided: bool,
    /// Entry may not request selection before this cycle (replay penalty).
    hold_until: u64,
    confirm_at: Option<u64>,
    /// Select-free: speculative wake broadcast already sent.
    spec_broadcast: bool,
    /// First cycle the entry requested selection with all sources ready
    /// (metrics only; cleared on replay so each grant measures its own
    /// wakeup→select slack).
    woken_at: Option<u64>,
}

impl Entry {
    fn latency(&self, config: &SchedConfig) -> u32 {
        if self.uops.len() > 1 {
            // A MOP is a non-pipelined multi-cycle unit; one cycle per uop.
            self.uops.len() as u32
        } else {
            let u = &self.uops[0];
            if u.is_load {
                config.load_sched_latency
            } else {
                u.sched_latency
            }
        }
    }

    fn is_mop(&self) -> bool {
        self.uops.len() > 1
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TagState {
    /// Wakeup time visible to the select logic (speculative in
    /// select-free mode until the producer is granted).
    ready_at: Option<u64>,
    /// Time the value is actually available (set at producer grant).
    actual_at: Option<u64>,
    /// Producer is a load whose hit/miss is not yet known.
    load_unresolved: bool,
    /// This dataflow edge was poisoned by a cache miss: the producer is a
    /// missed load or a consumer replayed in its shadow. Sticky for the
    /// tag's lifetime (tags are never reused), so slot accounting can
    /// charge the whole transitive wait to the miss.
    missed: bool,
}

/// Dense tag-state table. Tags are allocated by rename/formation from a
/// monotonic counter and never reused, so states live in a flat vector
/// indexed by `tag - base` instead of a hash map; pruning clears stale
/// slots and advances `base` over the dead prefix. A tag outside the
/// window (or with a cleared slot) is architecturally long done —
/// consumers treat it as ready.
#[derive(Debug, Clone, Default)]
struct TagTable {
    /// Tag number of `slots[0]`.
    base: u64,
    slots: Vec<Option<TagState>>,
}

impl TagTable {
    fn idx(&self, t: Tag) -> Option<usize> {
        t.0.checked_sub(self.base).map(|d| d as usize)
    }

    fn get(&self, t: Tag) -> Option<&TagState> {
        self.idx(t)
            .and_then(|i| self.slots.get(i))
            .and_then(Option::as_ref)
    }

    fn get_mut(&mut self, t: Tag) -> Option<&mut TagState> {
        let i = self.idx(t)?;
        self.slots.get_mut(i).and_then(Option::as_mut)
    }

    fn contains(&self, t: Tag) -> bool {
        self.get(t).is_some()
    }

    /// Raw slot for `t`, growing the table as needed. `None` only for
    /// tags below the pruned floor; those are unreachable in practice
    /// (re-broadcasts happen within the confirm window, pruning keeps a
    /// 4096-cycle horizon) and their consumers already see them as ready.
    fn slot(&mut self, t: Tag) -> Option<&mut Option<TagState>> {
        let i = self.idx(t)?;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        Some(&mut self.slots[i])
    }

    fn insert(&mut self, t: Tag, s: TagState) {
        if let Some(slot) = self.slot(t) {
            *slot = Some(s);
        }
    }

    /// The state for `t`, created default if absent (the old
    /// `entry(t).or_default()`).
    fn ensure(&mut self, t: Tag) -> Option<&mut TagState> {
        let slot = self.slot(t)?;
        Some(slot.get_or_insert_with(TagState::default))
    }

    fn remove(&mut self, t: Tag) {
        if let Some(i) = self.idx(t) {
            if let Some(slot) = self.slots.get_mut(i) {
                *slot = None;
            }
        }
    }

    /// Wakeup visible to select logic; absent tags are long done.
    fn ready(&self, t: Tag, now: u64) -> bool {
        match self.get(t) {
            None => true,
            Some(s) => s.ready_at.is_some_and(|r| r <= now),
        }
    }

    /// Value actually available (grant-time verification).
    fn actually_ready(&self, t: Tag, now: u64) -> bool {
        match self.get(t) {
            None => true,
            Some(s) => s.actual_at.is_some_and(|r| r <= now),
        }
    }

    /// Clear states whose wakeup is older than `horizon`, then advance
    /// the floor over the cleared prefix so the vector stays bounded.
    fn prune(&mut self, now: u64, horizon: u64) {
        for slot in &mut self.slots {
            let keep = slot.as_ref().is_some_and(|s| {
                s.load_unresolved
                    || s.ready_at.is_none()
                    || s.ready_at.is_some_and(|r| r + horizon >= now)
            });
            if !keep {
                *slot = None;
            }
        }
        let dead = self.slots.iter().take_while(|s| s.is_none()).count();
        if dead > 0 {
            self.slots.drain(..dead);
            self.base += dead as u64;
        }
    }
}

/// One issue decision returned by [`IssueQueue::cycle`].
#[derive(Debug, Clone)]
pub struct Issued {
    /// The entry that issued.
    pub entry: EntryId,
    /// The original uops in sequencing order (head first). The caller
    /// executes `uops[k]` in cycle `issue_cycle + k` (payload-RAM
    /// sequencing, Section 5.3.1).
    pub uops: Vec<SchedUop>,
    /// Cycle of selection.
    pub issue_cycle: u64,
}

/// Aggregate queue statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Entries selected.
    pub issued_entries: u64,
    /// Uops selected (each MOP member counted).
    pub issued_uops: u64,
    /// Uops replayed due to load misses.
    pub load_replay_uops: u64,
    /// Select-free collision victims (woken but not granted that cycle).
    pub collisions: u64,
    /// Scoreboard pileup victims (issued on a stale wakeup, replayed).
    pub pileup_replays: u64,
    /// Speculative-wakeup grants cancelled at parent verification
    /// (Stark et al.): slots wasted, instruction retries.
    pub spec_wakeup_cancels: u64,
    /// Sum over cycles of occupied entries (divide by cycles for the mean).
    pub occupancy_integral: u64,
    /// Cycles advanced.
    pub cycles: u64,
    /// Entries whose pending tail was cancelled.
    pub cancelled_pendings: u64,
}

impl QueueStats {
    /// Mean occupied entries per cycle.
    pub fn mean_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy_integral as f64 / self.cycles as f64
        }
    }
}

/// Opt-in scheduling distributions, behind the same
/// zero-cost-when-disabled guard as event tracing: when metrics are off
/// (the default) no sample is ever taken.
#[derive(Debug, Clone, Default)]
pub struct QueueMetrics {
    /// Occupied entries, sampled once per cycle. Reconciles with
    /// [`QueueStats`]: the sample count equals `cycles` and the sample sum
    /// equals `occupancy_integral`.
    pub occupancy: Hist,
    /// Cycles from an entry's first selection request with every source
    /// ready to the grant that issued it, one sample per granted entry
    /// (the sample count equals `issued_entries`). Nonzero delays are
    /// structural-hazard or collision victims.
    pub wakeup_select_delay: Hist,
}

/// Opt-in per-slot cause accounting, behind the same zero-cost guard as
/// tracing and metrics: when accounting is off (the default) the queue
/// does no classification work at all.
#[derive(Debug, Clone, Default)]
struct SlotAccounting {
    /// Slots charged by the queue (useful / loop / fusion / stall causes).
    counts: SlotCounts,
    /// Idle slots last cycle with no waiting entry to blame. The driver
    /// (simulator) charges these to frontend, wrong-path or drained.
    empty: u64,
    /// Reusable classification scratch: `(age, cause)` per waiting entry,
    /// sorted oldest-first to mirror select priority.
    cause_buf: Vec<(UopId, SlotCause)>,
}

/// The issue queue. See the module docs for the scheduling models.
///
/// ```
/// use mos_core::queue::IssueQueue;
/// use mos_core::{SchedConfig, SchedUop, Tag, UopId};
/// use mos_isa::InstClass;
///
/// let mut q = IssueQueue::new(SchedConfig::default());
/// let add = SchedUop::leaf(UopId(0), InstClass::IntAlu, Some(Tag(0)));
/// q.insert(add).unwrap();
/// let issued = q.cycle(0);
/// assert_eq!(issued.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct IssueQueue {
    config: SchedConfig,
    entries: Vec<Option<Entry>>,
    free: Vec<usize>,
    tags: TagTable,
    now: u64,
    next_gen: u64,
    /// Issue slots and FUs consumed this cycle by MOP tails issued last
    /// cycle (payload-RAM sequencing blocks the slot).
    slots_blocked: usize,
    fu_blocked: [usize; 5],
    stats: QueueStats,
    /// Reusable request-phase scratch (hoisted out of the per-cycle loop).
    req_buf: Vec<(UopId, usize)>,
    /// Reusable replay work list.
    work_buf: Vec<Tag>,
    /// Event tracing enabled. When `false` (the default) no event value is
    /// ever constructed — every emission site is behind this one branch.
    trace: bool,
    /// Buffered events awaiting [`IssueQueue::drain_trace_into`]. The
    /// driver owns the cycle stamp (the queue's clock lags the
    /// simulator's during insertion), so buffered cycles are provisional.
    trace_buf: Vec<TraceEvent>,
    /// Opt-in scheduling histograms; `None` (the default) samples nothing.
    metrics: Option<Box<QueueMetrics>>,
    /// Opt-in per-slot cause accounting; `None` (the default) classifies
    /// nothing.
    accounting: Option<Box<SlotAccounting>>,
}

impl IssueQueue {
    /// Create a queue per `config`. An unrestricted queue
    /// (`queue_entries == None`) is modeled with a capacity large enough
    /// never to fill before a 128-entry re-order buffer does.
    pub fn new(config: SchedConfig) -> IssueQueue {
        let cap = config.queue_entries.unwrap_or(512);
        IssueQueue {
            entries: (0..cap).map(|_| None).collect(),
            free: (0..cap).rev().collect(),
            tags: TagTable::default(),
            now: 0,
            next_gen: 1,
            slots_blocked: 0,
            fu_blocked: [0; 5],
            stats: QueueStats::default(),
            req_buf: Vec::new(),
            work_buf: Vec::new(),
            trace: false,
            trace_buf: Vec::new(),
            metrics: None,
            accounting: None,
            config,
        }
    }

    /// Turn event tracing on or off. Off by default; when off the queue
    /// does no per-event work at all.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = on;
        if !on {
            self.trace_buf.clear();
        }
    }

    /// `true` when event tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.trace
    }

    /// Turn metric histograms on or off. Off by default; when off the
    /// queue takes no samples at all (the same guard discipline as
    /// [`IssueQueue::set_tracing`]).
    pub fn set_metrics(&mut self, on: bool) {
        self.metrics = on.then(Box::<QueueMetrics>::default);
    }

    /// The collected histograms, if metrics are enabled.
    pub fn metrics(&self) -> Option<&QueueMetrics> {
        self.metrics.as_deref()
    }

    /// Turn per-slot cause accounting on or off. Off by default; when off
    /// the queue does no classification work at all (the same guard
    /// discipline as [`IssueQueue::set_tracing`]). Enable before the first
    /// cycle so the conservation law holds for the whole run.
    pub fn set_slot_accounting(&mut self, on: bool) {
        self.accounting = on.then(Box::<SlotAccounting>::default);
    }

    /// Per-cause slot counts charged by the queue, if accounting is on.
    /// The queue charges everything it can see; idle slots it could not
    /// blame on a waiting entry are reported via
    /// [`IssueQueue::unattributed_slots`] for the driver to classify.
    pub fn slot_counts(&self) -> Option<&SlotCounts> {
        self.accounting.as_deref().map(|a| &a.counts)
    }

    /// Idle slots from the most recent cycle that had no waiting entry to
    /// blame. The driver charges these to frontend back-pressure,
    /// wrong-path recovery or a drained machine — exactly once per cycle,
    /// right after [`IssueQueue::cycle_into`].
    pub fn unattributed_slots(&self) -> u64 {
        self.accounting.as_deref().map_or(0, |a| a.empty)
    }

    /// Move every buffered trace event into `out`, re-stamping each with
    /// `cycle` (the driver's clock — the queue buffers events emitted
    /// while its own clock lags, e.g. during insertion).
    pub fn drain_trace_into(&mut self, cycle: u64, out: &mut Vec<TraceEvent>) {
        for mut ev in self.trace_buf.drain(..) {
            ev.set_cycle(cycle);
            out.push(ev);
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// Number of occupied entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// Number of free entries.
    pub fn free_entries(&self) -> usize {
        self.free.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    fn alloc(&mut self) -> Result<usize, InsertError> {
        self.free.pop().ok_or(InsertError::Full)
    }

    fn entry_mut(&mut self, id: EntryId) -> Option<&mut Entry> {
        self.entries
            .get_mut(id.index)?
            .as_mut()
            .filter(|e| e.gen == id.gen)
    }

    /// Filter a uop's source tags against current tag state: tags nobody
    /// remembers are architecturally long done.
    fn live_srcs(&self, uop: &SchedUop) -> Vec<Tag> {
        uop.srcs
            .iter()
            .copied()
            .filter(|&t| self.tags.contains(t))
            .collect()
    }

    /// Insert a singleton entry.
    ///
    /// # Errors
    ///
    /// [`InsertError::Full`] when no entry is free.
    pub fn insert(&mut self, uop: SchedUop) -> Result<EntryId, InsertError> {
        self.insert_inner(uop, false)
    }

    /// Insert a MOP head whose tail has not arrived yet. The entry carries
    /// a pending bit and will not request selection until
    /// [`IssueQueue::fuse_tail`] or [`IssueQueue::cancel_pending`]
    /// (Section 5.2.3, Figure 11).
    ///
    /// # Errors
    ///
    /// [`InsertError::Full`] when no entry is free.
    pub fn insert_mop_head(&mut self, uop: SchedUop) -> Result<EntryId, InsertError> {
        self.insert_inner(uop, true)
    }

    fn insert_inner(&mut self, uop: SchedUop, pending: bool) -> Result<EntryId, InsertError> {
        let idx = self.alloc()?;
        let gen = self.next_gen;
        self.next_gen += 1;
        if let Some(dst) = uop.dst {
            self.tags.insert(dst, TagState::default());
        }
        let srcs = self.live_srcs(&uop);
        if self.trace {
            self.trace_buf.push(TraceEvent::Rename {
                cycle: self.now,
                id: uop.id,
                sidx: uop.sidx,
                entry: EntryId { index: idx, gen },
                dst: uop.dst,
                srcs: srcs.clone(),
                fused: false,
                pending,
                is_load: uop.is_load,
                fetched_at: uop.fetched_at,
                wrong_path: uop.wrong_path,
            });
        }
        self.entries[idx] = Some(Entry {
            gen,
            srcs,
            dst: uop.dst,
            fu: uop.fu,
            age: uop.id,
            pending_tail: pending,
            state: EntryState::Waiting,
            collided: false,
            hold_until: 0,
            confirm_at: None,
            spec_broadcast: false,
            woken_at: None,
            uops: vec![uop],
        });
        Ok(EntryId { index: idx, gen })
    }

    /// Fuse `tail` into the MOP entry at `head`, clearing the pending bit.
    /// The tail's dependence on the head (their shared MOP tag) becomes
    /// the internal edge and is not tracked as a source.
    ///
    /// # Errors
    ///
    /// [`InsertError::BadEntry`] if the head entry is gone or already
    /// issued; [`InsertError::MopTooLarge`] if the configured size is
    /// exceeded.
    pub fn fuse_tail(&mut self, head: EntryId, tail: SchedUop) -> Result<(), InsertError> {
        let max = self.config.mop.max_mop_size;
        let live = self.live_srcs(&tail);
        let Some(e) = self.entry_mut(head) else {
            return Err(InsertError::BadEntry);
        };
        if e.state != EntryState::Waiting {
            return Err(InsertError::BadEntry);
        }
        if e.uops.len() + 1 > max {
            return Err(InsertError::MopTooLarge);
        }
        let mop_tag = e.dst;
        for t in live {
            if Some(t) == mop_tag {
                continue; // internal head->tail edge
            }
            if !e.srcs.contains(&t) {
                e.srcs.push(t);
            }
        }
        // Head and tail share one MOP ID; formation's translation table
        // aliases the tail's destination to it, so no new tag is made.
        e.pending_tail = false;
        e.uops.push(tail);
        if self.trace {
            let e = self.entries[head.index].as_ref().expect("fused above");
            let tail = e.uops.last().expect("just pushed");
            self.trace_buf.push(TraceEvent::Rename {
                cycle: self.now,
                id: tail.id,
                sidx: tail.sidx,
                entry: head,
                dst: mop_tag,
                srcs: e.srcs.clone(),
                fused: true,
                pending: false,
                is_load: tail.is_load,
                fetched_at: tail.fetched_at,
                wrong_path: tail.wrong_path,
            });
        }
        Ok(())
    }

    /// Re-arm the pending bit on a fused entry that expects a further tail
    /// (used for >2-instruction MOP chains, the paper's future-work
    /// configurations).
    pub fn mark_pending(&mut self, id: EntryId) {
        if let Some(e) = self.entry_mut(id) {
            if e.state == EntryState::Waiting {
                e.pending_tail = true;
            }
        }
    }

    /// Give up waiting for a tail: the head becomes an ordinary singleton
    /// (fetch never delivered the tail in the consecutive insert group).
    pub fn cancel_pending(&mut self, head: EntryId) {
        if let Some(e) = self.entry_mut(head) {
            if e.pending_tail {
                e.pending_tail = false;
                self.stats.cancelled_pendings += 1;
            }
        }
    }

    /// `true` if the entry still exists and is waiting for its tail.
    pub fn is_pending(&self, id: EntryId) -> bool {
        self.entries
            .get(id.index)
            .and_then(|s| s.as_ref())
            .is_some_and(|e| e.gen == id.gen && e.pending_tail)
    }

    /// Advance one cycle. `now` must increase by exactly one between
    /// calls (the first call sets the epoch). Returns the entries issued.
    ///
    /// Allocates the result vector; the hot simulator loop uses
    /// [`IssueQueue::cycle_into`] with a reusable buffer instead.
    pub fn cycle(&mut self, now: u64) -> Vec<Issued> {
        let mut out = Vec::new();
        self.cycle_into(now, &mut out);
        out
    }

    /// Advance one cycle, clearing `out` and appending this cycle's issue
    /// decisions to it.
    pub fn cycle_into(&mut self, now: u64, out: &mut Vec<Issued>) {
        out.clear();
        debug_assert!(
            self.stats.cycles == 0 || now == self.now + 1,
            "cycles must be consecutive"
        );
        self.now = now;
        self.stats.cycles += 1;

        // Release entries whose execution is known good.
        for idx in 0..self.entries.len() {
            let release = self.entries[idx].as_ref().is_some_and(|e| {
                e.state == EntryState::Issued && e.confirm_at.is_some_and(|c| c <= now)
            });
            if release {
                self.entries[idx] = None;
                self.free.push(idx);
            }
        }
        let occ = self.occupancy() as u64;
        self.stats.occupancy_integral += occ;
        if let Some(m) = self.metrics.as_deref_mut() {
            m.occupancy.record(occ);
        }

        let select_free = self.config.kind.broadcasts_at_wakeup();

        // Speculative wakeup phase (select-free and speculative-wakeup
        // schedulers): broadcast at wake time, before selection confirms.
        if select_free {
            for idx in 0..self.entries.len() {
                let Some(e) = self.entries[idx].as_ref() else {
                    continue;
                };
                if e.state != EntryState::Waiting || e.pending_tail || e.spec_broadcast {
                    continue;
                }
                if !e.srcs.iter().all(|&t| self.tags.ready(t, now)) {
                    continue;
                }
                let lat = u64::from(e.latency(&self.config).max(1));
                let dst = e.dst;
                let is_load = e.uops[0].is_load;
                if let Some(e) = self.entries[idx].as_mut() {
                    e.spec_broadcast = true;
                }
                if let Some(d) = dst {
                    if let Some(s) = self.tags.ensure(d) {
                        s.ready_at = Some(now + lat);
                        s.load_unresolved = is_load;
                        if self.trace {
                            self.trace_buf.push(TraceEvent::Wakeup {
                                cycle: now,
                                tag: d,
                                ready_at: now + lat,
                                speculative: true,
                            });
                        }
                    }
                }
            }
        }

        // Request phase (the scratch vector is queue-owned and reused).
        let mut requesters = std::mem::take(&mut self.req_buf);
        requesters.clear();
        for idx in 0..self.entries.len() {
            let Some(e) = self.entries[idx].as_ref() else {
                continue;
            };
            if e.state != EntryState::Waiting || e.pending_tail || e.hold_until > now {
                continue;
            }
            if e.srcs.iter().all(|&t| self.tags.ready(t, now)) {
                requesters.push((e.age, idx));
                if self.metrics.is_some() {
                    if let Some(e) = self.entries[idx].as_mut() {
                        if e.woken_at.is_none() {
                            e.woken_at = Some(now);
                        }
                    }
                }
            }
        }
        requesters.sort_unstable();

        // Grant phase: oldest first, within issue width and FU pools,
        // minus the slots/FUs blocked by MOP tails sequencing this cycle.
        let blocked_slots = self.slots_blocked.min(self.config.issue_width);
        let waste_before = self.stats.spec_wakeup_cancels + self.stats.pileup_replays;
        let mut width = self.config.issue_width.saturating_sub(self.slots_blocked);
        let mut fu_avail = [0usize; 5];
        for (k, avail) in fu_avail.iter_mut().enumerate() {
            *avail = self.config.fu_counts[k].saturating_sub(self.fu_blocked[k]);
        }
        let mut slots_next = 0usize;
        let mut fu_next = [0usize; 5];

        for &(_, idx) in &requesters {
            let fu = self.entries[idx].as_ref().expect("requester exists").fu;
            if width == 0 || fu_avail[fu.index()] == 0 {
                self.note_collision(idx);
                continue;
            }

            // Speculative wakeup (Stark et al.): the select stage verifies
            // the parents really issued; a failed verification wastes the
            // issue slot and the instruction simply retries next cycle.
            if self.config.kind == SchedulerKind::SpeculativeWakeup {
                let e = self.entries[idx].as_ref().expect("requester exists");
                let stale = e.srcs.iter().any(|&t| !self.tags.actually_ready(t, now));
                if stale {
                    width -= 1;
                    self.stats.spec_wakeup_cancels += 1;
                    continue;
                }
            }

            // Scoreboard pileup check: did every producer actually deliver?
            if self.config.kind == SchedulerKind::SelectFreeScoreboard {
                let e = self.entries[idx].as_ref().expect("requester exists");
                let stale = e.srcs.iter().any(|&t| !self.tags.actually_ready(t, now));
                if stale {
                    // The pileup victim consumed an issue slot and an FU,
                    // is caught in the register-read stage and replayed.
                    width -= 1;
                    fu_avail[fu.index()] -= 1;
                    self.stats.pileup_replays += 1;
                    for &t in &e.srcs {
                        // Un-broadcast every stale wakeup for everyone
                        // (entries and tags are disjoint borrows; no
                        // source-list clone needed).
                        if let Some(s) = self.tags.get_mut(t) {
                            if s.actual_at.is_none_or(|r| r > now) {
                                s.ready_at = s.actual_at;
                            }
                        }
                    }
                    let penalty = u64::from(self.config.replay_penalty);
                    if let Some(e) = self.entries[idx].as_mut() {
                        e.hold_until = now + penalty;
                    }
                    continue;
                }
            }

            width -= 1;
            fu_avail[fu.index()] -= 1;

            // Broadcast the destination tag.
            let e = self.entries[idx].as_ref().expect("requester exists");
            let lat = u64::from(e.latency(&self.config));
            if e.is_mop() {
                slots_next += 1;
                fu_next[fu.index()] += 1;
            }
            if let Some(d) = e.dst {
                let is_load = e.uops.iter().any(|u| u.is_load);
                let collided = e.collided;
                let floor = u64::from(self.config.kind.wakeup_floor());
                if let Some(s) = self.tags.ensure(d) {
                    let prev_ready = s.ready_at;
                    s.actual_at = Some(now + lat.max(1));
                    s.load_unresolved = is_load;
                    if select_free {
                        match self.config.kind {
                            SchedulerKind::SelectFreeSquashDep => {
                                // Dependents were squashed when we collided;
                                // re-broadcast now with the re-wake penalty.
                                if collided {
                                    s.ready_at = Some(now + lat.max(1) + 1);
                                } else if s.ready_at.is_none() {
                                    s.ready_at = Some(now + lat.max(1));
                                }
                            }
                            SchedulerKind::SelectFreeScoreboard
                            | SchedulerKind::SpeculativeWakeup => {
                                // Keep the (possibly stale-early) speculative
                                // wakeup; grant-time verification absorbs the
                                // damage.
                                if s.ready_at.is_none() {
                                    s.ready_at = Some(now + lat.max(1));
                                }
                            }
                            _ => unreachable!("select_free implies a wakeup-speculating kind"),
                        }
                    } else {
                        s.ready_at = Some(now + lat.max(floor));
                    }
                    if self.trace && s.ready_at != prev_ready {
                        self.trace_buf.push(TraceEvent::Wakeup {
                            cycle: now,
                            tag: d,
                            ready_at: s.ready_at.expect("broadcast sets a ready time"),
                            speculative: false,
                        });
                    }
                }
            }

            let e = self.entries[idx].as_mut().expect("entry exists");
            e.state = EntryState::Issued;
            e.confirm_at =
                Some(now + u64::from(self.config.confirm_window) + (e.uops.len() as u64 - 1));
            if let Some(m) = self.metrics.as_deref_mut() {
                m.wakeup_select_delay.record(now - e.woken_at.take().unwrap_or(now));
            }
            self.stats.issued_entries += 1;
            self.stats.issued_uops += e.uops.len() as u64;
            out.push(Issued {
                entry: EntryId {
                    index: idx,
                    gen: e.gen,
                },
                uops: e.uops.clone(),
                issue_cycle: now,
            });
            if self.trace {
                let e = self.entries[idx].as_ref().expect("entry exists");
                self.trace_buf.push(TraceEvent::Select {
                    cycle: now,
                    entry: EntryId {
                        index: idx,
                        gen: e.gen,
                    },
                    uops: e.uops.iter().map(|u| u.id).collect(),
                    srcs: e.srcs.clone(),
                    dst: e.dst,
                    latency: e.latency(&self.config),
                    is_load: e.uops.iter().any(|u| u.is_load),
                });
            }
        }

        self.req_buf = requesters;
        self.slots_blocked = slots_next;
        self.fu_blocked = fu_next;

        if self.accounting.is_some() {
            let wasted = self.stats.spec_wakeup_cancels + self.stats.pileup_replays - waste_before;
            self.account_cycle(now, blocked_slots, wasted, out.len());
        }
    }

    /// Charge this cycle's `issue_width` slots to causes: grants are
    /// useful, MOP payload-sequencing blocks are fusion overhead, slots
    /// burned by select-free mis-speculation (stale-grant cancels, pileup
    /// replays) are scheduling-loop cost, and each remaining idle slot is
    /// blamed on the oldest still-waiting entries (mirroring select
    /// priority). Idle slots with nobody waiting are left for the driver
    /// via [`IssueQueue::unattributed_slots`].
    fn account_cycle(&mut self, now: u64, blocked: usize, wasted: u64, grants: usize) {
        let Some(mut acc) = self.accounting.take() else {
            return;
        };
        let width = self.config.issue_width as u64;
        let busy = blocked as u64 + wasted + grants as u64;
        debug_assert!(busy <= width, "charged more slots than the machine offers");
        acc.counts.add(SlotCause::Useful, grants as u64);
        acc.counts.add(SlotCause::MopFusion, blocked as u64);
        acc.counts.add(SlotCause::SchedLoop, wasted);
        let idle = (width - busy) as usize;
        acc.empty = 0;
        if idle > 0 {
            acc.cause_buf.clear();
            for e in self.entries.iter().flatten() {
                if e.state != EntryState::Waiting {
                    continue;
                }
                acc.cause_buf.push((e.age, self.stall_cause(e, now)));
            }
            acc.cause_buf.sort_unstable_by_key(|&(age, _)| age);
            let attributed = acc.cause_buf.len().min(idle);
            for &(_, cause) in acc.cause_buf.iter().take(attributed) {
                acc.counts.add(cause, 1);
            }
            acc.empty = (idle - attributed) as u64;
        }
        self.accounting = Some(acc);
    }

    /// Why a waiting entry did not issue this cycle, as one exclusive
    /// cause. Priority (DESIGN §10): fusion wait > pileup hold-off >
    /// miss shadow > ready-but-denied > loop penalty > true dependence.
    fn stall_cause(&self, e: &Entry, now: u64) -> SlotCause {
        if e.pending_tail {
            // A fused head waiting for its tail to arrive.
            return SlotCause::MopFusion;
        }
        if e.hold_until > now {
            // Scoreboard pileup hold-off: select-free loop speculation.
            return SlotCause::SchedLoop;
        }
        let mut all_visible = true;
        let mut loop_only = true;
        for &t in &e.srcs {
            if self.tags.ready(t, now) {
                continue;
            }
            all_visible = false;
            match self.tags.get(t) {
                Some(s) if s.missed => return SlotCause::LoadMiss,
                Some(s) if s.actual_at.is_none_or(|r| r > now) => loop_only = false,
                // Remaining: actually ready but invisible (loop bubble).
                // Absent tags always read as ready; unreachable here.
                Some(_) | None => {}
            }
        }
        if all_visible {
            // Every source visible: the entry requested selection and lost
            // (width or FU contention, or a select-free cancel).
            SlotCause::Bandwidth
        } else if loop_only {
            // Values all computed (`actual_at <= now`) yet not visible to
            // wakeup — purely the pipelined scheduling-loop bubble.
            SlotCause::SchedLoop
        } else {
            SlotCause::NotReady
        }
    }

    /// A woken requester denied selection this cycle: in squash-dep mode
    /// its speculative wakeup of dependents is squashed.
    fn note_collision(&mut self, idx: usize) {
        if !self.config.kind.broadcasts_at_wakeup() {
            return;
        }
        self.stats.collisions += 1;
        let (dst, first) = {
            let e = self.entries[idx].as_mut().expect("collision entry exists");
            let first = !e.collided;
            e.collided = true;
            (e.dst, first)
        };
        if self.config.kind == SchedulerKind::SelectFreeSquashDep && first {
            if let Some(d) = dst {
                if let Some(s) = self.tags.get_mut(d) {
                    s.ready_at = None; // squash dependents' wakeups
                }
            }
        }
    }

    /// Report a load's cache outcome. On a miss, dependents issued in the
    /// load shadow are selectively replayed (transitively); the tag
    /// re-broadcasts at `data_ready_at` plus the replay penalty. Returns
    /// the uops pulled back for replay so the caller can invalidate any
    /// in-flight execution bookkeeping for them.
    pub fn load_resolved(&mut self, tag: Tag, hit: bool, data_ready_at: u64) -> Vec<UopId> {
        let mut out = Vec::new();
        self.load_resolved_into(tag, hit, data_ready_at, &mut out);
        out
    }

    /// [`IssueQueue::load_resolved`] without allocating the result: `out`
    /// is cleared and filled with the replayed uop ids.
    pub fn load_resolved_into(
        &mut self,
        tag: Tag,
        hit: bool,
        data_ready_at: u64,
        out: &mut Vec<UopId>,
    ) {
        out.clear();
        let Some(s) = self.tags.get_mut(tag) else {
            return;
        };
        s.load_unresolved = false;
        if self.trace {
            self.trace_buf.push(TraceEvent::LoadResolve {
                cycle: self.now,
                tag,
                hit,
                data_ready: data_ready_at,
            });
        }
        if hit {
            return;
        }
        let ready = data_ready_at + u64::from(self.config.replay_penalty);
        s.ready_at = Some(ready);
        s.actual_at = Some(ready);
        s.missed = true;
        if self.trace {
            self.trace_buf.push(TraceEvent::Wakeup {
                cycle: self.now,
                tag,
                ready_at: ready,
                speculative: false,
            });
        }
        self.replay_consumers(tag, ready, out);
    }

    /// Recursively pull issued-but-unconfirmed consumers of `tag` back to
    /// the waiting state, revoking their own broadcasts. Appends the
    /// replayed uop ids to `replayed`. `reissue_at` is the missed tag's
    /// re-broadcast time (trace bookkeeping only).
    fn replay_consumers(&mut self, tag: Tag, reissue_at: u64, replayed: &mut Vec<UopId>) {
        let mut work = std::mem::take(&mut self.work_buf);
        work.clear();
        work.push(tag);
        while let Some(t) = work.pop() {
            for idx in 0..self.entries.len() {
                let replay = self.entries[idx]
                    .as_ref()
                    .is_some_and(|e| e.state == EntryState::Issued && e.srcs.contains(&t));
                if !replay {
                    continue;
                }
                let e = self.entries[idx].as_mut().expect("checked above");
                e.state = EntryState::Waiting;
                e.confirm_at = None;
                e.spec_broadcast = false;
                e.collided = false;
                e.woken_at = None;
                self.stats.load_replay_uops += e.uops.len() as u64;
                replayed.extend(e.uops.iter().map(|u| u.id));
                if let Some(d) = e.dst {
                    if let Some(s) = self.tags.get_mut(d) {
                        s.ready_at = None;
                        s.actual_at = None;
                        s.missed = true;
                    }
                    work.push(d);
                }
                if self.trace {
                    let e = self.entries[idx].as_ref().expect("checked above");
                    self.trace_buf.push(TraceEvent::Replay {
                        cycle: self.now,
                        entry: EntryId {
                            index: idx,
                            gen: e.gen,
                        },
                        uops: e.uops.iter().map(|u| u.id).collect(),
                        tag: t,
                        reissue_at,
                    });
                }
            }
        }
        self.work_buf = work;
    }

    /// Branch-misprediction squash: remove every entry whose head uop is
    /// at or after `first_squashed`. A MOP whose head survives but whose
    /// tail was fetched on the wrong path drops the tail and issues alone,
    /// with the tail's source operands released (Section 5.3.2). Pending
    /// bits on surviving entries are cleared — their tails can no longer
    /// arrive.
    pub fn squash_from(&mut self, first_squashed: UopId) {
        for idx in 0..self.entries.len() {
            let Some(e) = self.entries[idx].as_mut() else {
                continue;
            };
            if e.age >= first_squashed {
                // Whole entry is wrong-path.
                if let Some(d) = e.dst {
                    self.tags.remove(d);
                }
                self.entries[idx] = None;
                self.free.push(idx);
                continue;
            }
            if e.uops.len() > 1 && e.uops.last().expect("non-empty").id >= first_squashed {
                // Half-squashed MOP: drop wrong-path tail uops, restore the
                // head's own source set, and let it schedule alone.
                e.uops.retain(|u| u.id < first_squashed);
                let head_srcs = e.uops[0].srcs.clone();
                e.srcs.retain(|t| head_srcs.contains(t));
            }
            if e.pending_tail {
                e.pending_tail = false;
                self.stats.cancelled_pendings += 1;
            }
        }
    }

    /// The cycle a tag's wakeup became (or will become) visible, if known.
    /// `None` both for unknown tags and for tags whose broadcast is
    /// currently revoked. Used by the simulator's last-arriving-operand
    /// filter (Section 5.4.2).
    pub fn tag_ready_time(&self, t: Tag) -> Option<u64> {
        self.tags.get(t).and_then(|s| s.ready_at)
    }

    /// Drop tag bookkeeping whose wakeup is older than `horizon` cycles;
    /// safe once every consumer that could name those tags has been
    /// inserted. The simulator calls this periodically.
    pub fn prune_tags(&mut self, horizon: u64) {
        self.tags.prune(self.now, horizon);
    }

    #[cfg(test)]
    fn force_external_tag(&mut self, tag: Tag) {
        self.tags.insert(tag, TagState::default());
    }

    #[cfg(test)]
    fn tracks_tag(&self, tag: Tag) -> bool {
        self.tags.contains(tag)
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use crate::config::WakeupStyle;
    use mos_isa::InstClass;

    fn cfg(kind: SchedulerKind) -> SchedConfig {
        SchedConfig {
            kind,
            wakeup: WakeupStyle::WiredOr,
            queue_entries: Some(32),
            ..SchedConfig::default()
        }
    }

    fn alu(id: u64, dst: Option<u64>, srcs: &[u64]) -> SchedUop {
        let mut u = SchedUop::leaf(UopId(id), InstClass::IntAlu, dst.map(Tag));
        u.srcs = srcs.iter().copied().map(Tag).collect();
        u
    }

    fn load(id: u64, dst: u64, srcs: &[u64]) -> SchedUop {
        let mut u = SchedUop::leaf(UopId(id), InstClass::Load, Some(Tag(dst)));
        u.srcs = srcs.iter().copied().map(Tag).collect();
        u
    }

    /// Run a chain `a -> b` and return (issue cycle of a, issue cycle of b).
    fn chain_issue_cycles(kind: SchedulerKind) -> (u64, u64) {
        let mut q = IssueQueue::new(cfg(kind));
        q.insert(alu(0, Some(100), &[])).unwrap();
        q.insert(alu(1, Some(101), &[100])).unwrap();
        let mut cycles = (None, None);
        for now in 0..20 {
            for i in q.cycle(now) {
                match i.uops[0].id {
                    UopId(0) => cycles.0 = Some(i.issue_cycle),
                    UopId(1) => cycles.1 = Some(i.issue_cycle),
                    _ => unreachable!(),
                }
            }
        }
        (cycles.0.unwrap(), cycles.1.unwrap())
    }

    #[test]
    fn base_issues_dependents_back_to_back() {
        let (a, b) = chain_issue_cycles(SchedulerKind::Base);
        assert_eq!(b - a, 1);
    }

    #[test]
    fn two_cycle_adds_a_bubble() {
        let (a, b) = chain_issue_cycles(SchedulerKind::TwoCycle);
        assert_eq!(b - a, 2);
    }

    #[test]
    fn select_free_matches_base_without_collisions() {
        let (a, b) = chain_issue_cycles(SchedulerKind::SelectFreeSquashDep);
        assert_eq!(b - a, 1);
        let (a, b) = chain_issue_cycles(SchedulerKind::SelectFreeScoreboard);
        assert_eq!(b - a, 1);
    }

    /// The paper's Figure 5: MOP(1,3); instruction 2 depends on the head,
    /// instruction 4 on the tail. Both wake 2 cycles after the MOP issues
    /// — which is consecutive execution for the tail's consumer.
    #[test]
    fn macro_op_timing_matches_figure5() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::MacroOp));
        let e = q.insert_mop_head(alu(0, Some(100), &[])).unwrap();
        q.fuse_tail(e, alu(2, Some(100), &[100])).unwrap();
        q.insert(alu(1, Some(101), &[100])).unwrap();
        q.insert(alu(3, Some(102), &[100])).unwrap();
        let mut mop_cycle = None;
        let mut dep_cycles = Vec::new();
        for now in 0..20 {
            for i in q.cycle(now) {
                if i.uops.len() == 2 {
                    mop_cycle = Some(i.issue_cycle);
                } else {
                    dep_cycles.push(i.issue_cycle);
                }
            }
        }
        let m = mop_cycle.expect("MOP issued");
        assert_eq!(dep_cycles, vec![m + 2, m + 2], "dependents wake at S+2");
    }

    #[test]
    fn ungrouped_singleton_in_macro_op_mode_behaves_like_two_cycle() {
        let (a, b) = chain_issue_cycles(SchedulerKind::MacroOp);
        assert_eq!(b - a, 2);
    }

    #[test]
    fn pending_head_does_not_request() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::MacroOp));
        let e = q.insert_mop_head(alu(0, Some(100), &[])).unwrap();
        assert!(q.cycle(0).is_empty(), "pending entry must not issue");
        assert!(q.is_pending(e));
        q.fuse_tail(e, alu(1, Some(100), &[100])).unwrap();
        let issued = q.cycle(1);
        assert_eq!(issued.len(), 1);
        assert_eq!(issued[0].uops.len(), 2);
    }

    #[test]
    fn cancel_pending_releases_head_as_singleton() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::MacroOp));
        let e = q.insert_mop_head(alu(0, Some(100), &[])).unwrap();
        assert!(q.cycle(0).is_empty());
        q.cancel_pending(e);
        let issued = q.cycle(1);
        assert_eq!(issued.len(), 1);
        assert_eq!(issued[0].uops.len(), 1);
        assert_eq!(q.stats().cancelled_pendings, 1);
    }

    #[test]
    fn mop_blocks_issue_slot_next_cycle() {
        let mut cfgv = cfg(SchedulerKind::MacroOp);
        cfgv.issue_width = 1;
        let mut q = IssueQueue::new(cfgv);
        let e = q.insert_mop_head(alu(0, Some(100), &[])).unwrap();
        q.fuse_tail(e, alu(1, Some(100), &[100])).unwrap();
        q.insert(alu(2, Some(101), &[])).unwrap();
        assert_eq!(q.cycle(0).len(), 1, "MOP wins by age");
        assert!(q.cycle(1).is_empty(), "slot blocked while tail sequences");
        assert_eq!(q.cycle(2).len(), 1);
    }

    #[test]
    fn issue_width_limits_grants() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::Base));
        for i in 0..6 {
            q.insert(alu(i, Some(100 + i), &[])).unwrap();
        }
        assert_eq!(q.cycle(0).len(), 4, "width is 4");
        assert_eq!(q.cycle(1).len(), 2);
    }

    #[test]
    fn fu_pool_limits_grants() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::Base));
        for i in 0..3 {
            q.insert(load(i, 100 + i, &[])).unwrap();
        }
        assert_eq!(q.cycle(0).len(), 2, "2 memory ports");
        assert_eq!(q.cycle(1).len(), 1);
    }

    #[test]
    fn oldest_first_selection() {
        let mut c = cfg(SchedulerKind::Base);
        c.issue_width = 1;
        let mut q = IssueQueue::new(c);
        q.insert(alu(5, Some(105), &[])).unwrap();
        q.insert(alu(3, Some(103), &[])).unwrap();
        let i = q.cycle(0);
        assert_eq!(i[0].uops[0].id, UopId(3));
    }

    #[test]
    fn queue_full_rejects_and_frees_after_confirm() {
        let mut c = cfg(SchedulerKind::Base);
        c.queue_entries = Some(2);
        c.confirm_window = 3;
        let mut q = IssueQueue::new(c);
        q.insert(alu(0, Some(100), &[])).unwrap();
        q.insert(alu(1, Some(101), &[])).unwrap();
        assert_eq!(
            q.insert(alu(2, Some(102), &[])).unwrap_err(),
            InsertError::Full
        );
        q.cycle(0); // both issue
        assert_eq!(q.occupancy(), 2, "entries held until confirmed");
        q.cycle(1);
        q.cycle(2);
        q.cycle(3); // confirm_at = 0 + 3
        assert_eq!(q.occupancy(), 0);
        q.insert(alu(2, Some(102), &[])).unwrap();
    }

    #[test]
    fn load_miss_replays_dependents_selectively() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::Base));
        q.insert(load(0, 100, &[])).unwrap();
        q.insert(alu(1, Some(101), &[100])).unwrap(); // dependent
        q.insert(alu(2, Some(102), &[])).unwrap(); // independent
        let mut log: Vec<(u64, u64)> = Vec::new();
        for now in 0..40 {
            // Load issues at 0; dependent wakes at 0 + 3 (assumed hit).
            // Miss discovered at cycle 5, data back at cycle 20.
            if now == 5 {
                q.load_resolved(Tag(100), false, 20);
            }
            for i in q.cycle(now) {
                log.push((i.uops[0].id.0, i.issue_cycle));
            }
        }
        let issue_of =
            |id: u64| -> Vec<u64> { log.iter().filter(|(i, _)| *i == id).map(|(_, c)| *c).collect() };
        assert_eq!(issue_of(0), vec![0], "load itself is not replayed");
        assert_eq!(issue_of(2).len(), 1, "independent op untouched");
        let dep = issue_of(1);
        assert_eq!(dep.len(), 2, "dependent issued speculatively then replayed");
        assert_eq!(dep[1], 22, "re-issues at data_ready + 2-cycle penalty");
    }

    #[test]
    fn load_miss_replay_is_transitive() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::Base));
        q.insert(load(0, 100, &[])).unwrap();
        q.insert(alu(1, Some(101), &[100])).unwrap();
        q.insert(alu(2, Some(102), &[101])).unwrap(); // grandchild
        let mut reissues = 0;
        for now in 0..40 {
            if now == 6 {
                q.load_resolved(Tag(100), false, 20);
            }
            for i in q.cycle(now) {
                if i.uops[0].id == UopId(2) {
                    reissues += 1;
                }
            }
        }
        assert_eq!(reissues, 2, "grandchild replayed too");
        assert!(q.stats().load_replay_uops >= 2);
    }

    #[test]
    fn mop_replays_as_a_unit() {
        // Load feeds the MOP head; both uops must replay (Section 5.3.2).
        let mut q = IssueQueue::new(cfg(SchedulerKind::MacroOp));
        q.insert(load(0, 100, &[])).unwrap();
        let e = q.insert_mop_head(alu(1, Some(101), &[100])).unwrap();
        q.fuse_tail(e, alu(2, Some(101), &[101])).unwrap();
        let mut mop_issues = 0;
        for now in 0..40 {
            if now == 6 {
                q.load_resolved(Tag(100), false, 20);
            }
            for i in q.cycle(now) {
                if i.uops.len() == 2 {
                    mop_issues += 1;
                }
            }
        }
        assert_eq!(mop_issues, 2, "whole MOP issued, replayed, re-issued");
    }

    #[test]
    fn load_hit_confirms_without_replay() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::Base));
        q.insert(load(0, 100, &[])).unwrap();
        q.insert(alu(1, Some(101), &[100])).unwrap();
        let mut count = 0;
        for now in 0..20 {
            if now == 5 {
                q.load_resolved(Tag(100), true, 5);
            }
            count += q.cycle(now).len();
        }
        assert_eq!(count, 2);
        assert_eq!(q.stats().load_replay_uops, 0);
    }

    #[test]
    fn squash_removes_younger_entries() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::Base));
        q.force_external_tag(Tag(99));
        q.insert(alu(0, Some(100), &[99])).unwrap(); // not ready: survives
        q.insert(alu(5, Some(105), &[99])).unwrap();
        q.squash_from(UopId(3));
        assert_eq!(q.occupancy(), 1);
        assert!(q.tracks_tag(Tag(100)), "survivor tag kept");
        assert!(!q.tracks_tag(Tag(105)), "squashed tag removed");
    }

    #[test]
    fn half_squashed_mop_issues_head_alone() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::MacroOp));
        // Tail reads an unready external tag 99, blocking the whole MOP.
        q.force_external_tag(Tag(99));
        let e = q.insert_mop_head(alu(0, Some(100), &[])).unwrap();
        let mut tail = alu(5, Some(100), &[100]);
        tail.srcs.push(Tag(99));
        q.fuse_tail(e, tail).unwrap();
        assert!(q.cycle(0).is_empty(), "blocked by tail's operand");
        // Branch between 0 and 5 mispredicted: squash from id 3.
        q.squash_from(UopId(3));
        let issued = q.cycle(1);
        assert_eq!(issued.len(), 1);
        assert_eq!(issued[0].uops.len(), 1, "head issues alone");
        assert_eq!(issued[0].uops[0].id, UopId(0));
    }

    #[test]
    fn squash_clears_pending_bits() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::MacroOp));
        let e = q.insert_mop_head(alu(0, Some(100), &[])).unwrap();
        assert!(q.is_pending(e));
        q.squash_from(UopId(1)); // tail (younger) can never arrive
        assert!(!q.is_pending(e));
        assert_eq!(q.cycle(0).len(), 1);
    }

    #[test]
    fn squash_dep_collision_penalizes_dependent_rewake() {
        // Width 1 forces a collision between two ready producers; the
        // younger one's dependent pays the re-wake cycle.
        let mut c = cfg(SchedulerKind::SelectFreeSquashDep);
        c.issue_width = 1;
        let mut q = IssueQueue::new(c);
        q.insert(alu(0, Some(100), &[])).unwrap();
        q.insert(alu(1, Some(101), &[])).unwrap(); // collides at cycle 0
        q.insert(alu(2, Some(102), &[101])).unwrap(); // dependent of victim
        let mut sched: HashMap<u64, u64> = HashMap::new();
        for now in 0..20 {
            for i in q.cycle(now) {
                sched.insert(i.uops[0].id.0, i.issue_cycle);
            }
        }
        assert_eq!(sched[&0], 0);
        assert_eq!(sched[&1], 1, "victim granted next cycle");
        // Base timing would be 1 + 1 = 2; the squash/re-wake costs one.
        assert_eq!(sched[&2], 3);
        assert!(q.stats().collisions >= 1);
    }

    #[test]
    fn scoreboard_pileup_consumes_bandwidth_and_replays() {
        let mut c = cfg(SchedulerKind::SelectFreeScoreboard);
        c.issue_width = 2;
        let mut q = IssueQueue::new(c);
        // Two older producers fill both issue slots in cycle 0, making
        // id 2 a collision victim; its dependent (id 3) was mis-woken and
        // issues at cycle 1 alongside the victim — a pileup victim.
        q.insert(alu(0, Some(100), &[])).unwrap();
        q.insert(alu(1, Some(101), &[])).unwrap();
        q.insert(alu(2, Some(102), &[])).unwrap(); // collision victim at 0
        q.insert(alu(3, Some(103), &[102])).unwrap(); // mis-woken dependent
        let mut sched: HashMap<u64, Vec<u64>> = HashMap::new();
        for now in 0..20 {
            for i in q.cycle(now) {
                sched.entry(i.uops[0].id.0).or_default().push(i.issue_cycle);
            }
        }
        assert_eq!(sched[&0], vec![0]);
        assert_eq!(sched[&1], vec![0]);
        assert_eq!(sched[&2], vec![1], "victim granted next cycle");
        assert!(q.stats().pileup_replays >= 1, "dependent piled up");
        let dep = &sched[&3];
        assert_eq!(dep.len(), 1);
        // Base timing would be 1 + 1 = 2; pileup replay costs more.
        assert!(dep[0] > 2, "pileup victim delayed by replay: {dep:?}");
    }

    #[test]
    fn speculative_wakeup_matches_base_without_contention() {
        let (a, b) = chain_issue_cycles(SchedulerKind::SpeculativeWakeup);
        assert_eq!(b - a, 1, "grandparent wakeup keeps chains back-to-back");
    }

    #[test]
    fn speculative_wakeup_wastes_slots_on_failed_verification() {
        let mut c = cfg(SchedulerKind::SpeculativeWakeup);
        c.issue_width = 2;
        let mut q = IssueQueue::new(c);
        q.insert(alu(0, Some(100), &[])).unwrap();
        q.insert(alu(1, Some(101), &[])).unwrap();
        q.insert(alu(2, Some(102), &[])).unwrap(); // collision victim at 0
        q.insert(alu(3, Some(103), &[102])).unwrap(); // woken speculatively
        let mut sched: HashMap<u64, u64> = HashMap::new();
        for now in 0..20 {
            for i in q.cycle(now) {
                sched.insert(i.uops[0].id.0, i.issue_cycle);
            }
        }
        assert_eq!(sched[&2], 1, "victim granted next cycle");
        assert!(
            q.stats().spec_wakeup_cancels >= 1,
            "dependent's early grant must be cancelled at verification"
        );
        assert!(sched[&3] >= 2, "dependent retries after the cancel");
        assert_eq!(q.stats().pileup_replays, 0, "no replays in this scheme");
    }

    #[test]
    fn mean_occupancy_tracks_entries() {
        let mut c = cfg(SchedulerKind::Base);
        c.confirm_window = 100;
        let mut q = IssueQueue::new(c);
        q.insert(alu(0, Some(100), &[])).unwrap();
        for now in 0..10 {
            q.cycle(now);
        }
        assert!((q.stats().mean_occupancy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prune_tags_keeps_recent_and_unresolved() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::Base));
        q.insert(load(0, 100, &[])).unwrap();
        q.insert(alu(1, Some(101), &[])).unwrap();
        for now in 0..5 {
            q.cycle(now);
        }
        q.prune_tags(2);
        assert!(
            q.tracks_tag(Tag(100)),
            "unresolved load tag must survive pruning"
        );
    }

    #[test]
    fn fuse_into_issued_entry_fails() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::MacroOp));
        let e = q.insert(alu(0, Some(100), &[])).unwrap();
        q.cycle(0);
        assert_eq!(
            q.fuse_tail(e, alu(1, Some(100), &[100])).unwrap_err(),
            InsertError::BadEntry
        );
    }

    #[test]
    fn fuse_beyond_mop_size_fails() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::MacroOp));
        let e = q.insert_mop_head(alu(0, Some(100), &[])).unwrap();
        q.fuse_tail(e, alu(1, Some(100), &[100])).unwrap();
        assert_eq!(
            q.fuse_tail(e, alu(2, Some(100), &[100])).unwrap_err(),
            InsertError::MopTooLarge
        );
    }

    #[test]
    fn tag_table_prune_advances_floor_over_dead_prefix() {
        let mut t = TagTable::default();
        for n in 0..8u64 {
            t.insert(
                Tag(n),
                TagState {
                    ready_at: Some(n),
                    actual_at: Some(n),
                    load_unresolved: false,
                    missed: false,
                },
            );
        }
        // keep = ready_at + horizon >= now, so only tag 7 survives.
        t.prune(100, 93);
        assert_eq!(t.base, 7, "floor advances over the cleared prefix");
        assert_eq!(t.slots.len(), 1);
        assert!(t.contains(Tag(7)));
    }

    #[test]
    fn tag_table_unresolved_slot_pins_the_floor() {
        let mut t = TagTable::default();
        for n in 0..8u64 {
            t.insert(
                Tag(n),
                TagState {
                    ready_at: Some(n),
                    actual_at: Some(n),
                    load_unresolved: n == 3,
                    missed: false,
                },
            );
        }
        t.prune(100, 0);
        assert_eq!(t.base, 3, "an unresolved load stops the prefix sweep");
        assert!(t.contains(Tag(3)));
        assert!(!t.contains(Tag(5)), "stale slots after the pin still clear");
    }

    #[test]
    fn tag_table_below_floor_reads_as_long_done() {
        let mut t = TagTable::default();
        t.insert(
            Tag(0),
            TagState {
                ready_at: Some(0),
                actual_at: Some(0),
                load_unresolved: false,
                missed: false,
            },
        );
        t.prune(100, 0);
        assert!(t.base >= 1);
        // Tags below the pruned floor are architecturally long done:
        // reads succeed and mutations are silent no-ops, never panics.
        assert!(t.ready(Tag(0), 0));
        assert!(t.actually_ready(Tag(0), 0));
        assert!(t.get(Tag(0)).is_none());
        t.insert(Tag(0), TagState::default());
        assert!(t.get(Tag(0)).is_none(), "insert below the floor is dropped");
        assert!(t.ensure(Tag(0)).is_none());
        assert!(t.get_mut(Tag(0)).is_none());
        t.remove(Tag(0));
        assert!(t.ready(Tag(0), 0));
    }

    #[test]
    fn consumer_of_pruned_tag_issues_immediately() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::Base));
        q.insert(alu(0, Some(100), &[])).unwrap();
        for now in 0..10 {
            q.cycle(now);
        }
        q.prune_tags(2);
        assert!(!q.tracks_tag(Tag(100)), "old resolved tag must be pruned");
        assert_eq!(q.tag_ready_time(Tag(100)), None);
        // A late consumer naming the pruned tag sees it as ready.
        q.insert(alu(1, None, &[100])).unwrap();
        let issued = q.cycle(10);
        assert_eq!(issued.len(), 1);
        assert_eq!(issued[0].uops[0].id, UopId(1));
    }

    #[test]
    fn queue_metrics_reconcile_with_stats() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::Base));
        q.set_metrics(true);
        q.insert(alu(0, Some(100), &[])).unwrap();
        q.insert(alu(1, Some(101), &[100])).unwrap();
        q.insert(alu(2, None, &[101])).unwrap();
        for now in 0..20 {
            q.cycle(now);
        }
        let m = q.metrics().expect("metrics enabled");
        let s = q.stats();
        assert_eq!(m.occupancy.count(), s.cycles, "one occupancy sample per cycle");
        assert_eq!(m.occupancy.sum(), s.occupancy_integral);
        assert_eq!(
            m.wakeup_select_delay.count(),
            s.issued_entries,
            "one delay sample per selected entry"
        );
        // An uncontended queue issues every requester the cycle it wakes.
        assert_eq!(m.wakeup_select_delay.sum(), 0);
        assert_eq!(m.wakeup_select_delay.max(), 0);
    }

    #[test]
    fn wakeup_select_delay_counts_starved_cycles() {
        // Single-issue queue: two leaves wake together, one waits a cycle.
        let mut q = IssueQueue::new(SchedConfig {
            kind: SchedulerKind::Base,
            wakeup: WakeupStyle::WiredOr,
            queue_entries: Some(32),
            issue_width: 1,
            ..SchedConfig::default()
        });
        q.set_metrics(true);
        q.insert(alu(0, Some(100), &[])).unwrap();
        q.insert(alu(1, Some(101), &[])).unwrap();
        for now in 0..10 {
            q.cycle(now);
        }
        let m = q.metrics().expect("metrics enabled");
        assert_eq!(m.wakeup_select_delay.count(), 2);
        assert_eq!(m.wakeup_select_delay.sum(), 1, "the loser waits one cycle");
        assert_eq!(m.wakeup_select_delay.max(), 1);
    }

    #[test]
    fn metrics_off_collects_nothing() {
        let mut q = IssueQueue::new(cfg(SchedulerKind::Base));
        q.insert(alu(0, Some(100), &[])).unwrap();
        for now in 0..5 {
            q.cycle(now);
        }
        assert!(q.metrics().is_none());
    }

    #[test]
    fn cycle_into_scratch_reuse_with_shrinking_request_sets() {
        use std::collections::HashSet;
        let mut q = IssueQueue::new(cfg(SchedulerKind::Base));
        for id in 0..6 {
            q.insert(alu(id, Some(100 + id), &[])).unwrap();
        }
        // Reuse one scratch buffer across every call; each cycle issues
        // fewer uops than the last, so stale entries from a previous,
        // larger result would show up as duplicate ids.
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut sizes = Vec::new();
        for now in 0..8 {
            q.cycle_into(now, &mut out);
            sizes.push(out.len());
            for iss in &out {
                assert_eq!(iss.issue_cycle, now, "no stale issue from a prior call");
                for u in &iss.uops {
                    assert!(seen.insert(u.id), "uop {:?} reported twice", u.id);
                }
            }
        }
        assert_eq!(seen.len(), 6, "every inserted uop issues exactly once");
        assert!(
            sizes.windows(2).all(|w| w[1] <= w[0]),
            "request set must shrink monotonically: {sizes:?}"
        );
        q.cycle_into(8, &mut out);
        assert!(out.is_empty(), "an idle cycle must clear the scratch buffer");
    }
}

use mos_isa::{FuKind, InstClass};

/// Unique identifier of one in-flight dynamic micro-operation, assigned in
/// program order by the front end. Doubles as the age used for
/// oldest-first selection and squash comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UopId(pub u64);

/// A dependence tag in the scheduler's **MOP ID name space** (Section
/// 5.2.2): the identifier broadcast on the wakeup bus. Each singleton gets
/// its own tag; both instructions of a macro-op share one, so consumers of
/// either become children of the MOP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(pub u64);

/// How an instruction ended up grouped, for the Figure 13 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupRole {
    /// Not a macro-op candidate (multi-cycle operation such as a load).
    NotCandidate,
    /// Candidate, but no pair was found.
    NotGrouped,
    /// Grouped into a dependent MOP and generates a register value.
    MopValueGen,
    /// Grouped into a dependent MOP without generating a value (branch or
    /// store address generation).
    MopNonValueGen,
    /// Grouped into an independent MOP (Section 5.4.1).
    MopIndependent,
}

/// The scheduler-facing description of one micro-operation, produced by
/// MOP formation at rename time.
#[derive(Debug, Clone)]
pub struct SchedUop {
    /// Program-order identity / age.
    pub id: UopId,
    /// Latency/resource class.
    pub class: InstClass,
    /// Functional-unit pool this uop issues to.
    pub fu: FuKind,
    /// Destination tag (MOP ID) if the uop produces a value consumers wait
    /// on. `None` for branches and store address generations that were not
    /// merged into a value-generating MOP.
    pub dst: Option<Tag>,
    /// Source tags still potentially in flight at rename. Architecturally
    /// ready operands are simply omitted.
    pub srcs: Vec<Tag>,
    /// Latency assumed by the scheduler (for loads: address generation plus
    /// the common-case DL1 hit, per Section 2.1).
    pub sched_latency: u32,
    /// `true` for loads, which broadcast speculatively and may trigger
    /// selective replay.
    pub is_load: bool,
    /// Static index (for pointer-cache feedback and diagnostics).
    pub sidx: u32,
    /// Figure-13 classification decided at formation.
    pub role: GroupRole,
    /// Cycle the instruction was fetched (threaded through rename so the
    /// `Rename` trace event can seed per-uop pipeline timelines).
    pub fetched_at: u64,
    /// Fetched while walking a mispredicted path.
    pub wrong_path: bool,
}

impl SchedUop {
    /// Convenience constructor for a uop with no in-flight sources.
    pub fn leaf(id: UopId, class: InstClass, dst: Option<Tag>) -> SchedUop {
        SchedUop {
            id,
            class,
            fu: class.fu(),
            dst,
            srcs: Vec::new(),
            sched_latency: class.exec_latency(),
            is_load: class == InstClass::Load,
            sidx: 0,
            role: GroupRole::NotGrouped,
            fetched_at: 0,
            wrong_path: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_by_age() {
        assert!(UopId(3) < UopId(10));
    }

    #[test]
    fn leaf_defaults() {
        let u = SchedUop::leaf(UopId(1), InstClass::Load, Some(Tag(5)));
        assert!(u.is_load);
        assert_eq!(u.fu, FuKind::MemPort);
        assert!(u.srcs.is_empty());
    }
}

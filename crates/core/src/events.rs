//! Typed per-cycle trace events and the sink abstraction.
//!
//! The scheduling components ([`crate::queue::IssueQueue`],
//! [`crate::pointer::MopPointerStore`]) and the timing simulator in
//! `mos-sim` can emit a structured record for every microarchitectural
//! event of interest — fetch, rename, MOP detection, pointer lifetime,
//! wakeup, select, issue, replay, commit and squash. Consumers implement
//! [`EventSink`]; the invariant oracle in `mos-sim` is one such consumer,
//! the ring-buffered JSONL writer behind `mossim trace` is another.
//!
//! Tracing is **off by default and zero-cost when disabled**: every
//! emission site is guarded by a single predictable branch, and no event
//! value is even constructed unless a sink is attached.

use std::collections::VecDeque;

use crate::queue::EntryId;
use crate::uop::{Tag, UopId};

/// One structured trace record. Every variant carries the cycle it
/// happened on; events are delivered to sinks in nondecreasing cycle
/// order.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An instruction was fetched (correct or wrong path).
    Fetch {
        /// Cycle of the event.
        cycle: u64,
        /// Static index fetched.
        sidx: u32,
        /// Fetched while walking a mispredicted path.
        wrong_path: bool,
        /// A MOP pointer was delivered alongside the instruction.
        pointer: bool,
    },
    /// A uop was renamed and landed in an issue-queue entry (either a
    /// fresh entry or fused into an existing MOP head's entry).
    Rename {
        /// Cycle of the event.
        cycle: u64,
        /// Program-order uop identity.
        id: UopId,
        /// Static index.
        sidx: u32,
        /// Queue entry holding the uop.
        entry: EntryId,
        /// Destination tag (MOP ID) if value-producing.
        dst: Option<Tag>,
        /// In-flight source tags tracked by the entry for this uop.
        srcs: Vec<Tag>,
        /// `true` when the uop was fused as a MOP tail into `entry`.
        fused: bool,
        /// Entry inserted with the pending-tail bit set.
        pending: bool,
        /// The uop is a load.
        is_load: bool,
        /// Cycle the instruction was fetched (timeline seeding).
        fetched_at: u64,
        /// The uop was fetched on a mispredicted path.
        wrong_path: bool,
    },
    /// Detection produced a MOP pair; its pointer becomes visible at
    /// `visible_at` (detection delay).
    MopDetect {
        /// Cycle of the event.
        cycle: u64,
        /// Head static index.
        head_sidx: u32,
        /// Tail static index.
        tail_sidx: u32,
        /// Fetch-order distance head→tail (1..=7).
        offset: u8,
        /// Pointer control bit (pair spans one taken direct transfer).
        control: bool,
        /// Independent (identical-source) MOP rather than dependent.
        independent: bool,
        /// Cycle the pointer may first be fetched.
        visible_at: u64,
    },
    /// A scheduled pointer survived its detection delay and is now
    /// fetchable.
    PointerInstall {
        /// Cycle of the event.
        cycle: u64,
        /// Head static index the pointer is stored under.
        head_sidx: u32,
        /// I-cache line address the pointer rides on.
        line: u64,
    },
    /// Fetch delivered a stored MOP pointer with its head instruction.
    PointerHit {
        /// Cycle of the event.
        cycle: u64,
        /// Head static index.
        head_sidx: u32,
        /// Tail static index the pointer names.
        tail_sidx: u32,
    },
    /// A pointer was dropped — its I-cache line was evicted, or the
    /// last-arriving-operand filter deleted it.
    PointerEvict {
        /// Cycle of the event.
        cycle: u64,
        /// Head static index.
        head_sidx: u32,
        /// Line address (0 when filtered rather than evicted).
        line: u64,
        /// Dropped by the last-arriving-operand filter, not an eviction.
        filtered: bool,
    },
    /// A destination tag's wakeup broadcast became visible: dependents may
    /// request selection from `ready_at` on.
    Wakeup {
        /// Cycle of the event.
        cycle: u64,
        /// Tag broadcast.
        tag: Tag,
        /// First cycle dependents can be selected.
        ready_at: u64,
        /// Select-free speculative broadcast (at wake, before grant).
        speculative: bool,
    },
    /// The select logic granted an entry (all of its uops leave together).
    Select {
        /// Cycle of the event.
        cycle: u64,
        /// The granted entry.
        entry: EntryId,
        /// Uops leaving the entry, head first.
        uops: Vec<UopId>,
        /// The entry's tracked (merged, still-in-flight) source tags.
        srcs: Vec<Tag>,
        /// Destination tag broadcast by the entry, if any.
        dst: Option<Tag>,
        /// Scheduling latency used for the broadcast (MOP: one per uop).
        latency: u32,
        /// The entry contains a load.
        is_load: bool,
    },
    /// One uop was dispatched toward execution after its entry's grant.
    Issue {
        /// Cycle of the event (the grant cycle).
        cycle: u64,
        /// Uop identity.
        id: UopId,
        /// Static index.
        sidx: u32,
        /// Cycle the uop reaches the execute stage.
        exec_at: u64,
        /// Part of a fused (multi-uop) entry.
        mop: bool,
    },
    /// A load's cache outcome became known to the scheduler.
    LoadResolve {
        /// Cycle of the event.
        cycle: u64,
        /// The load's broadcast tag.
        tag: Tag,
        /// `true` on a DL1 hit (no replay needed).
        hit: bool,
        /// Cycle the data is available to dependents.
        data_ready: u64,
    },
    /// An issued entry was pulled back to waiting by a load-miss replay.
    Replay {
        /// Cycle of the event.
        cycle: u64,
        /// The replayed entry.
        entry: EntryId,
        /// Uops pulled back (whole MOPs replay together).
        uops: Vec<UopId>,
        /// The missed tag that triggered the (possibly transitive) replay.
        tag: Tag,
        /// Earliest cycle the miss tag re-broadcasts (data ready plus the
        /// replay penalty); replayed consumers re-issue at or after it.
        reissue_at: u64,
    },
    /// An instruction retired in program order.
    Commit {
        /// Cycle of the event.
        cycle: u64,
        /// Uop identity.
        id: UopId,
        /// Static index.
        sidx: u32,
        /// Cycle the result completed and the uop became committable.
        complete_at: u64,
    },
    /// A branch misprediction squashed every uop at or after `from`.
    Squash {
        /// Cycle of the event.
        cycle: u64,
        /// First squashed uop id.
        from: UopId,
        /// Static index of the mispredicted branch.
        branch_sidx: u32,
    },
}

impl TraceEvent {
    /// The cycle the event happened on.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Fetch { cycle, .. }
            | TraceEvent::Rename { cycle, .. }
            | TraceEvent::MopDetect { cycle, .. }
            | TraceEvent::PointerInstall { cycle, .. }
            | TraceEvent::PointerHit { cycle, .. }
            | TraceEvent::PointerEvict { cycle, .. }
            | TraceEvent::Wakeup { cycle, .. }
            | TraceEvent::Select { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::LoadResolve { cycle, .. }
            | TraceEvent::Replay { cycle, .. }
            | TraceEvent::Commit { cycle, .. }
            | TraceEvent::Squash { cycle, .. } => cycle,
        }
    }

    /// Overwrite the cycle stamp (used when a component buffers events and
    /// the driver stamps them at drain time).
    pub fn set_cycle(&mut self, c: u64) {
        match self {
            TraceEvent::Fetch { cycle, .. }
            | TraceEvent::Rename { cycle, .. }
            | TraceEvent::MopDetect { cycle, .. }
            | TraceEvent::PointerInstall { cycle, .. }
            | TraceEvent::PointerHit { cycle, .. }
            | TraceEvent::PointerEvict { cycle, .. }
            | TraceEvent::Wakeup { cycle, .. }
            | TraceEvent::Select { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::LoadResolve { cycle, .. }
            | TraceEvent::Replay { cycle, .. }
            | TraceEvent::Commit { cycle, .. }
            | TraceEvent::Squash { cycle, .. } => *cycle = c,
        }
    }

    /// Short lowercase kind name (the JSONL `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Fetch { .. } => "fetch",
            TraceEvent::Rename { .. } => "rename",
            TraceEvent::MopDetect { .. } => "mop_detect",
            TraceEvent::PointerInstall { .. } => "pointer_install",
            TraceEvent::PointerHit { .. } => "pointer_hit",
            TraceEvent::PointerEvict { .. } => "pointer_evict",
            TraceEvent::Wakeup { .. } => "wakeup",
            TraceEvent::Select { .. } => "select",
            TraceEvent::Issue { .. } => "issue",
            TraceEvent::LoadResolve { .. } => "load_resolve",
            TraceEvent::Replay { .. } => "replay",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::Squash { .. } => "squash",
        }
    }

    /// One-line JSON object for JSONL trace files. Hand-rolled (every
    /// field is a number, bool or array of numbers; no escaping needed).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn tags(v: &[Tag]) -> String {
            let inner: Vec<String> = v.iter().map(|t| t.0.to_string()).collect();
            format!("[{}]", inner.join(","))
        }
        fn ids(v: &[UopId]) -> String {
            let inner: Vec<String> = v.iter().map(|t| t.0.to_string()).collect();
            format!("[{}]", inner.join(","))
        }
        fn opt(t: Option<Tag>) -> String {
            t.map_or("null".into(), |t| t.0.to_string())
        }
        let mut s = format!("{{\"ev\":\"{}\",\"cycle\":{}", self.kind(), self.cycle());
        match self {
            TraceEvent::Fetch {
                sidx,
                wrong_path,
                pointer,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"sidx\":{sidx},\"wrong_path\":{wrong_path},\"pointer\":{pointer}"
                );
            }
            TraceEvent::Rename {
                id,
                sidx,
                entry,
                dst,
                srcs,
                fused,
                pending,
                is_load,
                fetched_at,
                wrong_path,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"id\":{},\"sidx\":{sidx},\"entry\":[{},{}],\"dst\":{},\"srcs\":{},\"fused\":{fused},\"pending\":{pending},\"is_load\":{is_load},\"fetched_at\":{fetched_at},\"wrong_path\":{wrong_path}",
                    id.0,
                    entry.index(),
                    entry.generation(),
                    opt(*dst),
                    tags(srcs)
                );
            }
            TraceEvent::MopDetect {
                head_sidx,
                tail_sidx,
                offset,
                control,
                independent,
                visible_at,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"head\":{head_sidx},\"tail\":{tail_sidx},\"offset\":{offset},\"control\":{control},\"independent\":{independent},\"visible_at\":{visible_at}"
                );
            }
            TraceEvent::PointerInstall {
                head_sidx, line, ..
            } => {
                let _ = write!(s, ",\"head\":{head_sidx},\"line\":{line}");
            }
            TraceEvent::PointerHit {
                head_sidx,
                tail_sidx,
                ..
            } => {
                let _ = write!(s, ",\"head\":{head_sidx},\"tail\":{tail_sidx}");
            }
            TraceEvent::PointerEvict {
                head_sidx,
                line,
                filtered,
                ..
            } => {
                let _ = write!(s, ",\"head\":{head_sidx},\"line\":{line},\"filtered\":{filtered}");
            }
            TraceEvent::Wakeup {
                tag,
                ready_at,
                speculative,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"tag\":{},\"ready_at\":{ready_at},\"speculative\":{speculative}",
                    tag.0
                );
            }
            TraceEvent::Select {
                entry,
                uops,
                srcs,
                dst,
                latency,
                is_load,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"entry\":[{},{}],\"uops\":{},\"srcs\":{},\"dst\":{},\"latency\":{latency},\"is_load\":{is_load}",
                    entry.index(),
                    entry.generation(),
                    ids(uops),
                    tags(srcs),
                    opt(*dst)
                );
            }
            TraceEvent::Issue {
                id,
                sidx,
                exec_at,
                mop,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"id\":{},\"sidx\":{sidx},\"exec_at\":{exec_at},\"mop\":{mop}",
                    id.0
                );
            }
            TraceEvent::LoadResolve {
                tag,
                hit,
                data_ready,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"tag\":{},\"hit\":{hit},\"data_ready\":{data_ready}",
                    tag.0
                );
            }
            TraceEvent::Replay {
                entry,
                uops,
                tag,
                reissue_at,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"entry\":[{},{}],\"uops\":{},\"tag\":{},\"reissue_at\":{reissue_at}",
                    entry.index(),
                    entry.generation(),
                    ids(uops),
                    tag.0
                );
            }
            TraceEvent::Commit {
                id,
                sidx,
                complete_at,
                ..
            } => {
                let _ = write!(s, ",\"id\":{},\"sidx\":{sidx},\"complete_at\":{complete_at}", id.0);
            }
            TraceEvent::Squash {
                from, branch_sidx, ..
            } => {
                let _ = write!(s, ",\"from\":{},\"branch_sidx\":{branch_sidx}", from.0);
            }
        }
        s.push('}');
        s
    }
}

/// A consumer of the event stream. Sinks must tolerate events arriving in
/// nondecreasing cycle order with arbitrary interleaving within a cycle.
pub trait EventSink {
    /// Observe one event.
    fn emit(&mut self, ev: &TraceEvent);

    /// Events this sink observed but could not keep (e.g. a bounded ring
    /// wrapping). Unbounded sinks report 0.
    fn dropped(&self) -> u64 {
        0
    }
}

/// Per-kind event counters, folded into the simulator's statistics when
/// tracing is enabled (all zero otherwise).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// `fetch` events.
    pub fetch: u64,
    /// `rename` events.
    pub rename: u64,
    /// `mop_detect` events.
    pub mop_detect: u64,
    /// `pointer_install` events.
    pub pointer_install: u64,
    /// `pointer_hit` events.
    pub pointer_hit: u64,
    /// `pointer_evict` events.
    pub pointer_evict: u64,
    /// `wakeup` events.
    pub wakeup: u64,
    /// `select` events.
    pub select: u64,
    /// `issue` events.
    pub issue: u64,
    /// `load_resolve` events.
    pub load_resolve: u64,
    /// `replay` events.
    pub replay: u64,
    /// `commit` events.
    pub commit: u64,
    /// `squash` events.
    pub squash: u64,
    /// Events the attached sink observed but discarded (ring wrap). Not a
    /// kind of its own: every dropped event is also counted above, so
    /// [`EventCounts::total`] excludes it.
    pub dropped: u64,
}

impl EventCounts {
    /// Count one event.
    pub fn record(&mut self, ev: &TraceEvent) {
        let slot = match ev {
            TraceEvent::Fetch { .. } => &mut self.fetch,
            TraceEvent::Rename { .. } => &mut self.rename,
            TraceEvent::MopDetect { .. } => &mut self.mop_detect,
            TraceEvent::PointerInstall { .. } => &mut self.pointer_install,
            TraceEvent::PointerHit { .. } => &mut self.pointer_hit,
            TraceEvent::PointerEvict { .. } => &mut self.pointer_evict,
            TraceEvent::Wakeup { .. } => &mut self.wakeup,
            TraceEvent::Select { .. } => &mut self.select,
            TraceEvent::Issue { .. } => &mut self.issue,
            TraceEvent::LoadResolve { .. } => &mut self.load_resolve,
            TraceEvent::Replay { .. } => &mut self.replay,
            TraceEvent::Commit { .. } => &mut self.commit,
            TraceEvent::Squash { .. } => &mut self.squash,
        };
        *slot += 1;
    }

    /// Total events counted.
    pub fn total(&self) -> u64 {
        self.fetch
            + self.rename
            + self.mop_detect
            + self.pointer_install
            + self.pointer_hit
            + self.pointer_evict
            + self.wakeup
            + self.select
            + self.issue
            + self.load_resolve
            + self.replay
            + self.commit
            + self.squash
    }
}

/// A bounded ring buffer keeping the most recent events — the backing
/// store of `mossim trace`'s JSONL writer and of failure excerpts in
/// tests.
#[derive(Debug, Clone)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    seen: u64,
    dropped: u64,
}

impl RingSink {
    /// Ring keeping at most `cap` events (`cap == 0` keeps one).
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            cap: cap.max(1),
            buf: VecDeque::new(),
            seen: 0,
            dropped: 0,
        }
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events observed (including those that fell off the ring).
    pub fn total_seen(&self) -> u64 {
        self.seen
    }

    /// Events that fell off the ring (observed but no longer buffered).
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// Render the buffered events as JSONL, one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for ev in &self.buf {
            s.push_str(&ev.to_json());
            s.push('\n');
        }
        s
    }

    /// Human-readable excerpt of the last `n` buffered events, for test
    /// failure messages.
    pub fn excerpt(&self, n: usize) -> String {
        let skip = self.buf.len().saturating_sub(n);
        let mut s = format!(
            "last {} of {} events:\n",
            self.buf.len() - skip,
            self.seen
        );
        for ev in self.buf.iter().skip(skip) {
            s.push_str("  ");
            s.push_str(&ev.to_json());
            s.push('\n');
        }
        s
    }
}

impl EventSink for RingSink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.seen += 1;
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev.clone());
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(cycle: u64, id: u64) -> TraceEvent {
        TraceEvent::Commit {
            cycle,
            id: UopId(id),
            sidx: 7,
            complete_at: cycle,
        }
    }

    #[test]
    fn ring_keeps_last_events() {
        let mut r = RingSink::new(3);
        for i in 0..5 {
            r.emit(&commit(i, i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_seen(), 5);
        assert_eq!(r.dropped_count(), 2);
        assert_eq!(EventSink::dropped(&r), 2);
        let cycles: Vec<u64> = r.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn counts_by_kind() {
        let mut c = EventCounts::default();
        c.record(&commit(1, 1));
        c.record(&commit(2, 2));
        c.record(&TraceEvent::Fetch {
            cycle: 1,
            sidx: 0,
            wrong_path: false,
            pointer: false,
        });
        assert_eq!(c.commit, 2);
        assert_eq!(c.fetch, 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn json_lines_are_well_formed() {
        let ev = TraceEvent::Wakeup {
            cycle: 9,
            tag: Tag(42),
            ready_at: 11,
            speculative: true,
        };
        assert_eq!(
            ev.to_json(),
            "{\"ev\":\"wakeup\",\"cycle\":9,\"tag\":42,\"ready_at\":11,\"speculative\":true}"
        );
        let mut ev = commit(3, 12);
        ev.set_cycle(8);
        assert_eq!(ev.cycle(), 8);
        assert_eq!(ev.kind(), "commit");
    }
}

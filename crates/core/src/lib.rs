//! # mos-core
//!
//! The paper's primary contribution — **macro-op (MOP) scheduling** — plus
//! every scheduling-logic baseline it is evaluated against:
//!
//! * [`detect`] — the MOP detection logic of Section 5.1: a triangular
//!   dependence matrix over an 8-instruction scope, the conservative
//!   cycle-detection heuristic (with a precise alternative for ablation),
//!   the 2-source constraint of CAM-style wakeup, priority-decoder conflict
//!   resolution, and independent-MOP pairing;
//! * [`mod@pointer`] — 4-bit MOP pointers (control bit + 3-bit offset) stored
//!   alongside instruction-cache lines, with eviction-coupled invalidation,
//!   a configurable detection delay, and the last-arriving-operand filter's
//!   pointer deletion + pair blacklist (Section 5.4.2);
//! * [`form`] — MOP formation at rename (Section 5.2): control-flow
//!   validation of pointers, the MOP-ID translation table (a second rename
//!   map in which head and tail share an ID), and the same/consecutive-
//!   insert-group pairing policy with pending bits (Section 5.2.3);
//! * [`queue`] — the cycle-level wakeup/select engine implementing every
//!   scheduler of Section 6.2: `Base` (ideally pipelined atomic),
//!   `TwoCycle`, `MacroOp` (2-cycle pipelined scheduling of 2-cycle MOPs),
//!   and the two select-free baselines of Brown et al. (`squash-dep` and
//!   `scoreboard`), plus speculative load scheduling with selective replay
//!   and branch-squash handling of half-squashed MOPs (Section 5.3.2).
//!
//! The timing simulator in `mos-sim` drives these components; they are
//! fully usable (and unit-tested) standalone.

#![warn(missing_docs)]

pub mod config;
pub mod detect;
pub mod events;
pub mod form;
pub mod pointer;
pub mod queue;
pub mod slots;
mod uop;

pub use config::{CycleDetection, MopConfig, SchedConfig, SchedulerKind, WakeupStyle};
pub use slots::{SlotCause, SlotCounts, NUM_SLOT_CAUSES};
pub use uop::{GroupRole, SchedUop, Tag, UopId};

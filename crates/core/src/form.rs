//! MOP formation (Section 5.2): locating MOP pairs from fetched pointers,
//! translating register dependences into the MOP ID name space, and
//! steering instructions into shared issue-queue entries.
//!
//! The [`Former`] processes one rename group per cycle. For each renamed
//! instruction it
//!
//! 1. checks whether the instruction is the tail some earlier head's
//!    pointer is waiting for — same static index and matching control
//!    flow (the pointer's control bit vs. the taken transfers actually
//!    fetched in between, Section 5.2.1) — and if so emits a fuse;
//! 2. otherwise, if the instruction carries a valid MOP pointer, emits a
//!    pending head and starts waiting for the tail — but only within the
//!    same or the immediately following insert group (Section 5.2.3);
//!    stale pendings are cancelled so the head issues as a singleton;
//! 3. translates logical registers through the **MOP translation table**,
//!    a second rename map in which a fused head and tail share one MOP ID
//!    (Figure 10) while ordinary instructions get fresh IDs.
//!
//! The table supports checkpoints so the pipeline can roll wrong-path
//! renames back on a branch squash.

use mos_isa::{InstClass, Reg};

use crate::pointer::MopPointer;
use crate::uop::{GroupRole, SchedUop, Tag, UopId};

/// The rename-stage view of one fetched instruction handed to formation.
#[derive(Debug, Clone)]
pub struct RenamedInst {
    /// Program-order identity / age.
    pub id: UopId,
    /// Static index.
    pub sidx: u32,
    /// Latency/resource class.
    pub class: InstClass,
    /// Logical destination register (zero register writes excluded).
    pub dst: Option<Reg>,
    /// Logical source registers (zero register excluded).
    pub srcs: Vec<Reg>,
    /// Control leaves this instruction taken (as fetched/predicted).
    pub taken: bool,
    /// Taken control transfer is indirect (pointers may not span it).
    pub taken_indirect: bool,
    /// MOP pointer fetched alongside the instruction, if any.
    pub pointer: Option<MopPointer>,
    /// Macro-op candidate?
    pub is_candidate: bool,
    /// Value-generating candidate?
    pub is_valuegen: bool,
    /// Cycle the instruction was fetched (carried into the uop for trace
    /// timelines).
    pub fetched_at: u64,
    /// Fetched on a mispredicted path.
    pub wrong_path: bool,
}

/// One steering decision for the queue stage, in group order.
#[derive(Debug, Clone)]
pub enum FormedItem {
    /// Insert as an ordinary singleton entry.
    Single(SchedUop),
    /// Insert as a MOP head with the pending bit set; the tail follows as
    /// a [`FormedItem::TailFuse`] with the same `pair_id`, either later in
    /// this group or in the next one.
    HeadPending {
        /// The head uop.
        head: SchedUop,
        /// Correlates the later fuse/cancel.
        pair_id: u64,
    },
    /// Fuse this tail into the pending head's entry.
    TailFuse {
        /// The tail uop.
        tail: SchedUop,
        /// The pending pair being completed.
        pair_id: u64,
        /// The pair expects yet another tail (>2-wide MOP chains): keep
        /// the entry pending.
        chain_more: bool,
    },
    /// The expected tail never arrived (control flow diverged, fetch gap,
    /// or another head claimed it): release the head as a singleton.
    Cancel {
        /// The abandoned pair.
        pair_id: u64,
    },
}

/// Snapshot of the MOP translation table for squash recovery.
#[derive(Debug, Clone)]
pub struct TableCheckpoint {
    map: [Option<Tag>; Reg::NUM],
}

#[derive(Debug, Clone)]
struct Pending {
    pair_id: u64,
    mop_tag: Tag,
    head_pos: u64,
    expected_pos: u64,
    expected_sidx: u32,
    control: bool,
    independent: bool,
    taken_between: u32,
    indirect_between: bool,
    size: usize,
    born_step: u64,
}

/// Aggregate formation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FormStats {
    /// Pairs successfully fused.
    pub fused_pairs: u64,
    /// Pendings cancelled (control divergence, fetch gaps, claimed tails).
    pub cancelled: u64,
    /// Instructions processed.
    pub insts: u64,
}

/// The MOP formation engine. See the module docs.
#[derive(Debug)]
pub struct Former {
    max_mop_size: usize,
    mops_enabled: bool,
    table: [Option<Tag>; Reg::NUM],
    next_tag: u64,
    next_pair: u64,
    pos: u64,
    step_no: u64,
    pending: Vec<Pending>,
    stats: FormStats,
}

impl Former {
    /// Create a formation engine. When `mops_enabled` is false (baseline
    /// schedulers) every instruction is steered as a singleton and
    /// pointers are ignored, but dependence translation still runs.
    pub fn new(mops_enabled: bool, max_mop_size: usize) -> Former {
        Former {
            max_mop_size,
            mops_enabled,
            table: [None; Reg::NUM],
            next_tag: 0,
            next_pair: 0,
            pos: 0,
            step_no: 0,
            pending: Vec::new(),
            stats: FormStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> FormStats {
        self.stats
    }

    /// Checkpoint the translation table (take one per branch).
    pub fn checkpoint(&self) -> TableCheckpoint {
        TableCheckpoint { map: self.table }
    }

    /// Roll the translation table back to `cp` and drop all pending pairs
    /// (their tails were wrong-path).
    pub fn squash(&mut self, cp: &TableCheckpoint) {
        self.table = cp.map;
        self.pending.clear();
    }

    fn alloc_tag(&mut self) -> Tag {
        let t = Tag(self.next_tag);
        self.next_tag += 1;
        t
    }

    fn translate_srcs(&self, srcs: &[Reg]) -> Vec<Tag> {
        let mut out = Vec::with_capacity(srcs.len());
        for r in srcs {
            if let Some(t) = self.table[r.index()] {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        out
    }

    fn make_uop(&mut self, inst: &RenamedInst, dst: Option<Tag>, role: GroupRole) -> SchedUop {
        let srcs = self.translate_srcs(&inst.srcs);
        if let (Some(r), Some(t)) = (inst.dst, dst) {
            self.table[r.index()] = Some(t);
        }
        SchedUop {
            id: inst.id,
            class: inst.class,
            fu: inst.class.fu(),
            dst,
            srcs,
            sched_latency: inst.class.exec_latency(),
            is_load: inst.class == InstClass::Load,
            sidx: inst.sidx,
            role,
            fetched_at: inst.fetched_at,
            wrong_path: inst.wrong_path,
        }
    }

    /// Process one rename group (at most the machine width), returning
    /// queue-stage steering decisions in order. Call once per cycle; an
    /// empty group (front-end bubble) still advances pending expiry.
    ///
    /// Pipelines that need to checkpoint the translation table between
    /// instructions (for branch squash) use the incremental
    /// [`Former::begin_group`] / [`Former::feed`] / [`Former::end_group`]
    /// calls this method wraps.
    pub fn step(&mut self, group: &[RenamedInst]) -> Vec<FormedItem> {
        self.begin_group();
        let mut items = Vec::with_capacity(group.len() + 1);
        for inst in group {
            items.extend(self.feed(inst));
        }
        items.extend(self.end_group());
        items
    }

    /// Start a rename group (advances pending-pair expiry bookkeeping).
    pub fn begin_group(&mut self) {
        self.step_no += 1;
    }

    /// Feed one renamed instruction of the current group.
    pub fn feed(&mut self, inst: &RenamedInst) -> Vec<FormedItem> {
        let step_no = self.step_no;
        let mut items = Vec::with_capacity(2);
        {
            let pos = self.pos;
            self.pos += 1;
            self.stats.insts += 1;

            // 1. Is this the tail a pending head expects? Every pending
            // whose expectation lands here either fuses (the first that
            // matches) or is cancelled (its expected position has passed).
            let mut fused_here = false;
            let mut k = 0;
            while k < self.pending.len() {
                if self.pending[k].expected_pos != pos {
                    k += 1;
                    continue;
                }
                let p = &self.pending[k];
                // Links beyond the second member must be strictly
                // single-source (their only dependence the chain itself):
                // the paper's pairwise cycle heuristic does not cover
                // cross-chain dependences, and a third member with an
                // extra operand could close a dependence cycle through an
                // instruction between the head and this tail.
                let chain_safe = p.size < 2
                    || self
                        .translate_srcs(&inst.srcs)
                        .iter()
                        .all(|&t| t == p.mop_tag);
                let matches = !fused_here
                    && inst.sidx == p.expected_sidx
                    && !p.indirect_between
                    && (p.taken_between == 1) == p.control
                    && p.taken_between <= 1
                    && inst.is_candidate
                    && chain_safe;
                if !matches {
                    let p = self.pending.remove(k);
                    items.push(FormedItem::Cancel { pair_id: p.pair_id });
                    self.stats.cancelled += 1;
                    continue; // same k now holds the next pending
                }
                let p = self.pending[k].clone();
                let role = if p.independent {
                    GroupRole::MopIndependent
                } else if inst.is_valuegen {
                    GroupRole::MopValueGen
                } else {
                    GroupRole::MopNonValueGen
                };
                let tail = self.make_uop(inst, Some(p.mop_tag), role);
                // Chain a further link (>2-wide MOPs) when the tail has
                // its own pointer and the size limit allows.
                let chain = if p.size + 1 < self.max_mop_size {
                    inst.pointer
                } else {
                    None
                };
                let chain_more = chain.is_some();
                if let Some(ptr) = chain {
                    let pd = &mut self.pending[k];
                    pd.head_pos = pos;
                    pd.expected_pos = pos + u64::from(ptr.offset);
                    pd.expected_sidx = ptr.tail_sidx;
                    pd.control = ptr.control;
                    // account_taken below records this instruction's own
                    // outgoing transition.
                    pd.taken_between = 0;
                    pd.indirect_between = false;
                    pd.size += 1;
                    pd.born_step = step_no;
                    k += 1;
                } else {
                    self.pending.remove(k);
                }
                self.stats.fused_pairs += 1;
                items.push(FormedItem::TailFuse {
                    tail,
                    pair_id: p.pair_id,
                    chain_more,
                });
                fused_here = true;
            }
            if fused_here {
                self.account_taken(inst, pos);
                return items;
            }

            // 2. Does the instruction start a pair of its own?
            let starts_pair = self.mops_enabled
                && inst.is_candidate
                && inst.pointer.is_some()
                && self.max_mop_size >= 2;
            if starts_pair {
                let ptr = inst.pointer.expect("checked above");
                let pair_id = self.next_pair;
                self.next_pair += 1;
                let mop_tag = self.alloc_tag();
                let role = if ptr.independent {
                    GroupRole::MopIndependent
                } else {
                    GroupRole::MopValueGen
                };
                let head = self.make_uop(inst, Some(mop_tag), role);
                self.pending.push(Pending {
                    pair_id,
                    mop_tag,
                    head_pos: pos,
                    expected_pos: pos + u64::from(ptr.offset),
                    expected_sidx: ptr.tail_sidx,
                    control: ptr.control,
                    independent: ptr.independent,
                    taken_between: 0,
                    indirect_between: false,
                    size: 1,
                    born_step: step_no,
                });
                items.push(FormedItem::HeadPending { head, pair_id });
                self.account_taken(inst, pos);
                return items;
            }

            // 3. Ordinary singleton.
            let dst = if inst.dst.is_some() {
                Some(self.alloc_tag())
            } else {
                None
            };
            let role = if inst.is_candidate {
                GroupRole::NotGrouped
            } else {
                GroupRole::NotCandidate
            };
            let uop = self.make_uop(inst, dst, role);
            items.push(FormedItem::Single(uop));
            self.account_taken(inst, pos);
        }
        items
    }

    /// Finish the current group: expire pendings older than the
    /// consecutive-group window (their heads issue as singletons).
    pub fn end_group(&mut self) -> Vec<FormedItem> {
        let step_no = self.step_no;
        let mut items = Vec::new();
        let mut expired = Vec::new();
        let pos = self.pos;
        self.pending.retain(|p| {
            if p.born_step + 1 < step_no || (p.born_step < step_no && p.expected_pos < pos) {
                expired.push(p.pair_id);
                false
            } else {
                true
            }
        });
        for pair_id in expired {
            items.push(FormedItem::Cancel { pair_id });
            self.stats.cancelled += 1;
        }
        items
    }

    /// Record the control transition leaving `inst` into every pending
    /// pair whose span covers it.
    fn account_taken(&mut self, inst: &RenamedInst, pos: u64) {
        if !inst.taken {
            return;
        }
        for p in &mut self.pending {
            if pos >= p.head_pos && pos < p.expected_pos {
                p.taken_between += 1;
                if inst.taken_indirect {
                    p.indirect_between = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ri(id: u64, sidx: u32, dst: Option<u8>, srcs: &[u8]) -> RenamedInst {
        RenamedInst {
            id: UopId(id),
            sidx,
            class: InstClass::IntAlu,
            dst: dst.map(Reg::int),
            srcs: srcs.iter().map(|&n| Reg::int(n)).collect(),
            taken: false,
            taken_indirect: false,
            pointer: None,
            is_candidate: true,
            is_valuegen: dst.is_some(),
            fetched_at: 0,
            wrong_path: false,
        }
    }

    fn with_ptr(mut i: RenamedInst, offset: u8, control: bool, tail_sidx: u32) -> RenamedInst {
        i.pointer = Some(MopPointer::new(offset, control, tail_sidx));
        i
    }

    fn former() -> Former {
        Former::new(true, 2)
    }

    #[test]
    fn same_group_pair_fuses() {
        let mut f = former();
        let items = f.step(&[
            with_ptr(ri(0, 10, Some(1), &[]), 1, false, 11),
            ri(1, 11, Some(2), &[1]),
        ]);
        assert_eq!(items.len(), 2);
        assert!(matches!(items[0], FormedItem::HeadPending { .. }));
        match &items[1] {
            FormedItem::TailFuse { tail, chain_more, .. } => {
                assert!(!chain_more);
                assert_eq!(tail.role, GroupRole::MopValueGen);
                // Internal edge: tail's source is the MOP tag itself.
                let head_tag = match &items[0] {
                    FormedItem::HeadPending { head, .. } => head.dst.unwrap(),
                    _ => unreachable!(),
                };
                assert_eq!(tail.srcs, vec![head_tag]);
                assert_eq!(tail.dst, Some(head_tag), "shared MOP ID");
            }
            other => panic!("expected TailFuse, got {other:?}"),
        }
        assert_eq!(f.stats().fused_pairs, 1);
    }

    #[test]
    fn consecutive_group_pair_fuses() {
        let mut f = former();
        let i1 = f.step(&[with_ptr(ri(0, 10, Some(1), &[]), 4, false, 14)]);
        assert_eq!(i1.len(), 1);
        let i2 = f.step(&[ri(1, 11, None, &[]), ri(2, 12, None, &[]), ri(3, 13, None, &[]), ri(4, 14, Some(2), &[1])]);
        assert!(
            i2.iter().any(|x| matches!(x, FormedItem::TailFuse { .. })),
            "tail in the next insert group must fuse: {i2:?}"
        );
    }

    #[test]
    fn stale_pending_cancelled_after_consecutive_group() {
        let mut f = former();
        f.step(&[with_ptr(ri(0, 10, Some(1), &[]), 7, false, 17)]);
        // Next group doesn't reach the expected position.
        let i2 = f.step(&[ri(1, 11, None, &[])]);
        assert!(i2.iter().all(|x| !matches!(x, FormedItem::Cancel { .. })));
        // Two groups later the pending is stale.
        let i3 = f.step(&[ri(2, 12, None, &[])]);
        assert!(
            i3.iter().any(|x| matches!(x, FormedItem::Cancel { .. })),
            "pending must expire after the consecutive group: {i3:?}"
        );
        assert_eq!(f.stats().cancelled, 1);
    }

    #[test]
    fn wrong_tail_sidx_cancels() {
        let mut f = former();
        let items = f.step(&[
            with_ptr(ri(0, 10, Some(1), &[]), 1, false, 11),
            ri(1, 99, Some(2), &[1]), // different static instruction
        ]);
        assert!(items.iter().any(|x| matches!(x, FormedItem::Cancel { .. })));
        // The impostor is still inserted normally.
        assert!(items.iter().any(|x| matches!(x, FormedItem::Single(_))));
    }

    #[test]
    fn control_bit_mismatch_cancels() {
        // Pointer was detected across a taken branch (control = true) but
        // this time the branch fell through.
        let mut f = former();
        let head = with_ptr(ri(0, 10, Some(1), &[]), 2, true, 12);
        let mid = ri(1, 11, None, &[]); // not taken this time
        let tail = ri(2, 12, Some(2), &[1]);
        let items = f.step(&[head, mid, tail]);
        assert!(
            items.iter().any(|x| matches!(x, FormedItem::Cancel { .. })),
            "fall-through path must not group with a taken-path pointer: {items:?}"
        );
    }

    #[test]
    fn control_bit_match_across_taken_branch_fuses() {
        let mut f = former();
        let head = with_ptr(ri(0, 10, Some(1), &[]), 2, true, 30);
        let mut br = ri(1, 11, None, &[]);
        br.taken = true;
        br.class = InstClass::CondBranch;
        let tail = ri(2, 30, Some(2), &[1]);
        let items = f.step(&[head, br, tail]);
        assert!(items.iter().any(|x| matches!(x, FormedItem::TailFuse { .. })));
    }

    #[test]
    fn indirect_between_cancels() {
        let mut f = former();
        let head = with_ptr(ri(0, 10, Some(1), &[]), 2, true, 30);
        let mut jr = ri(1, 11, None, &[]);
        jr.taken = true;
        jr.taken_indirect = true;
        jr.class = InstClass::IndirectJump;
        let tail = ri(2, 30, Some(2), &[1]);
        let items = f.step(&[head, jr, tail]);
        assert!(items.iter().any(|x| matches!(x, FormedItem::Cancel { .. })));
    }

    #[test]
    fn consumers_of_head_and_tail_share_the_mop_tag() {
        let mut f = former();
        let items = f.step(&[
            with_ptr(ri(0, 10, Some(1), &[]), 1, false, 11),
            ri(1, 11, Some(2), &[1]),
            ri(2, 12, Some(3), &[1]), // reads head's r1
            ri(3, 13, Some(4), &[2]), // reads tail's r2
        ]);
        let tag = match &items[0] {
            FormedItem::HeadPending { head, .. } => head.dst.unwrap(),
            _ => panic!(),
        };
        let srcs_of = |k: usize| match &items[k] {
            FormedItem::Single(u) => u.srcs.clone(),
            _ => panic!(),
        };
        assert_eq!(srcs_of(2), vec![tag], "head consumer is a child of the MOP");
        assert_eq!(srcs_of(3), vec![tag], "tail consumer is a child of the MOP");
    }

    #[test]
    fn untracked_sources_are_omitted() {
        let mut f = former();
        let items = f.step(&[ri(0, 10, Some(1), &[5])]); // r5 never written
        match &items[0] {
            FormedItem::Single(u) => assert!(u.srcs.is_empty()),
            _ => panic!(),
        }
    }

    #[test]
    fn disabled_former_ignores_pointers() {
        let mut f = Former::new(false, 2);
        let items = f.step(&[
            with_ptr(ri(0, 10, Some(1), &[]), 1, false, 11),
            ri(1, 11, Some(2), &[1]),
        ]);
        assert!(items.iter().all(|x| matches!(x, FormedItem::Single(_))));
    }

    #[test]
    fn independent_pair_roles() {
        let mut f = former();
        let mut head = ri(0, 10, Some(1), &[7]);
        head.pointer = Some(MopPointer::new(1, false, 11).independent());
        let tail = ri(1, 11, Some(2), &[7]);
        let items = f.step(&[head, tail]);
        match (&items[0], &items[1]) {
            (
                FormedItem::HeadPending { head, .. },
                FormedItem::TailFuse { tail, .. },
            ) => {
                assert_eq!(head.role, GroupRole::MopIndependent);
                assert_eq!(tail.role, GroupRole::MopIndependent);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_valuegen_tail_role() {
        let mut f = former();
        let head = with_ptr(ri(0, 10, Some(1), &[]), 1, false, 11);
        let mut st = ri(1, 11, None, &[1]);
        st.class = InstClass::Store;
        st.is_valuegen = false;
        let items = f.step(&[head, st]);
        match &items[1] {
            FormedItem::TailFuse { tail, .. } => {
                assert_eq!(tail.role, GroupRole::MopNonValueGen)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn squash_restores_table_and_drops_pendings() {
        let mut f = former();
        f.step(&[ri(0, 10, Some(1), &[])]);
        let cp = f.checkpoint();
        f.step(&[with_ptr(ri(1, 11, Some(1), &[1]), 4, false, 15)]);
        f.squash(&cp);
        // r1 maps back to uop 0's tag: a new consumer sees the old tag.
        let items = f.step(&[ri(2, 12, Some(3), &[1])]);
        match &items[0] {
            FormedItem::Single(u) => assert_eq!(u.srcs, vec![Tag(0)]),
            _ => panic!(),
        }
        // No cancel was emitted for the squashed pending — queue squash
        // already removed the entry — and no fuse can match it later.
        assert!(items.iter().all(|x| !matches!(x, FormedItem::TailFuse { .. })));
    }

    #[test]
    fn chain_of_three_when_allowed() {
        let mut f = Former::new(true, 3);
        let a = with_ptr(ri(0, 10, Some(1), &[]), 1, false, 11);
        let b = with_ptr(ri(1, 11, Some(2), &[1]), 1, false, 12);
        let c = ri(2, 12, Some(3), &[2]);
        let items = f.step(&[a, b, c]);
        let fuses: Vec<bool> = items
            .iter()
            .filter_map(|x| match x {
                FormedItem::TailFuse { chain_more, .. } => Some(*chain_more),
                _ => None,
            })
            .collect();
        assert_eq!(fuses, vec![true, false], "b chains on, c terminates");
        // All three share one tag.
        let tag = match &items[0] {
            FormedItem::HeadPending { head, .. } => head.dst.unwrap(),
            _ => panic!(),
        };
        for x in &items[1..] {
            if let FormedItem::TailFuse { tail, .. } = x {
                assert_eq!(tail.dst, Some(tag));
            }
        }
    }

    #[test]
    fn tail_claimed_by_earlier_head_cancels_second_pending() {
        // Two heads point at the same tail position... impossible by
        // construction (positions are unique), but two heads can expect
        // different positions where the second's expectation is consumed
        // as a plain instruction first. Exercise the cancel path via a
        // claimed-tail sidx mismatch instead.
        let mut f = former();
        let h1 = with_ptr(ri(0, 10, Some(1), &[]), 2, false, 12);
        let h2 = with_ptr(ri(1, 11, Some(2), &[]), 1, false, 99); // expects sidx 99 at pos 2
        let t = ri(2, 12, Some(3), &[1]);
        let items = f.step(&[h1, h2, t]);
        // h2's expectation fails (sidx 12 != 99) -> cancel; then the tail
        // fuses with h1? Position 2 is expected by both pendings; the
        // first match wins deterministically.
        assert!(items.iter().any(|x| matches!(x, FormedItem::Cancel { .. })));
    }
}

//! Top-down issue-slot accounting: the exclusive cause taxonomy behind
//! `mossim cpistack`.
//!
//! Every simulated cycle offers `issue_width` slots. Each slot is charged
//! to exactly one [`SlotCause`], so per-cause counts always sum to
//! `cycles × issue_width` — the **conservation law** checked by
//! [`SlotCounts::check_conservation`] (and, like the scheduling-invariant
//! oracle, auto-attached in debug builds of the simulator).
//!
//! Attribution is split between two vantage points:
//!
//! * the **issue queue** charges everything it can see — grants, MOP
//!   payload-sequencing blocks, wasted select-free slots, and per-waiting-
//!   entry stall causes for slots that went idle while work sat in the
//!   queue (oldest entries first, mirroring select priority);
//! * the **simulator** charges the remainder — slots idle while the queue
//!   had nothing waiting — to wrong-path recovery, frontend (IQ/ROB-full)
//!   back-pressure, or a genuinely drained machine.
//!
//! The exclusivity/priority rules are documented on each variant and in
//! DESIGN §10.

/// Number of slot causes in the taxonomy (length of [`SlotCause::ALL`]).
pub const NUM_SLOT_CAUSES: usize = 9;

/// Exclusive cause charged to one cycle × issue-slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SlotCause {
    /// A grant: an entry (single uop or whole MOP) issued in this slot.
    Useful,
    /// The scheduling-loop penalty the paper targets: either a waiting
    /// entry whose operands are *actually* available (`actual_at ≤ now`)
    /// but not yet *visible* to wakeup (`ready_at > now` — the pipelined
    /// wakeup/select bubble), or a slot burned by select-free scheduling-
    /// loop speculation (stale-grant cancels, scoreboard pileup replays
    /// and their hold-off cycles).
    SchedLoop,
    /// MOP fusion overhead: the payload-sequencing slot a 2-uop MOP blocks
    /// in its second cycle, or an entry waiting for its pending tail.
    MopFusion,
    /// True data dependence: a source value genuinely not computed yet.
    NotReady,
    /// Load-miss shadow: the entry waits on a dataflow edge poisoned by a
    /// cache miss (the missed load itself or a transitively replayed
    /// consumer).
    LoadMiss,
    /// Issue-bandwidth saturation: the entry was ready and requested, but
    /// lost selection (width or functional-unit contention).
    Bandwidth,
    /// Frontend back-pressure: the queue was empty of waiting work while
    /// insert was blocked by a full issue queue or ROB.
    Frontend,
    /// Wrong-path fetch or post-squash redirect recovery.
    WrongPath,
    /// Drained/empty: nothing in the queue and no specific culprit —
    /// startup fill, I-miss fetch stalls, front-pipeline bubbles, or the
    /// end-of-program drain.
    Drained,
}

impl SlotCause {
    /// All causes, in canonical report order.
    pub const ALL: [SlotCause; NUM_SLOT_CAUSES] = [
        SlotCause::Useful,
        SlotCause::SchedLoop,
        SlotCause::MopFusion,
        SlotCause::NotReady,
        SlotCause::LoadMiss,
        SlotCause::Bandwidth,
        SlotCause::Frontend,
        SlotCause::WrongPath,
        SlotCause::Drained,
    ];

    /// Dense index of this cause (position in [`SlotCause::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in JSON schemas and reports.
    pub fn name(self) -> &'static str {
        match self {
            SlotCause::Useful => "useful",
            SlotCause::SchedLoop => "sched_loop",
            SlotCause::MopFusion => "mop_fusion",
            SlotCause::NotReady => "not_ready",
            SlotCause::LoadMiss => "load_miss",
            SlotCause::Bandwidth => "bandwidth",
            SlotCause::Frontend => "frontend",
            SlotCause::WrongPath => "wrong_path",
            SlotCause::Drained => "drained",
        }
    }
}

/// Per-cause slot counters. Sums exactly to `cycles × issue_width` when
/// accounting was enabled for the whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotCounts {
    counts: [u64; NUM_SLOT_CAUSES],
}

impl SlotCounts {
    /// Charge `n` slots to `cause`.
    pub fn add(&mut self, cause: SlotCause, n: u64) {
        self.counts[cause.index()] += n;
    }

    /// Slots charged to `cause` so far.
    pub fn get(&self, cause: SlotCause) -> u64 {
        self.counts[cause.index()]
    }

    /// Total slots charged across all causes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &SlotCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
    }

    /// The conservation law: charged slots must equal the slots offered.
    ///
    /// Returns a diagnostic naming both sides when it is violated.
    pub fn check_conservation(&self, cycles: u64, issue_width: u64) -> Result<(), String> {
        let offered = cycles * issue_width;
        let charged = self.total();
        if charged == offered {
            Ok(())
        } else {
            Err(format!(
                "slot-cause conservation violated: charged {charged} != \
                 {cycles} cycles x {issue_width} slots = {offered}"
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_names_unique() {
        let mut names = std::collections::BTreeSet::new();
        for (i, c) in SlotCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(names.insert(c.name()), "duplicate name {}", c.name());
        }
        assert_eq!(names.len(), NUM_SLOT_CAUSES);
    }

    #[test]
    fn counts_add_merge_and_conserve() {
        let mut a = SlotCounts::default();
        a.add(SlotCause::Useful, 5);
        a.add(SlotCause::SchedLoop, 2);
        let mut b = SlotCounts::default();
        b.add(SlotCause::Drained, 1);
        a.merge(&b);
        assert_eq!(a.total(), 8);
        assert_eq!(a.get(SlotCause::Useful), 5);
        assert!(a.check_conservation(2, 4).is_ok());
        assert!(a.check_conservation(3, 4).is_err());
    }
}
